"""Long-running results service over the analysis layer.

``python -m repro serve <results.json|cache-dir|queue-dir>`` starts a
stdlib-only HTTP server that loads each source once into a
:class:`~repro.analysis.frame.ResultFrame` and answers JSON reads —
the §6 report, tradeoff curves, Pareto frontiers, grouped summaries and
arbitrary :mod:`repro.analysis.query` documents — to many concurrent
clients, with content-addressed ``ETag``/``304`` caching and optional
background reload of still-draining sweeps.  See
:mod:`repro.serve.server` for the endpoint reference and consistency
model.
"""

from .server import SERVE_SCHEMA_VERSION, FrameSource, ResultsServer

__all__ = ["SERVE_SCHEMA_VERSION", "FrameSource", "ResultsServer"]
