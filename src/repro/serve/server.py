"""The results service: load sweeps once, serve reads to many clients.

``python -m repro report`` re-parses its source on every invocation; fine
for one reader, wrong for many.  :class:`ResultsServer` is the
build-artifacts-once / serve-cheap-reads-to-many shape: each source
(``results.json``, result-cache dir, or work-queue dir — anything
:func:`~repro.analysis.frame.load_frame` sniffs) is loaded into a
:class:`~repro.analysis.frame.ResultFrame` once, snapshotted immutably,
and served over plain stdlib HTTP (``ThreadingHTTPServer`` — no new
dependencies) to any number of concurrent readers.

Endpoints (all JSON; schema documented in ``docs/FORMATS.md``):

==============  ===========================================================
``/healthz``    liveness + per-endpoint request metrics + per-source
                pending/leased accounting (partial sweeps are visible here,
                not just on stderr)
``/frames``     loaded sources: name, kind, rows, columns, fingerprint
``/report``     the §6 standard report — byte-identical JSON to
                ``python -m repro report --json -`` on the same source
``/curves``     per-group tradeoff curves (``group``/``x``/``y`` params)
``/pareto``     Pareto-dominant rows on (``x``, ``y``)
``/summary``    grouped aggregation (``by``/``values``/``stats`` params)
``/query``      the JSON query language (:mod:`repro.analysis.query`):
                ``POST`` a document, or ``GET`` with ``?q=<json>``
``/fleet``      queue-dir sources only: live queue stats, the launched
                fleet's worker roster (PID liveness), the batch plan, and
                with ``?audit=1`` a full done-vs-cache verify pass
==============  ===========================================================

Consistency and caching model
-----------------------------
* **Snapshots.**  A loaded source is an immutable :class:`Snapshot`
  (frame + content fingerprint + outstanding counts).  Handlers grab the
  current snapshot reference once per request, so a concurrent reload can
  never tear a response: every response is computed entirely against one
  generation, and carries that generation's ``fingerprint`` so clients
  paginating across requests can detect a generation change.
* **ETags.**  Every data response carries a strong ``ETag`` derived from
  the snapshot fingerprint (itself content-addressed over the frame — see
  :meth:`ResultFrame.fingerprint`) plus the canonicalized request.
  ``If-None-Match`` answers ``304 Not Modified`` with no body, so polling
  dashboards cost almost nothing while a source is unchanged.
* **Reload.**  With ``reload_interval > 0`` a daemon thread polls each
  path-backed source's mtime signature and atomically swaps in a fresh
  snapshot when it changes — a queue directory still being drained by
  workers converges to the finished sweep without a restart.  A reload
  that fails (e.g. a torn mid-write file) keeps the previous snapshot and
  counts a ``reload_errors``.

In-process use (tests, benchmarks, notebooks)::

    server = ResultsServer([FrameSource("sweep", "results.json")])
    server.start()                      # binds, serves on a daemon thread
    ... http.client against server.host:server.port ...
    server.stop()
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple
from urllib.parse import parse_qsl, urlsplit

from ..analysis.frame import (
    ResultFrame,
    is_queue_dir,
    load_frame,
    queue_outstanding,
)
from ..analysis.query import Query, QueryError, compile_query
from ..analysis.report import (
    build_report,
    build_report_from_store,
    report_json_text,
)

__all__ = ["SERVE_SCHEMA_VERSION", "FrameSource", "ResultsServer"]

#: bump when endpoint response layouts change incompatibly (also an ETag
#: ingredient, so clients never 304-cache across schema changes)
SERVE_SCHEMA_VERSION = 1

#: quality metrics the report/curve endpoints accept for ``y``
_Y_METRICS = ("top1", "top5")

#: largest accepted ``POST /query`` body; queries are small documents
_MAX_BODY_BYTES = 1 << 20


class Snapshot:
    """One immutable loaded generation of a source.

    Everything a handler needs is reachable from here, so a request that
    holds a snapshot is isolated from concurrent reloads.  Derived
    artifacts (the prepared frame, per-``y`` report JSON) are computed
    lazily once and cached — many readers, one build.
    """

    def __init__(
        self,
        frame: ResultFrame,
        generation: int,
        outstanding: Optional[Dict[str, int]] = None,
        fingerprint: Optional[str] = None,
        store=None,
        store_manifest: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.frame = frame
        self.generation = generation
        self.outstanding = {"pending": 0, "leased": 0}
        self.outstanding.update(outstanding or {})
        # binary-store sources pass the manifest fingerprint: same
        # changes-iff-data-changed contract, without re-hashing a
        # million-row frame on every reload
        self.fingerprint = fingerprint if fingerprint else frame.fingerprint()
        # store-backed snapshots keep the handle + the manifest generation
        # they were loaded from, so /query and /report can push filters and
        # aggregation down to segment level instead of scanning self.frame
        self.store = store
        self.store_manifest = store_manifest
        self._lock = threading.Lock()
        self._prepared: Optional[ResultFrame] = None
        self._reports: Dict[str, str] = {}

    def prepared(self) -> ResultFrame:
        """Report-shaped rows: baselines replicated, derived columns,
        quarantined cells dropped — what /curves, /summary and /pareto
        serve (the same preparation ``build_report`` applies)."""
        with self._lock:
            if self._prepared is None:
                self._prepared = (
                    self.frame.replicate_baselines().derived().ok()
                )
            return self._prepared

    def report_text(self, y: str) -> str:
        """The §6 report JSON for this generation (built once per ``y``);
        byte-identical to ``python -m repro report --json -``."""
        with self._lock:
            if y not in self._reports:
                report = None
                if self.store is not None:
                    try:
                        # fold segment by segment (byte-identical output);
                        # a store torn by a racing compact (segments this
                        # manifest references already deleted) falls back
                        # to the already-materialized snapshot frame
                        report = build_report_from_store(
                            self.store, y=y, outstanding=self.outstanding,
                            manifest=self.store_manifest,
                        )
                    except (OSError, RuntimeError):
                        report = None
                if report is None:
                    report = build_report(
                        self.frame, y=y, outstanding=self.outstanding
                    )
                self._reports[y] = report_json_text(report)
            return self._reports[y]


class FrameSource:
    """One served source: a path (reloadable) or an in-memory frame.

    ``load()`` builds a fresh :class:`Snapshot`; ``maybe_reload()`` does so
    only when the path's mtime signature changed since the last load.
    ``snapshot()`` is the lock-free read path handlers use.
    """

    def __init__(
        self,
        name: str,
        path=None,
        cache_dir=None,
        frame: Optional[ResultFrame] = None,
    ) -> None:
        if (path is None) == (frame is None):
            raise ValueError("FrameSource needs exactly one of path/frame")
        self.name = name
        self.path = Path(path) if path is not None else None
        self.cache_dir = cache_dir
        self._memory_frame = frame
        self._snapshot: Optional[Snapshot] = None
        self._signature_loaded: Any = None
        self._generation = 0
        self.reloads = 0
        self.reload_errors = 0
        self._load_lock = threading.Lock()

    @classmethod
    def from_frame(cls, name: str, frame: ResultFrame) -> "FrameSource":
        """An in-memory source (benchmarks, tests); never reloads."""
        return cls(name, frame=frame)

    @property
    def kind(self) -> str:
        from ..store import is_store_dir

        if self.path is None:
            return "memory"
        if self.path.is_file():
            return "results"
        if self.path.is_dir() and is_queue_dir(self.path):
            return "queue"
        if self.path.is_dir() and is_store_dir(self.path):
            return "store"
        return "cache"

    # -- change detection ------------------------------------------------
    def _signature(self) -> Any:
        """Cheap mtime-based change token for the source's path.

        Directory mtimes change when entries are renamed in or unlinked
        (how the cache and queue publish state on POSIX), so statting the
        state/shard directories — not walking every entry — is enough to
        notice new rows.
        """
        if self.path is None:
            return None
        entries: List[Tuple[str, int, int]] = []

        def stat(p: Path) -> None:
            try:
                st = p.stat()
                entries.append((str(p), st.st_mtime_ns, st.st_size))
            except OSError:
                pass

        if self.path.is_file():
            stat(self.path)
            return tuple(entries)
        from ..store import is_store_dir

        if self.path.is_dir() and is_store_dir(self.path):
            # the manifest is rewritten atomically on every append/compact,
            # so its (mtime, size) alone is the store's change token
            stat(self.path / "manifest.json")
            return tuple(entries)
        cache_root = self.path
        if self.path.is_dir() and is_queue_dir(self.path):
            for sub in ("pending", "leased", "done", "failed"):
                stat(self.path / sub)
            stat(self.path / "queue.json")
            cache_root = Path(self.cache_dir) if self.cache_dir \
                else self.path / "cache"
        stat(cache_root)
        try:
            shards = sorted(cache_root.iterdir())
        except OSError:
            shards = []
        for shard in shards:
            if shard.is_dir():
                stat(shard)
        return tuple(entries)

    # -- loading ---------------------------------------------------------
    def load(self) -> Snapshot:
        """(Re)load the source into a fresh snapshot and swap it in."""
        with self._load_lock:
            # capture the signature BEFORE reading: a write landing during
            # the load re-triggers on the next poll instead of being missed
            signature = self._signature()
            fingerprint = None
            store = manifest = None
            if self.path is None:
                frame = self._memory_frame
                outstanding = {"pending": 0, "leased": 0}
            elif self.kind == "store":
                from ..store import ColumnStore

                # keep the handle + this generation's manifest so handlers
                # can push queries down to segment level (one manifest read
                # per load: fingerprint, frame, and planner all share it)
                store = ColumnStore(self.path)
                manifest = store._require_manifest()
                frame = store.to_frame(manifest=manifest)
                outstanding = queue_outstanding(self.path)
                fingerprint = manifest["fingerprint"]
            else:
                frame = load_frame(self.path, cache_dir=self.cache_dir)
                outstanding = queue_outstanding(self.path)
            self._generation += 1
            snapshot = Snapshot(
                frame, self._generation, outstanding,
                fingerprint=fingerprint, store=store, store_manifest=manifest,
            )
            self._signature_loaded = signature
            self._snapshot = snapshot  # atomic ref swap: readers never block
            return snapshot

    def maybe_reload(self) -> bool:
        """Reload iff the mtime signature moved; never drops a good
        snapshot on a failed reload (the error is counted instead)."""
        if self.path is None:
            return False
        if self._signature() == self._signature_loaded:
            return False
        try:
            self.load()
            self.reloads += 1
            return True
        except Exception:
            self.reload_errors += 1
            self._signature_loaded = self._signature()  # don't retry-spin
            return False

    def snapshot(self) -> Snapshot:
        snapshot = self._snapshot
        if snapshot is None:
            return self.load()
        return snapshot

    def describe(self, columns: bool = False) -> Dict[str, Any]:
        """The /frames (and /healthz) entry for this source."""
        snapshot = self.snapshot()
        out: Dict[str, Any] = {
            "name": self.name,
            "kind": self.kind,
            "path": str(self.path) if self.path is not None else None,
            "rows": len(snapshot.frame),
            "generation": snapshot.generation,
            "fingerprint": snapshot.fingerprint,
            "outstanding": dict(snapshot.outstanding),
            "reloads": self.reloads,
            "reload_errors": self.reload_errors,
        }
        if columns:
            out["columns"] = snapshot.frame.columns
        return out


class _Metrics:
    """Per-endpoint request counters surfaced at /healthz."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._by_route: Dict[str, Dict[str, float]] = {}

    def record(self, route: str, status: int, seconds: float) -> None:
        with self._lock:
            entry = self._by_route.setdefault(route, {
                "requests": 0, "errors": 0, "not_modified": 0,
                "total_seconds": 0.0,
            })
            entry["requests"] += 1
            if status >= 400:
                entry["errors"] += 1
            if status == 304:
                entry["not_modified"] += 1
            entry["total_seconds"] += seconds

    def to_dict(self) -> Dict[str, Dict[str, float]]:
        with self._lock:
            out = {}
            for route, entry in sorted(self._by_route.items()):
                requests = int(entry["requests"])
                out[route] = {
                    "requests": requests,
                    "errors": int(entry["errors"]),
                    "not_modified": int(entry["not_modified"]),
                    "total_seconds": entry["total_seconds"],
                    "avg_ms": (entry["total_seconds"] / requests * 1e3
                               if requests else 0.0),
                }
            return out


class _HTTPError(Exception):
    """Routed straight to a JSON error response."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class _Response:
    __slots__ = ("status", "text", "etag")

    def __init__(self, status: int, text: str, etag: Optional[str] = None):
        self.status = status
        self.text = text
        self.etag = etag


def _json_text(payload: Any) -> str:
    # the repo's JSON dialect: indent 1, non-finite floats as bare tokens
    return json.dumps(payload, indent=1, default=float)


def _int_param(params: Dict[str, str], key: str, minimum: int) -> Optional[int]:
    if key not in params:
        return None
    try:
        value = int(params[key])
    except ValueError:
        raise _HTTPError(400, f"{key!r} must be an integer, "
                              f"got {params[key]!r}") from None
    if value < minimum:
        raise _HTTPError(400, f"{key!r} must be >= {minimum}, got {value}")
    return value


def _name_list_param(params: Dict[str, str], key: str) -> Optional[List[str]]:
    if key not in params:
        return None
    names = [part for part in params[key].split(",") if part]
    if not names:
        raise _HTTPError(400, f"{key!r} must be a comma-separated list of "
                              "column names")
    return names


class ResultsServer:
    """The long-running results service (see module docstring)."""

    def __init__(
        self,
        sources: Sequence[FrameSource],
        host: str = "127.0.0.1",
        port: int = 0,
        reload_interval: float = 0.0,
        log: Optional[Callable[[str], None]] = None,
    ) -> None:
        if not sources:
            raise ValueError("ResultsServer needs at least one source")
        names = [s.name for s in sources]
        dupes = {n for n in names if names.count(n) > 1}
        if dupes:
            raise ValueError(f"duplicate source name(s): {sorted(dupes)}")
        if reload_interval < 0:
            raise ValueError(
                f"reload_interval must be >= 0, got {reload_interval}"
            )
        self.sources: Dict[str, FrameSource] = {s.name: s for s in sources}
        self.host = host
        self._requested_port = port
        self.reload_interval = reload_interval
        self.log = log
        self.metrics = _Metrics()
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._serve_thread: Optional[threading.Thread] = None
        self._reload_thread: Optional[threading.Thread] = None
        self._stop_event = threading.Event()
        self._started_at: Optional[float] = None

    # -- lifecycle -------------------------------------------------------
    @property
    def port(self) -> int:
        if self._httpd is None:
            raise RuntimeError("server not started")
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def _bind(self) -> None:
        for source in self.sources.values():
            source.load()  # fail fast on bad sources, before binding
        app = self

        class _BoundHandler(_Handler):
            server_app = app

        self._httpd = ThreadingHTTPServer(
            (self.host, self._requested_port), _BoundHandler
        )
        self._httpd.daemon_threads = True
        self._started_at = time.monotonic()

    def start(self) -> None:
        """Bind and serve on daemon threads (the in-process entry point)."""
        self._bind()
        self._serve_thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-serve", daemon=True
        )
        self._serve_thread.start()
        self._start_reloader()

    def serve_forever(self) -> None:
        """Bind and serve on the calling thread (the CLI entry point)."""
        self._bind()
        self._start_reloader()
        if self.log:
            self.log(f"serving {len(self.sources)} frame(s) on {self.url}")
        try:
            self._httpd.serve_forever()
        finally:
            self.stop()

    def _start_reloader(self) -> None:
        if self.reload_interval <= 0:
            return

        def poll() -> None:
            while not self._stop_event.wait(self.reload_interval):
                for source in self.sources.values():
                    if source.maybe_reload() and self.log:
                        snap = source.snapshot()
                        self.log(
                            f"reloaded {source.name!r}: {len(snap.frame)} "
                            f"rows (generation {snap.generation})"
                        )

        self._reload_thread = threading.Thread(
            target=poll, name="repro-serve-reload", daemon=True
        )
        self._reload_thread.start()

    def stop(self) -> None:
        """Idempotent clean shutdown: reloader first, then the listener."""
        self._stop_event.set()
        if self._reload_thread is not None:
            self._reload_thread.join(timeout=5.0)
            self._reload_thread = None
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=5.0)
            self._serve_thread = None

    # -- request handling ------------------------------------------------
    def _source(self, name: Optional[str]) -> FrameSource:
        if name is None:
            if len(self.sources) == 1:
                return next(iter(self.sources.values()))
            raise _HTTPError(
                400,
                f"several frames are loaded — pick one with 'frame': "
                f"{sorted(self.sources)}",
            )
        try:
            return self.sources[name]
        except KeyError:
            raise _HTTPError(
                404, f"no frame named {name!r}; loaded: {sorted(self.sources)}"
            ) from None

    def _check_params(self, params: Dict[str, str], allowed: Sequence[str]):
        unknown = set(params) - set(allowed)
        if unknown:
            raise _HTTPError(
                400, f"unknown parameter(s) {sorted(unknown)}; "
                     f"expected a subset of {sorted(allowed)}"
            )

    def _etag(self, snapshot: Snapshot, route: str, canonical: str) -> str:
        material = "|".join((
            str(SERVE_SCHEMA_VERSION), snapshot.fingerprint,
            json.dumps(snapshot.outstanding, sort_keys=True),
            route, canonical,
        ))
        return '"' + hashlib.sha256(material.encode()).hexdigest()[:32] + '"'

    def _envelope(self, source: FrameSource, snapshot: Snapshot,
                  payload: Dict[str, Any]) -> Dict[str, Any]:
        out = {
            "frame": source.name,
            "fingerprint": snapshot.fingerprint,
            "generation": snapshot.generation,
        }
        out.update(payload)
        return out

    def dispatch(self, method: str, route: str,
                 params: Dict[str, str], body: bytes) -> _Response:
        """Route one request to its endpoint → (status, JSON text, ETag)."""
        try:
            if route == "/healthz":
                return self._get_only(method, self._handle_healthz, params)
            if route == "/frames":
                return self._get_only(method, self._handle_frames, params)
            if route == "/report":
                return self._get_only(method, self._handle_report, params)
            if route == "/curves":
                return self._get_only(method, self._handle_curves, params)
            if route == "/pareto":
                return self._get_only(method, self._handle_pareto, params)
            if route == "/summary":
                return self._get_only(method, self._handle_summary, params)
            if route == "/query":
                return self._handle_query(method, params, body)
            if route == "/fleet":
                return self._get_only(method, self._handle_fleet, params)
            raise _HTTPError(
                404,
                f"unknown endpoint {route!r}; try /healthz /frames /report "
                "/curves /pareto /summary /query /fleet",
            )
        except QueryError as exc:
            return _Response(400, _json_text({"error": str(exc), "status": 400}))
        except KeyError as exc:
            # a frame-shape mismatch (e.g. /report on a frame without the
            # sweep columns) is the client's request, not a server bug
            detail = exc.args[0] if exc.args else str(exc)
            return _Response(400, _json_text(
                {"error": f"cannot answer against this frame: {detail}",
                 "status": 400}))
        except _HTTPError as exc:
            return _Response(exc.status,
                             _json_text({"error": str(exc),
                                         "status": exc.status}))

    def _get_only(self, method: str, handler, params) -> _Response:
        if method not in ("GET", "HEAD"):
            raise _HTTPError(405, "method not allowed (use GET)")
        return handler(params)

    def _handle_healthz(self, params: Dict[str, str]) -> _Response:
        self._check_params(params, ())
        uptime = (time.monotonic() - self._started_at
                  if self._started_at is not None else 0.0)
        payload = {
            "status": "ok",
            "schema": SERVE_SCHEMA_VERSION,
            "uptime_seconds": uptime,
            "reload_interval": self.reload_interval,
            "frames": [s.describe() for s in self.sources.values()],
            "metrics": self.metrics.to_dict(),
        }
        return _Response(200, _json_text(payload))

    def _handle_fleet(self, params: Dict[str, str]) -> _Response:
        """Live fleet health for a queue-dir source: queue stats, the
        launched-worker roster with local PID liveness, the batch plan
        summary, and (``?audit=1``) a full verify pass.

        Always read fresh from disk and served without an ETag — fleet
        health is exactly the thing that changes between identical
        snapshots of the result rows.
        """
        self._check_params(params, ("frame", "audit"))
        source = self._source(params.get("frame"))
        if source.kind != "queue":
            raise _HTTPError(
                400,
                f"frame {source.name!r} is a {source.kind} source; /fleet "
                "reports on work-queue directories only",
            )
        from ..experiment.queue import WorkQueue
        from ..fleet import (
            read_batch_manifest,
            read_fleet_manifest,
            verify_fleet,
            worker_alive,
        )

        payload: Dict[str, Any] = {
            "schema": SERVE_SCHEMA_VERSION,
            "frame": source.name,
            "queue": WorkQueue(source.path).stats(),
        }
        manifest = read_fleet_manifest(source.path)
        if manifest is not None:
            payload["fleet"] = {
                "launches": manifest.get("launches"),
                "updated_at": manifest.get("updated_at"),
                "workers": [
                    {
                        "worker_id": w.get("worker_id"),
                        "host": w.get("host"),
                        "launcher": w.get("launcher"),
                        "pid": w.get("pid"),
                        "launch": w.get("launch"),
                        # PID probe is only meaningful on the launcher's
                        # machine; None = unknown (e.g. remote pid)
                        "alive": worker_alive(w),
                    }
                    for w in manifest.get("workers", [])
                ],
            }
        plan = read_batch_manifest(source.path)
        if plan is not None:
            payload["plan"] = {
                "config_hash": plan.get("config_hash"),
                "batch_size": plan.get("batch_size"),
                "n_cells": plan.get("n_cells"),
                "batches": len(plan.get("batches", [])),
                "created_at": plan.get("created_at"),
            }
        if params.get("audit", "") not in ("", "0", "false", "no"):
            audit, _ = verify_fleet(source.path, cache_dir=source.cache_dir)
            payload["audit"] = audit.to_dict()
        return _Response(200, _json_text(payload))

    def _handle_frames(self, params: Dict[str, str]) -> _Response:
        self._check_params(params, ())
        payload = {
            "schema": SERVE_SCHEMA_VERSION,
            "frames": [s.describe(columns=True)
                       for s in self.sources.values()],
        }
        return _Response(200, _json_text(payload))

    def _handle_report(self, params: Dict[str, str]) -> _Response:
        self._check_params(params, ("frame", "y"))
        y = params.get("y", "top1")
        if y not in _Y_METRICS:
            raise _HTTPError(400, f"'y' must be one of {list(_Y_METRICS)}, "
                                  f"got {y!r}")
        source = self._source(params.get("frame"))
        snapshot = source.snapshot()
        etag = self._etag(snapshot, "/report", f"y={y}")
        return _Response(200, snapshot.report_text(y), etag)

    def _handle_curves(self, params: Dict[str, str]) -> _Response:
        self._check_params(params, ("frame", "group", "x", "y"))
        source = self._source(params.get("frame"))
        snapshot = source.snapshot()
        group = params.get("group", "strategy")
        x = params.get("x", "compression")
        y = params.get("y", "top1")
        prepared = snapshot.prepared()
        for name in (group, x, y):
            if len(prepared) and name not in prepared:
                raise _HTTPError(400, f"unknown column {name!r}; "
                                      f"available: {prepared.columns}")
        curves = prepared.tradeoff_curves(group=group, x=x, y=y)
        payload = self._envelope(source, snapshot, {
            "group": group, "x": x, "y": y,
            "curves": {
                str(key): [
                    {"x": p.x, "mean": p.mean, "std": p.std, "n": p.n}
                    for p in points
                ]
                for key, points in curves.items()
            },
        })
        etag = self._etag(snapshot, "/curves", f"group={group}|x={x}|y={y}")
        return _Response(200, _json_text(payload), etag)

    def _handle_pareto(self, params: Dict[str, str]) -> _Response:
        self._check_params(params, ("frame", "x", "y", "limit", "offset"))
        source = self._source(params.get("frame"))
        snapshot = source.snapshot()
        x = params.get("x", "compression")
        y = params.get("y", "top1")
        limit = _int_param(params, "limit", 1)
        offset = _int_param(params, "offset", 0) or 0
        prepared = snapshot.prepared()
        for name in (x, y):
            if len(prepared) and name not in prepared:
                raise _HTTPError(400, f"unknown column {name!r}; "
                                      f"available: {prepared.columns}")
        frontier = prepared.pareto_frontier(x=x, y=y) if len(prepared) \
            else prepared
        page = Query(limit=limit, offset=offset).apply(frontier)
        payload = self._envelope(source, snapshot,
                                 {"x": x, "y": y, **page})
        etag = self._etag(
            snapshot, "/pareto",
            f"x={x}|y={y}|limit={limit}|offset={offset}",
        )
        return _Response(200, _json_text(payload), etag)

    def _handle_summary(self, params: Dict[str, str]) -> _Response:
        self._check_params(
            params, ("frame", "by", "values", "stats", "limit", "offset")
        )
        source = self._source(params.get("frame"))
        snapshot = source.snapshot()
        by = _name_list_param(params, "by") or ["strategy", "compression"]
        values = _name_list_param(params, "values")
        stats = _name_list_param(params, "stats") or ["mean", "std"]
        limit = _int_param(params, "limit", 1)
        offset = _int_param(params, "offset", 0) or 0
        aggregate: Dict[str, Any] = {"by": by, "stats": stats}
        if values is not None:
            aggregate["values"] = values
        query = compile_query({"aggregate": aggregate,
                               **({"limit": limit} if limit else {}),
                               "offset": offset})
        page = query.apply(snapshot.prepared())
        payload = self._envelope(source, snapshot, page)
        etag = self._etag(snapshot, "/summary", query.canonical())
        return _Response(200, _json_text(payload), etag)

    def _handle_query(self, method: str, params: Dict[str, str],
                      body: bytes) -> _Response:
        if method in ("GET", "HEAD"):
            self._check_params(params, ("frame", "q"))
            if "q" not in params:
                raise _HTTPError(
                    400, "GET /query needs ?q=<json document> "
                         "(or POST the document as the request body)"
                )
            raw = params["q"]
        elif method == "POST":
            self._check_params(params, ("frame",))
            raw = body.decode("utf-8", errors="replace")
        else:
            raise _HTTPError(405, "method not allowed (use GET or POST)")
        try:
            spec = json.loads(raw) if raw.strip() else {}
        except json.JSONDecodeError as exc:
            raise _HTTPError(400, f"query is not valid JSON: {exc}") from None
        query = compile_query(spec)
        source = self._source(query.frame or params.get("frame"))
        snapshot = source.snapshot()
        result = None
        if snapshot.store is not None:
            try:
                # zone-map pushdown: skip segments the filter rules out and
                # load only referenced columns.  QueryError propagates (it
                # is identical on both paths by construction); a store torn
                # by a racing compact falls back to the snapshot frame.
                result = query.apply_store(
                    snapshot.store, manifest=snapshot.store_manifest
                )
            except QueryError:
                raise
            except (OSError, RuntimeError):
                result = None
        if result is None:
            result = query.apply(snapshot.frame)
        payload = self._envelope(source, snapshot, result)
        etag = self._etag(snapshot, "/query", query.canonical())
        return _Response(200, _json_text(payload), etag)


class _Handler(BaseHTTPRequestHandler):
    """Thin HTTP plumbing around :meth:`ResultsServer.dispatch`."""

    #: injected by :meth:`ResultsServer._bind` via subclassing
    server_app: ResultsServer = None  # type: ignore[assignment]
    protocol_version = "HTTP/1.1"  # keep-alive: many reads per connection

    # -- entry points ----------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        self._handle("GET")

    def do_HEAD(self) -> None:  # noqa: N802
        self._handle("HEAD")

    def do_POST(self) -> None:  # noqa: N802
        self._handle("POST")

    # -- plumbing --------------------------------------------------------
    def _read_body(self) -> bytes:
        length = int(self.headers.get("Content-Length") or 0)
        if length > _MAX_BODY_BYTES:
            raise _HTTPError(413, "request body too large")
        return self.rfile.read(length) if length else b""

    def _handle(self, method: str) -> None:
        app = self.server_app
        started = time.perf_counter()
        split = urlsplit(self.path)
        route = split.path.rstrip("/") or "/"
        status = 500
        try:
            params = dict(parse_qsl(split.query, keep_blank_values=True))
            body = self._read_body()
            response = app.dispatch(method, route, params, body)
        except _HTTPError as exc:
            response = _Response(
                exc.status,
                _json_text({"error": str(exc), "status": exc.status}),
            )
        except Exception as exc:  # a bug must not kill the thread silently
            response = _Response(
                500, _json_text({"error": f"internal error: {exc}",
                                 "status": 500}),
            )
        try:
            status = self._send(method, response)
        finally:
            app.metrics.record(route, status,
                               time.perf_counter() - started)

    def _send(self, method: str, response: _Response) -> int:
        status = response.status
        payload = response.text.encode("utf-8")
        if response.etag is not None and status == 200:
            if_none_match = self.headers.get("If-None-Match", "")
            tags = [t.strip() for t in if_none_match.split(",")]
            if response.etag in tags or "*" in tags:
                status, payload = 304, b""
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        if response.etag is not None:
            self.send_header("ETag", response.etag)
            self.send_header("Cache-Control", "no-cache")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        if method != "HEAD" and status != 304:
            self.wfile.write(payload)
        return status

    def log_message(self, format: str, *args) -> None:
        log = self.server_app.log if self.server_app else None
        if log:
            log(f"{self.address_string()} {format % args}")
