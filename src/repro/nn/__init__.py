"""Neural-network layer library (the ``torch.nn`` substitute)."""

from .module import Module, Parameter
from .containers import ModuleList, Sequential
from .layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    ReLU,
)
from . import init

__all__ = [
    "Module",
    "Parameter",
    "Sequential",
    "ModuleList",
    "Linear",
    "Conv2d",
    "BatchNorm2d",
    "ReLU",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "Dropout",
    "Identity",
    "init",
]
