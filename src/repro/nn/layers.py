"""Concrete layers: Linear, Conv2d, BatchNorm2d, activations, pooling.

Layer conventions follow PyTorch (NCHW tensors, ``(out, in)`` linear weights,
``(out, in/groups, kh, kw)`` conv weights) so that ShrinkBench's
per-parameter-tensor pruning logic transfers directly.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..autograd import (
    Tensor,
    avg_pool2d,
    batch_norm2d,
    conv2d,
    conv2d_bias_relu,
    dropout as dropout_fn,
    global_avg_pool2d,
    linear as linear_fn,
    max_pool2d,
)
from . import init as init_mod
from .module import Module, Parameter

__all__ = [
    "Linear",
    "Conv2d",
    "BatchNorm2d",
    "ReLU",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "Dropout",
    "Identity",
]

_DEFAULT_INIT_RNG = np.random.default_rng(0)


class Linear(Module):
    """Affine layer ``y = x W^T + b`` with weight shape ``(out, in)``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else _DEFAULT_INIT_RNG
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init_mod.kaiming_uniform((out_features, in_features), rng)
        )
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return linear_fn(x, self.weight, self.bias)

    def __repr__(self) -> str:
        return (
            f"Linear(in={self.in_features}, out={self.out_features}, "
            f"bias={self.bias is not None})"
        )


class Conv2d(Module):
    """2-D convolution layer over NCHW input.

    ``activation="relu"`` folds a ReLU into the layer; for dense convs with
    bias this runs the backend's fused conv+bias+ReLU kernel (one tape node
    instead of three, byte-equal to ``ReLU()(Conv2d(...)(x))``).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        groups: int = 1,
        bias: bool = True,
        activation: Optional[str] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else _DEFAULT_INIT_RNG
        if activation not in (None, "relu"):
            raise ValueError(f"unsupported Conv2d activation {activation!r}")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.groups = groups
        self.activation = activation
        shape = (out_channels, in_channels // groups, kernel_size, kernel_size)
        self.weight = Parameter(init_mod.kaiming_normal(shape, rng))
        self.bias = Parameter(np.zeros(out_channels)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        if (
            self.activation == "relu"
            and self.bias is not None
            and self.groups == 1
        ):
            return conv2d_bias_relu(
                x, self.weight, self.bias, stride=self.stride, padding=self.padding
            )
        out = conv2d(
            x,
            self.weight,
            self.bias,
            stride=self.stride,
            padding=self.padding,
            groups=self.groups,
        )
        return out.relu() if self.activation == "relu" else out

    def __repr__(self) -> str:
        return (
            f"Conv2d({self.in_channels}, {self.out_channels}, "
            f"k={self.kernel_size}, s={self.stride}, p={self.padding}"
            + (f", g={self.groups}" if self.groups != 1 else "")
            + (f", act={self.activation}" if self.activation else "")
            + ")"
        )


class BatchNorm2d(Module):
    """Batch normalization with learnable affine and running statistics."""

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5):
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.weight = Parameter(np.ones(num_features))  # gamma
        self.bias = Parameter(np.zeros(num_features))  # beta
        self.register_buffer(
            "running_mean", np.zeros(num_features, dtype=np.float32)
        )
        self.register_buffer("running_var", np.ones(num_features, dtype=np.float32))

    def forward(self, x: Tensor) -> Tensor:
        return batch_norm2d(
            x,
            self.weight,
            self.bias,
            self.running_mean,
            self.running_var,
            training=self.training,
            momentum=self.momentum,
            eps=self.eps,
        )

    def __repr__(self) -> str:
        return f"BatchNorm2d({self.num_features})"


class ReLU(Module):
    """Rectified linear activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()

    def __repr__(self) -> str:
        return "ReLU()"


class MaxPool2d(Module):
    """Max pooling layer."""

    def __init__(self, kernel_size: int = 2, stride: Optional[int] = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return max_pool2d(x, self.kernel_size, self.stride)

    def __repr__(self) -> str:
        return f"MaxPool2d(k={self.kernel_size}, s={self.stride})"


class AvgPool2d(Module):
    """Average pooling layer."""

    def __init__(self, kernel_size: int = 2, stride: Optional[int] = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return avg_pool2d(x, self.kernel_size, self.stride)

    def __repr__(self) -> str:
        return f"AvgPool2d(k={self.kernel_size}, s={self.stride})"


class GlobalAvgPool2d(Module):
    """Spatial global average pool: (N,C,H,W) -> (N,C)."""

    def forward(self, x: Tensor) -> Tensor:
        return global_avg_pool2d(x)

    def __repr__(self) -> str:
        return "GlobalAvgPool2d()"


class Flatten(Module):
    """Flatten all dims after the batch dim."""

    def forward(self, x: Tensor) -> Tensor:
        return x.flatten(start_dim=1)

    def __repr__(self) -> str:
        return "Flatten()"


class Dropout(Module):
    """Inverted dropout; identity at eval time."""

    def __init__(self, p: float = 0.5, rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.p = p
        self.rng = rng if rng is not None else np.random.default_rng(0)

    def forward(self, x: Tensor) -> Tensor:
        return dropout_fn(x, self.p, self.rng, self.training)

    def __repr__(self) -> str:
        return f"Dropout(p={self.p})"


class Identity(Module):
    """No-op module (useful for optional blocks)."""

    def forward(self, x: Tensor) -> Tensor:
        return x

    def __repr__(self) -> str:
        return "Identity()"
