"""Module containers: Sequential and ModuleList."""

from __future__ import annotations

from typing import Iterable, Iterator, List

from ..autograd import Tensor
from .module import Module

__all__ = ["Sequential", "ModuleList"]


class Sequential(Module):
    """Chain modules, feeding each output into the next."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        for i, m in enumerate(modules):
            self.add_module(str(i), m)

    def forward(self, x: Tensor) -> Tensor:
        for m in self._modules.values():
            x = m(x)
        return x

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules.values())

    def __len__(self) -> int:
        return len(self._modules)

    def __getitem__(self, idx: int) -> Module:
        return list(self._modules.values())[idx]


class ModuleList(Module):
    """List-like registered container of modules (no implicit forward)."""

    def __init__(self, modules: Iterable[Module] = ()) -> None:
        super().__init__()
        self._items: List[Module] = []
        for m in modules:
            self.append(m)

    def append(self, module: Module) -> "ModuleList":
        self.add_module(str(len(self._items)), module)
        self._items.append(module)
        return self

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, idx: int) -> Module:
        return self._items[idx]

    def forward(self, *args, **kwargs):
        raise RuntimeError("ModuleList has no forward; iterate it instead")
