"""Module/Parameter system: the layer-composition substrate.

Mirrors the ``torch.nn.Module`` contract that ShrinkBench relies on:
named parameter traversal, train/eval modes, state dicts, and forward hooks
(used by the FLOPs counter to trace per-layer input/output shapes).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..autograd import Tensor

__all__ = ["Parameter", "Module"]


class Parameter(Tensor):
    """A trainable tensor: a leaf with ``requires_grad=True`` by default."""

    def __init__(self, data, requires_grad: bool = True, name: Optional[str] = None):
        super().__init__(np.asarray(data, dtype=np.float32), requires_grad, name)

    def __repr__(self) -> str:
        return f"Parameter(shape={self.shape})"


class Module:
    """Base class for all layers and models.

    Subclasses define parameters/submodules as attributes in ``__init__`` and
    implement :meth:`forward`.  Attribute assignment auto-registers
    :class:`Parameter` and :class:`Module` instances, enabling
    :meth:`named_parameters`, :meth:`state_dict`, etc.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "training", True)
        object.__setattr__(self, "_forward_hooks", [])

    # -- registration ---------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register a non-trainable persisted array (e.g. BN running stats)."""
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    def add_module(self, name: str, module: "Module") -> None:
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # -- traversal ------------------------------------------------------
    def modules(self) -> Iterator["Module"]:
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield prefix, self
        for name, child in self._modules.items():
            sub = f"{prefix}.{name}" if prefix else name
            yield from child.named_modules(sub)

    def children(self) -> Iterator["Module"]:
        yield from self._modules.values()

    def parameters(self) -> Iterator[Parameter]:
        for _, p in self.named_parameters():
            yield p

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, p in self._parameters.items():
            yield (f"{prefix}.{name}" if prefix else name), p
        for name, child in self._modules.items():
            sub = f"{prefix}.{name}" if prefix else name
            yield from child.named_parameters(sub)

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        for name, b in self._buffers.items():
            yield (f"{prefix}.{name}" if prefix else name), b
        for name, child in self._modules.items():
            sub = f"{prefix}.{name}" if prefix else name
            yield from child.named_buffers(sub)

    # -- state ----------------------------------------------------------
    def state_dict(self) -> "OrderedDict[str, np.ndarray]":
        """All parameters and buffers as plain arrays (copies)."""
        state: "OrderedDict[str, np.ndarray]" = OrderedDict()
        for name, p in self.named_parameters():
            state[name] = p.data.copy()
        for name, b in self.named_buffers():
            state[name] = np.array(b, copy=True)
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        """Load parameters and buffers from :meth:`state_dict` output."""
        own_params = dict(self.named_parameters())
        own_buffers = {name: (name,) for name, _ in self.named_buffers()}
        missing = []
        for name, p in own_params.items():
            if name in state:
                arr = np.asarray(state[name], dtype=np.float32)
                if arr.shape != p.shape:
                    raise ValueError(
                        f"shape mismatch for {name}: {arr.shape} vs {p.shape}"
                    )
                p.data[...] = arr
            elif strict:
                missing.append(name)
        # Buffers must be updated in place so views held by layers stay valid.
        for mod_name, module in self.named_modules():
            for bname, buf in module._buffers.items():
                full = f"{mod_name}.{bname}" if mod_name else bname
                if full in state:
                    np.asarray(buf)[...] = state[full]
                elif strict:
                    missing.append(full)
        if strict:
            unexpected = [
                k for k in state if k not in own_params and k not in own_buffers
            ]
            if missing or unexpected:
                raise KeyError(
                    f"load_state_dict mismatch: missing={missing}, "
                    f"unexpected={unexpected}"
                )

    # -- modes & grads ----------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        object.__setattr__(self, "training", mode)
        for child in self._modules.values():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def num_parameters(self, only_trainable: bool = False) -> int:
        return sum(
            p.size
            for p in self.parameters()
            if (p.requires_grad or not only_trainable)
        )

    # -- hooks & forward --------------------------------------------------
    def register_forward_hook(
        self, hook: Callable[["Module", Tuple, Tensor], None]
    ) -> Callable[[], None]:
        """Register ``hook(module, inputs, output)``; returns a remover."""
        self._forward_hooks.append(hook)

        def remove() -> None:
            if hook in self._forward_hooks:
                self._forward_hooks.remove(hook)

        return remove

    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        out = self.forward(*args, **kwargs)
        for hook in self._forward_hooks:
            hook(self, args, out)
        return out

    def __repr__(self) -> str:
        lines = [self.__class__.__name__ + "("]
        for name, child in self._modules.items():
            child_repr = repr(child).replace("\n", "\n  ")
            lines.append(f"  ({name}): {child_repr}")
        lines.append(")")
        return "\n".join(lines) if self._modules else self.__class__.__name__ + "()"
