"""Weight-initialization schemes (Kaiming / Xavier / constant).

All initializers take an explicit ``numpy.random.Generator`` so that model
construction is fully deterministic given a seed — a core ShrinkBench
reproducibility requirement (Appendix C of the paper).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "kaiming_normal",
    "kaiming_uniform",
    "xavier_normal",
    "xavier_uniform",
    "fan_in_and_out",
]


def fan_in_and_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Compute (fan_in, fan_out) for linear or conv weight shapes."""
    if len(shape) == 2:  # (out, in)
        return shape[1], shape[0]
    if len(shape) == 4:  # (out, in, kh, kw)
        receptive = shape[2] * shape[3]
        return shape[1] * receptive, shape[0] * receptive
    raise ValueError(f"unsupported weight shape {shape}")


def kaiming_normal(shape, rng: np.random.Generator) -> np.ndarray:
    """He-normal init for ReLU networks: std = sqrt(2 / fan_in)."""
    fan_in, _ = fan_in_and_out(shape)
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape).astype(np.float32)


def kaiming_uniform(shape, rng: np.random.Generator) -> np.ndarray:
    """He-uniform init: bound = sqrt(6 / fan_in)."""
    fan_in, _ = fan_in_and_out(shape)
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def xavier_normal(shape, rng: np.random.Generator) -> np.ndarray:
    """Glorot-normal init: std = sqrt(2 / (fan_in + fan_out))."""
    fan_in, fan_out = fan_in_and_out(shape)
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape).astype(np.float32)


def xavier_uniform(shape, rng: np.random.Generator) -> np.ndarray:
    """Glorot-uniform init: bound = sqrt(6 / (fan_in + fan_out))."""
    fan_in, fan_out = fan_in_and_out(shape)
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)
