"""Analysis layer: columnar ResultFrame + the §6 standard report.

:class:`ResultFrame` (:mod:`repro.analysis.frame`) is the vectorized
container every results consumer queries — experiment sweeps and the
meta-analysis corpus alike.  :func:`build_report`/:func:`render_report`
(:mod:`repro.analysis.report`) turn any finished sweep artifact into the
paper's standard report; ``python -m repro report`` is the CLI wrapper.
"""

from .frame import ResultFrame, is_queue_dir, load_frame
from .report import (
    REPORT_SCHEMA_VERSION,
    StandardReport,
    build_report,
    render_report,
    report_csv_rows,
    report_json_text,
    report_to_json,
    write_report_csv,
    write_report_json,
)

__all__ = [
    "ResultFrame",
    "is_queue_dir",
    "load_frame",
    "REPORT_SCHEMA_VERSION",
    "StandardReport",
    "build_report",
    "render_report",
    "report_csv_rows",
    "report_json_text",
    "report_to_json",
    "write_report_csv",
    "write_report_json",
]
