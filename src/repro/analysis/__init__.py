"""Analysis layer: columnar ResultFrame + the §6 standard report.

:class:`ResultFrame` (:mod:`repro.analysis.frame`) is the vectorized
container every results consumer queries — experiment sweeps and the
meta-analysis corpus alike.  :func:`build_report`/:func:`render_report`
(:mod:`repro.analysis.report`) turn any finished sweep artifact into the
paper's standard report; ``python -m repro report`` is the CLI wrapper.
:mod:`repro.analysis.query` is the serializable JSON query language the
results server (:mod:`repro.serve`) speaks — declarative
filter/group/aggregate documents validated fail-fast and applied to
frames with point-for-point in-process equivalence.
"""

from .frame import (
    FILTER_OPS,
    ResultFrame,
    is_queue_dir,
    load_frame,
    queue_outstanding,
)
from .query import Query, QueryError, compile_query, run_query
from .report import (
    REPORT_SCHEMA_VERSION,
    StandardReport,
    build_report,
    render_report,
    report_csv_rows,
    report_json_text,
    report_to_json,
    write_report_csv,
    write_report_json,
)

__all__ = [
    "FILTER_OPS",
    "ResultFrame",
    "is_queue_dir",
    "load_frame",
    "queue_outstanding",
    "Query",
    "QueryError",
    "compile_query",
    "run_query",
    "REPORT_SCHEMA_VERSION",
    "StandardReport",
    "build_report",
    "render_report",
    "report_csv_rows",
    "report_json_text",
    "report_to_json",
    "write_report_csv",
    "write_report_json",
]
