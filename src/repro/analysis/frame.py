"""Columnar ResultFrame: the vectorized analysis layer over result rows.

The paper's §6 prescribes *how* results must be aggregated — mean ± std
over seeds, raw accuracy plus deltas vs the unpruned control, both the
compression and the speedup axis — and §4's figures are all tradeoff
curves and Pareto frontiers over a corpus of such rows.  A sweep can now
produce thousands of rows across processes and machines; this module is
the single place they are filtered, grouped, joined to their baselines,
and reduced to curves.

Column schema
-------------
A :class:`ResultFrame` is a mapping of column name → 1-D NumPy array, all
of equal length (one entry per result row).  Frames built from experiment
rows (:class:`~repro.experiment.results.PruningResult`) carry one column
per dataclass field plus three derived columns:

=====================  =========  =========================================
column                 dtype      meaning
=====================  =========  =========================================
model, dataset,        object     registry names identifying the cell
strategy
compression            float64    target whole-model compression
seed                   int64      fine-tuning seed
actual_compression     float64    achieved compression (may be ``inf``)
theoretical_speedup    float64    dense FLOPs / effective FLOPs
total_params,          int64      parameter counts
nonzero_params
dense_flops,           float64    FLOP counts
effective_flops
baseline_top1/5        float64    unpruned control accuracy (§6)
pre_finetune_top1/5    float64    accuracy right after pruning
top1, top5             float64    accuracy after fine-tuning
pretrained_key         object     shared-checkpoint provenance (§7.3)
finetune_epochs_ran    int64      epochs actually run (early stopping)
extra                  object     free-form dict (``extra["failed"]`` marks
                                  quarantined queue cells)
delta_top1/5           float64    derived: top1/5 − baseline_top1/5
speedup                float64    derived: alias of theoretical_speedup
=====================  =========  =========================================

Frames are *generic*: :meth:`ResultFrame.from_records` builds a frame with
whatever columns its records carry (the meta-analysis corpus uses this),
and every query method works on arbitrary columns.

Constructors are lossless and interchangeable: ``from_results`` /
``from_json`` / ``from_cache`` / ``from_queue`` all yield frames whose
curve data is point-for-point identical for the same sweep — a finished
multi-machine queue run and its saved ``results.json`` produce the same
report (``python -m repro report`` accepts any of the three).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..experiment.prune import BASELINE_STRATEGY
from ..experiment.results import CurvePoint, PruningResult, ResultSet

__all__ = [
    "FILTER_OPS",
    "ResultFrame",
    "is_queue_dir",
    "load_frame",
    "queue_outstanding",
]

#: operators a ``{"op": ..., "value": ...}`` filter spec may use — the
#: serializable comparison vocabulary of :meth:`ResultFrame.mask` and the
#: results-server query language (callables cannot travel over HTTP)
FILTER_OPS: Tuple[str, ...] = ("==", "!=", "<", "<=", ">", ">=", "in", "not-in")

#: derived column → the base columns it is computed from
_DERIVED = {
    "delta_top1": ("top1", "baseline_top1"),
    "delta_top5": ("top5", "baseline_top5"),
    "speedup": ("theoretical_speedup",),
}


def _infer_column(values: List[Any]) -> np.ndarray:
    """Pack a list of Python values into the narrowest sensible array.

    ints → int64, numbers (or None, encoded as NaN) → float64, everything
    else (strings, dicts) → object.  Bools count as objects, not ints, so
    flag columns keep their identity.  An all-None column is float64 NaN —
    "metric never reported" must still answer ``np.isfinite`` filters.
    """
    non_null = [v for v in values if v is not None]
    if values and not non_null:
        return np.full(len(values), np.nan, dtype=np.float64)
    if non_null and all(
        isinstance(v, int) and not isinstance(v, bool) for v in non_null
    ):
        if len(non_null) == len(values):
            return np.asarray(values, dtype=np.int64)
        return np.asarray(
            [float("nan") if v is None else float(v) for v in values],
            dtype=np.float64,
        )
    if non_null and all(
        isinstance(v, (int, float)) and not isinstance(v, bool) for v in non_null
    ):
        return np.asarray(
            [float("nan") if v is None else float(v) for v in values],
            dtype=np.float64,
        )
    out = np.empty(len(values), dtype=object)
    for i, v in enumerate(values):
        out[i] = v
    return out


def _json_safe(value: Any) -> Any:
    """Unwrap NumPy scalars so records serialize/compare like plain Python."""
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.str_):
        return str(value)
    return value


class ResultFrame:
    """Typed columns + vectorized queries over result rows (see module doc).

    Usage::

        frame = ResultFrame.from_json("results.json")
        gw = frame.filter(strategy="global_weight", compression=[2, 4, 8])
        curves = frame.ok().tradeoff_curves(x="compression", y="top1")
        best = frame.pareto_frontier(x="actual_compression", y="top1")
    """

    def __init__(self, columns: Dict[str, np.ndarray]) -> None:
        self._columns: Dict[str, np.ndarray] = {}
        length: Optional[int] = None
        for name, values in columns.items():
            arr = values if isinstance(values, np.ndarray) else _infer_column(list(values))
            if arr.ndim != 1:
                raise ValueError(f"column {name!r} must be 1-D, got shape {arr.shape}")
            if length is None:
                length = len(arr)
            elif len(arr) != length:
                raise ValueError(
                    f"column {name!r} has {len(arr)} rows, expected {length}"
                )
            self._columns[name] = arr
        self._length = length or 0

    # -- construction ----------------------------------------------------
    @classmethod
    def from_records(
        cls,
        records: Iterable[Dict[str, Any]],
        columns: Optional[Sequence[str]] = None,
    ) -> "ResultFrame":
        """Frame over a list of dicts; missing keys become None/NaN.

        Column order is first-appearance order (or the explicit ``columns``
        sequence, which also fixes the schema of an empty frame).
        """
        records = list(records)
        names: List[str] = list(columns) if columns is not None else []
        for rec in records:
            for key in rec:
                if key not in names:
                    names.append(key)
        cols = {
            name: _infer_column([rec.get(name) for rec in records])
            for name in names
        }
        return cls(cols)

    @classmethod
    def from_results(
        cls, results: Union[ResultSet, Iterable[PruningResult]]
    ) -> "ResultFrame":
        """Lossless frame from a :class:`ResultSet` (or any row iterable)."""
        rows = list(results)
        field_names = list(PruningResult.__dataclass_fields__)
        frame = cls.from_records([r.to_dict() for r in rows], columns=field_names)
        return frame.derived()

    @classmethod
    def from_json(cls, path) -> "ResultFrame":
        """Frame from a saved ``ResultSet`` JSON file (``results.json``)."""
        data = json.loads(Path(path).read_text())
        return cls.from_results(PruningResult.from_dict(d) for d in data)

    @classmethod
    def from_cache(cls, root) -> "ResultFrame":
        """Frame from a :class:`~repro.experiment.cache.ResultCache` directory.

        Reads every current-schema entry (layout documented in
        :mod:`repro.experiment.cache`); torn or stale-schema files are
        skipped, matching the cache's own hit rules.  Entry order is the
        sorted hash order, which is stable across machines.
        """
        from ..experiment.cache import iter_cache_entries

        return cls.from_results(
            PruningResult.from_dict(result)
            for _, result in iter_cache_entries(root)
        )

    @classmethod
    def from_store(cls, root) -> "ResultFrame":
        """Frame from a binary :class:`~repro.store.ColumnStore` directory.

        Numeric segment columns are memory-mapped straight into frame
        columns — no per-row JSON parsing — which is what makes
        million-row sweeps loadable in well under a second (see
        docs/FORMATS.md for the on-disk layout).
        """
        from ..store import ColumnStore

        return ColumnStore(root).to_frame()

    @classmethod
    def from_queue(cls, root, cache_dir=None) -> "ResultFrame":
        """Frame from a finished work-queue directory.

        Done cells live in the queue's shared result cache — by default
        ``<queue-dir>/cache``, or ``cache_dir`` when the sweep ran with an
        explicit ``--cache-dir`` override; quarantined cells are surfaced
        as placeholder rows with ``extra["failed"]`` — exactly the rows a
        ``python -m repro run --executor queue`` invocation assembles.
        """
        from ..experiment.prune import ExperimentSpec
        from ..experiment.queue import QueueExecutor

        root = Path(root)
        rows = list(cls.from_cache(cache_dir or root / "cache").to_results())
        for path in sorted((root / "failed").glob("*.json")):
            try:
                payload = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                continue
            if not isinstance(payload, dict) or "spec" not in payload:
                continue
            spec = ExperimentSpec.from_dict(payload["spec"])
            rows.append(QueueExecutor._quarantine_row(spec, payload))
        return cls.from_results(rows)

    # -- export ----------------------------------------------------------
    def to_records(self) -> List[Dict[str, Any]]:
        """Row dicts in column order (NumPy scalars unwrapped)."""
        names = self.columns
        return [
            {name: _json_safe(self._columns[name][i]) for name in names}
            for i in range(len(self))
        ]

    def to_results(self) -> ResultSet:
        """Back to a :class:`ResultSet` of :class:`PruningResult` rows.

        Derived/extra columns that are not dataclass fields are dropped;
        ``from_results(rs).to_results()`` is an identity on the rows.
        """
        return ResultSet(PruningResult.from_dict(rec) for rec in self.to_records())

    def save(self, path) -> Path:
        """Persist as the standard ``results.json`` row-list format."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        rows = [
            {k: v for k, v in rec.items()
             if k in PruningResult.__dataclass_fields__}
            for rec in self.to_records()
        ]
        path.write_text(json.dumps(rows, indent=1, default=float))
        return path

    # -- introspection ---------------------------------------------------
    @property
    def columns(self) -> List[str]:
        return list(self._columns)

    def __len__(self) -> int:
        return self._length

    def __contains__(self, name: object) -> bool:
        return name in self._columns

    def column(self, name: str) -> np.ndarray:
        try:
            return self._columns[name]
        except KeyError:
            raise KeyError(
                f"unknown column {name!r}; available: {self.columns}"
            ) from None

    __getitem__ = column

    def unique(self, name: str) -> List[Any]:
        """Sorted distinct values of a column."""
        return sorted({_json_safe(v) for v in self.column(name)})

    def __repr__(self) -> str:
        return f"ResultFrame({len(self)} rows × {len(self._columns)} columns)"

    def fingerprint(self) -> str:
        """Content hash of the frame: columns, dtypes, and every value.

        Two frames holding the same rows in the same order fingerprint
        identically regardless of how they were loaded — the
        content-addressed identity behind the results server's ``ETag``s
        (a row's identity columns are its spec hash inputs, so this is
        transitively keyed on spec hashes).  Numeric columns hash their
        raw bytes; object columns hash their JSON rendering, so free-form
        ``extra`` dicts participate too.
        """
        h = hashlib.sha256()
        h.update(str(len(self)).encode())
        for name, col in self._columns.items():
            h.update(b"\x00" + name.encode() + b"\x00" + col.dtype.str.encode())
            if col.dtype.kind == "O":
                h.update(json.dumps(
                    [_json_safe(v) for v in col.tolist()],
                    sort_keys=True, default=str,
                ).encode())
            else:
                h.update(col.tobytes())
        return h.hexdigest()

    # -- row selection ---------------------------------------------------
    def take(self, indices) -> "ResultFrame":
        """Subframe of the given row indices (or a boolean mask)."""
        indices = np.asarray(indices)
        return ResultFrame(
            {name: col[indices] for name, col in self._columns.items()}
        )

    @staticmethod
    def _membership_mask(col: np.ndarray, values) -> np.ndarray:
        """Row ∈ values.  Numeric columns go through :func:`np.isin`;
        object columns keep the per-element hash-set semantics."""
        allowed = values if isinstance(values, (set, frozenset)) else set(values)
        if col.dtype.kind in "iuf" and all(
            isinstance(v, (int, float)) and v == v for v in allowed
        ):
            return np.isin(col, list(allowed))
        return np.fromiter(
            (v in allowed for v in col), dtype=bool, count=len(col)
        )

    @staticmethod
    def _equality_mask(col: np.ndarray, value) -> np.ndarray:
        eq = col == value
        if not isinstance(eq, np.ndarray):  # incomparable types
            eq = np.fromiter(
                (v == value for v in col), dtype=bool, count=len(col)
            )
        return eq.astype(bool)

    @staticmethod
    def _op_mask(name: str, col: np.ndarray, spec: Dict[str, Any]) -> np.ndarray:
        """Mask for a ``{"op": ..., "value": ...}`` comparison spec.

        The serializable subset of the filter language (see
        :data:`FILTER_OPS`): range predicates an HTTP client can express
        without shipping Python callables.  NaN rows compare False under
        every ordering operator, matching NumPy semantics.
        """
        extra = set(spec) - {"op", "value"}
        if extra or "op" not in spec or "value" not in spec:
            raise ValueError(
                f"filter spec for column {name!r} must be "
                f"{{'op': ..., 'value': ...}}, got keys {sorted(spec)}"
            )
        op, value = spec["op"], spec["value"]
        if op not in FILTER_OPS:
            raise ValueError(
                f"unknown filter op {op!r} for column {name!r}; "
                f"expected one of {list(FILTER_OPS)}"
            )
        if op in ("in", "not-in"):
            if not isinstance(value, (list, tuple, set, frozenset, np.ndarray)):
                raise ValueError(
                    f"filter op {op!r} on column {name!r} needs a sequence "
                    f"value, got {type(value).__name__}"
                )
            member = ResultFrame._membership_mask(col, value)
            return member if op == "in" else ~member
        if op == "==":
            return ResultFrame._equality_mask(col, value)
        if op == "!=":
            return ~ResultFrame._equality_mask(col, value)
        compare = {"<": np.less, "<=": np.less_equal,
                   ">": np.greater, ">=": np.greater_equal}[op]
        try:
            with np.errstate(invalid="ignore"):
                result = np.asarray(compare(col, value))
            if result.shape != (len(col),):
                raise TypeError("non-elementwise comparison")
            return result.astype(bool)
        except TypeError:
            pass
        try:  # object columns (e.g. strings): per-element Python ordering
            return np.fromiter(
                (v is not None and bool(compare(v, value)) for v in col),
                dtype=bool, count=len(col),
            )
        except TypeError as exc:
            raise ValueError(
                f"cannot apply filter op {op!r} to column {name!r}: {exc}"
            ) from None

    def mask(self, **conditions) -> np.ndarray:
        """Boolean row mask for :meth:`filter`'s conditions (AND-combined).

        Each condition value may be a scalar (equality), a sequence
        (membership), a callable predicate, or a ``{"op": ..., "value":
        ...}`` comparison spec (ops in :data:`FILTER_OPS` — the
        serializable form the results-server query language uses for range
        predicates).  Predicates are applied vectorized when they accept
        the whole column (e.g. ``np.isfinite`` or ``lambda c: c > 2``) and
        fall back to per-element evaluation.  Membership tests on numeric
        columns run through :func:`np.isin`; object columns keep the
        per-element hash-set semantics.
        """
        out = np.ones(len(self), dtype=bool)
        for name, cond in conditions.items():
            col = self.column(name)
            if callable(cond):
                result = None
                try:
                    result = np.asarray(cond(col))
                except Exception:
                    result = None
                if result is None or result.shape != (len(col),):
                    result = np.fromiter(
                        (bool(cond(v)) for v in col), dtype=bool, count=len(col)
                    )
                out &= result.astype(bool)
            elif isinstance(cond, dict):
                out &= self._op_mask(name, col, cond)
            elif isinstance(cond, (list, tuple, set, frozenset, np.ndarray)):
                out &= self._membership_mask(col, cond)
            else:
                out &= self._equality_mask(col, cond)
        return out

    def filter(self, **conditions) -> "ResultFrame":
        """Subframe where every condition holds (see :meth:`mask`)."""
        return self.take(self.mask(**conditions))

    def sort_by(self, *names: str) -> "ResultFrame":
        """Rows reordered by the given columns (last name varies slowest)."""
        if not names:
            return self
        if len(names) == 1:
            order = np.argsort(self.column(names[0]))
        else:
            order = np.lexsort([self.column(n) for n in reversed(names)])
        return self.take(order)

    def with_columns(self, **arrays) -> "ResultFrame":
        """New frame with extra (or replaced) columns."""
        cols = dict(self._columns)
        for name, values in arrays.items():
            arr = values if isinstance(values, np.ndarray) else _infer_column(list(values))
            if len(self._columns) and len(arr) != len(self):
                raise ValueError(
                    f"column {name!r} has {len(arr)} rows, expected {len(self)}"
                )
            cols[name] = arr
        return ResultFrame(cols)

    # -- grouping / aggregation ------------------------------------------
    def _key_codes(self, names: Sequence[str]) -> np.ndarray:
        """Dense int64 group codes for the key columns.

        Codes are built so that sorting them sorts the key *tuples* in
        Python order (per-column ``np.unique`` order combined
        lexicographically).  Raises ``TypeError``/``ValueError`` when a
        column cannot be factorized faithfully — mixed-type object columns
        (where ``np.unique`` cannot sort), NaN keys (the row loop gives
        every NaN its own group because ``NaN != NaN``), or a key space too
        large to combine without overflow — and callers fall back to the
        row-by-row path.
        """
        codes: Optional[np.ndarray] = None
        span = 1
        for name in names:
            col = self.column(name)
            if col.dtype.kind == "f" and np.isnan(col).any():
                raise ValueError(f"NaN key values in column {name!r}")
            uniq, inv = np.unique(col, return_inverse=True)
            span *= max(len(uniq), 1)
            if span > 2**62:
                raise ValueError("key space too large to factorize")
            inv = inv.astype(np.int64, copy=False)
            codes = inv if codes is None else codes * np.int64(len(uniq)) + inv
        return codes if codes is not None else np.zeros(len(self), np.int64)

    def _grouped_indices(self, names: Sequence[str], sort: bool) -> List[np.ndarray]:
        """Row-index arrays, one per group, each in original row order."""
        codes = self._key_codes(names)
        order = np.argsort(codes, kind="stable")
        boundaries = np.flatnonzero(np.diff(codes[order])) + 1
        groups = np.split(order, boundaries)
        if not sort:
            groups.sort(key=lambda idx: idx[0])  # first-appearance order
        return groups

    def _group_by_rows(
        self, names: Sequence[str], single: bool, sort: bool
    ) -> List[Tuple[Any, "ResultFrame"]]:
        """Reference row-by-row grouping (kept for fallback + benchmarks).

        This is the pre-vectorization implementation; :meth:`group_by` is
        equivalence-tested against it and falls back to it for key columns
        that cannot be factorized (mixed types, NaN keys).
        """
        cols = [self.column(n) for n in names]
        buckets: Dict[Any, List[int]] = {}
        for i in range(len(self)):
            key = tuple(_json_safe(c[i]) for c in cols)
            buckets.setdefault(key if not single else key[0], []).append(i)
        items = sorted(buckets.items()) if sort else list(buckets.items())
        return [(key, self.take(idx)) for key, idx in items]

    def group_by(
        self, keys: Union[str, Sequence[str]], sort: bool = True
    ) -> List[Tuple[Any, "ResultFrame"]]:
        """``[(key, subframe), ...]`` partitioned by the key column(s).

        A single key name yields scalar keys, several yield tuples.  With
        ``sort`` the groups come in sorted key order; without, in order of
        first appearance (which the meta-analysis figures rely on to keep
        the corpus' curve ordering).

        Grouping is vectorized (factorized codes + one stable argsort);
        columns the factorizer cannot handle fall back to the equivalent
        row-by-row path, so arbitrary key types keep working.
        """
        single = isinstance(keys, str)
        names = (keys,) if single else tuple(keys)
        if not len(self):
            [self.column(n) for n in names]  # unknown keys still raise
            return []
        try:
            groups = self._grouped_indices(names, sort=sort)
        except (TypeError, ValueError):
            return self._group_by_rows(names, single=single, sort=sort)
        cols = [self.column(n) for n in names]
        out: List[Tuple[Any, "ResultFrame"]] = []
        for idx in groups:
            key = tuple(_json_safe(c[idx[0]]) for c in cols)
            out.append((key[0] if single else key, self.take(idx)))
        return out

    @staticmethod
    def _stat(values: np.ndarray, stat: str) -> float:
        """One reduction over a float column; non-finite values propagate
        into their own column's statistic and nowhere else."""
        with np.errstate(invalid="ignore", over="ignore"):
            if stat == "mean":
                return float(values.mean())
            if stat == "std":
                return float(values.std(ddof=1)) if len(values) > 1 else 0.0
            if stat == "min":
                return float(values.min())
            if stat == "max":
                return float(values.max())
        raise ValueError(
            f"unknown stat {stat!r} (expected mean/std/min/max)"
        )

    def aggregate(
        self,
        by: Union[str, Sequence[str]] = ("strategy", "compression"),
        values: Optional[Sequence[str]] = None,
        stats: Sequence[str] = ("mean", "std"),
    ) -> "ResultFrame":
        """Reduce to one row per group: ``<value>_<stat>`` columns plus ``n``.

        ``by`` defaults to the §6 operating-point key (strategy ×
        compression) and the seeds axis is what gets reduced; ``values``
        defaults to every numeric column not used as a key.  Non-finite
        values (``actual_compression`` is legitimately ``inf`` for
        all-pruned masks) propagate through their own column's statistics
        without touching any other column.
        """
        names = (by,) if isinstance(by, str) else tuple(by)
        if values is None:
            values = [
                c for c, arr in self._columns.items()
                if c not in names and arr.dtype.kind in "if"
            ]
        records: List[Dict[str, Any]] = []
        for key, sub in self.group_by(names, sort=True):
            # group_by over a name *tuple* always yields tuple keys, even
            # for one name — zip directly, no re-wrapping
            rec: Dict[str, Any] = dict(zip(names, key))
            rec["n"] = len(sub)
            for value in values:
                col = np.asarray(sub.column(value), dtype=np.float64)
                for stat in stats:
                    rec[f"{value}_{stat}"] = self._stat(col, stat)
            records.append(rec)
        columns = list(names) + ["n"] + [
            f"{v}_{s}" for v in values for s in stats
        ]
        return ResultFrame.from_records(records, columns=columns)

    # -- §6 derived metrics ----------------------------------------------
    def derived(self) -> "ResultFrame":
        """Add the standard derived columns (delta_top1/5, speedup).

        Deltas come from each row's own recorded control (§6: every row
        carries the unpruned control's raw accuracy); :meth:`join_baseline`
        attaches the control *row* where cross-row matching is wanted.
        Missing base columns (generic frames) are skipped; existing derived
        columns are left untouched.
        """
        new: Dict[str, np.ndarray] = {}
        for name, bases in _DERIVED.items():
            if name in self._columns or any(b not in self._columns for b in bases):
                continue
            if len(bases) == 1:
                new[name] = np.asarray(self.column(bases[0]), dtype=np.float64)
            else:
                a, b = bases
                new[name] = np.asarray(self.column(a), dtype=np.float64) - np.asarray(
                    self.column(b), dtype=np.float64
                )
        return self.with_columns(**new) if new else self

    def join_baseline(
        self, on: Sequence[str] = ("model", "dataset", "seed")
    ) -> "ResultFrame":
        """Match every row to its unpruned control row (compression ≤ 1).

        Adds ``control_top1``/``control_top5`` columns holding the matched
        baseline row's measured accuracy (NaN where no control row exists).
        This is the one place the baseline join lives; callers that used to
        re-bucket rows per seed to find their controls use this instead.

        The join is batched: one factorization of the key columns matches
        every row against the first control row sharing its key, instead
        of a per-row dict probe (equivalence-tested against
        :meth:`_join_baseline_rows`, the fallback for unfactorizable keys).
        """
        on = tuple(on)
        try:
            return self._join_baseline_batched(on)
        except (TypeError, ValueError):
            return self._join_baseline_rows(on)

    def _join_baseline_batched(self, on: Tuple[str, ...]) -> "ResultFrame":
        codes = self._key_codes(on)
        comp = np.asarray(self.column("compression"), dtype=np.float64)
        base_idx = np.flatnonzero(comp <= 1.0)
        c1 = np.full(len(self), np.nan)
        c5 = np.full(len(self), np.nan)
        if len(base_idx):
            # np.unique keeps the *first* occurrence per key — the same row
            # the dict-probe reference keeps via setdefault
            uniq, first = np.unique(codes[base_idx], return_index=True)
            src = base_idx[first]
            pos = np.minimum(np.searchsorted(uniq, codes), len(uniq) - 1)
            hit = uniq[pos] == codes
            top1 = np.asarray(self.column("top1"), dtype=np.float64)
            top5 = np.asarray(self.column("top5"), dtype=np.float64)
            c1[hit] = top1[src[pos[hit]]]
            c5[hit] = top5[src[pos[hit]]]
        else:
            self.column("top1"), self.column("top5")  # keep KeyError parity
        return self.with_columns(control_top1=c1, control_top5=c5)

    def _join_baseline_rows(self, on: Tuple[str, ...]) -> "ResultFrame":
        """Reference per-row join (kept for fallback + benchmarks)."""
        controls: Dict[Tuple, Tuple[float, float]] = {}
        base = self.filter(compression=lambda c: c <= 1.0)
        key_cols = [base.column(n) for n in on]
        top1 = np.asarray(base.column("top1"), dtype=np.float64)
        top5 = np.asarray(base.column("top5"), dtype=np.float64)
        for i in range(len(base)):
            key = tuple(_json_safe(c[i]) for c in key_cols)
            controls.setdefault(key, (float(top1[i]), float(top5[i])))
        my_cols = [self.column(n) for n in on]
        c1 = np.full(len(self), np.nan)
        c5 = np.full(len(self), np.nan)
        for i in range(len(self)):
            key = tuple(_json_safe(c[i]) for c in my_cols)
            if key in controls:
                c1[i], c5[i] = controls[key]
        return self.with_columns(control_top1=c1, control_top5=c5)

    def replicate_baselines(
        self, strategies: Optional[Sequence[str]] = None
    ) -> "ResultFrame":
        """Copy deduped baseline rows across strategies (sweep semantics).

        Sweeps store exactly one unpruned control per seed under the
        :data:`~repro.experiment.prune.BASELINE_STRATEGY` sentinel (cache
        and queue layouts); assembled ``results.json`` files instead carry
        one copy per strategy.  This transform maps the former onto the
        latter — per (model, dataset), each sentinel row is replicated once
        per strategy that appears in that pair's pruned rows — so all
        frame sources yield identical curves.  A frame with no sentinel
        rows (already replicated) is returned unchanged.
        """
        if "strategy" not in self._columns or not len(self):
            return self
        sentinel = self.mask(strategy=BASELINE_STRATEGY)
        if not sentinel.any():
            return self
        records = self.to_records()
        by_pair: Dict[Tuple, List[str]] = {}
        for rec in records:
            if rec["strategy"] != BASELINE_STRATEGY:
                pair = (rec.get("model"), rec.get("dataset"))
                names = by_pair.setdefault(pair, [])
                if rec["strategy"] not in names:
                    names.append(rec["strategy"])
        out: List[Dict[str, Any]] = []
        for rec in records:
            if rec["strategy"] != BASELINE_STRATEGY:
                out.append(rec)
                continue
            targets = strategies or by_pair.get(
                (rec.get("model"), rec.get("dataset")), []
            )
            if not targets:
                out.append(rec)  # nothing to replicate against: keep as-is
                continue
            for name in targets:
                clone = dict(rec)
                clone["strategy"] = name
                if isinstance(clone.get("extra"), dict):
                    clone["extra"] = dict(clone["extra"])
                out.append(clone)
        return ResultFrame.from_records(out, columns=self.columns)

    # -- failure bookkeeping ---------------------------------------------
    def failed_mask(self) -> np.ndarray:
        """True for quarantined placeholder rows (``extra["failed"]``)."""
        if "extra" not in self._columns:
            return np.zeros(len(self), dtype=bool)
        return np.fromiter(
            (isinstance(e, dict) and bool(e.get("failed"))
             for e in self.column("extra")),
            dtype=bool,
            count=len(self),
        )

    def ok(self) -> "ResultFrame":
        """Rows that actually executed (quarantined cells dropped)."""
        return self.take(~self.failed_mask())

    def failures(self) -> "ResultFrame":
        """Only the quarantined placeholder rows."""
        return self.take(self.failed_mask())

    # -- curves / frontiers ----------------------------------------------
    def curve(self, x: str = "compression", y: str = "top1") -> List[CurvePoint]:
        """Mean ± sample std of ``y`` at each ``x`` (§6), sorted by x."""
        if not len(self):
            return []
        points = []
        for xv, sub in self.group_by(x, sort=True):
            ys = np.asarray(sub.column(y), dtype=np.float64)
            points.append(
                CurvePoint(
                    x=float(xv),
                    mean=self._stat(ys, "mean"),
                    std=self._stat(ys, "std"),
                    n=len(ys),
                )
            )
        return points

    def tradeoff_curves(
        self,
        group: str = "strategy",
        x: str = "compression",
        y: str = "top1",
    ) -> Dict[Any, List[CurvePoint]]:
        """One aggregated curve per group value, keyed and sorted by group."""
        if not len(self):
            return {}
        return {
            key: sub.curve(x=x, y=y) for key, sub in self.group_by(group, sort=True)
        }

    def pareto_frontier(
        self, x: str = "compression", y: str = "top1"
    ) -> "ResultFrame":
        """Rows not dominated in the (maximize x, maximize y) sense.

        A row is dominated when another row is at least as good on both
        axes and strictly better on one — the paper's frontier reading of
        its tradeoff scatter plots.  Returns the surviving rows sorted by
        ``x`` ascending.
        """
        if not len(self):
            return self
        xs = np.asarray(self.column(x), dtype=np.float64)
        ys = np.asarray(self.column(y), dtype=np.float64)
        ge_x = xs[None, :] >= xs[:, None]
        ge_y = ys[None, :] >= ys[:, None]
        strict = (xs[None, :] > xs[:, None]) | (ys[None, :] > ys[:, None])
        dominated = (ge_x & ge_y & strict).any(axis=1)
        return self.take(~dominated).sort_by(x)


def is_queue_dir(path) -> bool:
    """True when ``path`` has the work-queue on-disk layout.

    The single definition of "looks like a queue" — shared by
    :func:`load_frame`'s sniffing and the CLI's queue guards, so the
    layout rule lives in one place.
    """
    path = Path(path)
    return (path / "queue.json").is_file() or (path / "pending").is_dir()


def queue_outstanding(source) -> Dict[str, int]:
    """Pending/leased cell counts for a work-queue source (else zeros).

    The single definition of "how unfinished is this sweep" shared by
    ``python -m repro report`` and the results server, so both surface the
    same partial-sweep accounting (in the report JSON's ``outstanding``
    field and at ``/healthz``) instead of only a stderr warning.
    """
    path = Path(source)
    out = {"pending": 0, "leased": 0}
    if path.is_dir() and is_queue_dir(path):
        for state in out:
            sub = path / state
            if sub.is_dir():
                out[state] = sum(1 for _ in sub.glob("*.json"))
    return out


def load_frame(source, cache_dir=None) -> ResultFrame:
    """Frame from any finished-sweep artifact, sniffed by layout.

    * a file → saved ``results.json`` (:meth:`ResultFrame.from_json`);
    * a directory satisfying :func:`is_queue_dir` → work-queue directory
      (:meth:`ResultFrame.from_queue`; ``cache_dir`` overrides the default
      ``<queue-dir>/cache`` result store, mirroring ``--cache-dir`` on the
      run/worker CLI);
    * a directory with a binary-store manifest
      (:func:`repro.store.is_store_dir`) → columnar store
      (:meth:`ResultFrame.from_store`);
    * any other directory → result-cache root (:meth:`ResultFrame.from_cache`).

    Sources that match none of the three layouts fail *here*, with the
    offending path in the message, instead of surfacing as an opaque
    downstream error: a non-JSON file raises ``ValueError``, and a
    directory with neither queue layout nor cache entries raises
    ``FileNotFoundError``.
    """
    path = Path(source)
    if path.is_file():
        try:
            return ResultFrame.from_json(path)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ValueError(
                f"{path} is not a results file (expected a JSON list of "
                f"result rows): {exc}"
            ) from exc
        except (TypeError, AttributeError) as exc:
            raise ValueError(
                f"{path} is not a results file (expected a JSON list of "
                f"result rows, got a different JSON shape): {exc}"
            ) from exc
    if not path.is_dir():
        raise FileNotFoundError(f"no results at {path}")
    if is_queue_dir(path):
        return ResultFrame.from_queue(path, cache_dir=cache_dir)
    from ..store import is_store_dir

    if is_store_dir(path):
        return ResultFrame.from_store(path)
    frame = ResultFrame.from_cache(path)
    if not len(frame):
        # an empty frame from a supposed cache dir means the directory is
        # either empty or something else entirely — name the path and the
        # three layouts instead of letting "0 rows" confuse callers later
        raise FileNotFoundError(
            f"{path} is not a results file, a result-cache directory with "
            "entries, or a work-queue directory (nothing to load)"
        )
    return frame
