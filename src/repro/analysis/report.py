"""The §6 standard report: one artifact bundle per finished sweep.

Blalock et al. close with concrete reporting recommendations (§6): tradeoff
*curves* rather than single points, mean ± std over seeds, raw accuracy
plus the delta vs the unpruned control, and both the compression and the
speedup axis.  :func:`build_report` reduces a
:class:`~repro.analysis.frame.ResultFrame` to exactly that bundle and
:func:`render_report` / :func:`write_report_csv` emit it as terminal text
and machine-readable CSV.  ``python -m repro report <source>`` wraps the
three for any finished sweep artifact (``results.json``, a result-cache
directory, or a work-queue directory — all produce identical curve data).

Report contents
---------------
* accuracy-vs-compression and accuracy-vs-speedup tradeoff curves per
  strategy (ASCII rendering + CSV rows ``strategy, x_metric, x, y_mean,
  y_std, n``);
* a seeds × strategies summary table (mean ± std at every operating
  point, with the per-cell seed count);
* Pareto-dominant operating points (no other strategy/ratio pair is at
  least as compressed *and* at least as accurate);
* the Appendix B checklist audit;
* quarantined-cell accounting for fault-tolerant queue sweeps.
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..experiment.results import CurvePoint
from ..utils.jsonio import restore_nonfinite
from .frame import ResultFrame, load_frame

__all__ = [
    "REPORT_SCHEMA_VERSION",
    "StandardReport",
    "build_report",
    "build_report_from_store",
    "render_report",
    "report_csv_rows",
    "report_json_text",
    "report_to_json",
    "write_report_csv",
    "write_report_json",
]

#: bump when the ``repro report --json`` document layout changes
#: incompatibly (schema documented in docs/FORMATS.md)
REPORT_SCHEMA_VERSION = 1

#: the two x-axes §6 requires; labels keep the CSV self-describing
X_METRICS: Sequence[Tuple[str, str]] = (
    ("compression", "compression ratio"),
    ("theoretical_speedup", "theoretical speedup"),
)


@dataclass
class StandardReport:
    """Everything ``python -m repro report`` prints/exports, as data."""

    #: prepared rows (baselines replicated, derived cols) — None for the
    #: incremental store path, which never materializes the union frame;
    #: everything render/export needs lives in the explicit fields below
    frame: Optional[ResultFrame] = None
    y: str = "top1"
    #: {x_metric: {strategy: [CurvePoint]}}
    curves: Dict[str, Dict[str, List[CurvePoint]]] = field(default_factory=dict)
    #: one row per (strategy, compression): <y>_mean/std, n, speedup stats
    summary: ResultFrame = field(
        default_factory=lambda: ResultFrame.from_records([])
    )
    #: Pareto-dominant pruned operating points (strategy, x, y columns)
    pareto: ResultFrame = field(
        default_factory=lambda: ResultFrame.from_records([])
    )
    #: Appendix B audit verdicts (:class:`~repro.meta.checklist.ChecklistItem`)
    checklist: List[Any] = field(default_factory=list)
    n_failed: int = 0
    #: distinct compute backends recorded in row metadata (sorted); rows from
    #: before backends existed carry none and contribute nothing
    kernel_backends: List[str] = field(default_factory=list)
    #: partial-sweep accounting for queue sources: cells not yet executed
    #: (``{"pending": N, "leased": N}``, zeros for finished/non-queue
    #: sources) — see :func:`repro.analysis.frame.queue_outstanding`
    outstanding: Dict[str, int] = field(
        default_factory=lambda: {"pending": 0, "leased": 0}
    )
    #: prepared-row accounting, populated by every build path so render /
    #: export never have to touch ``frame``
    n_rows: int = 0
    strategies: List[Any] = field(default_factory=list)
    seeds: List[Any] = field(default_factory=list)

    @property
    def n_outstanding(self) -> int:
        """Total cells still pending/leased — nonzero means partial."""
        return sum(self.outstanding.values())


def build_report(
    frame: ResultFrame,
    y: str = "top1",
    outstanding: Optional[Dict[str, int]] = None,
) -> StandardReport:
    """Reduce raw sweep rows to the §6 report bundle.

    The input frame may come from any constructor; deduped baseline
    sentinel rows are replicated across strategies first, so curve data is
    identical whether the source was a saved ``results.json``, the result
    cache, or a queue directory.  Quarantined cells are excluded from all
    statistics and surfaced via ``n_failed``; for queue sources callers
    pass :func:`~repro.analysis.frame.queue_outstanding` counts so a
    still-draining sweep is visibly partial in the report itself.
    """
    from ..meta.checklist import audit_results  # lazy: avoid import cycle

    prepared = frame.replicate_baselines().derived()
    n_failed = int(prepared.failed_mask().sum())
    ok = prepared.ok()
    curves = {
        x_metric: ok.tradeoff_curves(group="strategy", x=x_metric, y=y)
        for x_metric, _ in X_METRICS
    }
    summary = ok.aggregate(
        by=("strategy", "compression"),
        values=[c for c in (y, f"delta_{y}", "actual_compression",
                            "theoretical_speedup") if c in ok],
    )
    pruned = summary.filter(compression=lambda c: c > 1.0)
    pareto = pruned.pareto_frontier(x="compression", y=f"{y}_mean")
    checklist = audit_results(ok) if len(ok) else []
    backends = sorted(
        {e["kernel_backend"] for e in ok.column("extra")
         if isinstance(e, dict) and e.get("kernel_backend")}
    ) if "extra" in ok and len(ok) else []
    counts = {"pending": 0, "leased": 0}
    counts.update(outstanding or {})
    return StandardReport(
        frame=prepared,
        y=y,
        curves=curves,
        summary=summary,
        pareto=pareto,
        checklist=checklist,
        n_failed=n_failed,
        kernel_backends=backends,
        outstanding=counts,
        n_rows=len(prepared),
        strategies=(
            prepared.unique("strategy") if "strategy" in prepared else []
        ),
        seeds=prepared.unique("seed") if "seed" in prepared else [],
    )


class _IncrementalFallback(Exception):
    """The store's shape defeats the incremental plan — use the full scan."""


#: the standard-schema columns the incremental store path folds over
_INCR_NUMERIC = (
    "compression", "seed", "top1", "top5", "baseline_top1", "baseline_top5",
    "actual_compression", "theoretical_speedup", "dense_flops",
    "effective_flops",
)
_INCR_OBJECT = ("model", "dataset", "strategy", "extra")


def build_report_from_store(
    store,
    y: str = "top1",
    outstanding: Optional[Dict[str, int]] = None,
    manifest: Optional[Dict[str, Any]] = None,
) -> StandardReport:
    """Incremental per-segment twin of ``build_report(store.to_frame())``.

    Folds the store segment by segment — numeric columns stay memory-mapped
    and object columns are aggregated through their dictionary codes, so
    the 24-column union frame (and its million-element decoded object
    arrays) is never materialized.  The output is byte-identical to the
    full path: grouped values are gathered in original row order and
    reduced with the same :meth:`ResultFrame._stat`, so even floating-point
    summation order matches.  Stores whose shape defeats the plan (missing
    standard columns, non-string strategy pools, NaN group keys, all rows
    quarantined) silently fall back to materialize-then-report.
    """
    from ..store.columnar import ColumnStore

    if not isinstance(store, ColumnStore):
        store = ColumnStore(store)
    if manifest is None:
        manifest = store._require_manifest()
    try:
        return _build_report_incremental(store, manifest, y, outstanding)
    except _IncrementalFallback:
        frame = store.to_frame(manifest=manifest)
        return build_report(frame, y=y, outstanding=outstanding)


def _build_report_incremental(
    store, manifest, y: str, outstanding: Optional[Dict[str, int]]
) -> StandardReport:
    from ..experiment.prune import BASELINE_STRATEGY
    from ..meta.checklist import audit_results  # lazy: avoid import cycle
    from .frame import _json_safe

    if y not in ("top1", "top5"):
        raise _IncrementalFallback  # non-standard axis: let the full path cope
    delta_name = f"delta_{y}"
    baseline_name = f"baseline_{y}"
    segments = manifest["segments"]
    columns = list(manifest["columns"])
    numeric_needed = list(_INCR_NUMERIC)
    if delta_name in columns:
        numeric_needed.append(delta_name)  # stored by ingest; never recompute
    for name in numeric_needed + list(_INCR_OBJECT):
        if name not in columns:
            raise _IncrementalFallback
    if not segments or not manifest["rows"]:
        raise _IncrementalFallback
    for entry in segments:
        kinds = entry["columns"]
        for name in numeric_needed:
            if kinds.get(name) not in (None, "int64", "float64"):
                raise _IncrementalFallback
        for name in _INCR_OBJECT:
            if kinds.get(name) not in (None, "object"):
                raise _IncrementalFallback
    targets = {
        name: store._union_kind([e["columns"].get(name) for e in segments])
        for name in numeric_needed
    }

    # ---- load: mmap numerics, remap object codes through merged pools ----
    pools: Dict[str, List[Any]] = {name: [] for name in _INCR_OBJECT}
    pool_index: Dict[str, Dict[Any, int]] = {name: {} for name in _INCR_OBJECT}

    def merge_pool(name: str, raw_pool: List[Any]) -> np.ndarray:
        # key scheme mirrors _encode_object_column, so equal values share
        # one global code exactly as they share one per-segment code
        index = pool_index[name]
        values = pools[name]
        remap = np.empty(len(raw_pool), dtype=np.int64)
        for i, raw in enumerate(raw_pool):
            if isinstance(raw, str):
                key: Any = ("s", raw)
            else:
                key = ("j", json.dumps(raw, sort_keys=True, default=str))
            code = index.get(key)
            if code is None:
                code = len(values)
                index[key] = code
                values.append(restore_nonfinite(raw))
            remap[i] = code
        return remap

    needed = numeric_needed + list(_INCR_OBJECT)
    _, keep_masks = store._dedup_keep_masks(segments)
    num_parts: Dict[str, List[np.ndarray]] = {n: [] for n in numeric_needed}
    code_parts: Dict[str, List[np.ndarray]] = {n: [] for n in _INCR_OBJECT}
    for i, entry in enumerate(segments):
        raw = store._load_segment_raw(entry, needed)
        seg_rows = entry["rows"]
        mask = keep_masks[i] if keep_masks is not None else None
        for name in numeric_needed:
            if name in raw:
                arr = raw[name][1]
                if targets[name] == "float64" and arr.dtype.kind in "iu":
                    arr = arr.astype(np.float64)
            else:
                arr = np.full(seg_rows, np.nan, dtype=np.float64)
            num_parts[name].append(arr if mask is None else arr[mask])
        for name in _INCR_OBJECT:
            if name in raw:
                _, seg_codes, raw_pool = raw[name]
                remap = merge_pool(name, raw_pool)
                merged = remap[np.asarray(seg_codes, dtype=np.int64)]
            else:
                none_code = int(merge_pool(name, [None])[0])
                merged = np.full(seg_rows, none_code, dtype=np.int64)
            code_parts[name].append(merged if mask is None else merged[mask])
    num = {
        n: parts[0] if len(parts) == 1 else np.concatenate(parts)
        for n, parts in num_parts.items()
    }
    codes = {
        n: parts[0] if len(parts) == 1 else np.concatenate(parts)
        for n, parts in code_parts.items()
    }
    n0 = len(codes["strategy"])
    if not n0:
        raise _IncrementalFallback  # everything superseded: nothing to fold

    # pools the full path would group/sort must behave like its values do:
    # strategy keys get sorted (np.unique), model/dataset become dict keys
    s_pool = pools["strategy"]
    if any(not isinstance(v, str) for v in s_pool):
        raise _IncrementalFallback
    for name in ("model", "dataset"):
        if any(not (v is None or isinstance(v, str)) for v in pools[name]):
            raise _IncrementalFallback
    if num["seed"].dtype.kind == "f" and np.isnan(num["seed"]).any():
        raise _IncrementalFallback  # set-vs-unique NaN semantics differ

    # ---- replicate baseline sentinels across per-pair strategies --------
    strat = codes["strategy"]
    sent_code = pool_index["strategy"].get(("s", BASELINE_STRATEGY))
    sent_mask = (strat == sent_code) if sent_code is not None else None
    if sent_mask is not None and not sent_mask.any():
        sent_mask = None
    if sent_mask is None:
        row_idx: Optional[np.ndarray] = None
        prep_strat = strat
    else:
        n_ds = max(len(pools["dataset"]), 1)
        n_strat = max(len(s_pool), 1)
        pair = codes["model"] * np.int64(n_ds) + codes["dataset"]
        non_sent = ~sent_mask
        comb = pair[non_sent] * np.int64(n_strat) + strat[non_sent]
        uniq, first = np.unique(comb, return_index=True)
        order = np.argsort(first, kind="stable")
        by_pair: Dict[int, List[int]] = {}
        for u in uniq[order].tolist():
            by_pair.setdefault(u // n_strat, []).append(u % n_strat)
        sent_idx = np.flatnonzero(sent_mask)
        target_lists = [by_pair.get(int(pair[i]), []) for i in sent_idx]
        repeats = np.ones(n0, dtype=np.int64)
        repeats[sent_idx] = [max(len(t), 1) for t in target_lists]
        row_idx = np.repeat(np.arange(n0), repeats)
        starts = np.cumsum(repeats) - repeats
        prep_strat = strat[row_idx]
        for i, targets_i in zip(sent_idx.tolist(), target_lists):
            if targets_i:
                prep_strat[starts[i] : starts[i] + len(targets_i)] = targets_i

    def gather(arr: np.ndarray) -> np.ndarray:
        return arr if row_idx is None else arr[row_idx]

    prep_num = {name: gather(arr) for name, arr in num.items()}
    prep_codes = {
        "model": gather(codes["model"]),
        "dataset": gather(codes["dataset"]),
        "extra": gather(codes["extra"]),
        "strategy": prep_strat,
    }
    if delta_name not in prep_num:
        prep_num[delta_name] = np.asarray(
            prep_num[y], dtype=np.float64
        ) - np.asarray(prep_num[baseline_name], dtype=np.float64)
    n_rows = len(prep_strat)

    # ---- failure accounting / ok subset ---------------------------------
    extra_pool = pools["extra"]
    failed_pool = np.fromiter(
        (isinstance(v, dict) and bool(v.get("failed")) for v in extra_pool),
        dtype=bool,
        count=len(extra_pool),
    )
    failed = failed_pool[prep_codes["extra"]] if len(extra_pool) else np.zeros(
        n_rows, dtype=bool
    )
    n_failed = int(failed.sum())
    if n_failed == n_rows:
        raise _IncrementalFallback  # empty ok frame: full path is cheap enough
    if n_failed:
        ok_mask = ~failed
        ok_num = {name: arr[ok_mask] for name, arr in prep_num.items()}
        ok_codes = {name: arr[ok_mask] for name, arr in prep_codes.items()}
    else:
        ok_num, ok_codes = prep_num, prep_codes
    for name in ("compression", "theoretical_speedup"):
        arr = ok_num[name]
        if arr.dtype.kind == "f" and np.isnan(arr).any():
            raise _IncrementalFallback  # full path row-groups NaN keys

    # ---- grouping: strategy ranks mirror np.unique's lexicographic order
    present = np.unique(ok_codes["strategy"])
    present_values = [s_pool[int(c)] for c in present.tolist()]
    value_order = sorted(range(len(present)), key=lambda i: present_values[i])
    rank_of = np.zeros(max(len(s_pool), 1), dtype=np.int64)
    for rank, pos in enumerate(value_order):
        rank_of[int(present[pos])] = rank
    strat_rank = rank_of[ok_codes["strategy"]]

    def grouped(secondary: np.ndarray) -> List[np.ndarray]:
        """Per-(strategy, secondary) row-index groups, strategies in value
        order, secondaries ascending, rows in original order — exactly the
        nested ``group_by(sort=True)`` composition."""
        uniq_x, inv_x = np.unique(secondary, return_inverse=True)
        comb = strat_rank * np.int64(max(len(uniq_x), 1)) + inv_x.astype(
            np.int64, copy=False
        )
        order = np.argsort(comb, kind="stable")
        bounds = np.flatnonzero(np.diff(comb[order])) + 1
        return np.split(order, bounds)

    strat_ok = ok_codes["strategy"]
    y_ok = np.asarray(ok_num[y], dtype=np.float64)
    curves: Dict[str, Dict[str, List[CurvePoint]]] = {}
    for x_metric, _ in X_METRICS:
        x_arr = ok_num[x_metric]
        by_strategy: Dict[str, List[CurvePoint]] = {}
        for g in grouped(x_arr):
            s_value = s_pool[int(strat_ok[g[0]])]
            ys = y_ok[g]
            by_strategy.setdefault(s_value, []).append(
                CurvePoint(
                    x=float(_json_safe(x_arr[g[0]])),
                    mean=ResultFrame._stat(ys, "mean"),
                    std=ResultFrame._stat(ys, "std"),
                    n=len(ys),
                )
            )
        curves[x_metric] = by_strategy

    # ---- summary: the aggregate() record layout, group by group ---------
    values_list = [v for v in (y, delta_name, "actual_compression",
                               "theoretical_speedup")]
    value_arrays = {
        v: np.asarray(ok_num[v], dtype=np.float64) for v in values_list
    }
    comp_ok = ok_num["compression"]
    records: List[Dict[str, Any]] = []
    for g in grouped(comp_ok):
        rec: Dict[str, Any] = {
            "strategy": s_pool[int(strat_ok[g[0]])],
            "compression": _json_safe(comp_ok[g[0]]),
            "n": len(g),
        }
        for v in values_list:
            col = value_arrays[v][g]
            for stat in ("mean", "std"):
                rec[f"{v}_{stat}"] = ResultFrame._stat(col, stat)
        records.append(rec)
    summary = ResultFrame.from_records(
        records,
        columns=["strategy", "compression", "n"]
        + [f"{v}_{s}" for v in values_list for s in ("mean", "std")],
    )
    pruned = summary.filter(compression=lambda c: c > 1.0)
    pareto = pruned.pareto_frontier(x="compression", y=f"{y}_mean")

    # ---- checklist over a narrow decoded frame (values drive verdicts) --
    strat_values = np.empty(max(len(s_pool), 1), dtype=object)
    strat_values[: len(s_pool)] = s_pool
    audit_frame = ResultFrame(
        {
            "strategy": strat_values[strat_ok],
            "compression": comp_ok,
            "seed": ok_num["seed"],
            "top1": ok_num["top1"],
            "baseline_top1": ok_num["baseline_top1"],
            "dense_flops": ok_num["dense_flops"],
            "effective_flops": ok_num["effective_flops"],
            "actual_compression": ok_num["actual_compression"],
            "theoretical_speedup": ok_num["theoretical_speedup"],
        }
    )
    checklist = audit_results(audit_frame)

    present_extra = np.unique(ok_codes["extra"])
    backends = sorted(
        {
            extra_pool[int(c)]["kernel_backend"]
            for c in present_extra.tolist()
            if isinstance(extra_pool[int(c)], dict)
            and extra_pool[int(c)].get("kernel_backend")
        }
    )

    counts = {"pending": 0, "leased": 0}
    counts.update(outstanding or {})
    return StandardReport(
        frame=None,
        y=y,
        curves=curves,
        summary=summary,
        pareto=pareto,
        checklist=checklist,
        n_failed=n_failed,
        kernel_backends=backends,
        outstanding=counts,
        n_rows=n_rows,
        strategies=sorted(
            {
                _json_safe(s_pool[int(c)])
                for c in np.unique(prep_codes["strategy"]).tolist()
            }
        ),
        seeds=sorted({_json_safe(v) for v in np.unique(prep_num["seed"])}),
    )


def _fmt(value: float, digits: int = 3) -> str:
    """Fixed-width float that keeps inf/nan readable instead of exploding."""
    return f"{value:.{digits}f}" if np.isfinite(value) else str(value)


def _summary_table(report: StandardReport) -> List[str]:
    """Seeds × strategies matrix: mean±std(n) per operating point."""
    summary = report.summary
    if not len(summary):
        return ["(no rows)"]
    comps = summary.unique("compression")
    header = f"{'strategy':18s} " + " ".join(f"{'c=' + format(c, 'g'):>14s}" for c in comps)
    lines = [header]
    for strat, sub in summary.group_by("strategy", sort=True):
        by_comp = {
            rec["compression"]: rec for rec in sub.to_records()
        }
        cells = []
        for c in comps:
            rec = by_comp.get(c)
            if rec is None:
                cells.append(f"{'—':>14s}")
            else:
                cells.append(
                    f"{_fmt(rec[report.y + '_mean']):>8s}"
                    f"±{_fmt(rec[report.y + '_std'], 2)}({rec['n']})"
                )
        lines.append(f"{strat:18s} " + " ".join(cells))
    return lines


def render_report(report: StandardReport, width: int = 64) -> str:
    """The full terminal report (curves, summary, Pareto, checklist)."""
    from ..plotting import TradeoffCurve, render_curves  # lazy: import cycle

    out: List[str] = []
    strategies = [s for s, _ in report.curves.get("compression", {}).items()]
    seeds = report.seeds
    out.append("== standard report (Blalock et al., §6) ==")
    out.append(
        f"rows: {report.n_rows}   strategies: {len(strategies)}   "
        f"seeds: {seeds}   quarantined: {report.n_failed}"
    )
    if report.n_outstanding:
        out.append(
            f"PARTIAL: {report.outstanding['pending']} pending + "
            f"{report.outstanding['leased']} leased cell(s) not yet executed"
        )
    if report.kernel_backends:
        line = f"kernel backends: {', '.join(report.kernel_backends)}"
        if len(report.kernel_backends) > 1:
            line += "   (mixed — rows are not bit-for-bit comparable)"
        out.append(line)
    for x_metric, x_label in X_METRICS:
        by_strategy = report.curves.get(x_metric, {})
        curves = [
            TradeoffCurve.from_points(str(strategy), points)
            for strategy, points in by_strategy.items()
            if points
        ]
        out.append("")
        out.append(f"-- {report.y} vs {x_label} (mean ± std over seeds) --")
        out.append(
            render_curves(
                curves, width=width,
                title=f"{report.y} vs {x_label}", x_label=x_label,
            )
        )
    out.append("")
    out.append(f"-- summary: {report.y} mean±std(n seeds) per operating point --")
    out.extend(_summary_table(report))
    out.append("")
    out.append("-- Pareto-dominant operating points (compression vs "
               f"{report.y}) --")
    if len(report.pareto):
        for rec in report.pareto.to_records():
            out.append(
                f"  {rec['strategy']:18s} @ {rec['compression']:g}x  "
                f"{report.y}={_fmt(rec[report.y + '_mean'])}"
                f"±{_fmt(rec[report.y + '_std'], 2)}  "
                f"speedup={_fmt(rec.get('theoretical_speedup_mean', float('nan')), 2)}x"
            )
    else:
        out.append("  (no pruned operating points)")
    out.append("")
    out.append("-- Appendix B checklist audit --")
    if report.checklist:
        out.extend(f"  {item}" for item in report.checklist)
    else:
        out.append("  (no rows to audit)")
    if report.n_failed:
        out.append("")
        out.append(
            f"WARNING: {report.n_failed} quarantined cell(s) excluded from "
            "all statistics — see each row's extra['failures'] for tracebacks"
        )
    return "\n".join(out)


def report_csv_rows(report: StandardReport) -> List[List[Any]]:
    """Curve data as CSV rows (header included): the §6 artifact.

    Long format — one row per (strategy, x-axis, operating point) with
    mean, sample std and seed count, so downstream plots carry error bars.
    Non-finite values render as ``inf``/``nan``, which ``float()`` parses
    back.
    """
    rows: List[List[Any]] = [
        ["strategy", "x_metric", "x", f"{report.y}_mean", f"{report.y}_std", "n"]
    ]
    for x_metric, _ in X_METRICS:
        for strategy, points in report.curves.get(x_metric, {}).items():
            for p in points:
                rows.append([strategy, x_metric, p.x, p.mean, p.std, p.n])
    return rows


def write_report_csv(report: StandardReport, path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="") as f:
        csv.writer(f).writerows(report_csv_rows(report))
    return path


def report_to_json(report: StandardReport) -> Dict[str, Any]:
    """The machine-readable ``repro report --json`` document.

    Everything :func:`render_report` prints, as data: curves per x-axis and
    strategy, the aggregated summary and Pareto rows (as record lists),
    the checklist verdicts, and failure accounting.  The layout is
    versioned by :data:`REPORT_SCHEMA_VERSION` and documented in
    ``docs/FORMATS.md``.  Non-finite values stay as floats; the CLI
    serializes them as bare ``Infinity``/``NaN`` tokens (Python's default
    JSON dialect), which ``json.load`` parses back.
    """
    return {
        "schema": REPORT_SCHEMA_VERSION,
        "y": report.y,
        "rows": report.n_rows,
        "n_failed": report.n_failed,
        "outstanding": dict(report.outstanding),
        "strategies": report.strategies,
        "seeds": report.seeds,
        "kernel_backends": report.kernel_backends,
        "curves": {
            x_metric: {
                str(strategy): [
                    {"x": p.x, "mean": p.mean, "std": p.std, "n": p.n}
                    for p in points
                ]
                for strategy, points in by_strategy.items()
            }
            for x_metric, by_strategy in report.curves.items()
        },
        "summary": report.summary.to_records(),
        "pareto": report.pareto.to_records(),
        "checklist": [
            {"item": item.item, "passed": item.passed, "detail": item.detail}
            for item in report.checklist
        ],
    }


def report_json_text(report: StandardReport) -> str:
    """The serialized report document — the one dialect both the ``--json
    PATH`` file and the ``--json -`` stdout stream emit."""
    return json.dumps(report_to_json(report), indent=1, default=float)


def write_report_json(report: StandardReport, path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(report_json_text(report))
    return path
