"""The §6 standard report: one artifact bundle per finished sweep.

Blalock et al. close with concrete reporting recommendations (§6): tradeoff
*curves* rather than single points, mean ± std over seeds, raw accuracy
plus the delta vs the unpruned control, and both the compression and the
speedup axis.  :func:`build_report` reduces a
:class:`~repro.analysis.frame.ResultFrame` to exactly that bundle and
:func:`render_report` / :func:`write_report_csv` emit it as terminal text
and machine-readable CSV.  ``python -m repro report <source>`` wraps the
three for any finished sweep artifact (``results.json``, a result-cache
directory, or a work-queue directory — all produce identical curve data).

Report contents
---------------
* accuracy-vs-compression and accuracy-vs-speedup tradeoff curves per
  strategy (ASCII rendering + CSV rows ``strategy, x_metric, x, y_mean,
  y_std, n``);
* a seeds × strategies summary table (mean ± std at every operating
  point, with the per-cell seed count);
* Pareto-dominant operating points (no other strategy/ratio pair is at
  least as compressed *and* at least as accurate);
* the Appendix B checklist audit;
* quarantined-cell accounting for fault-tolerant queue sweeps.
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..experiment.results import CurvePoint
from .frame import ResultFrame, load_frame

__all__ = [
    "REPORT_SCHEMA_VERSION",
    "StandardReport",
    "build_report",
    "render_report",
    "report_csv_rows",
    "report_json_text",
    "report_to_json",
    "write_report_csv",
    "write_report_json",
]

#: bump when the ``repro report --json`` document layout changes
#: incompatibly (schema documented in docs/FORMATS.md)
REPORT_SCHEMA_VERSION = 1

#: the two x-axes §6 requires; labels keep the CSV self-describing
X_METRICS: Sequence[Tuple[str, str]] = (
    ("compression", "compression ratio"),
    ("theoretical_speedup", "theoretical speedup"),
)


@dataclass
class StandardReport:
    """Everything ``python -m repro report`` prints/exports, as data."""

    frame: ResultFrame  # prepared rows: baselines replicated, derived cols
    y: str
    #: {x_metric: {strategy: [CurvePoint]}}
    curves: Dict[str, Dict[str, List[CurvePoint]]]
    #: one row per (strategy, compression): <y>_mean/std, n, speedup stats
    summary: ResultFrame
    #: Pareto-dominant pruned operating points (strategy, x, y columns)
    pareto: ResultFrame
    #: Appendix B audit verdicts (:class:`~repro.meta.checklist.ChecklistItem`)
    checklist: List[Any] = field(default_factory=list)
    n_failed: int = 0
    #: distinct compute backends recorded in row metadata (sorted); rows from
    #: before backends existed carry none and contribute nothing
    kernel_backends: List[str] = field(default_factory=list)
    #: partial-sweep accounting for queue sources: cells not yet executed
    #: (``{"pending": N, "leased": N}``, zeros for finished/non-queue
    #: sources) — see :func:`repro.analysis.frame.queue_outstanding`
    outstanding: Dict[str, int] = field(
        default_factory=lambda: {"pending": 0, "leased": 0}
    )

    @property
    def n_outstanding(self) -> int:
        """Total cells still pending/leased — nonzero means partial."""
        return sum(self.outstanding.values())


def build_report(
    frame: ResultFrame,
    y: str = "top1",
    outstanding: Optional[Dict[str, int]] = None,
) -> StandardReport:
    """Reduce raw sweep rows to the §6 report bundle.

    The input frame may come from any constructor; deduped baseline
    sentinel rows are replicated across strategies first, so curve data is
    identical whether the source was a saved ``results.json``, the result
    cache, or a queue directory.  Quarantined cells are excluded from all
    statistics and surfaced via ``n_failed``; for queue sources callers
    pass :func:`~repro.analysis.frame.queue_outstanding` counts so a
    still-draining sweep is visibly partial in the report itself.
    """
    from ..meta.checklist import audit_results  # lazy: avoid import cycle

    prepared = frame.replicate_baselines().derived()
    n_failed = int(prepared.failed_mask().sum())
    ok = prepared.ok()
    curves = {
        x_metric: ok.tradeoff_curves(group="strategy", x=x_metric, y=y)
        for x_metric, _ in X_METRICS
    }
    summary = ok.aggregate(
        by=("strategy", "compression"),
        values=[c for c in (y, f"delta_{y}", "actual_compression",
                            "theoretical_speedup") if c in ok],
    )
    pruned = summary.filter(compression=lambda c: c > 1.0)
    pareto = pruned.pareto_frontier(x="compression", y=f"{y}_mean")
    checklist = audit_results(ok) if len(ok) else []
    backends = sorted(
        {e["kernel_backend"] for e in ok.column("extra")
         if isinstance(e, dict) and e.get("kernel_backend")}
    ) if "extra" in ok and len(ok) else []
    counts = {"pending": 0, "leased": 0}
    counts.update(outstanding or {})
    return StandardReport(
        frame=prepared,
        y=y,
        curves=curves,
        summary=summary,
        pareto=pareto,
        checklist=checklist,
        n_failed=n_failed,
        kernel_backends=backends,
        outstanding=counts,
    )


def _fmt(value: float, digits: int = 3) -> str:
    """Fixed-width float that keeps inf/nan readable instead of exploding."""
    return f"{value:.{digits}f}" if np.isfinite(value) else str(value)


def _summary_table(report: StandardReport) -> List[str]:
    """Seeds × strategies matrix: mean±std(n) per operating point."""
    summary = report.summary
    if not len(summary):
        return ["(no rows)"]
    comps = summary.unique("compression")
    header = f"{'strategy':18s} " + " ".join(f"{'c=' + format(c, 'g'):>14s}" for c in comps)
    lines = [header]
    for strat, sub in summary.group_by("strategy", sort=True):
        by_comp = {
            rec["compression"]: rec for rec in sub.to_records()
        }
        cells = []
        for c in comps:
            rec = by_comp.get(c)
            if rec is None:
                cells.append(f"{'—':>14s}")
            else:
                cells.append(
                    f"{_fmt(rec[report.y + '_mean']):>8s}"
                    f"±{_fmt(rec[report.y + '_std'], 2)}({rec['n']})"
                )
        lines.append(f"{strat:18s} " + " ".join(cells))
    return lines


def render_report(report: StandardReport, width: int = 64) -> str:
    """The full terminal report (curves, summary, Pareto, checklist)."""
    from ..plotting import TradeoffCurve, render_curves  # lazy: import cycle

    out: List[str] = []
    frame = report.frame
    strategies = [s for s, _ in report.curves.get("compression", {}).items()]
    seeds = frame.unique("seed") if "seed" in frame and len(frame) else []
    out.append("== standard report (Blalock et al., §6) ==")
    out.append(
        f"rows: {len(frame)}   strategies: {len(strategies)}   "
        f"seeds: {seeds}   quarantined: {report.n_failed}"
    )
    if report.n_outstanding:
        out.append(
            f"PARTIAL: {report.outstanding['pending']} pending + "
            f"{report.outstanding['leased']} leased cell(s) not yet executed"
        )
    if report.kernel_backends:
        line = f"kernel backends: {', '.join(report.kernel_backends)}"
        if len(report.kernel_backends) > 1:
            line += "   (mixed — rows are not bit-for-bit comparable)"
        out.append(line)
    for x_metric, x_label in X_METRICS:
        by_strategy = report.curves.get(x_metric, {})
        curves = [
            TradeoffCurve.from_points(str(strategy), points)
            for strategy, points in by_strategy.items()
            if points
        ]
        out.append("")
        out.append(f"-- {report.y} vs {x_label} (mean ± std over seeds) --")
        out.append(
            render_curves(
                curves, width=width,
                title=f"{report.y} vs {x_label}", x_label=x_label,
            )
        )
    out.append("")
    out.append(f"-- summary: {report.y} mean±std(n seeds) per operating point --")
    out.extend(_summary_table(report))
    out.append("")
    out.append("-- Pareto-dominant operating points (compression vs "
               f"{report.y}) --")
    if len(report.pareto):
        for rec in report.pareto.to_records():
            out.append(
                f"  {rec['strategy']:18s} @ {rec['compression']:g}x  "
                f"{report.y}={_fmt(rec[report.y + '_mean'])}"
                f"±{_fmt(rec[report.y + '_std'], 2)}  "
                f"speedup={_fmt(rec.get('theoretical_speedup_mean', float('nan')), 2)}x"
            )
    else:
        out.append("  (no pruned operating points)")
    out.append("")
    out.append("-- Appendix B checklist audit --")
    if report.checklist:
        out.extend(f"  {item}" for item in report.checklist)
    else:
        out.append("  (no rows to audit)")
    if report.n_failed:
        out.append("")
        out.append(
            f"WARNING: {report.n_failed} quarantined cell(s) excluded from "
            "all statistics — see each row's extra['failures'] for tracebacks"
        )
    return "\n".join(out)


def report_csv_rows(report: StandardReport) -> List[List[Any]]:
    """Curve data as CSV rows (header included): the §6 artifact.

    Long format — one row per (strategy, x-axis, operating point) with
    mean, sample std and seed count, so downstream plots carry error bars.
    Non-finite values render as ``inf``/``nan``, which ``float()`` parses
    back.
    """
    rows: List[List[Any]] = [
        ["strategy", "x_metric", "x", f"{report.y}_mean", f"{report.y}_std", "n"]
    ]
    for x_metric, _ in X_METRICS:
        for strategy, points in report.curves.get(x_metric, {}).items():
            for p in points:
                rows.append([strategy, x_metric, p.x, p.mean, p.std, p.n])
    return rows


def write_report_csv(report: StandardReport, path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="") as f:
        csv.writer(f).writerows(report_csv_rows(report))
    return path


def report_to_json(report: StandardReport) -> Dict[str, Any]:
    """The machine-readable ``repro report --json`` document.

    Everything :func:`render_report` prints, as data: curves per x-axis and
    strategy, the aggregated summary and Pareto rows (as record lists),
    the checklist verdicts, and failure accounting.  The layout is
    versioned by :data:`REPORT_SCHEMA_VERSION` and documented in
    ``docs/FORMATS.md``.  Non-finite values stay as floats; the CLI
    serializes them as bare ``Infinity``/``NaN`` tokens (Python's default
    JSON dialect), which ``json.load`` parses back.
    """
    frame = report.frame
    return {
        "schema": REPORT_SCHEMA_VERSION,
        "y": report.y,
        "rows": len(frame),
        "n_failed": report.n_failed,
        "outstanding": dict(report.outstanding),
        "strategies": frame.unique("strategy") if "strategy" in frame else [],
        "seeds": frame.unique("seed") if "seed" in frame else [],
        "kernel_backends": report.kernel_backends,
        "curves": {
            x_metric: {
                str(strategy): [
                    {"x": p.x, "mean": p.mean, "std": p.std, "n": p.n}
                    for p in points
                ]
                for strategy, points in by_strategy.items()
            }
            for x_metric, by_strategy in report.curves.items()
        },
        "summary": report.summary.to_records(),
        "pareto": report.pareto.to_records(),
        "checklist": [
            {"item": item.item, "passed": item.passed, "detail": item.detail}
            for item in report.checklist
        ],
    }


def report_json_text(report: StandardReport) -> str:
    """The serialized report document — the one dialect both the ``--json
    PATH`` file and the ``--json -`` stdout stream emit."""
    return json.dumps(report_to_json(report), indent=1, default=float)


def write_report_json(report: StandardReport, path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(report_json_text(report))
    return path
