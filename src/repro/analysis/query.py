"""The JSON query language: serializable ResultFrame queries.

The results server (:mod:`repro.serve`) lets many concurrent readers run
filter/group/aggregate queries over loaded frames; those queries arrive as
JSON, so they need a declarative form of the :class:`ResultFrame` API that
(a) cannot ship arbitrary Python over HTTP and (b) fails fast with a
precise message — the server turns every :class:`QueryError` into a 400.
The language is also usable in-process (``run_query(frame, spec)``) and
deliberately mirrors the frame methods one-to-one, so a query's result is
point-for-point identical to hand-written ``filter``/``group_by``/
``aggregate`` calls.

Query document
--------------
A query is a JSON object; every key is optional (``{}`` selects all rows):

``frame``
    Which loaded frame to query (server-side; ignored by ``run_query``).
``filter``
    ``{column: condition}``, AND-combined.  A condition is a scalar
    (equality), a list (membership), or a ``{"op": ..., "value": ...}``
    comparison spec with ``op`` in :data:`~repro.analysis.frame.FILTER_OPS`
    (``==``, ``!=``, ``<``, ``<=``, ``>``, ``>=``, ``in``, ``not-in``) —
    exactly :meth:`ResultFrame.filter`'s serializable forms.
``group_by``
    Column name or list of names; reduces to one row per distinct key with
    an ``n`` member count (sugar for an ``aggregate`` with no values).
``aggregate``
    ``{"by": [...], "values": [...], "stats": [...]}`` — one row per
    group with ``<value>_<stat>`` columns plus ``n``, exactly
    :meth:`ResultFrame.aggregate` (same defaults).  Mutually exclusive
    with ``group_by``.
``sort``
    Column name or list of names to order the result rows by (last name
    varies slowest), applied after aggregation.
``columns``
    Projection: keep only these columns, in this order.
``limit`` / ``offset``
    Pagination over the (post-aggregation, post-sort) result rows.

Validation is two-phase: :func:`compile_query` rejects malformed
*documents* (unknown keys, wrong types, bad ops) without needing a frame;
:meth:`Query.apply` additionally rejects unknown *columns* against the
concrete frame.  Both raise :class:`QueryError` with the offending name
and the valid vocabulary.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from .frame import FILTER_OPS, ResultFrame

__all__ = ["Query", "QueryError", "compile_query", "run_query"]

#: every key a query document may carry
QUERY_KEYS = ("frame", "filter", "group_by", "aggregate",
              "sort", "columns", "limit", "offset")

_AGGREGATE_KEYS = ("by", "values", "stats")
_AGGREGATE_STATS = ("mean", "std", "min", "max")


class QueryError(ValueError):
    """A malformed or unanswerable query — the server's 400."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise QueryError(message)


def _scalar(value: Any) -> bool:
    return value is None or isinstance(value, (str, int, float, bool))


def _name_list(value: Any, key: str) -> Tuple[str, ...]:
    """Normalize a column-name field: one name or a non-empty list."""
    if isinstance(value, str):
        return (value,)
    _require(
        isinstance(value, (list, tuple))
        and len(value) > 0
        and all(isinstance(v, str) for v in value),
        f"{key!r} must be a column name or a non-empty list of column "
        f"names, got {value!r}",
    )
    return tuple(value)


def _check_condition(name: str, cond: Any) -> None:
    """Validate one filter condition without touching a frame."""
    if _scalar(cond):
        return
    if isinstance(cond, list):
        _require(
            all(_scalar(v) for v in cond),
            f"filter list for column {name!r} must hold scalars",
        )
        return
    if isinstance(cond, dict):
        extra = set(cond) - {"op", "value"}
        _require(
            not extra and "op" in cond and "value" in cond,
            f"filter spec for column {name!r} must be "
            f"{{'op': ..., 'value': ...}}, got keys {sorted(cond)}",
        )
        _require(
            cond["op"] in FILTER_OPS,
            f"unknown filter op {cond['op']!r} for column {name!r}; "
            f"expected one of {list(FILTER_OPS)}",
        )
        if cond["op"] in ("in", "not-in"):
            _require(
                isinstance(cond["value"], list)
                and all(_scalar(v) for v in cond["value"]),
                f"filter op {cond['op']!r} on column {name!r} needs a "
                "list value",
            )
        else:
            _require(
                _scalar(cond["value"]),
                f"filter op {cond['op']!r} on column {name!r} needs a "
                "scalar value",
            )
        return
    raise QueryError(
        f"filter condition for column {name!r} must be a scalar, a list, "
        f"or an {{'op', 'value'}} spec, got {type(cond).__name__}"
    )


@dataclass(frozen=True)
class Query:
    """A validated query document, ready to run against frames."""

    frame: Optional[str] = None
    filter: Dict[str, Any] = field(default_factory=dict)
    group_by: Optional[Tuple[str, ...]] = None
    aggregate: Optional[Dict[str, Any]] = None
    sort: Optional[Tuple[str, ...]] = None
    columns: Optional[Tuple[str, ...]] = None
    limit: Optional[int] = None
    offset: int = 0

    def canonical(self) -> str:
        """Deterministic serialization — the ETag ingredient: two requests
        meaning the same query hash identically however they were spelled."""
        doc: Dict[str, Any] = {}
        if self.frame is not None:
            doc["frame"] = self.frame
        if self.filter:
            doc["filter"] = self.filter
        if self.group_by is not None:
            doc["group_by"] = list(self.group_by)
        if self.aggregate is not None:
            doc["aggregate"] = {k: list(v) if isinstance(v, tuple) else v
                                for k, v in self.aggregate.items()}
        if self.sort is not None:
            doc["sort"] = list(self.sort)
        if self.columns is not None:
            doc["columns"] = list(self.columns)
        if self.limit is not None:
            doc["limit"] = self.limit
        if self.offset:
            doc["offset"] = self.offset
        return json.dumps(doc, sort_keys=True, default=float)

    # -- execution -------------------------------------------------------
    def _checked_columns(self, frame: ResultFrame, names, what: str) -> None:
        self._checked_names(frame.columns, names, what)

    @staticmethod
    def _checked_names(available, names, what: str) -> None:
        for name in names:
            if name not in available:
                raise QueryError(
                    f"unknown {what} column {name!r}; "
                    f"available: {list(available)}"
                )

    def apply(self, frame: ResultFrame) -> Dict[str, Any]:
        """Run against a concrete frame → a JSON-ready result document.

        Returns ``{"total", "offset", "limit", "columns", "rows"}`` where
        ``total`` counts result rows *before* pagination and ``rows`` is
        the selected page as record dicts.  Unknown columns raise
        :class:`QueryError` (the document shape was already validated by
        :func:`compile_query`).
        """
        self._checked_columns(frame, self.filter, "filter")
        try:
            rows = frame.filter(**self.filter) if self.filter else frame
        except ValueError as exc:  # e.g. op applied to an incomparable column
            raise QueryError(str(exc)) from exc
        return self._finish(frame, rows)

    def needed_columns(self, available) -> Optional[List[str]]:
        """The source columns this query must load, in ``available`` order —
        or None when it needs all of them (no projection possible).

        Validates every referenced column against ``available`` (the store
        manifest's column list == the full frame's vocabulary) so pushdown
        raises the same :class:`QueryError` as the full scan would.
        """
        available = list(available)
        self._checked_names(available, self.filter, "filter")
        needed = set(self.filter)
        if self.aggregate is not None:
            by = self.aggregate.get("by", ("strategy", "compression"))
            self._checked_names(available, by, "aggregate 'by'")
            values = self.aggregate.get("values")
            if values is None:
                return None  # defaults to "every numeric column": load all
            self._checked_names(available, values, "aggregate 'values'")
            needed |= set(by) | set(values)
        elif self.group_by is not None:
            self._checked_names(available, self.group_by, "group_by")
            needed |= set(self.group_by)
        else:
            if self.sort is not None:
                self._checked_names(available, self.sort, "sort")
                needed |= set(self.sort)
            if self.columns is not None:
                self._checked_names(available, self.columns, "projection")
                needed |= set(self.columns)
            else:
                return None  # result carries every column
        return [name for name in available if name in needed]

    def apply_store(self, store, manifest=None) -> Dict[str, Any]:
        """Pushdown twin of ``apply(store.to_frame())``.

        Routes the filter through :meth:`ColumnStore.to_frame`'s zone-map
        planner (skipped segments are never read) and loads only the
        columns the query references; the remaining stages are shared with
        :meth:`apply`, so the result document is byte-identical to the
        full scan.  ``manifest`` pins a snapshot's manifest (see
        ``ColumnStore.to_frame``).
        """
        manifest = manifest or store._require_manifest()
        projection = self.needed_columns(manifest["columns"])
        try:
            rows = store.to_frame(
                columns=projection, where=self.filter or None, manifest=manifest
            )
        except ValueError as exc:  # same surface as apply()'s filter stage
            raise QueryError(str(exc)) from exc
        return self._finish(rows, rows)

    def _finish(self, frame: ResultFrame, rows: ResultFrame) -> Dict[str, Any]:
        """Post-filter stages, shared by the full-scan and pushdown paths:
        ``frame`` supplies the aggregate/group_by column vocabulary, ``rows``
        is the already-filtered selection."""
        if self.aggregate is not None:
            agg = dict(self.aggregate)
            by = agg.get("by", ("strategy", "compression"))
            self._checked_columns(frame, by, "aggregate 'by'")
            if agg.get("values") is not None:
                self._checked_columns(frame, agg["values"], "aggregate 'values'")
            rows = rows.aggregate(
                by=by, values=agg.get("values"),
                stats=agg.get("stats", ("mean", "std")),
            )
        elif self.group_by is not None:
            self._checked_columns(frame, self.group_by, "group_by")
            rows = rows.aggregate(by=self.group_by, values=[], stats=())
        if self.sort is not None:
            self._checked_columns(rows, self.sort, "sort")
            rows = rows.sort_by(*self.sort)
        if self.columns is not None:
            self._checked_columns(rows, self.columns, "projection")
            rows = ResultFrame({c: rows.column(c) for c in self.columns})
        total = len(rows)
        stop = total if self.limit is None else min(self.offset + self.limit, total)
        start = min(self.offset, total)
        page = rows.take(np.arange(start, max(start, stop)))
        return {
            "total": total,
            "offset": self.offset,
            "limit": self.limit,
            "columns": page.columns,
            "rows": page.to_records(),
        }


def compile_query(spec: Any) -> Query:
    """Validate a query document (fail-fast) and return a :class:`Query`.

    Shape-only: no frame is needed, so a server can 400 a malformed
    document before touching any data.  Raises :class:`QueryError` naming
    the offending key/op and the accepted vocabulary.
    """
    _require(isinstance(spec, dict),
             f"query must be a JSON object, got {type(spec).__name__}")
    unknown = set(spec) - set(QUERY_KEYS)
    _require(not unknown,
             f"unknown query key(s) {sorted(unknown)}; "
             f"expected a subset of {list(QUERY_KEYS)}")

    frame = spec.get("frame")
    _require(frame is None or isinstance(frame, str),
             f"'frame' must be a string, got {frame!r}")

    filt = spec.get("filter", {})
    _require(isinstance(filt, dict),
             f"'filter' must be an object of column: condition, got "
             f"{type(filt).__name__}")
    for name, cond in filt.items():
        _check_condition(name, cond)

    group_by = spec.get("group_by")
    if group_by is not None:
        group_by = _name_list(group_by, "group_by")

    aggregate = spec.get("aggregate")
    if aggregate is not None:
        _require(isinstance(aggregate, dict),
                 f"'aggregate' must be an object with keys "
                 f"{list(_AGGREGATE_KEYS)}, got {type(aggregate).__name__}")
        _require(group_by is None,
                 "'group_by' and 'aggregate' are mutually exclusive "
                 "(aggregate has its own 'by')")
        unknown = set(aggregate) - set(_AGGREGATE_KEYS)
        _require(not unknown,
                 f"unknown aggregate key(s) {sorted(unknown)}; "
                 f"expected a subset of {list(_AGGREGATE_KEYS)}")
        normalized: Dict[str, Any] = {}
        if "by" in aggregate:
            normalized["by"] = _name_list(aggregate["by"], "aggregate 'by'")
        if aggregate.get("values") is not None:
            values = aggregate["values"]
            _require(isinstance(values, list)
                     and all(isinstance(v, str) for v in values),
                     "aggregate 'values' must be a list of column names")
            normalized["values"] = tuple(values)
        if "stats" in aggregate:
            stats = _name_list(aggregate["stats"], "aggregate 'stats'")
            bad = set(stats) - set(_AGGREGATE_STATS)
            _require(not bad,
                     f"unknown aggregate stat(s) {sorted(bad)}; "
                     f"expected a subset of {list(_AGGREGATE_STATS)}")
            normalized["stats"] = stats
        aggregate = normalized

    sort = spec.get("sort")
    if sort is not None:
        sort = _name_list(sort, "sort")
    columns = spec.get("columns")
    if columns is not None:
        columns = _name_list(columns, "columns")

    limit = spec.get("limit")
    _require(limit is None or (isinstance(limit, int)
                               and not isinstance(limit, bool) and limit >= 1),
             f"'limit' must be a positive integer, got {limit!r}")
    offset = spec.get("offset", 0)
    _require(isinstance(offset, int) and not isinstance(offset, bool)
             and offset >= 0,
             f"'offset' must be a non-negative integer, got {offset!r}")

    return Query(frame=frame, filter=dict(filt), group_by=group_by,
                 aggregate=aggregate, sort=sort, columns=columns,
                 limit=limit, offset=offset)


def run_query(frame: ResultFrame, spec: Any) -> Dict[str, Any]:
    """Compile + apply in one call (the in-process convenience)."""
    return compile_query(spec).apply(frame)
