"""Mask registry: applying, persisting and enforcing pruning masks.

The paper's formalization (§2.1): pruning produces ``f(x; M ⊙ W')`` where
``M ∈ {0,1}^|W'|``.  In practice masked entries are fixed at zero; during
fine-tuning the optimizer must not resurrect them (momentum or weight decay
would otherwise write non-zero values back).  :class:`MaskRegistry` owns the
masks and re-zeroes masked weights after every optimizer step via a
post-step hook.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from ..nn import Module, Parameter
from ..optim import Optimizer

__all__ = ["MaskRegistry"]


class MaskRegistry:
    """Binary masks keyed by parameter name, bound to a model."""

    def __init__(self, model: Module, masks: Optional[Dict[str, np.ndarray]] = None):
        self.model = model
        self._params: Dict[str, Parameter] = dict(model.named_parameters())
        self.masks: Dict[str, np.ndarray] = {}
        if masks:
            for name, mask in masks.items():
                self.set_mask(name, mask)

    # -- mutation --------------------------------------------------------
    def set_mask(self, name: str, mask: np.ndarray) -> None:
        """Register (or replace) a mask; validates shape and binariness."""
        if name not in self._params:
            raise KeyError(f"model has no parameter named {name!r}")
        p = self._params[name]
        mask = np.asarray(mask, dtype=np.float32)
        if mask.shape != p.shape:
            raise ValueError(
                f"mask shape {mask.shape} != parameter shape {p.shape} for {name}"
            )
        if not np.all((mask == 0.0) | (mask == 1.0)):
            raise ValueError(f"mask for {name} must be binary")
        self.masks[name] = mask

    def update(self, masks: Dict[str, np.ndarray]) -> None:
        for name, mask in masks.items():
            self.set_mask(name, mask)

    def intersect(self, masks: Dict[str, np.ndarray]) -> None:
        """AND new masks into existing ones (iterative pruning never revives)."""
        for name, mask in masks.items():
            if name in self.masks:
                self.set_mask(name, self.masks[name] * np.asarray(mask, np.float32))
            else:
                self.set_mask(name, mask)

    # -- application -------------------------------------------------------
    def apply(self) -> None:
        """Zero out masked entries of every registered parameter in place."""
        for name, mask in self.masks.items():
            self._params[name].data *= mask

    def attach(self, optimizer: Optimizer) -> None:
        """Re-apply masks after every optimizer step."""
        optimizer.add_post_step_hook(self.apply)

    # -- inspection ---------------------------------------------------------
    def __len__(self) -> int:
        return len(self.masks)

    def __contains__(self, name: str) -> bool:
        return name in self.masks

    def items(self) -> Iterator[Tuple[str, np.ndarray]]:
        return iter(self.masks.items())

    def nonzero_fraction(self, name: str) -> float:
        """Fraction of unmasked entries in one tensor."""
        mask = self.masks[name]
        return float(mask.sum() / mask.size)

    def total_kept(self) -> int:
        return int(sum(m.sum() for m in self.masks.values()))

    def total_masked_size(self) -> int:
        return int(sum(m.size for m in self.masks.values()))

    def sparsity(self) -> float:
        """Overall fraction of masked-out entries among masked tensors."""
        total = self.total_masked_size()
        return 1.0 - self.total_kept() / total if total else 0.0

    def validate(self) -> None:
        """Assert the model is consistent with the masks (zeros in place)."""
        for name, mask in self.masks.items():
            data = self._params[name].data
            if np.any(data[mask == 0.0] != 0.0):
                raise AssertionError(
                    f"parameter {name} has non-zero entries where mask is 0 "
                    "(masks not applied, or weights resurrected)"
                )

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy of all masks (for persistence alongside model weights)."""
        return {name: mask.copy() for name, mask in self.masks.items()}
