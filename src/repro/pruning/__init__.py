"""ShrinkBench pruning core: masks, scores, strategies, schedules."""

from .base import (
    PruningContext,
    PruningStrategy,
    find_classifier,
    masks_from_scores_global,
    masks_from_scores_layerwise,
    prunable_parameters,
)
from .mask import MaskRegistry
from .pruner import Pruner, fraction_to_keep_for_compression
from .scoring import (
    compute_weight_gradients,
    gradient_magnitude_scores,
    magnitude_scores,
    random_scores,
)
from .strategies import (
    PAPER_LABELS,
    STRATEGIES,
    STRATEGY_REGISTRY,
    GlobalMagGrad,
    GlobalMagWeight,
    LayerMagGrad,
    LayerMagWeight,
    LayerRandomPruning,
    RandomPruning,
    create_strategy,
)
from .structured import GlobalFilterL1, LayerFilterL1
from .schedule import (
    SCHEDULES,
    compression_to_sparsity,
    iterative_linear,
    one_shot,
    polynomial_decay,
    schedule_targets,
    sparsity_to_compression,
)

# Register the structured strategies alongside the unstructured baselines.
STRATEGIES.setdefault(GlobalFilterL1.name, GlobalFilterL1)
STRATEGIES.setdefault(LayerFilterL1.name, LayerFilterL1)
PAPER_LABELS.setdefault("global_filter_l1", "Global Filter L1")
PAPER_LABELS.setdefault("layer_filter_l1", "Layer Filter L1")

__all__ = [
    "PruningContext",
    "PruningStrategy",
    "prunable_parameters",
    "find_classifier",
    "masks_from_scores_global",
    "masks_from_scores_layerwise",
    "MaskRegistry",
    "Pruner",
    "fraction_to_keep_for_compression",
    "magnitude_scores",
    "gradient_magnitude_scores",
    "random_scores",
    "compute_weight_gradients",
    "GlobalMagWeight",
    "LayerMagWeight",
    "GlobalMagGrad",
    "LayerMagGrad",
    "RandomPruning",
    "LayerRandomPruning",
    "GlobalFilterL1",
    "LayerFilterL1",
    "STRATEGIES",
    "STRATEGY_REGISTRY",
    "SCHEDULES",
    "PAPER_LABELS",
    "create_strategy",
    "schedule_targets",
    "one_shot",
    "iterative_linear",
    "polynomial_decay",
    "compression_to_sparsity",
    "sparsity_to_compression",
]
