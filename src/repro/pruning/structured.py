"""Structured (filter/channel) pruning — §2.3 "Structure" extension.

The paper's benchmarked baselines are all unstructured; structured pruning
is cataloged as the other major family (Li et al. 2016, He et al. 2017).
This module implements L1-norm filter pruning in the mask formalism: pruning
an output filter zeroes the whole ``W[f, :, :, :]`` slab (and its bias entry
remains — biases are never pruned here, matching the unstructured path).

Because masks stay aligned with dense tensor shapes, structured and
unstructured methods are directly comparable under the same metrics — the
point of the shared ShrinkBench infrastructure.  FLOPs accounting rewards
structure automatically: a zero filter removes its entire spatial
computation, giving structured methods higher theoretical speedup at the
same parameter count.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..nn import Conv2d, Module
from .base import PruningContext, PruningStrategy, masks_from_scores_global, masks_from_scores_layerwise

__all__ = ["GlobalFilterL1", "LayerFilterL1"]


def _filter_scores(params) -> Dict[str, np.ndarray]:
    """Per-weight scores equal to the L1 norm of the owning filter.

    Conv weights ``(F, C, KH, KW)`` broadcast each filter's mean ``|w|`` over
    its slab, so thresholding produces filter-aligned masks.  Non-conv
    tensors fall back to elementwise ``|w|`` (structured pruning of FC
    layers would remove neurons; we keep them unstructured like Li et al.).
    """
    scores: Dict[str, np.ndarray] = {}
    for name, p in params:
        if p.data.ndim == 4:
            per_filter = np.abs(p.data).mean(axis=(1, 2, 3), keepdims=True)
            scores[name] = np.broadcast_to(per_filter, p.shape).copy()
        else:
            scores[name] = np.abs(p.data)
    return scores


class GlobalFilterL1(PruningStrategy):
    """Prune conv filters with the lowest mean ``|w|``, ranked globally."""

    name = "global_filter_l1"

    def compute_masks(self, model, fraction_to_keep, context=None):
        self._validate_fraction(fraction_to_keep)
        scores = _filter_scores(self._params(model))
        return masks_from_scores_global(scores, fraction_to_keep)


class LayerFilterL1(PruningStrategy):
    """Prune the lowest-norm filters within each conv layer (Li et al. 2016)."""

    name = "layer_filter_l1"

    def compute_masks(self, model, fraction_to_keep, context=None):
        self._validate_fraction(fraction_to_keep)
        scores = _filter_scores(self._params(model))
        return masks_from_scores_layerwise(scores, fraction_to_keep)
