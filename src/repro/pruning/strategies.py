"""The paper's five baseline pruning strategies (§7.2), plus extras.

================================  =========================================
Strategy                          Rule
================================  =========================================
``GlobalMagWeight``               keep largest ``|w|`` anywhere in the net
``LayerMagWeight``                keep largest ``|w|`` within each layer
``GlobalMagGrad``                 keep largest ``|w·g|`` anywhere
``LayerMagGrad``                  keep largest ``|w·g|`` within each layer
``RandomPruning``                 drop weights uniformly at random
``LayerRandomPruning``            random with per-layer proportions fixed
                                  (Appendix B checklist baseline)
================================  =========================================

These are *baselines inspired by* Han et al. (2015) / Lee et al. (2019), not
reproductions of those methods — exactly as the paper frames them.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..nn import Module
from ..registry import Registry, warn_deprecated
from .base import (
    PruningContext,
    PruningStrategy,
    masks_from_scores_global,
    masks_from_scores_layerwise,
)
from .scoring import gradient_magnitude_scores, magnitude_scores, random_scores

__all__ = [
    "GlobalMagWeight",
    "LayerMagWeight",
    "GlobalMagGrad",
    "LayerMagGrad",
    "RandomPruning",
    "LayerRandomPruning",
    "STRATEGIES",
    "STRATEGY_REGISTRY",
    "create_strategy",
]

#: shared registry of pruning strategies; classes register themselves via
#: ``@STRATEGIES.register`` under their ``name`` attribute
STRATEGIES = Registry("strategy")

#: historical dict-style alias — the same object as ``STRATEGIES``
STRATEGY_REGISTRY = STRATEGIES


@STRATEGIES.register
class GlobalMagWeight(PruningStrategy):
    """Global Magnitude Pruning: lowest ``|w|`` anywhere is pruned."""

    name = "global_weight"

    def compute_masks(self, model, fraction_to_keep, context=None):
        self._validate_fraction(fraction_to_keep)
        scores = magnitude_scores(self._params(model))
        return masks_from_scores_global(scores, fraction_to_keep)


@STRATEGIES.register
class LayerMagWeight(PruningStrategy):
    """Layerwise Magnitude Pruning: lowest ``|w|`` within each layer."""

    name = "layer_weight"

    def compute_masks(self, model, fraction_to_keep, context=None):
        self._validate_fraction(fraction_to_keep)
        scores = magnitude_scores(self._params(model))
        return masks_from_scores_layerwise(scores, fraction_to_keep)


class _GradStrategy(PruningStrategy):
    requires_data = True

    def _scores(self, model: Module, context: Optional[PruningContext]):
        if context is None or context.inputs is None or context.targets is None:
            raise ValueError(
                f"{self.__class__.__name__} requires a minibatch in the "
                "PruningContext (inputs and targets)"
            )
        return gradient_magnitude_scores(
            model, self._params(model), context.inputs, context.targets
        )


@STRATEGIES.register
class GlobalMagGrad(_GradStrategy):
    """Global Gradient Magnitude Pruning: lowest ``|w·g|`` anywhere."""

    name = "global_gradient"

    def compute_masks(self, model, fraction_to_keep, context=None):
        self._validate_fraction(fraction_to_keep)
        return masks_from_scores_global(self._scores(model, context), fraction_to_keep)


@STRATEGIES.register
class LayerMagGrad(_GradStrategy):
    """Layerwise Gradient Magnitude Pruning: lowest ``|w·g|`` per layer."""

    name = "layer_gradient"

    def compute_masks(self, model, fraction_to_keep, context=None):
        self._validate_fraction(fraction_to_keep)
        return masks_from_scores_layerwise(
            self._scores(model, context), fraction_to_keep
        )


@STRATEGIES.register
class RandomPruning(PruningStrategy):
    """Uniform random pruning across the whole network (straw man)."""

    name = "random"

    def compute_masks(self, model, fraction_to_keep, context=None):
        self._validate_fraction(fraction_to_keep)
        rng = context.rng if context is not None else np.random.default_rng(0)
        scores = random_scores(self._params(model), rng)
        return masks_from_scores_global(scores, fraction_to_keep)


@STRATEGIES.register
class LayerRandomPruning(PruningStrategy):
    """Random pruning with the same fraction in every layer.

    The Appendix B checklist distinguishes "global random" from "random with
    the same layerwise proportions as the proposed technique"; this is the
    uniform-proportion member of that family.
    """

    name = "layer_random"

    def compute_masks(self, model, fraction_to_keep, context=None):
        self._validate_fraction(fraction_to_keep)
        rng = context.rng if context is not None else np.random.default_rng(0)
        scores = random_scores(self._params(model), rng)
        return masks_from_scores_layerwise(scores, fraction_to_keep)


#: Display names matching the paper's figure legends.
PAPER_LABELS = {
    "global_weight": "Global Weight",
    "layer_weight": "Layer Weight",
    "global_gradient": "Global Gradient",
    "layer_gradient": "Layer Gradient",
    "random": "Random",
    "layer_random": "Layer Random",
}


def create_strategy(name: str, prune_classifier: bool = False) -> PruningStrategy:
    """Deprecated: use :meth:`STRATEGIES.create` instead."""
    warn_deprecated(
        "repro.pruning.create_strategy", "repro.pruning.STRATEGIES.create"
    )
    return STRATEGIES.create(name, prune_classifier=prune_classifier)
