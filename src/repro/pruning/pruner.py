"""Pruner: compression-ratio bookkeeping + strategy application.

Implements the paper's §6 definitions:

* **compression ratio** = original size / compressed size, where size is the
  number of (nonzero) parameters of the *whole model*;
* the classifier and all non-prunable tensors (biases, BatchNorm) stay
  dense, so the keep-fraction for prunable tensors must over-prune to hit a
  whole-model target — the same accounting ShrinkBench performs.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..nn import Module
from .base import PruningContext, PruningStrategy, prunable_parameters
from .mask import MaskRegistry

__all__ = ["Pruner", "fraction_to_keep_for_compression"]


def fraction_to_keep_for_compression(
    compression: float, total_params: int, prunable_params: int
) -> float:
    """Keep-fraction over prunable tensors achieving a whole-model target.

    Solving ``total / compression = nonprunable + keep · prunable`` for
    ``keep``.  Raises if the target is unreachable without touching
    non-prunable tensors.
    """
    if compression < 1.0:
        raise ValueError(f"compression must be >= 1, got {compression}")
    if prunable_params <= 0 or prunable_params > total_params:
        raise ValueError("invalid parameter counts")
    nonprunable = total_params - prunable_params
    budget = total_params / compression - nonprunable
    if budget <= 0:
        max_c = total_params / nonprunable if nonprunable else float("inf")
        raise ValueError(
            f"compression {compression}x unreachable: non-prunable tensors "
            f"alone cap compression at {max_c:.2f}x"
        )
    return min(1.0, budget / prunable_params)


class Pruner:
    """Applies a strategy to a model at a target compression ratio.

    Usage::

        pruner = Pruner(model, GlobalMagWeight())
        registry = pruner.prune(compression=4, context=ctx)
        registry.attach(optimizer)   # keep masks enforced while fine-tuning
    """

    def __init__(self, model: Module, strategy: PruningStrategy) -> None:
        self.model = model
        self.strategy = strategy
        self.registry = MaskRegistry(model)

    # -- bookkeeping -----------------------------------------------------
    def total_params(self) -> int:
        return sum(p.size for p in self.model.parameters())

    def prunable_params(self) -> int:
        return sum(
            p.size
            for _, p in prunable_parameters(
                self.model, self.strategy.prune_classifier
            )
        )

    def fraction_to_keep(self, compression: float) -> float:
        return fraction_to_keep_for_compression(
            compression, self.total_params(), self.prunable_params()
        )

    def achievable_compression(self) -> float:
        """Upper bound on whole-model compression for this strategy."""
        nonprunable = self.total_params() - self.prunable_params()
        if nonprunable == 0:
            return float("inf")
        return self.total_params() / nonprunable

    # -- pruning -----------------------------------------------------------
    def prune(
        self,
        compression: float,
        context: Optional[PruningContext] = None,
    ) -> MaskRegistry:
        """One-shot prune to a whole-model compression target.

        Returns the :class:`MaskRegistry` with masks applied to the model.
        ``compression=1`` is a no-op baseline (all-ones masks).
        """
        fraction = self.fraction_to_keep(compression)
        masks = self.strategy.compute_masks(self.model, fraction, context)
        self.registry.intersect(masks)
        self.registry.apply()
        return self.registry

    def prune_to_fraction(
        self,
        fraction_to_keep: float,
        context: Optional[PruningContext] = None,
    ) -> MaskRegistry:
        """Prune keeping a raw fraction of prunable weights (no conversion)."""
        masks = self.strategy.compute_masks(self.model, fraction_to_keep, context)
        self.registry.intersect(masks)
        self.registry.apply()
        return self.registry

    def actual_compression(self) -> float:
        """Whole-model compression implied by the current masks.

        Returns ``inf`` when the masks prune every parameter (reachable by
        masking all tensors to zero) rather than dividing by zero.
        """
        total = self.total_params()
        masked_total = self.registry.total_masked_size()
        kept = self.registry.total_kept()
        nonzero = total - masked_total + kept
        if nonzero <= 0:
            return float("inf")
        return total / nonzero
