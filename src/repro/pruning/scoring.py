"""Importance scores for pruning.

The paper's five baselines (§7.2) use three scoring families:

* **magnitude**: ``|w|`` — Janowsky (1989), reintroduced by Han et al. (2015).
* **gradient magnitude**: ``|w × ∂L/∂w|`` on one minibatch — the saliency of
  Mozer & Smolensky (1989), reintroduced by Lee et al. (2019, SNIP).
* **random**: i.i.d. uniform scores — the straw-man control.

Scores are plain arrays with the same shape as the weight tensor; higher
means more important (kept longer).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..autograd import Tensor, cross_entropy
from ..nn import Module, Parameter

__all__ = [
    "magnitude_scores",
    "gradient_magnitude_scores",
    "random_scores",
    "compute_weight_gradients",
]


def magnitude_scores(params: List[Tuple[str, Parameter]]) -> Dict[str, np.ndarray]:
    """``|w|`` per prunable tensor."""
    return {name: np.abs(p.data) for name, p in params}


def compute_weight_gradients(
    model: Module,
    params: List[Tuple[str, Parameter]],
    inputs: np.ndarray,
    targets: np.ndarray,
) -> Dict[str, np.ndarray]:
    """Cross-entropy gradients of the prunable weights on one minibatch.

    The model is run in eval mode (so BatchNorm running statistics are not
    perturbed by the scoring pass) and restored to its previous mode.
    """
    was_training = model.training
    model.eval()
    model.zero_grad()
    loss = cross_entropy(model(Tensor(inputs)), targets)
    loss.backward()
    grads = {
        name: (p.grad.copy() if p.grad is not None else np.zeros_like(p.data))
        for name, p in params
    }
    model.zero_grad()
    model.train(was_training)
    return grads


def gradient_magnitude_scores(
    model: Module,
    params: List[Tuple[str, Parameter]],
    inputs: np.ndarray,
    targets: np.ndarray,
) -> Dict[str, np.ndarray]:
    """``|w × grad|`` per prunable tensor, on a single minibatch."""
    grads = compute_weight_gradients(model, params, inputs, targets)
    return {name: np.abs(p.data * grads[name]) for name, p in params}


def random_scores(
    params: List[Tuple[str, Parameter]], rng: np.random.Generator
) -> Dict[str, np.ndarray]:
    """I.i.d. uniform scores — thresholding these = uniform random pruning."""
    return {name: rng.random(p.shape) for name, p in params}
