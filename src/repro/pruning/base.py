"""Pruning strategy abstractions and prunable-parameter discovery.

ShrinkBench's central abstraction (§7.1 of the paper): a pruning method is a
callback that, given a model (and optionally a batch of data for gradient-
based scores), produces binary masks for the model's parameter tensors.
Everything else — applying masks, fine-tuning, metrics — is shared
infrastructure, which is what makes methods comparable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..nn import Conv2d, Linear, Module, Parameter

__all__ = ["PruningContext", "PruningStrategy", "prunable_parameters", "find_classifier"]


@dataclass
class PruningContext:
    """Data a strategy may need beyond the model itself.

    Attributes
    ----------
    inputs, targets:
        A single minibatch used to compute gradients for gradient-based
        scores (Appendix C.1: one minibatch).
    rng:
        Seeded generator for stochastic strategies (random pruning).
    """

    inputs: Optional[np.ndarray] = None
    targets: Optional[np.ndarray] = None
    rng: np.random.Generator = field(default_factory=lambda: np.random.default_rng(0))


def find_classifier(model: Module) -> Optional[Module]:
    """Return the model's final pre-softmax layer, if identifiable.

    Models in the zoo expose a ``classifier`` property; otherwise the last
    Linear module in traversal order is assumed to be the classifier.
    """
    clf = getattr(model, "classifier", None)
    if isinstance(clf, Module):
        return clf
    last_linear = None
    for m in model.modules():
        if isinstance(m, Linear):
            last_linear = m
    return last_linear


def prunable_parameters(
    model: Module, prune_classifier: bool = False
) -> List[Tuple[str, Parameter]]:
    """Named weight tensors eligible for pruning.

    Eligible tensors are the ``weight`` parameters of Conv2d and Linear
    layers.  Biases and BatchNorm affine parameters are never pruned
    (standard practice, and what ShrinkBench does).  The classifier layer
    preceding the softmax is excluded unless ``prune_classifier=True``
    (Appendix C.1).
    """
    classifier = None if prune_classifier else find_classifier(model)
    out: List[Tuple[str, Parameter]] = []
    for mod_name, module in model.named_modules():
        if not isinstance(module, (Conv2d, Linear)):
            continue
        if classifier is not None and module is classifier:
            continue
        name = f"{mod_name}.weight" if mod_name else "weight"
        out.append((name, module.weight))
    return out


class PruningStrategy:
    """Base class: subclasses implement :meth:`compute_masks`.

    A strategy maps ``(model, fraction_to_keep, context)`` to a dict of
    ``{parameter_name: binary mask}`` over the prunable tensors.
    """

    #: whether the strategy needs ``context.inputs/targets`` (a minibatch)
    requires_data: bool = False
    #: registry key and display name
    name: str = "base"

    def __init__(self, prune_classifier: bool = False) -> None:
        self.prune_classifier = prune_classifier

    def compute_masks(
        self,
        model: Module,
        fraction_to_keep: float,
        context: Optional[PruningContext] = None,
    ) -> Dict[str, np.ndarray]:
        raise NotImplementedError

    # -- shared helpers ------------------------------------------------
    def _params(self, model: Module) -> List[Tuple[str, Parameter]]:
        params = prunable_parameters(model, self.prune_classifier)
        if not params:
            raise ValueError("model has no prunable parameters")
        return params

    @staticmethod
    def _validate_fraction(fraction: float) -> None:
        if not 0.0 < fraction <= 1.0:
            raise ValueError(
                f"fraction_to_keep must be in (0, 1], got {fraction}"
            )

    def __repr__(self) -> str:
        return f"{self.__class__.__name__}(prune_classifier={self.prune_classifier})"


def masks_from_scores_global(
    scores: Dict[str, np.ndarray], fraction_to_keep: float
) -> Dict[str, np.ndarray]:
    """Keep the top ``fraction`` of weights by score across ALL tensors."""
    flat = np.concatenate([s.ravel() for s in scores.values()])
    k = int(round(flat.size * fraction_to_keep))
    if k <= 0:
        raise ValueError("fraction_to_keep keeps zero weights")
    if k >= flat.size:
        return {n: np.ones_like(s, dtype=np.float32) for n, s in scores.items()}
    # Threshold = k-th largest score; ties broken by first-come order below.
    thresh = np.partition(flat, flat.size - k)[flat.size - k]
    masks: Dict[str, np.ndarray] = {}
    n_kept = 0
    above: Dict[str, np.ndarray] = {}
    for name, s in scores.items():
        m = (s > thresh).astype(np.float32)
        above[name] = m
        n_kept += int(m.sum())
    # Distribute remaining slots among tied (== thresh) entries in order, so
    # the kept count is exactly k regardless of score ties.
    remaining = k - n_kept
    for name, s in scores.items():
        m = above[name]
        if remaining > 0:
            ties = np.flatnonzero((s == thresh) & (m == 0))
            take = ties[:remaining]
            m.reshape(-1)[take] = 1.0  # contiguous: reshape(-1) is a view
            remaining -= len(take)
        masks[name] = m
    return masks


def masks_from_scores_layerwise(
    scores: Dict[str, np.ndarray], fraction_to_keep: float
) -> Dict[str, np.ndarray]:
    """Keep the top ``fraction`` of weights by score within EACH tensor."""
    masks: Dict[str, np.ndarray] = {}
    for name, s in scores.items():
        flat = s.ravel()
        k = int(round(flat.size * fraction_to_keep))
        k = max(k, 1)  # never empty a layer entirely: the net would be dead
        if k >= flat.size:
            masks[name] = np.ones_like(s, dtype=np.float32)
            continue
        thresh = np.partition(flat, flat.size - k)[flat.size - k]
        m = (flat > thresh).astype(np.float32)
        short = k - int(m.sum())
        if short > 0:
            ties = np.flatnonzero((flat == thresh) & (m == 0))
            m[ties[:short]] = 1.0
        masks[name] = m.reshape(s.shape)
    return masks
