"""Pruning schedules (§2.3 "Scheduling").

The paper's own experiments use one-shot pruning followed by fine-tuning,
but catalogs three scheduling families found in the literature:

* **one-shot** — prune everything in a single step (Liu et al. 2019);
* **iterative** — prune a fixed fraction over several prune/fine-tune
  rounds (Han et al. 2015);
* **polynomial decay** — sparsity follows a cubic ramp (Zhu & Gupta 2017,
  used by Gale et al. 2019).

A schedule is a sequence of intermediate compression targets; the
experiment harness interleaves them with fine-tuning epochs.  The ablation
bench ``benchmarks/bench_ablation_schedule.py`` compares them.

``SCHEDULES`` is the shared :class:`repro.registry.Registry` of schedule
families.  Every registered schedule has the normalized signature
``(final_compression, steps) -> list[float]`` so that
:class:`~repro.experiment.prune.ExperimentSpec` can select one by name
(``schedule`` + ``schedule_steps`` fields); :func:`schedule_targets` is the
lookup helper the experiment harness uses.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..registry import Registry

__all__ = [
    "SCHEDULES",
    "schedule_targets",
    "one_shot",
    "iterative_linear",
    "polynomial_decay",
    "compression_to_sparsity",
    "sparsity_to_compression",
]

SCHEDULES = Registry("schedule")


def compression_to_sparsity(compression: float) -> float:
    """Whole-model sparsity implied by a compression ratio (c >= 1)."""
    if compression < 1.0:
        raise ValueError("compression must be >= 1")
    return 1.0 - 1.0 / compression


def sparsity_to_compression(sparsity: float) -> float:
    """Inverse of :func:`compression_to_sparsity`."""
    if not 0.0 <= sparsity < 1.0:
        raise ValueError("sparsity must be in [0, 1)")
    return 1.0 / (1.0 - sparsity)


def one_shot(final_compression: float) -> List[float]:
    """Single step straight to the target."""
    if final_compression < 1.0:
        raise ValueError("compression must be >= 1")
    return [final_compression]


def iterative_linear(final_compression: float, steps: int) -> List[float]:
    """Sparsity increases linearly over ``steps`` prune/fine-tune rounds.

    Interpolates in *sparsity* space (linear in fraction pruned, the
    Han et al. regime), then converts each point back to a compression.
    """
    if steps < 1:
        raise ValueError("steps must be >= 1")
    final_sparsity = compression_to_sparsity(final_compression)
    sparsities = np.linspace(final_sparsity / steps, final_sparsity, steps)
    return [sparsity_to_compression(s) for s in sparsities]


def polynomial_decay(
    final_compression: float, steps: int, power: float = 3.0
) -> List[float]:
    """Zhu & Gupta (2017) cubic sparsity ramp: fast early, slow late.

    ``s_t = s_f · (1 − (1 − t/T)^power)`` for t = 1..T.
    """
    if steps < 1:
        raise ValueError("steps must be >= 1")
    final_sparsity = compression_to_sparsity(final_compression)
    ts = np.arange(1, steps + 1) / steps
    sparsities = final_sparsity * (1.0 - (1.0 - ts) ** power)
    return [sparsity_to_compression(float(s)) for s in sparsities]


# -- registry entries (normalized ``(final_compression, steps)`` signature) --

@SCHEDULES.register("one_shot")
def _one_shot_schedule(final_compression: float, steps: int = 1) -> List[float]:
    """Single prune step regardless of ``steps`` (the paper's own protocol)."""
    return one_shot(final_compression)


@SCHEDULES.register("iterative")
def _iterative_schedule(final_compression: float, steps: int = 3) -> List[float]:
    return iterative_linear(final_compression, steps)


@SCHEDULES.register("polynomial")
def _polynomial_schedule(final_compression: float, steps: int = 3) -> List[float]:
    return polynomial_decay(final_compression, steps)


def schedule_targets(name: str, final_compression: float, steps: int = 1) -> List[float]:
    """Compression targets for a named schedule, ending at the final target."""
    if steps < 1:
        raise ValueError(f"schedule_steps must be >= 1, got {steps}")
    return SCHEDULES.create(name, final_compression, steps)
