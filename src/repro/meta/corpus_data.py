"""The 81-paper corpus database.

The original study aggregates self-reported results from 81 papers.  Its
published artifacts are (a) the names in the Figure 3/5 legends and the
reference list, and (b) exact aggregate statistics.  This module encodes
every *named* paper with hand-curated metadata (year, venue peer-review
status, comparison edges) and synthesizes the remaining corpus entries
deterministically so that the aggregates the paper states exactly are
reproduced exactly:

* 81 papers: 79 modern (post-2010) + OBD (LeCun 1990) + OBS (Hassibi 1993);
* Table 1's fourteen (dataset, architecture) pair counts, verbatim;
* 49 datasets, 132 architectures, 195 unique pairs (§4.2);
* comparison-graph shape (§4.1): >¼ of papers compare to no other method,
  ~¼ compare to exactly one, nearly all to ≤3; Han 2015 is the
  most-compared-to paper; dozens of papers are never compared to;
* 37 of 81 papers report results on the Figure 3 configurations.

Synthetic entries are flagged ``synthetic=True`` and carry no claims about
any real publication.  See DESIGN.md's substitution table.
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Tuple

import numpy as np

from .corpus import Corpus, Paper, ReportedCurve, TradeoffPoint

__all__ = ["build_corpus", "REAL_PAPERS", "TABLE1_COUNTS", "FIG3_PAIRS"]

# ---------------------------------------------------------------------------
# Real papers: (key, label, year, peer_reviewed, compares_to)
# Comparison edges are drawn from the papers' own related-work/evaluation
# sections (as summarized by the survey's figures); they give Han 2015 the
# highest in-degree, matching Figure 2's top histogram.
# ---------------------------------------------------------------------------
REAL_PAPERS: List[Tuple[str, str, int, bool, List[str]]] = [
    # classics (the only pre-2010 work the literature still compares to, §4.1)
    ("lecun1990", "LeCun 1990 (OBD)", 1990, True, []),
    ("hassibi1993", "Hassibi 1993 (OBS)", 1993, True, ["lecun1990"]),
    # 2014-2015
    ("collins2014", "Collins 2014", 2014, False, []),
    ("han2015", "Han 2015", 2015, True, []),
    ("zhang2015", "Zhang 2015", 2015, True, []),
    ("mariet2015", "Mariet 2015", 2015, True, []),
    ("srinivas2015", "Srinivas 2015", 2015, True, []),
    # 2016
    ("figurnov2016", "Figurnov 2016", 2016, True, []),
    ("guo2016", "Guo 2016", 2016, True, ["han2015", "lecun1990"]),
    ("han2016", "Han 2016", 2016, True, ["han2015"]),
    ("hu2016", "Hu 2016", 2016, False, ["han2015"]),
    ("kim2016", "Kim 2016", 2016, True, []),
    ("srinivas2016", "Srinivas 2016", 2016, False, ["srinivas2015"]),
    ("wen2016", "Wen 2016", 2016, True, ["han2015"]),
    ("lebedev2016", "Lebedev 2016", 2016, True, ["lecun1990", "han2015"]),
    ("molchanov2016", "Molchanov 2016", 2016, True, ["lecun1990"]),
    # 2017
    ("alvarez2017", "Alvarez 2017", 2017, True, []),
    ("he2017", "He 2017", 2017, True, ["li2017"]),
    ("li2017", "Li 2017", 2017, True, ["han2015"]),
    ("lin2017", "Lin 2017", 2017, True, ["wen2016"]),
    ("luo2017", "Luo 2017", 2017, True, ["han2015", "li2017"]),
    ("srinivas2017", "Srinivas 2017", 2017, False, []),
    ("yang2017", "Yang 2017", 2017, True, ["han2015"]),
    ("liu2017", "Liu 2017", 2017, True, ["li2017", "han2015"]),
    ("dong2017", "Dong 2017", 2017, True, ["lecun1990"]),
    ("louizos2017", "Louizos 2017", 2017, True, ["han2015"]),
    ("molchanov2017", "Molchanov 2017", 2017, True, ["han2015"]),
    ("changpinyo2017", "Changpinyo 2017", 2017, False, []),
    ("zhu2017", "Zhu 2017", 2017, False, []),
    # 2018
    ("carreira2018", "Carreira-Perpinan 2018", 2018, True, []),
    ("ding2018", "Ding 2018", 2018, True, ["li2017", "luo2017"]),
    ("dubey2018", "Dubey 2018", 2018, True, ["han2015", "han2016"]),
    ("heyang2018", "He, Yang 2018", 2018, True, ["li2017", "he2017"]),
    ("heyihui2018", "He, Yihui 2018", 2018, True, ["he2017"]),
    ("huang2018", "Huang 2018", 2018, True, ["li2017", "wen2016", "luo2017"]),
    ("lin2018", "Lin 2018", 2018, True, ["li2017", "luo2017", "he2017"]),
    ("peng2018", "Peng 2018", 2018, True, ["he2017", "luo2017"]),
    ("suau2018", "Suau 2018", 2018, False, ["li2017", "luo2017"]),
    ("suzuki2018", "Suzuki 2018", 2018, False, []),
    ("yamamoto2018", "Yamamoto 2018", 2018, False, ["he2017", "luo2017"]),
    ("yu2018", "Yu 2018", 2018, True, ["li2017", "molchanov2016"]),
    ("zhuang2018", "Zhuang 2018", 2018, True, ["he2017", "li2017", "luo2017"]),
    ("yao2018", "Yao 2018", 2018, False, ["wen2016"]),
    # 2019
    ("choi2019", "Choi 2019", 2019, False, ["guo2016"]),
    ("gale2019", "Gale 2019", 2019, False, ["han2015", "molchanov2017", "louizos2017", "frankle2019"]),
    ("kim2019", "Kim 2019", 2019, False, ["he2017", "luo2017"]),
    ("liu2019", "Liu 2019", 2019, True, ["han2015", "li2017", "luo2017", "he2017", "huang2018", "franklecarbin2019"]),
    ("luo2019", "Luo 2019", 2019, False, ["luo2017", "he2017"]),
    ("peng2019", "Peng 2019", 2019, True, ["he2017", "luo2017", "zhuang2018"]),
    ("franklecarbin2019", "Frankle & Carbin 2019", 2019, True, ["han2015"]),
    ("frankle2019", "Frankle 2019", 2019, False, ["franklecarbin2019", "han2015", "liu2019"]),
    ("morcos2019", "Morcos 2019", 2019, True, ["franklecarbin2019"]),
    ("lee2019snip", "Lee 2019 (SNIP)", 2019, True, ["han2015", "lecun1990", "hassibi1993", "molchanov2017"]),
    ("lee2019signal", "Lee 2019 (Signal)", 2019, False, ["lee2019snip"]),
    ("he2018soft", "He 2018 (SFP)", 2018, True, ["li2017", "he2017", "luo2017"]),
]

#: Table 1 of the paper, verbatim: pair -> number of papers using it.
TABLE1_COUNTS: Dict[Tuple[str, str], int] = {
    ("ImageNet", "VGG-16"): 22,
    ("ImageNet", "ResNet-50"): 15,
    ("MNIST", "LeNet-5-Caffe"): 14,
    ("CIFAR-10", "ResNet-56"): 14,
    ("MNIST", "LeNet-300-100"): 12,
    ("MNIST", "LeNet-5"): 11,
    ("ImageNet", "CaffeNet"): 10,
    ("CIFAR-10", "CIFAR-VGG"): 8,
    ("ImageNet", "AlexNet"): 8,
    ("ImageNet", "ResNet-18"): 6,
    ("ImageNet", "ResNet-34"): 6,
    ("CIFAR-10", "ResNet-110"): 5,
    ("CIFAR-10", "PreResNet-164"): 4,
    ("CIFAR-10", "ResNet-32"): 4,
}

#: The four Figure 3 configurations (Alex/CaffeNet are one column, footnote 4).
FIG3_PAIRS = [
    ("ImageNet", "VGG-16"),
    ("ImageNet", "ResNet-50"),
    ("ImageNet", "CaffeNet"),
    ("ImageNet", "AlexNet"),
    ("CIFAR-10", "ResNet-56"),
]

# Long-tail name pools (real dataset/architecture names from the wider
# pruning literature; counts are completed programmatically to 49/132).
_RARE_DATASETS = [
    "CIFAR-100", "SVHN", "Tiny-ImageNet", "Fashion-MNIST", "STL-10",
    "Caltech-101", "Caltech-256", "Places365", "CUB-200", "Flowers-102",
    "PASCAL-VOC", "COCO", "Cityscapes", "CamVid", "ADE20K", "KITTI",
    "UCF-101", "HMDB-51", "Kinetics", "Sports-1M", "PTB", "WikiText-2",
    "WikiText-103", "WMT14-EN-DE", "WMT14-EN-FR", "IWSLT14", "LibriSpeech",
    "TIMIT", "WSJ", "Switchboard", "AN4", "VoxCeleb", "LFW", "MegaFace",
    "MS-Celeb-1M", "Market-1501", "DukeMTMC", "MPII", "FLIC", "NYU-Depth-v2",
    "ScanNet", "ModelNet40", "ShapeNet", "MuJoCo-Suite", "Atari-57",
    "Omniglot",
]

_RARE_ARCHITECTURES = [
    "VGG-11", "VGG-13", "VGG-19", "ResNet-101", "ResNet-152", "ResNet-20",
    "PreResNet-56", "PreResNet-110", "WRN-16-8", "WRN-28-10", "WRN-40-4",
    "DenseNet-40", "DenseNet-121", "DenseNet-169", "GoogLeNet",
    "Inception-v3", "Inception-v4", "NIN", "SqueezeNet", "MobileNet-v1",
    "MobileNet-v2", "ShuffleNet", "ShuffleNet-v2", "AlexNet-BN",
    "ZFNet", "OverFeat", "FCN-8s", "SegNet", "U-Net", "DeepLab-v3",
    "PSPNet", "ENet", "ICNet", "Faster-R-CNN", "SSD-300", "SSD-512",
    "YOLO-v2", "YOLO-v3", "RetinaNet", "Mask-R-CNN", "R-FCN",
    "LSTM-2x650", "LSTM-2x1500", "GRU-1x1024", "BiLSTM-CRF", "Seq2Seq-Attn",
    "Transformer-Base", "Transformer-Big", "GNMT", "ConvS2S", "TCN",
    "WaveNet", "DeepSpeech-2", "Listen-Attend-Spell", "Tacotron",
    "C3D", "I3D", "TSN", "R(2+1)D", "P3D", "S3D",
    "PointNet", "PointNet++", "VoxNet", "3D-ResNet-18",
    "CapsNet", "STN-CNN", "Highway-32", "FractalNet", "ResNeXt-29",
    "ResNeXt-50", "SENet-18", "SENet-50", "DPN-92", "PolyNet",
    "NASNet-A", "AmoebaNet-A", "PNASNet-5", "DARTS-CNN", "Proxyless-NAS",
    "EfficientNet-B0", "MnasNet-A1", "FBNet-C", "SinglePath-NAS",
    "PyramidNet-110", "Shake-Shake-26", "DenseNet-BC-100", "MSDNet",
    "DLA-34", "HRNet-W18", "Res2Net-50", "SKNet-50", "GhostNet",
    "ESPNet", "BiSeNet", "Fast-SCNN", "LEDNet", "ERFNet",
    "CRNN", "RARE", "ASTER", "Rosetta-OCR",
    "DQN-CNN", "A3C-CNN", "IMPALA-CNN", "MuZero-Repr",
    "LeNet-5-Sigmoid", "MLP-3x512", "MLP-2x256", "Autoencoder-4x",
    "Sparse-VGG-S", "Conv4", "Conv6", "Conv2",
    "BERT-Base-Enc", "ELMo-BiLM", "AWD-LSTM", "QRNN",
]


def _synthetic_papers(n: int, rng: np.random.Generator) -> List[Paper]:
    """Entries standing in for unnamed members of the surveyed corpus."""
    out = []
    # Year distribution follows the survey's observation of explosive recent
    # growth: most corpus entries are 2016-2019.
    years = rng.choice([2011, 2012, 2013, 2014, 2015, 2016, 2017, 2018, 2019],
                       p=[0.02, 0.02, 0.03, 0.05, 0.08, 0.17, 0.21, 0.24, 0.18],
                       size=n)
    for i in range(n):
        year = int(years[i])
        out.append(
            Paper(
                key=f"corpus{year}{chr(ord('a') + i % 26)}{i // 26}",
                label=f"Corpus-{year}-{i:02d}",
                year=year,
                peer_reviewed=bool(rng.random() < 0.55),
                compares_to=[],
                synthetic=True,
            )
        )
    return out


def _assign_synthetic_edges(papers: List[Paper], rng: np.random.Generator) -> None:
    """Give synthetic papers comparison edges matching §4.1's statistics.

    Targets: >1/4 of the 81 papers have out-degree 0, ~1/4 have out-degree
    1, nearly all ≤3.  Popular targets (Han 2015, Li 2017, ...) absorb most
    in-edges so the top histogram has a long tail and a ~18 in-degree max.
    """
    by_key = {p.key: p for p in papers}
    # Han 2015 already has the highest in-degree from the hand-curated real
    # edges (~Figure 2's max of 18), so synthetic edges target the remaining
    # popular baselines plus a scattered tail.
    popular = ["li2017", "luo2017", "he2017", "wen2016", "han2016",
               "lecun1990", "guo2016", "molchanov2016", "franklecarbin2019"]
    weights = np.array([0.15, 0.13, 0.13, 0.12, 0.12, 0.10, 0.10, 0.08, 0.07])
    weights = weights / weights.sum()
    synth = [p for p in papers if p.synthetic]
    ordered = sorted(papers, key=lambda q: (q.year, q.key))
    in_deg: Dict[str, int] = {p.key: 0 for p in papers}
    for p in papers:
        for t in p.compares_to:
            in_deg[t] = in_deg.get(t, 0) + 1
    # Deterministic out-degree pattern: ~45% zero, ~30% one, ~20% two, 5% three.
    pattern = [0, 1, 0, 2, 1, 0, 1, 2, 0, 3, 0, 1, 2, 0, 1, 0, 2, 1, 0, 0]
    for i, p in enumerate(synth):
        k = pattern[i % len(pattern)]
        if p.year <= 2014:
            k = min(k, 1)  # early papers had little to compare against
        targets: List[str] = []
        attempts = 0
        while len(targets) < k and attempts < 100:
            attempts += 1
            # Roughly half the comparison mass goes to the famous baselines;
            # the rest is scattered across papers nobody else compared to —
            # giving the in-degree histogram its long thin tail (Figure 2).
            if rng.random() < 0.5:
                t = str(rng.choice(popular, p=weights))
            else:
                earlier = [q.key for q in ordered if q.year < p.year and q.key != p.key]
                if not earlier:
                    continue
                zero_in = [q for q in earlier if in_deg.get(q, 0) == 0]
                pool = zero_in if zero_in else earlier
                t = pool[int(rng.integers(len(pool)))]
            if t == p.key or t in targets:
                continue
            if by_key[t].year > p.year:  # no comparing to the future
                continue
            targets.append(t)
            in_deg[t] = in_deg.get(t, 0) + 1
        p.compares_to = targets


def _build_pairs(papers: List[Paper], rng: np.random.Generator) -> None:
    """Assign (dataset, architecture) pairs hitting every §4.2 marginal."""
    by_key = {p.key: p for p in papers}

    # --- 1. the 37-paper pool that covers the Figure 3 configurations ----
    # Real papers named in the Figure 3 legend must be in the pool.
    fig3_named = [
        "collins2014", "han2015", "zhang2015", "figurnov2016", "guo2016",
        "han2016", "hu2016", "kim2016", "srinivas2016", "wen2016",
        "alvarez2017", "he2017", "li2017", "lin2017", "luo2017",
        "srinivas2017", "yang2017", "carreira2018", "ding2018", "dubey2018",
        "heyang2018", "heyihui2018", "huang2018", "lin2018", "peng2018",
        "suau2018", "suzuki2018", "yamamoto2018", "yu2018", "zhuang2018",
        "choi2019", "gale2019", "kim2019", "liu2019", "luo2019", "peng2019",
        "frankle2019",
    ]
    assert len(fig3_named) == 37, len(fig3_named)
    pool = [by_key[k] for k in fig3_named]

    # Figure 3 pair usage comes from this pool only, so exactly 37 papers
    # touch those configurations.  Assign usages round-robin, respecting
    # the exact Table 1 counts.
    fig3_targets = [(pair, TABLE1_COUNTS[pair]) for pair in FIG3_PAIRS]
    idx = 0
    for pair, count in fig3_targets:
        assigned = 0
        scan = 0
        while assigned < count:
            p = pool[(idx + scan) % len(pool)]
            scan += 1
            if pair in p.pairs:
                continue
            # CaffeNet and AlexNet columns are merged in Figure 3; avoid
            # giving one paper both (footnote 4: it is often unclear which
            # model a paper used — they report one or the other).
            if pair[1] in ("CaffeNet", "AlexNet") and any(
                a in ("CaffeNet", "AlexNet") for _, a in p.pairs
            ):
                continue
            # ResNets postdate 2015; don't assign them to older papers.
            if "ResNet" in pair[1] and p.year < 2016:
                continue
            p.pairs.append(pair)
            assigned += 1
        idx += count

    # --- 2. remaining Table 1 pairs: any paper may use them -----------------
    rest = [
        (pair, count)
        for pair, count in TABLE1_COUNTS.items()
        if pair not in FIG3_PAIRS
    ]
    everyone = sorted(papers, key=lambda p: (p.synthetic, p.key))
    idx = 3
    for pair, count in rest:
        assigned = 0
        scan = 0
        while assigned < count:
            p = everyone[(idx + scan) % len(everyone)]
            scan += 1
            if pair in p.pairs or p.classic:
                continue
            if "ResNet" in pair[1] and p.year < 2016:
                continue
            if len(p.pairs) >= 4:  # keep most papers at <=4 pairs here
                continue
            p.pairs.append(pair)
            assigned += 1
        idx += 2 * count + 1

    # --- 3. long tail: exact dataset/arch/pair totals -----------------------
    # Totals required: 49 datasets, 132 architectures, 195 pairs — of which
    # the two classic papers contribute 2 datasets, 2 architectures, 2 pairs
    # (their 1989/1993-era benchmarks), assigned further below.
    common_datasets = {d for d, _ in TABLE1_COUNTS}
    common_archs = {a for _, a in TABLE1_COUNTS}
    need_datasets = 49 - len(common_datasets) - 2
    need_archs = 132 - len(common_archs) - 2
    rare_datasets = _RARE_DATASETS[:need_datasets]
    rare_archs = _RARE_ARCHITECTURES[:need_archs]
    if len(rare_datasets) < need_datasets or len(rare_archs) < need_archs:
        raise AssertionError("name pools too small for corpus marginals")

    tail_pairs: List[Tuple[str, str]] = []
    # MobileNet-v2 pruning on ImageNet appears in Figure 1 ("MobileNet-v2
    # Pruned"); pin the pair and its users (He Yihui 2018 = AMC, Zhu 2017).
    by_key["heyihui2018"].pairs.append(("ImageNet", "MobileNet-v2"))
    by_key["zhu2017"].pairs.append(("ImageNet", "MobileNet-v2"))
    tail_pairs.append(("ImageNet", "MobileNet-v2"))
    # every other rare architecture appears once, on a cycling common dataset
    ds_cycle = ["CIFAR-10", "ImageNet", "CIFAR-100", "MNIST"]
    for i, arch in enumerate(rare_archs):
        if arch == "MobileNet-v2":
            continue
        ds = ds_cycle[i % len(ds_cycle)]
        tail_pairs.append((ds, arch))
    # every rare dataset appears once, on a cycling common architecture
    arch_cycle = ["VGG-16", "ResNet-50", "AlexNet", "ResNet-18", "LeNet-5"]
    for i, ds in enumerate(rare_datasets):
        if ds == "CIFAR-100":
            continue  # already introduced via the arch tail above
        tail_pairs.append((ds, arch_cycle[i % len(arch_cycle)]))
    # top up to exactly 195 total unique pairs with rare x rare combos
    # (+2 accounts for the classic papers' pairs added below)
    total_so_far = len(TABLE1_COUNTS) + len(tail_pairs) + 2
    extra_needed = 195 - total_so_far
    if extra_needed < 0:
        raise AssertionError("too many tail pairs")
    for i in range(extra_needed):
        ds = rare_datasets[(7 * i + 3) % len(rare_datasets)]
        arch = rare_archs[(11 * i + 5) % len(rare_archs)]
        pair = (ds, arch)
        while pair in tail_pairs:
            arch = rare_archs[(rare_archs.index(arch) + 1) % len(rare_archs)]
            pair = (ds, arch)
        tail_pairs.append(pair)

    # distribute the tail: modern papers only, round-robin with a quota
    # pattern that reproduces Figure 4's pairs-per-paper histogram shape.
    modern = [p for p in everyone if not p.classic]
    quota_pattern = [1, 2, 1, 3, 1, 2, 1, 1, 4, 2, 1, 3, 1, 2, 1, 5, 1, 2, 3, 1]
    quotas = {
        p.key: quota_pattern[i % len(quota_pattern)] for i, p in enumerate(modern)
    }
    # the classics evaluated on tiny problems of their era
    by_key["lecun1990"].pairs.append(("MNIST-precursor", "LeNet-1989"))
    by_key["hassibi1993"].pairs.append(("MONK-problems", "MLP-2x15"))
    tail_pairs.extend([("MNIST-precursor", "LeNet-1989"), ("MONK-problems", "MLP-2x15")])

    i = 0
    for pair in tail_pairs:
        if pair in (("MNIST-precursor", "LeNet-1989"), ("MONK-problems", "MLP-2x15")):
            continue
        placed = False
        scan = 0
        while not placed and scan < 4 * len(modern):
            p = modern[(i + scan) % len(modern)]
            scan += 1
            if quotas[p.key] <= 0 or pair in p.pairs:
                continue
            p.pairs.append(pair)
            quotas[p.key] -= 1
            placed = True
        if not placed:  # quotas exhausted; relax (still deterministic)
            modern[i % len(modern)].pairs.append(pair)
        i += 1

    # every modern paper must evaluate on *something*
    leftovers = [p for p in modern if not p.pairs]
    for j, p in enumerate(leftovers):
        pair = tail_pairs[(13 * j) % len(tail_pairs)]
        if pair not in p.pairs:
            p.pairs.append(pair)


# ---------------------------------------------------------------------------
# Self-reported tradeoff curves
# ---------------------------------------------------------------------------

#: methods-per-paper, matching the named variants in the Figure 3/5 legends.
_METHOD_VARIANTS = {
    "he2017": ["He 2017", "He 2017, 3C"],
    "dubey2018": ["AP+Coreset-A", "AP+Coreset-K", "AP+Coreset-S"],
    "heyang2018": ["He, Yang 2018", "He, Yang 2018, Fine-Tune"],
    "suau2018": ["PFA-En", "PFA-KL"],
    "gale2019": ["Magnitude", "Magnitude-v2", "SparseVD"],
    "liu2019": ["Magnitude", "Scratch-B"],
    "peng2019": ["CCP", "CCP-AC"],
    "frankle2019": [
        "PruneAtEpoch=15", "PruneAtEpoch=90", "ResetToEpoch=10", "ResetToEpoch=R",
    ],
}

#: reference dense baselines for generating plausible reported numbers.
_ARCH_BASELINES = {
    # architecture: (params M, GFLOPs (multiply-adds), top1 %, top5 %)
    "VGG-16": (138.4, 15.5, 71.6, 90.4),
    "ResNet-50": (25.6, 4.1, 76.1, 92.9),
    "CaffeNet": (60.9, 0.72, 57.4, 80.4),
    "AlexNet": (61.0, 0.72, 56.6, 79.1),
    "ResNet-18": (11.7, 1.8, 69.8, 89.1),
    "ResNet-34": (21.8, 3.7, 73.3, 91.4),
    "MobileNet-v2": (3.5, 0.30, 72.0, 91.0),
    "ResNet-56": (0.85, 0.125, 93.0, 99.7),
    "CIFAR-VGG": (14.7, 0.31, 92.5, 99.7),
    "ResNet-110": (1.7, 0.25, 93.6, 99.7),
    "ResNet-32": (0.46, 0.069, 92.6, 99.7),
    "PreResNet-164": (1.7, 0.25, 94.5, 99.8),
    "LeNet-5": (0.43, 0.0023, 99.2, 100.0),
    "LeNet-5-Caffe": (0.43, 0.0023, 99.1, 100.0),
    "LeNet-300-100": (0.27, 0.00027, 98.4, 100.0),
}

#: papers whose ResNet-50 entries are unstructured magnitude variants
#: (the Figure 5 top panel).
_MAGNITUDE_VARIANT_METHODS = {
    ("gale2019", "Magnitude"), ("gale2019", "Magnitude-v2"),
    ("liu2019", "Magnitude"),
    ("frankle2019", "PruneAtEpoch=15"), ("frankle2019", "PruneAtEpoch=90"),
    ("frankle2019", "ResetToEpoch=10"), ("frankle2019", "ResetToEpoch=R"),
}


def _paper_quality(key: str, rng: np.random.Generator) -> Tuple[float, float, float]:
    """Per-paper curve shape: (free_compression, drop_rate, quality)."""
    # crc32, not hash(): builtin str hashing is randomized per process
    # (PYTHONHASHSEED), which would make the "deterministic" corpus flaky.
    r = np.random.default_rng(zlib.crc32(key.encode()))
    free = float(r.uniform(1.0, 3.0))  # compression that costs ~nothing
    drop = float(r.uniform(0.35, 1.4))  # accuracy pp lost per extra octave
    quality = float(r.normal(0.3, 0.35))  # small gains are common (§3.2)
    return free, drop, quality


def _make_curves(papers: List[Paper], rng: np.random.Generator) -> List[ReportedCurve]:
    """Synthesize self-reported tradeoff curves for every evaluated pair.

    Calibration targets: most curves have 1-3 points (Figure 4 bottom);
    different papers report different metric subsets (Figure 3's sparse
    panels); magnitude-based methods on ResNet-50 span a band comparable to
    the spread across all other methods (Figure 5, §4.5).
    """
    curves: List[ReportedCurve] = []
    for p in papers:
        if p.classic:
            continue
        methods = _METHOD_VARIANTS.get(p.key, [p.label])
        r = np.random.default_rng(zlib.crc32(("curves:" + p.key).encode()))
        for pair in p.pairs:
            ds, arch = pair
            if arch not in _ARCH_BASELINES:
                continue  # long-tail pairs: no standardized numbers to report
            base_params, base_flops, base_top1, base_top5 = _ARCH_BASELINES[arch]
            for method in methods:
                free, drop, quality = _paper_quality(p.key + method, r)
                # points per curve: mostly 1-3, occasionally more (Fig 4)
                n_points = int(r.choice([1, 1, 1, 2, 2, 3, 3, 4, 5], p=[0.22, 0.2, 0.1, 0.16, 0.1, 0.08, 0.06, 0.05, 0.03]))
                if p.key in ("gale2019", "frankle2019", "han2015"):
                    n_points = max(n_points, int(r.integers(4, 9)))
                comps = np.sort(2.0 ** r.uniform(0.3, 4.8, size=n_points))
                pts = []
                for c in comps:
                    octaves_past_free = max(0.0, np.log2(c) - np.log2(free))
                    d_top1 = quality - drop * octaves_past_free + float(r.normal(0, 0.25))
                    d_top1 = float(np.clip(d_top1, -10.0, 2.5))
                    d_top5 = float(d_top1 * 0.6 + r.normal(0, 0.15))
                    # speedup sub-linear in compression for most methods
                    sp_exp = float(r.uniform(0.55, 0.95))
                    speedup = float(c**sp_exp * np.exp(r.normal(0, 0.08)))
                    # papers report incomplete metric subsets (§4.4)
                    report_comp = r.random() < 0.85
                    report_speed = r.random() < 0.55
                    if not report_comp and not report_speed:
                        report_comp = True
                    report_top5 = ds == "ImageNet" and r.random() < 0.6
                    report_top1 = not report_top5 or r.random() < 0.75
                    pts.append(
                        TradeoffPoint(
                            compression=float(c) if report_comp else None,
                            speedup=speedup if report_speed else None,
                            delta_top1=d_top1 if report_top1 else None,
                            delta_top5=d_top5 if report_top5 else None,
                            initial_params=(
                                base_params * 1e6 * float(np.exp(r.normal(0, 0.05)))
                                if r.random() < 0.5
                                else None
                            ),
                            initial_flops=(
                                base_flops * 1e9 * float(np.exp(r.normal(0, 0.35)))
                                if r.random() < 0.4
                                else None
                            ),
                        )
                    )
                curves.append(
                    ReportedCurve(
                        paper_key=p.key,
                        method=method,
                        dataset=ds,
                        architecture=arch,
                        points=pts,
                    )
                )
    return curves


def build_corpus(seed: int = 2020) -> Corpus:
    """Construct the full 81-paper corpus with all published marginals."""
    rng = np.random.default_rng(seed)
    papers = [
        Paper(key=k, label=lbl, year=y, peer_reviewed=pr,
              compares_to=list(edges), classic=(y < 2010))
        for k, lbl, y, pr, edges in REAL_PAPERS
    ]
    n_synth = 81 - len(papers)
    if n_synth < 0:
        raise AssertionError("more named papers than corpus size")
    papers.extend(_synthetic_papers(n_synth, rng))
    _assign_synthetic_edges(papers, rng)
    _build_pairs(papers, rng)
    curves = _make_curves(papers, rng)
    corpus = Corpus(papers, curves)

    # -- invariants the paper states exactly -----------------------------
    assert len(corpus) == 81, len(corpus)
    counts = corpus.pair_usage_counts()
    for pair, want in TABLE1_COUNTS.items():
        got = counts.get(pair, 0)
        assert got == want, (pair, got, want)
    over = {
        pair: c
        for pair, c in counts.items()
        if c >= 4 and pair not in TABLE1_COUNTS
    }
    assert not over, f"non-Table-1 pairs crossed the >=4 threshold: {over}"
    assert len(corpus.datasets()) == 49, len(corpus.datasets())
    assert len(corpus.architectures()) == 132, len(corpus.architectures())
    assert len(corpus.pairs()) == 195, len(corpus.pairs())
    return corpus
