"""Dataset/architecture/metric fragmentation analysis (§4.2-§4.4).

Regenerates:

* **Table 1** — (dataset, architecture) pairs used by ≥4 of the 81 papers;
* **Figure 4 top** — histogram of pairs-per-paper (MNIST excluded);
* **Figure 4 bottom** — histogram of points-per-tradeoff-curve on the four
  most common non-MNIST configurations;
* the §4.2 headline counts (49 datasets, 132 architectures, 195 pairs).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .corpus import Corpus, Pair
from .corpus_data import FIG3_PAIRS

__all__ = [
    "table1",
    "corpus_stats",
    "pairs_per_paper_histogram",
    "points_per_curve_histogram",
]


def table1(corpus: Corpus, min_papers: int = 4) -> List[Tuple[str, str, int]]:
    """(dataset, architecture, paper-count) rows, most-used first."""
    counts = corpus.pair_usage_counts()
    rows = [
        (ds, arch, n)
        for (ds, arch), n in counts.items()
        if n >= min_papers
    ]
    rows.sort(key=lambda r: (-r[2], r[0], r[1]))
    return rows


def corpus_stats(corpus: Corpus) -> Dict[str, int]:
    """§4.2 headline counts."""
    return {
        "n_papers": len(corpus),
        "n_datasets": len(corpus.datasets()),
        "n_architectures": len(corpus.architectures()),
        "n_pairs": len(corpus.pairs()),
    }


def pairs_per_paper_histogram(
    corpus: Corpus, exclude_mnist: bool = True
) -> Dict[int, Dict[str, int]]:
    """Figure 4 top: #pairs used per paper, split by peer-review status."""
    hist: Dict[int, Dict[str, int]] = {}
    for p in corpus.papers.values():
        if p.classic:
            continue
        pairs = set(p.pairs)
        if exclude_mnist:
            pairs = {pr for pr in pairs if pr[0] != "MNIST"}
        n = len(pairs)
        if n == 0:
            continue
        bucket = hist.setdefault(n, {"peer_reviewed": 0, "other": 0})
        bucket["peer_reviewed" if p.peer_reviewed else "other"] += 1
    return dict(sorted(hist.items()))


def points_per_curve_histogram(
    corpus: Corpus, pairs: List[Pair] = None
) -> Dict[int, Dict[str, int]]:
    """Figure 4 bottom: #points per curve on the common configurations."""
    pairs = pairs if pairs is not None else FIG3_PAIRS
    hist: Dict[int, Dict[str, int]] = {}
    for curve in corpus.curves:
        if curve.pair not in pairs:
            continue
        paper = corpus.papers[curve.paper_key]
        n = curve.n_points()
        if n == 0:
            continue
        bucket = hist.setdefault(n, {"peer_reviewed": 0, "other": 0})
        bucket["peer_reviewed" if paper.peer_reviewed else "other"] += 1
    return dict(sorted(hist.items()))
