"""Appendix B's evaluation checklist as an executable audit.

The paper closes with a checklist for evaluating pruning methods.  This
module turns the *results*-facing items into automated checks over a
:class:`~repro.experiment.ResultSet`, so a benchmark run can be audited for
the very pitfalls the paper catalogs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..experiment.results import ResultSet

__all__ = ["ChecklistItem", "audit_results"]


@dataclass
class ChecklistItem:
    """One checklist line with its verdict."""

    item: str
    passed: bool
    detail: str = ""

    def __str__(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        return f"[{mark}] {self.item}" + (f" — {self.detail}" if self.detail else "")


def audit_results(results: ResultSet) -> List[ChecklistItem]:
    """Run the Appendix B result checks against a result set."""
    items: List[ChecklistItem] = []
    comps = [c for c in results.compressions() if c > 1]

    # "Data is presented across a range of compression ratios, including
    #  extreme compression ratios at which accuracy declines substantially."
    spread = len(comps) >= 5
    items.append(
        ChecklistItem(
            "range of compression ratios (>=5 operating points)",
            spread,
            f"points: {comps}",
        )
    )
    if results.results:
        max_c = max(comps) if comps else 1
        hi = [r for r in results if r.compression == max_c]
        declined = any(r.top1 < r.baseline_top1 - 0.02 for r in hi)
        items.append(
            ChecklistItem(
                "includes extreme ratios where accuracy declines substantially",
                declined,
                f"max ratio {max_c}x",
            )
        )

    # "Data specifies the raw accuracy of the network at each point."
    raw = all(r.top1 > 0 for r in results) and all(
        r.baseline_top1 > 0 for r in results
    )
    items.append(ChecklistItem("raw accuracy reported at each point", raw))

    # "Data includes multiple runs with separate seeds."
    seeds = results.seeds()
    items.append(
        ChecklistItem(
            "multiple runs with separate random seeds",
            len(seeds) >= 3,
            f"seeds: {seeds}",
        )
    )

    # "Data includes ... a measure of central tendency and variation."
    # Computable iff multiple seeds exist per (strategy, compression).
    computable = True
    for strat in results.strategies():
        for comp in results.compressions():
            n = len(results.filter(strategy=strat, compression=comp))
            if 0 < n < 2:
                computable = False
    items.append(
        ChecklistItem(
            "error bars computable (>=2 runs per configuration)", computable
        )
    )

    # "Data includes FLOP-counts if the paper makes arguments about
    #  efficiency."
    flops = all(r.dense_flops > 0 and r.effective_flops >= 0 for r in results)
    items.append(ChecklistItem("FLOP counts reported", flops))

    # "comparison to a random pruning baseline / a magnitude baseline."
    strategies = set(results.strategies())
    items.append(
        ChecklistItem(
            "random pruning baseline present",
            bool(strategies & {"random", "layer_random"}),
            f"strategies: {sorted(strategies)}",
        )
    )
    items.append(
        ChecklistItem(
            "magnitude pruning baseline present",
            bool(strategies & {"global_weight", "layer_weight"}),
        )
    )

    # "report both compression ratio and theoretical speedup" (§6)
    both = all(
        r.actual_compression >= 1.0 and r.theoretical_speedup >= 1.0
        for r in results
    )
    items.append(ChecklistItem("both compression and speedup reported", both))
    return items
