"""Appendix B's evaluation checklist as an executable audit.

The paper closes with a checklist for evaluating pruning methods.  This
module turns the *results*-facing items into automated checks over a
:class:`~repro.analysis.ResultFrame` (a :class:`~repro.experiment.ResultSet`
or plain row iterable is converted), so a benchmark run can be audited for
the very pitfalls the paper catalogs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..analysis.frame import ResultFrame

__all__ = ["ChecklistItem", "audit_results"]


@dataclass
class ChecklistItem:
    """One checklist line with its verdict."""

    item: str
    passed: bool
    detail: str = ""

    def __str__(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        return f"[{mark}] {self.item}" + (f" — {self.detail}" if self.detail else "")


def audit_results(results) -> List[ChecklistItem]:
    """Run the Appendix B result checks against a result set/frame."""
    frame = (
        results if isinstance(results, ResultFrame)
        else ResultFrame.from_results(results)
    )
    items: List[ChecklistItem] = []
    comps = [c for c in frame.unique("compression") if c > 1] if len(frame) else []
    top1 = np.asarray(frame["top1"], dtype=np.float64)
    base1 = np.asarray(frame["baseline_top1"], dtype=np.float64)

    # "Data is presented across a range of compression ratios, including
    #  extreme compression ratios at which accuracy declines substantially."
    spread = len(comps) >= 5
    items.append(
        ChecklistItem(
            "range of compression ratios (>=5 operating points)",
            spread,
            f"points: {comps}",
        )
    )
    if len(frame):
        max_c = max(comps) if comps else 1
        hi = frame.mask(compression=max_c)
        declined = bool((top1[hi] < base1[hi] - 0.02).any())
        items.append(
            ChecklistItem(
                "includes extreme ratios where accuracy declines substantially",
                declined,
                f"max ratio {max_c}x",
            )
        )

    # "Data specifies the raw accuracy of the network at each point."
    raw = bool((top1 > 0).all()) and bool((base1 > 0).all())
    items.append(ChecklistItem("raw accuracy reported at each point", raw))

    # "Data includes multiple runs with separate seeds."
    seeds = frame.unique("seed") if len(frame) else []
    items.append(
        ChecklistItem(
            "multiple runs with separate random seeds",
            len(seeds) >= 3,
            f"seeds: {seeds}",
        )
    )

    # "Data includes ... a measure of central tendency and variation."
    # Computable iff multiple seeds exist per (strategy, compression).
    counts = (
        frame.aggregate(by=("strategy", "compression"), values=(), stats=())
        if len(frame) else None
    )
    computable = counts is None or bool((np.asarray(counts["n"]) >= 2).all())
    items.append(
        ChecklistItem(
            "error bars computable (>=2 runs per configuration)", computable
        )
    )

    # "Data includes FLOP-counts if the paper makes arguments about
    #  efficiency."
    dense = np.asarray(frame["dense_flops"], dtype=np.float64)
    effective = np.asarray(frame["effective_flops"], dtype=np.float64)
    flops = bool((dense > 0).all()) and bool((effective >= 0).all())
    items.append(ChecklistItem("FLOP counts reported", flops))

    # "comparison to a random pruning baseline / a magnitude baseline."
    strategies = set(frame.unique("strategy")) if len(frame) else set()
    items.append(
        ChecklistItem(
            "random pruning baseline present",
            bool(strategies & {"random", "layer_random"}),
            f"strategies: {sorted(strategies)}",
        )
    )
    items.append(
        ChecklistItem(
            "magnitude pruning baseline present",
            bool(strategies & {"global_weight", "layer_weight"}),
        )
    )

    # "report both compression ratio and theoretical speedup" (§6)
    comp = np.asarray(frame["actual_compression"], dtype=np.float64)
    speed = np.asarray(frame["theoretical_speedup"], dtype=np.float64)
    both = bool((comp >= 1.0).all()) and bool((speed >= 1.0).all())
    items.append(ChecklistItem("both compression and speedup reported", both))
    return items
