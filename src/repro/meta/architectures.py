"""Published reference statistics for unpruned architectures (Figure 1).

Figure 1 plots pruned models against the efficiency/accuracy frontier of
architecture *families*.  The original numbers come from Tan & Le (2019)
and Bianco et al. (2018); the values below are those publicly reported
figures (params in millions, multiply-adds in billions, ImageNet Top-1/Top-5
in percent).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

__all__ = ["ArchPoint", "FAMILIES", "family_curve"]


@dataclass(frozen=True)
class ArchPoint:
    """One unpruned architecture's published operating point."""

    name: str
    params_m: float  # parameters, millions
    flops_g: float  # multiply-adds, billions
    top1: float
    top5: float


#: family name -> members ordered by size (the Figure 1 curves).
FAMILIES: Dict[str, List[ArchPoint]] = {
    "VGG": [
        ArchPoint("VGG-11", 132.9, 7.6, 69.0, 88.6),
        ArchPoint("VGG-13", 133.0, 11.3, 69.9, 89.2),
        ArchPoint("VGG-16", 138.4, 15.5, 71.6, 90.4),
        ArchPoint("VGG-19", 143.7, 19.6, 72.4, 90.9),
    ],
    "ResNet": [
        ArchPoint("ResNet-18", 11.7, 1.8, 69.8, 89.1),
        ArchPoint("ResNet-34", 21.8, 3.7, 73.3, 91.4),
        ArchPoint("ResNet-50", 25.6, 4.1, 76.1, 92.9),
        ArchPoint("ResNet-101", 44.5, 7.8, 77.4, 93.5),
        ArchPoint("ResNet-152", 60.2, 11.5, 78.3, 94.0),
    ],
    "MobileNet-v2": [
        ArchPoint("MobileNet-v2-0.5", 2.0, 0.097, 65.4, 86.4),
        ArchPoint("MobileNet-v2", 3.5, 0.30, 72.0, 91.0),
        ArchPoint("MobileNet-v2-1.4", 6.1, 0.58, 74.7, 92.5),
    ],
    "EfficientNet": [
        ArchPoint("EfficientNet-B0", 5.3, 0.39, 77.1, 93.3),
        ArchPoint("EfficientNet-B1", 7.8, 0.70, 79.1, 94.4),
        ArchPoint("EfficientNet-B2", 9.2, 1.0, 80.1, 94.9),
        ArchPoint("EfficientNet-B3", 12.0, 1.8, 81.6, 95.7),
        ArchPoint("EfficientNet-B4", 19.0, 4.2, 82.9, 96.4),
    ],
}

#: architecture -> (Top-1, Top-5) dense baselines used to de-normalize
#: reported accuracy *changes* into absolute accuracies.
IMAGENET_BASELINES: Dict[str, tuple] = {
    "VGG-16": (71.6, 90.4),
    "ResNet-50": (76.1, 92.9),
    "ResNet-18": (69.8, 89.1),
    "ResNet-34": (73.3, 91.4),
    "CaffeNet": (57.4, 80.4),
    "AlexNet": (56.6, 79.1),
    "MobileNet-v2": (72.0, 91.0),
}


def family_curve(family: str, x: str = "params") -> Dict[str, List[float]]:
    """Return the family frontier as {xs, top1s, top5s} with x in raw units."""
    if family not in FAMILIES:
        raise KeyError(f"unknown family {family!r}; have {sorted(FAMILIES)}")
    pts = FAMILIES[family]
    xs = [p.params_m * 1e6 if x == "params" else p.flops_g * 1e9 for p in pts]
    return {
        "xs": xs,
        "top1s": [p.top1 for p in pts],
        "top5s": [p.top5 for p in pts],
        "names": [p.name for p in pts],
    }
