"""Cross-paper tradeoff analyses: Figures 1, 3 and 5.

* **Figure 1** — pruned models (normalized per footnote 1) against the
  published frontier of each architecture family on ImageNet.
* **Figure 3** — the fragmentation panels: the four most common
  configurations × {compression, speedup} × {Top-1, Top-5}, one reported
  curve per method.
* **Figure 5** — ResNet-50/ImageNet split into unstructured
  magnitude-based variants (top) vs all other methods (bottom), showing
  that fine-tuning/implementation variation rivals cross-method variation.

Every panel is a declarative query over the columnar
:func:`corpus_frame` (one row per self-reported operating point) — the
same :class:`~repro.analysis.ResultFrame` machinery experiment sweeps
report through, so "which points have both metrics" is a vectorized
filter and "one curve per method" is a group-by, not bespoke
dict-bucketing per figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..analysis.frame import ResultFrame
from .architectures import FAMILIES, IMAGENET_BASELINES, family_curve
from .corpus import Corpus
from .corpus_data import _MAGNITUDE_VARIANT_METHODS
from .normalization import normalized_results, standardized_initial_sizes

__all__ = [
    "corpus_frame",
    "fig1_series",
    "fig3_panels",
    "fig5_split",
    "PanelCurve",
]


@dataclass
class PanelCurve:
    """One method's series inside one panel."""

    label: str
    xs: List[float]
    ys: List[float]
    paper_key: str = ""
    year: int = 0


def corpus_frame(corpus: Corpus) -> ResultFrame:
    """The corpus' self-reported points as one columnar frame.

    One row per :class:`~repro.meta.corpus.TradeoffPoint`, with the curve
    identity alongside: ``curve_id`` (position in ``corpus.curves``, the
    group key for "one reported curve per method"), ``paper_key``,
    ``method``, ``label`` (paper display label), ``year``, ``dataset``,
    ``architecture``, and the four metrics ``compression`` / ``speedup`` /
    ``delta_top1`` / ``delta_top5`` (NaN where a paper does not report the
    metric — the sparsity §4.4 highlights, selectable via
    ``frame.filter(compression=np.isfinite)``).
    """
    records = []
    for curve_id, rc in enumerate(corpus.curves):
        paper = corpus.papers[rc.paper_key]
        for pt in rc.points:
            records.append(
                {
                    "curve_id": curve_id,
                    "paper_key": rc.paper_key,
                    "method": rc.method,
                    "label": paper.label,
                    "year": paper.year,
                    "dataset": rc.dataset,
                    "architecture": rc.architecture,
                    "compression": pt.compression,
                    "speedup": pt.speedup,
                    "delta_top1": pt.delta_top1,
                    "delta_top5": pt.delta_top5,
                }
            )
    return ResultFrame.from_records(
        records,
        columns=[
            "curve_id", "paper_key", "method", "label", "year", "dataset",
            "architecture", "compression", "speedup", "delta_top1",
            "delta_top5",
        ],
    )


def _panel_curves(sub: ResultFrame, x: str, y: str, label_col: str = "method") -> List[PanelCurve]:
    """One :class:`PanelCurve` per reported curve with any (x, y) points,
    in corpus order, each sorted along x."""
    curves: List[PanelCurve] = []
    for _, cf in sub.group_by("curve_id", sort=False):
        cf = cf.sort_by(x)
        curves.append(
            PanelCurve(
                label=str(cf[label_col][0]),
                xs=[float(v) for v in cf[x]],
                ys=[float(v) for v in cf[y]],
                paper_key=str(cf["paper_key"][0]),
                year=int(cf["year"][0]),
            )
        )
    return curves


def fig1_series(corpus: Corpus, x_metric: str = "params", y_metric: str = "top1"):
    """Figure 1 data: family frontiers + normalized pruned points.

    Returns ``(families, pruned)`` where families maps family name to its
    frontier curve and pruned maps family name to normalized points of
    pruned members of that family.
    """
    families = {
        name: family_curve(name, x="params" if x_metric == "params" else "flops")
        for name in FAMILIES
    }
    member_of = {
        "VGG-16": "VGG",
        "ResNet-50": "ResNet",
        "ResNet-18": "ResNet",
        "ResNet-34": "ResNet",
        "MobileNet-v2": "MobileNet-v2",
    }
    xkey = "params" if x_metric == "params" else "flops"
    frame = ResultFrame.from_records(
        normalized_results(corpus, IMAGENET_BASELINES)
    )
    pruned: Dict[str, Dict[str, List[float]]] = {}
    if not len(frame) or xkey not in frame or y_metric not in frame:
        return families, pruned
    sub = frame.filter(
        dataset="ImageNet",
        architecture=list(member_of),
        **{xkey: np.isfinite, y_metric: np.isfinite},
    )
    sub = sub.with_columns(
        family=[member_of[a] for a in sub["architecture"]]
    )
    for fam, ff in sub.group_by("family", sort=False):
        pruned[fam] = {
            "xs": [float(v) for v in ff[xkey]],
            "ys": [float(v) for v in ff[y_metric]],
        }
    return families, pruned


#: Figure 3's panel grid: columns are configurations, metric pairs are rows.
FIG3_COLUMNS: List[Tuple[str, List[Tuple[str, str]]]] = [
    ("VGG-16 on ImageNet", [("ImageNet", "VGG-16")]),
    ("Alex/CaffeNet on ImageNet", [("ImageNet", "AlexNet"), ("ImageNet", "CaffeNet")]),
    ("ResNet-50 on ImageNet", [("ImageNet", "ResNet-50")]),
    ("ResNet-56 on CIFAR-10", [("CIFAR-10", "ResNet-56")]),
]

FIG3_METRIC_ROWS: List[Tuple[str, str]] = [
    ("compression", "delta_top1"),
    ("compression", "delta_top5"),
    ("speedup", "delta_top1"),
    ("speedup", "delta_top5"),
]


def fig3_panels(corpus: Corpus) -> Dict[Tuple[str, str, str], List[PanelCurve]]:
    """All Figure 3 panels: {(column, x_metric, y_metric): [curves]}.

    A method appears in a panel only for the points where it reports both
    the panel's metrics — reproducing the sparsity the paper highlights.
    Each panel is one frame query: filter to the configuration and to rows
    where both metrics are finite, group by reported curve, sort along x.
    """
    frame = corpus_frame(corpus)
    panels: Dict[Tuple[str, str, str], List[PanelCurve]] = {}
    for col_label, pairs in FIG3_COLUMNS:
        for x_metric, y_metric in FIG3_METRIC_ROWS:
            if "top5" in y_metric and col_label == "ResNet-56 on CIFAR-10":
                continue  # CIFAR-10 has 10 classes; Top-5 is not reported
            curves: List[PanelCurve] = []
            for dataset, architecture in pairs:
                sub = frame.filter(
                    dataset=dataset,
                    architecture=architecture,
                    **{x_metric: np.isfinite, y_metric: np.isfinite},
                )
                curves.extend(_panel_curves(sub, x_metric, y_metric))
            if curves:
                panels[(col_label, x_metric, y_metric)] = curves
    return panels


def fig5_split(corpus: Corpus) -> Tuple[List[PanelCurve], List[PanelCurve]]:
    """Figure 5: ResNet-50/ImageNet curves as (magnitude variants, others).

    X is absolute parameter count (normalized), Y is absolute Top-1.
    """
    std = standardized_initial_sizes(corpus).get("ResNet-50")
    magnitude: List[PanelCurve] = []
    others: List[PanelCurve] = []
    if std is None:
        return magnitude, others
    base_top1 = IMAGENET_BASELINES["ResNet-50"][0]
    sub = corpus_frame(corpus).filter(
        dataset="ImageNet",
        architecture="ResNet-50",
        compression=np.isfinite,
        delta_top1=np.isfinite,
    )
    sub = sub.with_columns(
        params=std / np.asarray(sub["compression"], dtype=np.float64),
        top1=base_top1 + np.asarray(sub["delta_top1"], dtype=np.float64),
    )
    for _, cf in sub.group_by("curve_id", sort=False):
        cf = cf.sort_by("params")
        paper_label = str(cf["label"][0])
        method = str(cf["method"][0])
        curve = PanelCurve(
            label=f"{paper_label}, {method}" if method != paper_label else paper_label,
            xs=[float(v) for v in cf["params"]],
            ys=[float(v) for v in cf["top1"]],
            paper_key=str(cf["paper_key"][0]),
            year=int(cf["year"][0]),
        )
        if (curve.paper_key, method) in _MAGNITUDE_VARIANT_METHODS:
            magnitude.append(curve)
        else:
            others.append(curve)
    return magnitude, others
