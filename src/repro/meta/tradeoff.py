"""Cross-paper tradeoff analyses: Figures 1, 3 and 5.

* **Figure 1** — pruned models (normalized per footnote 1) against the
  published frontier of each architecture family on ImageNet.
* **Figure 3** — the fragmentation panels: the four most common
  configurations × {compression, speedup} × {Top-1, Top-5}, one reported
  curve per method.
* **Figure 5** — ResNet-50/ImageNet split into unstructured
  magnitude-based variants (top) vs all other methods (bottom), showing
  that fine-tuning/implementation variation rivals cross-method variation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from .architectures import FAMILIES, IMAGENET_BASELINES, family_curve
from .corpus import Corpus, ReportedCurve
from .corpus_data import _MAGNITUDE_VARIANT_METHODS
from .normalization import (
    normalized_results,
    standardized_initial_flops,
    standardized_initial_sizes,
)

__all__ = [
    "fig1_series",
    "fig3_panels",
    "fig5_split",
    "PanelCurve",
]


@dataclass
class PanelCurve:
    """One method's series inside one panel."""

    label: str
    xs: List[float]
    ys: List[float]
    paper_key: str = ""
    year: int = 0


def fig1_series(corpus: Corpus, x_metric: str = "params", y_metric: str = "top1"):
    """Figure 1 data: family frontiers + normalized pruned points.

    Returns ``(families, pruned)`` where families maps family name to its
    frontier curve and pruned maps family name to normalized points of
    pruned members of that family.
    """
    families = {
        name: family_curve(name, x="params" if x_metric == "params" else "flops")
        for name in FAMILIES
    }
    rows = normalized_results(corpus, IMAGENET_BASELINES)
    member_of = {
        "VGG-16": "VGG",
        "ResNet-50": "ResNet",
        "ResNet-18": "ResNet",
        "ResNet-34": "ResNet",
        "MobileNet-v2": "MobileNet-v2",
    }
    pruned: Dict[str, Dict[str, List[float]]] = {}
    xkey = "params" if x_metric == "params" else "flops"
    for row in rows:
        if row["dataset"] != "ImageNet":
            continue
        fam = member_of.get(row["architecture"])
        if fam is None or xkey not in row or y_metric not in row:
            continue
        bucket = pruned.setdefault(fam, {"xs": [], "ys": []})
        bucket["xs"].append(row[xkey])
        bucket["ys"].append(row[y_metric])
    return families, pruned


#: Figure 3's panel grid: columns are configurations, metric pairs are rows.
FIG3_COLUMNS: List[Tuple[str, List[Tuple[str, str]]]] = [
    ("VGG-16 on ImageNet", [("ImageNet", "VGG-16")]),
    ("Alex/CaffeNet on ImageNet", [("ImageNet", "AlexNet"), ("ImageNet", "CaffeNet")]),
    ("ResNet-50 on ImageNet", [("ImageNet", "ResNet-50")]),
    ("ResNet-56 on CIFAR-10", [("CIFAR-10", "ResNet-56")]),
]

FIG3_METRIC_ROWS: List[Tuple[str, str]] = [
    ("compression", "delta_top1"),
    ("compression", "delta_top5"),
    ("speedup", "delta_top1"),
    ("speedup", "delta_top5"),
]


def fig3_panels(corpus: Corpus) -> Dict[Tuple[str, str, str], List[PanelCurve]]:
    """All Figure 3 panels: {(column, x_metric, y_metric): [curves]}.

    A method appears in a panel only for the points where it reports both
    the panel's metrics — reproducing the sparsity the paper highlights.
    """
    panels: Dict[Tuple[str, str, str], List[PanelCurve]] = {}
    for col_label, pairs in FIG3_COLUMNS:
        for x_metric, y_metric in FIG3_METRIC_ROWS:
            if "top5" in y_metric and col_label == "ResNet-56 on CIFAR-10":
                continue  # CIFAR-10 has 10 classes; Top-5 is not reported
            key = (col_label, x_metric, y_metric)
            curves: List[PanelCurve] = []
            for pair in pairs:
                for rc in corpus.curves_for_pair(*pair):
                    xs, ys = [], []
                    for pt in rc.points:
                        x = getattr(pt, x_metric)
                        y = getattr(pt, y_metric)
                        if x is not None and y is not None:
                            xs.append(float(x))
                            ys.append(float(y))
                    if xs:
                        order = np.argsort(xs)
                        paper = corpus.papers[rc.paper_key]
                        label = (
                            rc.method
                            if rc.method != paper.label
                            else paper.label
                        )
                        curves.append(
                            PanelCurve(
                                label=label,
                                xs=[xs[i] for i in order],
                                ys=[ys[i] for i in order],
                                paper_key=rc.paper_key,
                                year=paper.year,
                            )
                        )
            if curves:
                panels[key] = curves
    return panels


def fig5_split(corpus: Corpus) -> Tuple[List[PanelCurve], List[PanelCurve]]:
    """Figure 5: ResNet-50/ImageNet curves as (magnitude variants, others).

    X is absolute parameter count (normalized), Y is absolute Top-1.
    """
    std_sizes = standardized_initial_sizes(corpus)
    base_top1 = IMAGENET_BASELINES["ResNet-50"][0]
    magnitude: List[PanelCurve] = []
    others: List[PanelCurve] = []
    for rc in corpus.curves_for_pair("ImageNet", "ResNet-50"):
        xs, ys = [], []
        for pt in rc.points:
            if pt.compression is None or pt.delta_top1 is None:
                continue
            std = std_sizes.get("ResNet-50")
            if std is None:
                continue
            xs.append(std / pt.compression)
            ys.append(base_top1 + pt.delta_top1)
        if not xs:
            continue
        order = np.argsort(xs)
        paper = corpus.papers[rc.paper_key]
        curve = PanelCurve(
            label=f"{paper.label}, {rc.method}" if rc.method != paper.label else paper.label,
            xs=[xs[i] for i in order],
            ys=[ys[i] for i in order],
            paper_key=rc.paper_key,
            year=paper.year,
        )
        if (rc.paper_key, rc.method) in _MAGNITUDE_VARIANT_METHODS:
            magnitude.append(curve)
        else:
            others.append(curve)
    return magnitude, others
