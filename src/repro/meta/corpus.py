"""Corpus data model for the meta-analysis (Sections 3-5 of the paper).

The corpus is the substrate of Figures 1-5 and Table 1: a database of
pruning papers, the comparisons between them, the (dataset, architecture)
pairs they evaluate on, and the tradeoff points they self-report.

Schema
------
* :class:`Paper` — identity, year, peer-review status, outgoing comparison
  edges, and evaluation pairs.
* :class:`TradeoffPoint` — one self-reported operating point: any subset of
  {compression, speedup, Δtop1, Δtop5} plus optional raw baselines, since
  papers report incomplete metric subsets (§4.4 / §5.2).
* :class:`ReportedCurve` — one named method's points on one (dataset,
  architecture) pair; "method" granularity follows the paper's footnote 5.
* :class:`Corpus` — the container with the aggregate queries the analysis
  modules consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = ["Paper", "TradeoffPoint", "ReportedCurve", "Corpus", "Pair"]

#: A (dataset, architecture) evaluation combination.
Pair = Tuple[str, str]


@dataclass(frozen=True)
class TradeoffPoint:
    """One self-reported efficiency/quality operating point."""

    compression: Optional[float] = None  # original size / pruned size
    speedup: Optional[float] = None  # original FLOPs / pruned FLOPs
    delta_top1: Optional[float] = None  # percentage points vs baseline
    delta_top5: Optional[float] = None
    #: reported initial model size (params), when given — most papers omit
    #: this, which forces the Figure 1 normalization (footnote 1)
    initial_params: Optional[float] = None
    initial_flops: Optional[float] = None


@dataclass
class ReportedCurve:
    """All points one method reports on one (dataset, architecture) pair."""

    paper_key: str
    method: str
    dataset: str
    architecture: str
    points: List[TradeoffPoint] = field(default_factory=list)

    @property
    def pair(self) -> Pair:
        return (self.dataset, self.architecture)

    def n_points(self) -> int:
        return len(self.points)


@dataclass
class Paper:
    """One paper in the corpus."""

    key: str  # e.g. "han2015"
    label: str  # display label, e.g. "Han 2015"
    year: int
    peer_reviewed: bool
    #: outgoing comparison edges (papers this paper compares against)
    compares_to: List[str] = field(default_factory=list)
    #: (dataset, architecture) pairs the paper evaluates on
    pairs: List[Pair] = field(default_factory=list)
    #: True for corpus entries synthesized to match published aggregates
    #: (the paper lists only aggregate statistics for most of its corpus)
    synthetic: bool = False
    #: classic pre-2010 entries (OBD / OBS)
    classic: bool = False

    def uses_mnist(self) -> bool:
        return any(d == "MNIST" for d, _ in self.pairs)


class Corpus:
    """The paper corpus plus the self-reported results database."""

    def __init__(
        self,
        papers: Sequence[Paper],
        curves: Sequence[ReportedCurve] = (),
    ) -> None:
        self.papers: Dict[str, Paper] = {}
        for p in papers:
            if p.key in self.papers:
                raise ValueError(f"duplicate paper key {p.key!r}")
            self.papers[p.key] = p
        self.curves: List[ReportedCurve] = list(curves)
        for c in self.curves:
            if c.paper_key not in self.papers:
                raise ValueError(f"curve references unknown paper {c.paper_key!r}")
        # Closure property (§3.1): every compared-to paper is in the corpus.
        for p in self.papers.values():
            for target in p.compares_to:
                if target not in self.papers:
                    raise ValueError(
                        f"{p.key} compares to {target!r} which is outside the corpus"
                    )

    # -- sizes ------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.papers)

    def datasets(self) -> Set[str]:
        return {d for p in self.papers.values() for d, _ in p.pairs}

    def architectures(self) -> Set[str]:
        return {a for p in self.papers.values() for _, a in p.pairs}

    def pairs(self) -> Set[Pair]:
        return {pair for p in self.papers.values() for pair in p.pairs}

    # -- aggregate queries ---------------------------------------------------
    def pair_usage_counts(self) -> Dict[Pair, int]:
        """How many papers use each (dataset, architecture) pair."""
        counts: Dict[Pair, int] = {}
        for p in self.papers.values():
            for pair in set(p.pairs):
                counts[pair] = counts.get(pair, 0) + 1
        return counts

    def out_degree(self, key: str) -> int:
        return len(set(self.papers[key].compares_to))

    def in_degree(self, key: str) -> int:
        return sum(
            1
            for p in self.papers.values()
            if key in p.compares_to
        )

    def papers_comparing_to(self, key: str) -> List[str]:
        return sorted(p.key for p in self.papers.values() if key in p.compares_to)

    def curves_for_pair(self, dataset: str, architecture: str) -> List[ReportedCurve]:
        return [
            c
            for c in self.curves
            if c.dataset == dataset and c.architecture == architecture
        ]

    def curves_for_paper(self, key: str) -> List[ReportedCurve]:
        return [c for c in self.curves if c.paper_key == key]

    def modern_papers(self) -> List[Paper]:
        """Post-2010 entries (excludes the two classics, per §3.1)."""
        return [p for p in self.papers.values() if not p.classic]
