"""Comparison-graph analysis (§4.1, Figure 2).

Builds the directed graph of "paper A compares to paper B" with networkx
and derives the two Figure 2 histograms:

* top: number of papers comparing to a given paper (in-degree distribution);
* bottom: number of papers a given paper compares to (out-degree
  distribution);

each split by peer-review status, as in the figure's legend.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import networkx as nx

from .corpus import Corpus

__all__ = [
    "comparison_graph",
    "in_degree_histogram",
    "out_degree_histogram",
    "comparison_stats",
    "never_compared_to",
]


def comparison_graph(corpus: Corpus) -> nx.DiGraph:
    """Directed graph: edge (a, b) means paper a compares to paper b."""
    g = nx.DiGraph()
    for p in corpus.papers.values():
        g.add_node(p.key, year=p.year, peer_reviewed=p.peer_reviewed, label=p.label)
    for p in corpus.papers.values():
        for target in set(p.compares_to):
            g.add_edge(p.key, target)
    return g


def _degree_histogram(
    degrees: Dict[str, int], corpus: Corpus
) -> Dict[int, Dict[str, int]]:
    """degree value -> {"peer_reviewed": count, "other": count}."""
    hist: Dict[int, Dict[str, int]] = {}
    for key, deg in degrees.items():
        bucket = hist.setdefault(deg, {"peer_reviewed": 0, "other": 0})
        if corpus.papers[key].peer_reviewed:
            bucket["peer_reviewed"] += 1
        else:
            bucket["other"] += 1
    return dict(sorted(hist.items()))


def in_degree_histogram(corpus: Corpus) -> Dict[int, Dict[str, int]]:
    """Figure 2 top: papers binned by how many other papers compare to them."""
    g = comparison_graph(corpus)
    return _degree_histogram({k: g.in_degree(k) for k in g.nodes}, corpus)


def out_degree_histogram(corpus: Corpus) -> Dict[int, Dict[str, int]]:
    """Figure 2 bottom: papers binned by how many others they compare to."""
    g = comparison_graph(corpus)
    return _degree_histogram({k: g.out_degree(k) for k in g.nodes}, corpus)


def never_compared_to(corpus: Corpus) -> List[str]:
    """Modern papers with zero incoming comparisons (§4.1's 'dozens')."""
    g = comparison_graph(corpus)
    return sorted(
        k
        for k in g.nodes
        if g.in_degree(k) == 0 and not corpus.papers[k].classic
    )


def comparison_stats(corpus: Corpus) -> Dict[str, float]:
    """The §4.1 headline statistics."""
    g = comparison_graph(corpus)
    n = g.number_of_nodes()
    outs = [g.out_degree(k) for k in g.nodes]
    return {
        "n_papers": n,
        "frac_compare_to_none": sum(1 for d in outs if d == 0) / n,
        "frac_compare_to_at_most_one": sum(1 for d in outs if d <= 1) / n,
        "frac_compare_to_at_most_three": sum(1 for d in outs if d <= 3) / n,
        "max_in_degree": max(g.in_degree(k) for k in g.nodes),
        "n_never_compared_to": len(never_compared_to(corpus)),
    }
