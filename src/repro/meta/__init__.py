"""Meta-analysis of the 81-paper pruning corpus (Figures 1-5, Table 1)."""

from .corpus import Corpus, Paper, ReportedCurve, TradeoffPoint
from .corpus_data import FIG3_PAIRS, TABLE1_COUNTS, build_corpus
from .comparisons import (
    comparison_graph,
    comparison_stats,
    in_degree_histogram,
    never_compared_to,
    out_degree_histogram,
)
from .fragmentation import (
    corpus_stats,
    pairs_per_paper_histogram,
    points_per_curve_histogram,
    table1,
)
from .normalization import (
    normalize_point,
    normalized_results,
    standardized_initial_flops,
    standardized_initial_sizes,
)
from .architectures import FAMILIES, IMAGENET_BASELINES, ArchPoint, family_curve
from .tradeoff import (
    FIG3_COLUMNS,
    FIG3_METRIC_ROWS,
    PanelCurve,
    corpus_frame,
    fig1_series,
    fig3_panels,
    fig5_split,
)
from .checklist import ChecklistItem, audit_results

__all__ = [
    "Corpus",
    "Paper",
    "ReportedCurve",
    "TradeoffPoint",
    "build_corpus",
    "TABLE1_COUNTS",
    "FIG3_PAIRS",
    "comparison_graph",
    "comparison_stats",
    "in_degree_histogram",
    "out_degree_histogram",
    "never_compared_to",
    "table1",
    "corpus_stats",
    "pairs_per_paper_histogram",
    "points_per_curve_histogram",
    "standardized_initial_sizes",
    "standardized_initial_flops",
    "normalize_point",
    "normalized_results",
    "ArchPoint",
    "FAMILIES",
    "IMAGENET_BASELINES",
    "family_curve",
    "PanelCurve",
    "corpus_frame",
    "fig1_series",
    "fig3_panels",
    "fig5_split",
    "FIG3_COLUMNS",
    "FIG3_METRIC_ROWS",
    "ChecklistItem",
    "audit_results",
]
