"""Footnote-1 normalization for cross-paper tradeoff plots (Figure 1).

"Since many pruning papers report only change in accuracy or amount of
pruning, without giving baseline numbers, we normalize all pruning results
to have accuracies and model sizes/FLOPs as if they had begun with the same
model.  Concretely, this means multiplying the reported fraction of pruned
size/FLOPs by a standardized initial value.  This value is set to the median
initial size or number of FLOPs reported for that architecture across all
papers."
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from .corpus import Corpus, ReportedCurve, TradeoffPoint

__all__ = [
    "standardized_initial_sizes",
    "standardized_initial_flops",
    "normalize_point",
    "normalized_results",
]


def standardized_initial_sizes(corpus: Corpus) -> Dict[str, float]:
    """Median reported initial parameter count per architecture."""
    reported: Dict[str, List[float]] = {}
    for curve in corpus.curves:
        for pt in curve.points:
            if pt.initial_params is not None:
                reported.setdefault(curve.architecture, []).append(pt.initial_params)
    return {arch: float(np.median(vals)) for arch, vals in reported.items()}


def standardized_initial_flops(corpus: Corpus) -> Dict[str, float]:
    """Median reported initial FLOPs per architecture.

    §5.2 shows reported FLOPs for one architecture vary up to 4× across
    papers (AlexNet: 371 / 724 / 1500 MFLOPs), which is exactly why the
    median is taken rather than trusting any single paper.
    """
    reported: Dict[str, List[float]] = {}
    for curve in corpus.curves:
        for pt in curve.points:
            if pt.initial_flops is not None:
                reported.setdefault(curve.architecture, []).append(pt.initial_flops)
    return {arch: float(np.median(vals)) for arch, vals in reported.items()}


def normalize_point(
    pt: TradeoffPoint,
    arch: str,
    std_sizes: Dict[str, float],
    std_flops: Dict[str, float],
    baseline_top1: float,
    baseline_top5: float,
) -> Optional[Dict[str, float]]:
    """Convert one reported point to absolute (size, FLOPs, accuracy).

    Returns None when the point carries no usable efficiency metric.
    """
    out: Dict[str, float] = {}
    if pt.compression is not None and arch in std_sizes:
        out["params"] = std_sizes[arch] / pt.compression
    if pt.speedup is not None and arch in std_flops:
        out["flops"] = std_flops[arch] / pt.speedup
    if not out:
        return None
    if pt.delta_top1 is not None:
        out["top1"] = baseline_top1 + pt.delta_top1
    if pt.delta_top5 is not None:
        out["top5"] = baseline_top5 + pt.delta_top5
    return out


def normalized_results(
    corpus: Corpus,
    baselines: Dict[str, Tuple[float, float]],
) -> List[Dict]:
    """All corpus points in absolute coordinates for Figure 1.

    ``baselines`` maps architecture -> (top1, top5) of the standardized
    initial model.
    """
    std_sizes = standardized_initial_sizes(corpus)
    std_flops = standardized_initial_flops(corpus)
    rows: List[Dict] = []
    for curve in corpus.curves:
        if curve.architecture not in baselines:
            continue
        b1, b5 = baselines[curve.architecture]
        for pt in curve.points:
            norm = normalize_point(
                pt, curve.architecture, std_sizes, std_flops, b1, b5
            )
            if norm is None:
                continue
            norm.update(
                paper=curve.paper_key,
                method=curve.method,
                dataset=curve.dataset,
                architecture=curve.architecture,
            )
            rows.append(norm)
    return rows
