"""Tradeoff-curve data structures.

A :class:`TradeoffCurve` is the paper's unit of comparison (§2.4): "a
pruning method is best characterized not by a single model it has pruned,
but by a family of models corresponding to different points on the
efficiency-quality curve."  Curves carry mean ± std per x (§6: report
measures of central tendency).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..experiment.results import CurvePoint, PruningResult, aggregate_curve

__all__ = ["TradeoffCurve", "curves_from_results"]


@dataclass
class TradeoffCurve:
    """One labeled efficiency-vs-quality series."""

    label: str
    xs: List[float]
    ys: List[float]
    stds: List[float] = field(default_factory=list)

    def __post_init__(self):
        if len(self.xs) != len(self.ys):
            raise ValueError("xs and ys must have equal length")
        if self.stds and len(self.stds) != len(self.xs):
            raise ValueError("stds must match xs length")
        order = np.argsort(self.xs)
        self.xs = [float(self.xs[i]) for i in order]
        self.ys = [float(self.ys[i]) for i in order]
        if self.stds:
            self.stds = [float(self.stds[i]) for i in order]

    @classmethod
    def from_points(cls, label: str, points: Sequence[CurvePoint]) -> "TradeoffCurve":
        return cls(
            label=label,
            xs=[p.x for p in points],
            ys=[p.mean for p in points],
            stds=[p.std for p in points],
        )

    def y_at(self, x: float) -> Optional[float]:
        """Exact-x lookup (None if the curve has no point there)."""
        for xi, yi in zip(self.xs, self.ys):
            if np.isclose(xi, x):
                return yi
        return None

    def __len__(self) -> int:
        return len(self.xs)


def curves_from_results(
    results: Sequence[PruningResult],
    group_attr: str = "strategy",
    x_attr: str = "compression",
    y_attr: str = "top1",
    labels: Optional[Dict[str, str]] = None,
) -> List[TradeoffCurve]:
    """Group results and aggregate each group into a labeled curve."""
    groups: Dict[str, List[PruningResult]] = {}
    for r in results:
        groups.setdefault(str(getattr(r, group_attr)), []).append(r)
    curves = []
    for key in sorted(groups):
        points = aggregate_curve(groups[key], x_attr=x_attr, y_attr=y_attr)
        label = labels.get(key, key) if labels else key
        curves.append(TradeoffCurve.from_points(label, points))
    return curves
