"""Tradeoff-curve data structures.

A :class:`TradeoffCurve` is the paper's unit of comparison (§2.4): "a
pruning method is best characterized not by a single model it has pruned,
but by a family of models corresponding to different points on the
efficiency-quality curve."  Curves carry mean ± std (and the seed count)
per x (§6: report measures of central tendency).

Aggregation itself lives in the columnar
:class:`~repro.analysis.ResultFrame`; :func:`curves_from_frame` /
:func:`curves_from_results` adapt its grouped curves into labeled
renderable series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..analysis.frame import ResultFrame
from ..experiment.results import CurvePoint, PruningResult

__all__ = ["TradeoffCurve", "curves_from_frame", "curves_from_results"]


@dataclass
class TradeoffCurve:
    """One labeled efficiency-vs-quality series."""

    label: str
    xs: List[float]
    ys: List[float]
    stds: List[float] = field(default_factory=list)
    #: rows aggregated at each x (0 entries = unknown, e.g. external data)
    ns: List[int] = field(default_factory=list)

    def __post_init__(self):
        if len(self.xs) != len(self.ys):
            raise ValueError("xs and ys must have equal length")
        if self.stds and len(self.stds) != len(self.xs):
            raise ValueError("stds must match xs length")
        if self.ns and len(self.ns) != len(self.xs):
            raise ValueError("ns must match xs length")
        order = np.argsort(self.xs)
        self.xs = [float(self.xs[i]) for i in order]
        self.ys = [float(self.ys[i]) for i in order]
        if self.stds:
            self.stds = [float(self.stds[i]) for i in order]
        if self.ns:
            self.ns = [int(self.ns[i]) for i in order]

    @classmethod
    def from_points(cls, label: str, points: Sequence[CurvePoint]) -> "TradeoffCurve":
        return cls(
            label=label,
            xs=[p.x for p in points],
            ys=[p.mean for p in points],
            stds=[p.std for p in points],
            ns=[p.n for p in points],
        )

    def y_at(self, x: float) -> Optional[float]:
        """Exact-x lookup (None if the curve has no point there)."""
        for xi, yi in zip(self.xs, self.ys):
            if np.isclose(xi, x):
                return yi
        return None

    def __len__(self) -> int:
        return len(self.xs)


def curves_from_frame(
    frame: ResultFrame,
    group_attr: str = "strategy",
    x_attr: str = "compression",
    y_attr: str = "top1",
    labels: Optional[Dict[str, str]] = None,
) -> List[TradeoffCurve]:
    """One labeled aggregated curve per group value, sorted by group."""
    curves = []
    for key, points in frame.tradeoff_curves(
        group=group_attr, x=x_attr, y=y_attr
    ).items():
        key = str(key)
        label = labels.get(key, key) if labels else key
        curves.append(TradeoffCurve.from_points(label, points))
    return curves


def curves_from_results(
    results: Union[ResultFrame, Sequence[PruningResult]],
    group_attr: str = "strategy",
    x_attr: str = "compression",
    y_attr: str = "top1",
    labels: Optional[Dict[str, str]] = None,
) -> List[TradeoffCurve]:
    """Group results and aggregate each group into a labeled curve.

    Accepts a :class:`ResultFrame` directly or any sequence/ResultSet of
    rows (converted on the fly).
    """
    frame = (
        results
        if isinstance(results, ResultFrame)
        else ResultFrame.from_results(results)
    )
    return curves_from_frame(
        frame, group_attr=group_attr, x_attr=x_attr, y_attr=y_attr, labels=labels
    )
