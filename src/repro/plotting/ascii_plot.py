"""ASCII terminal rendering of tradeoff curves and histograms.

Matplotlib is unavailable offline, so every figure in the reproduction is
emitted as (a) its underlying data series (CSV, the scientifically
meaningful artifact) and (b) an ASCII rendering for eyeballing shapes —
log-2 x-axes match the paper's compression-ratio axes.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from .series import TradeoffCurve

__all__ = ["render_curves", "render_histogram"]

_MARKERS = "ox+*#@%&"


def _x_positions(xs, log_x: bool, lo: float, hi: float, width: int) -> List[int]:
    def tx(v):
        return math.log2(v) if log_x else v

    lo_t, hi_t = tx(lo), tx(hi)
    span = (hi_t - lo_t) or 1.0
    return [int(round((tx(x) - lo_t) / span * (width - 1))) for x in xs]


def render_curves(
    curves: Sequence[TradeoffCurve],
    width: int = 64,
    height: int = 18,
    log_x: bool = True,
    title: str = "",
    x_label: str = "compression",
    y_label: str = "accuracy",
    y_range: Optional[Tuple[float, float]] = None,
) -> str:
    """Render curves as a multi-line string plot with a legend."""
    curves = [c for c in curves if len(c)]
    if not curves:
        return "(no data)"
    all_x = [x for c in curves for x in c.xs]
    all_y = [y for c in curves for y in c.ys]
    x_lo, x_hi = min(all_x), max(all_x)
    if y_range is not None:
        y_lo, y_hi = y_range
    else:
        y_lo, y_hi = min(all_y), max(all_y)
        pad = (y_hi - y_lo) * 0.05 or 0.05
        y_lo, y_hi = y_lo - pad, y_hi + pad
    grid = [[" "] * width for _ in range(height)]

    def row_of(y: float) -> int:
        frac = (y - y_lo) / ((y_hi - y_lo) or 1.0)
        return min(height - 1, max(0, int(round((1.0 - frac) * (height - 1)))))

    for ci, curve in enumerate(curves):
        marker = _MARKERS[ci % len(_MARKERS)]
        cols = _x_positions(curve.xs, log_x, x_lo, x_hi, width)
        rows = [row_of(y) for y in curve.ys]
        # connect consecutive points with interpolated marks
        for i in range(len(cols) - 1):
            c0, r0, c1, r1 = cols[i], rows[i], cols[i + 1], rows[i + 1]
            steps = max(abs(c1 - c0), abs(r1 - r0), 1)
            for s in range(steps + 1):
                cc = c0 + (c1 - c0) * s // steps
                rr = r0 + (r1 - r0) * s // steps
                if grid[rr][cc] == " ":
                    grid[rr][cc] = "."
        for c, r in zip(cols, rows):
            grid[r][c] = marker

    lines = []
    if title:
        lines.append(title.center(width + 8))
    for i, row in enumerate(grid):
        if i == 0:
            label = f"{y_hi:7.3f}"
        elif i == height - 1:
            label = f"{y_lo:7.3f}"
        else:
            label = " " * 7
        lines.append(f"{label} |" + "".join(row))
    lines.append(" " * 8 + "-" * width)
    x_axis = f"{x_lo:g}".ljust(width // 2) + f"{x_hi:g}".rjust(width // 2)
    lines.append(" " * 8 + x_axis + f"   ({x_label}, log2)" if log_x else x_axis)
    for ci, curve in enumerate(curves):
        lines.append(f"    {_MARKERS[ci % len(_MARKERS)]} = {curve.label}")
    return "\n".join(lines)


def render_histogram(
    labels: Sequence[str],
    counts: Sequence[float],
    width: int = 50,
    title: str = "",
) -> str:
    """Horizontal bar chart (used for the Figure 2/4 histograms)."""
    if len(labels) != len(counts):
        raise ValueError("labels and counts must have equal length")
    lines = [title] if title else []
    peak = max(counts) if counts else 1
    peak = peak or 1
    label_w = max((len(str(l)) for l in labels), default=1)
    for label, count in zip(labels, counts):
        bar = "#" * int(round(count / peak * width))
        lines.append(f"{str(label).rjust(label_w)} | {bar} {count:g}")
    return "\n".join(lines)
