"""CSV export of figure data series.

Every benchmark writes the series behind its figure to
``artifacts/figures/<name>.csv`` so paper-vs-measured comparisons in
EXPERIMENTS.md are backed by machine-readable data.  Per §6 the long
format carries the mean, the sample std *and* the aggregated run count
per point (``series, x, y, std, n``), so error bars are reconstructible
downstream; ``n`` is 0 for series with unknown provenance (e.g. digitized
external curves).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Sequence

from ..analysis.frame import ResultFrame
from ..utils import artifacts_dir
from .series import TradeoffCurve

__all__ = ["export_curves_csv", "export_frame_csv", "figures_dir"]


def figures_dir() -> Path:
    return artifacts_dir("figures")


def export_curves_csv(curves: Sequence[TradeoffCurve], name: str) -> Path:
    """Write curves as long-format CSV: label, x, y mean, y std, n."""
    path = figures_dir() / f"{name}.csv"
    with open(path, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(["series", "x", "y", "std", "n"])
        for curve in curves:
            stds = curve.stds or [0.0] * len(curve.xs)
            ns = curve.ns or [0] * len(curve.xs)
            for x, y, s, n in zip(curve.xs, curve.ys, stds, ns):
                writer.writerow([curve.label, x, y, s, n])
    return path


def export_frame_csv(frame: ResultFrame, name: str) -> Path:
    """Write a frame (typically an :meth:`~repro.analysis.ResultFrame.aggregate`
    result) as CSV, one column per frame column.

    Non-finite values (``actual_compression`` can legitimately be ``inf``)
    render as ``inf``/``nan``, which ``float()`` parses back losslessly.
    """
    path = figures_dir() / f"{name}.csv"
    columns = frame.columns
    with open(path, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(columns)
        for rec in frame.to_records():
            writer.writerow([rec[c] for c in columns])
    return path
