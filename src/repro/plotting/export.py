"""CSV export of figure data series.

Every benchmark writes the series behind its figure to
``artifacts/figures/<name>.csv`` so paper-vs-measured comparisons in
EXPERIMENTS.md are backed by machine-readable data.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Sequence

from ..utils import artifacts_dir
from .series import TradeoffCurve

__all__ = ["export_curves_csv", "figures_dir"]


def figures_dir() -> Path:
    return artifacts_dir("figures")


def export_curves_csv(curves: Sequence[TradeoffCurve], name: str) -> Path:
    """Write curves as long-format CSV: label, x, y, std."""
    path = figures_dir() / f"{name}.csv"
    with open(path, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(["series", "x", "y", "std"])
        for curve in curves:
            stds = curve.stds or [0.0] * len(curve.xs)
            for x, y, s in zip(curve.xs, curve.ys, stds):
                writer.writerow([curve.label, x, y, s])
    return path
