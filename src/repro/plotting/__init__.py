"""Plotting: tradeoff curves, ASCII rendering, CSV export."""

from .series import TradeoffCurve, curves_from_frame, curves_from_results
from .ascii_plot import render_curves, render_histogram
from .export import export_curves_csv, export_frame_csv, figures_dir

__all__ = [
    "TradeoffCurve",
    "curves_from_frame",
    "curves_from_results",
    "render_curves",
    "render_histogram",
    "export_curves_csv",
    "export_frame_csv",
    "figures_dir",
]
