"""On-disk artifact cache (pretrained weights, experiment results).

Location precedence: ``REPRO_ARTIFACTS`` env var, else ``./artifacts`` under
the current working directory.  Pretraining a model once and reusing the
checkpoint across every pruning run is both a speed optimization and a
correctness requirement — Section 7.3 of the paper shows that comparing
methods from *different* initial models is a classic pitfall.
"""

from __future__ import annotations

import os
from pathlib import Path

__all__ = ["artifacts_dir"]


def artifacts_dir(subdir: str = "") -> Path:
    """Return (and create) the artifacts directory, optionally a subdir."""
    root = Path(os.environ.get("REPRO_ARTIFACTS", "artifacts"))
    path = root / subdir if subdir else root
    path.mkdir(parents=True, exist_ok=True)
    return path
