"""On-disk artifact cache (pretrained weights, experiment results).

Location precedence: ``REPRO_ARTIFACTS`` env var, else ``./artifacts`` under
the current working directory.  Pretraining a model once and reusing the
checkpoint across every pruning run is both a speed optimization and a
correctness requirement — Section 7.3 of the paper shows that comparing
methods from *different* initial models is a classic pitfall.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from pathlib import Path

__all__ = ["artifacts_dir", "atomic_writer", "atomic_write_text"]


def artifacts_dir(subdir: str = "") -> Path:
    """Return (and create) the artifacts directory, optionally a subdir."""
    root = Path(os.environ.get("REPRO_ARTIFACTS", "artifacts"))
    path = root / subdir if subdir else root
    path.mkdir(parents=True, exist_ok=True)
    return path


@contextmanager
def atomic_writer(path: Path):
    """Yield a temp path next to ``path``; rename over it on clean exit.

    The write-then-``os.replace`` dance makes concurrent readers see either
    the old complete file or the new complete file, never a torn one —
    required for checkpoint/result stores shared by parallel sweep workers.
    On an exception (or a crash) the target is untouched and the temp file
    is cleaned up where possible.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
    try:
        yield tmp
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)


def atomic_write_text(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` atomically (temp file + rename)."""
    with atomic_writer(path) as tmp:
        tmp.write_text(text)
