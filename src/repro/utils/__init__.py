"""Shared utilities: BLAS thread control, artifact cache paths, strict JSON."""

from .threads import configure_blas_threads_from_env, set_blas_threads
from .cache import artifacts_dir, atomic_write_text, atomic_writer
from .jsonio import (
    NONFINITE_KEY,
    canonical_json,
    restore_nonfinite,
    sanitize_nonfinite,
)

__all__ = [
    "configure_blas_threads_from_env",
    "set_blas_threads",
    "artifacts_dir",
    "atomic_writer",
    "atomic_write_text",
    "NONFINITE_KEY",
    "canonical_json",
    "restore_nonfinite",
    "sanitize_nonfinite",
]
