"""BLAS thread-pool control.

On small machines the OpenBLAS thread pool *hurts* this workload: the conv
GEMMs are small, so synchronization overhead exceeds the parallel speedup
(measured ~35% slower with 2 threads than 1 on the reference 2-core box).
This module pins the pool at import time of :mod:`repro`.

Control with ``REPRO_BLAS_THREADS`` (default ``1``; set ``0`` to leave the
pool untouched, e.g. on large machines).
"""

from __future__ import annotations

import ctypes
import os

__all__ = ["set_blas_threads", "configure_blas_threads_from_env"]

_SYMBOLS = (
    "openblas_set_num_threads",
    "openblas_set_num_threads64_",
    "scipy_openblas_set_num_threads64_",
    "scipy_openblas_set_num_threads_64_",
    "openblas_set_num_threads_local",
)


def _loaded_blas_libs():
    """Yield paths of BLAS-looking shared objects mapped into this process."""
    try:
        with open("/proc/self/maps") as f:
            seen = set()
            for line in f:
                path = line.rsplit(" ", 1)[-1].strip()
                if "openblas" in path.lower() and path not in seen:
                    seen.add(path)
                    yield path
    except OSError:  # non-Linux platforms: give up silently
        return


def set_blas_threads(n: int) -> bool:
    """Set the OpenBLAS pool to ``n`` threads; True if any call succeeded."""
    ok = False
    for path in _loaded_blas_libs():
        try:
            lib = ctypes.CDLL(path)
        except OSError:
            continue
        for sym in _SYMBOLS:
            fn = getattr(lib, sym, None)
            if fn is not None:
                try:
                    fn(int(n))
                    ok = True
                    break
                except Exception:
                    continue
    return ok


def configure_blas_threads_from_env() -> None:
    """Apply ``REPRO_BLAS_THREADS`` (default 1; 0 disables pinning)."""
    raw = os.environ.get("REPRO_BLAS_THREADS", "1")
    try:
        n = int(raw)
    except ValueError:
        return
    if n > 0:
        set_blas_threads(n)
