"""Strict JSON helpers: non-finite sentinels and canonical hashing blobs.

Two distinct problems share this module because both are about keeping the
toolkit's JSON honest:

* **Non-finite floats.**  Result rows legitimately contain ``inf`` / ``nan``
  (``actual_compression`` is ``inf`` for an all-pruned mask).  Python's
  default JSON dialect writes them as bare ``Infinity`` / ``NaN`` tokens,
  which strict RFC 8259 consumers — including the binary store's segment
  readers — reject.  :func:`sanitize_nonfinite` replaces them with an
  explicit object sentinel (``{"__nonfinite__": "inf" | "-inf" | "nan"}``)
  and :func:`restore_nonfinite` turns the sentinel back into a float.  The
  convention is documented in docs/FORMATS.md; the sentinel key is reserved
  and must not appear as a literal mapping in stored payloads.

* **Hashing.**  :func:`canonical_json` is the serializer behind
  ``spec_hash``: it refuses (``TypeError``) anything that is not JSON-native
  (tuples, sets, arbitrary objects, non-finite floats, non-string dict
  keys), naming the offending path.  Hashing through ``default=str`` would
  silently alias distinct specs whose stringifications collide; failing
  fast keeps the content address trustworthy.  For JSON-native input the
  output string is byte-identical to ``json.dumps(obj, sort_keys=True)``,
  so existing cache keys are unaffected.
"""

from __future__ import annotations

import json
import math
from typing import Any

import numpy as np

__all__ = [
    "NONFINITE_KEY",
    "sanitize_nonfinite",
    "restore_nonfinite",
    "canonical_json",
]

#: reserved sentinel key for non-finite floats in strict-JSON payloads.
NONFINITE_KEY = "__nonfinite__"

_TO_TOKEN = {math.inf: "inf", -math.inf: "-inf"}
_FROM_TOKEN = {"inf": math.inf, "-inf": -math.inf, "nan": math.nan}


def _float_sentinel(value: float):
    if value != value:  # nan
        return {NONFINITE_KEY: "nan"}
    token = _TO_TOKEN.get(value)
    return {NONFINITE_KEY: token} if token is not None else float(value)


def sanitize_nonfinite(obj: Any) -> Any:
    """A JSON-safe copy of ``obj`` with non-finite floats as sentinels.

    Recurses through dicts/lists/tuples (tuples become lists, matching
    ``json.dumps``); numpy scalars collapse to their Python equivalents.
    Unknown leaf types pass through untouched for the caller's ``default``
    hook to handle.
    """
    if isinstance(obj, bool):  # before int: bool is an int subclass
        return obj
    if isinstance(obj, float):
        return _float_sentinel(obj)
    if isinstance(obj, np.floating):
        return _float_sentinel(float(obj))
    if isinstance(obj, (np.integer, np.bool_)):
        return obj.item()
    if isinstance(obj, dict):
        return {key: sanitize_nonfinite(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [sanitize_nonfinite(value) for value in obj]
    return obj


def restore_nonfinite(obj: Any) -> Any:
    """Inverse of :func:`sanitize_nonfinite`: sentinel dicts become floats."""
    if isinstance(obj, dict):
        if len(obj) == 1:
            token = obj.get(NONFINITE_KEY)
            if isinstance(token, str) and token in _FROM_TOKEN:
                return _FROM_TOKEN[token]
        return {key: restore_nonfinite(value) for key, value in obj.items()}
    if isinstance(obj, list):
        return [restore_nonfinite(value) for value in obj]
    return obj


def _assert_canonical(obj: Any, path: str) -> None:
    if obj is None or isinstance(obj, (bool, str, int)):
        return
    if isinstance(obj, float):
        if not math.isfinite(obj):
            raise TypeError(
                f"non-finite float at {path} cannot be hashed canonically"
            )
        return
    if isinstance(obj, dict):
        for key, value in obj.items():
            if not isinstance(key, str):
                raise TypeError(
                    f"non-string mapping key {key!r} at {path} is not "
                    "canonical JSON"
                )
            _assert_canonical(value, f"{path}.{key}")
        return
    if isinstance(obj, list):
        for i, value in enumerate(obj):
            _assert_canonical(value, f"{path}[{i}]")
        return
    raise TypeError(
        f"{type(obj).__name__} at {path} is not canonical JSON "
        "(only dict/list/str/int/finite float/bool/None hash stably; "
        "convert tuples to lists and objects to JSON-native values)"
    )


def canonical_json(obj: Any) -> str:
    """``json.dumps(obj, sort_keys=True)``, but fail fast on anything whose
    serialization is not a faithful content address (see module docstring)."""
    _assert_canonical(obj, "$")
    return json.dumps(obj, sort_keys=True, allow_nan=False)
