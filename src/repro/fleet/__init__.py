"""Fleet-scale sweep orchestration: launch, plan, verify, watch.

The work queue (:mod:`repro.experiment.queue`) made multi-machine sweeps
durable; this package makes them *operable*.  Four pieces, each exposed as
a ``python -m repro`` subcommand:

* :mod:`~repro.fleet.launcher` — ``repro fleet launch <hosts-file>
  <queue-dir>``: start ``python -m repro worker`` processes on every host
  in a hosts file through a pluggable ``LAUNCHERS`` registry (``local``
  subprocess backend, ``ssh`` backend), capturing each worker's log under
  ``<queue-dir>/fleet/logs/`` and recording host/PID/argv in a fleet
  manifest.
* :mod:`~repro.fleet.plan` — ``repro fleet plan <sweep.json>
  <queue-dir>``: expand a :class:`~repro.experiment.config.SweepConfig`
  and submit it in batches, writing a ``batch_manifest.json`` that records
  the spec hashes of every batch (the audit trail ``verify`` repairs
  from).
* :mod:`~repro.fleet.verify` — ``repro fleet verify <queue-dir>
  [--retry]``: audit ``done/`` markers against the shared result cache
  (and optionally a binary column store), detecting ghost-done cells,
  corrupt markers, orphaned cache entries, and hash mismatches; with
  ``--retry`` the gaps are re-enqueued so a drained fleet converges to
  exactly the rows a serial run would produce.
* :mod:`~repro.fleet.watch` — ``repro queue watch <queue-dir>``: a
  live-refreshing progress dashboard (counts, per-worker heartbeat ages,
  throughput, ETA) over :meth:`~repro.experiment.queue.WorkQueue.stats`.

On-disk layout (everything lives under the queue directory, so the whole
fleet state travels with the queue)::

    <queue-dir>/fleet/
      manifest.json          workers launched: host, launcher, pid, log
      batch_manifest.json    planned batches: spec hashes, submit counts
      logs/<worker-id>.log   captured stdout+stderr per launched worker

Formats are documented in docs/FORMATS.md; the fault-injection battery in
``tests/test_fleet.py`` kills workers and the launcher mid-sweep and
asserts ``verify --retry`` convergence to serial-run byte-equality.
"""

from .launcher import (
    FLEET_SCHEMA_VERSION,
    LAUNCHERS,
    HostSpec,
    LocalLauncher,
    SshLauncher,
    fleet_dir,
    fleet_manifest_path,
    launch_fleet,
    parse_hosts_file,
    read_fleet_manifest,
    worker_alive,
)
from .plan import (
    batch_manifest_path,
    config_hash,
    fleet_plan,
    plan_batches,
    read_batch_manifest,
)
from .verify import FleetAudit, verify_fleet
from .watch import WatchState, render_watch, watch_queue

__all__ = [
    "FLEET_SCHEMA_VERSION",
    "LAUNCHERS",
    "HostSpec",
    "LocalLauncher",
    "SshLauncher",
    "fleet_dir",
    "fleet_manifest_path",
    "launch_fleet",
    "parse_hosts_file",
    "read_fleet_manifest",
    "worker_alive",
    "batch_manifest_path",
    "config_hash",
    "fleet_plan",
    "plan_batches",
    "read_batch_manifest",
    "FleetAudit",
    "verify_fleet",
    "WatchState",
    "render_watch",
    "watch_queue",
]
