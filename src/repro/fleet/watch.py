"""The live dashboard: ``repro queue watch`` over ``WorkQueue.stats``.

Rendering is split from the loop so it is testable without sleeping:
:func:`render_watch` is a pure function from a stats snapshot (plus a
:class:`WatchState` carrying throughput history and, optionally, the
fleet manifest) to the dashboard text; :func:`watch_queue` just refreshes
it on an interval.

Throughput is estimated over a sliding window of ``(time, done-count)``
samples rather than since-start, so the ETA tracks the *current* fleet —
workers joining or dying bends the estimate within a window, not over the
whole sweep's history.  The loop exits on its own when the queue drains
(nothing pending or leased) so CI and scripts can ``repro queue watch``
as a blocking progress bar; Ctrl-C exits cleanly at any point.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..experiment.queue import WorkQueue
from .launcher import read_fleet_manifest, worker_alive

__all__ = ["WatchState", "render_watch", "watch_queue"]

#: throughput window: long enough to smooth bursty micro-cells, short
#: enough that a dead worker shows up within a couple of refreshes
DEFAULT_WINDOW = 60.0


def _fmt_duration(seconds: float) -> str:
    seconds = max(0.0, float(seconds))
    if seconds < 60:
        return f"{seconds:.0f}s"
    if seconds < 3600:
        return f"{seconds / 60:.1f}m"
    return f"{seconds / 3600:.1f}h"


@dataclass
class WatchState:
    """Sliding-window sample history for throughput/ETA estimation."""

    window: float = DEFAULT_WINDOW
    #: (sample time, done count) pairs, oldest first
    samples: List[Tuple[float, int]] = field(default_factory=list)

    def observe(self, done: int, now: Optional[float] = None) -> None:
        now = time.time() if now is None else now
        self.samples.append((now, done))
        cutoff = now - self.window
        # keep one sample at-or-before the cutoff so the window rate has a
        # full-width baseline even right after trimming
        while len(self.samples) > 2 and self.samples[1][0] <= cutoff:
            self.samples.pop(0)

    def throughput(self) -> Optional[float]:
        """Done cells per second over the window; None before 2 samples."""
        if len(self.samples) < 2:
            return None
        (t0, d0), (t1, d1) = self.samples[0], self.samples[-1]
        if t1 <= t0:
            return None
        return max(0.0, (d1 - d0) / (t1 - t0))

    def eta(self, remaining: int) -> Optional[float]:
        """Seconds until the queue drains at the current rate, or None."""
        rate = self.throughput()
        if rate is None or rate <= 0:
            return None
        return remaining / rate


def render_watch(
    stats: Dict,
    state: Optional[WatchState] = None,
    fleet: Optional[Dict] = None,
) -> str:
    """The dashboard text for one ``WorkQueue.stats`` snapshot.

    Pure: samples must already have been fed to ``state.observe`` — this
    only reads.  ``fleet`` is a fleet manifest dict (launched-worker
    roster, PID liveness where local) or None for bare queues.
    """
    counts = stats["counts"]
    total = sum(counts.values())
    remaining = counts["pending"] + counts["leased"]
    lines = [
        f"queue {stats['root']}",
        "  pending {pending:>5}   leased {leased:>4}   done {done:>5}   "
        "failed {failed:>4}".format(**counts),
    ]
    if total:
        pct = 100.0 * counts["done"] / total
        bar_w = 30
        filled = int(bar_w * counts["done"] / total)
        lines.append(
            f"  [{'#' * filled}{'.' * (bar_w - filled)}] "
            f"{pct:5.1f}% of {total}"
        )
    if state is not None:
        rate = state.throughput()
        if rate is not None:
            eta = state.eta(remaining)
            eta_txt = _fmt_duration(eta) if eta is not None else (
                "--" if remaining else "done")
            lines.append(
                f"  throughput {rate * 60:.1f} cells/min   eta {eta_txt}"
            )
    workers = stats.get("workers", [])
    if workers:
        lines.append("  workers:")
        for row in workers:
            flag = "  EXPIRED" if row["expired"] else ""
            lines.append(
                f"    {row['worker']:<24} {row['cells']:>2} leased   "
                f"beat {_fmt_duration(row['freshest_beat'])} ago{flag}"
            )
    if fleet is not None:
        workers = fleet.get("workers", [])
        alive = [worker_alive(w) for w in workers]
        up = sum(1 for a in alive if a)
        down = sum(1 for a in alive if a is False)
        lines.append(
            f"  fleet: {len(workers)} launched, {up} running"
            + (f", {down} exited" if down else "")
            + f"  (launches: {fleet.get('launches', '?')})"
        )
    failed = stats.get("failed", [])
    if failed:
        lines.append(f"  quarantined ({len(failed)}):")
        for row in failed[:5]:
            lines.append(
                f"    {row['hash']}  x{row['attempts']}  {row['error'][:60]}"
            )
        if len(failed) > 5:
            lines.append(f"    ... and {len(failed) - 5} more")
    return "\n".join(lines)


def watch_queue(
    queue_dir,
    interval: float = 2.0,
    iterations: Optional[int] = None,
    clear: bool = True,
    out: Optional[Callable[[str], None]] = None,
) -> int:
    """Refresh the dashboard every ``interval`` seconds until the queue
    drains (or ``iterations`` refreshes, for tests/CI).  Returns 0 on a
    drained queue, 1 when quarantined cells remain.
    """
    if out is None:
        out = lambda text: print(text, flush=True)  # noqa: E731
    queue = WorkQueue(queue_dir)
    state = WatchState()
    shown = 0
    exit_code = 0
    try:
        while True:
            stats = queue.stats()
            state.observe(stats["counts"]["done"])
            if clear:
                out("\x1b[2J\x1b[H" + render_watch(
                    stats, state, read_fleet_manifest(queue_dir)))
            else:
                out(render_watch(
                    stats, state, read_fleet_manifest(queue_dir)))
            shown += 1
            exit_code = 1 if stats["counts"]["failed"] else 0
            drained = (stats["counts"]["pending"]
                       + stats["counts"]["leased"]) == 0
            if drained or (iterations is not None and shown >= iterations):
                break
            time.sleep(interval)
    except KeyboardInterrupt:
        out("")  # leave the cursor on a fresh line
    return exit_code
