"""The fleet audit: cross-check queue markers against the result cache.

A done marker's contract (``WorkQueue.complete``) is "the result is in the
shared cache".  At fleet scale that contract can silently break — a worker
crashes between the cache write and the marker (or vice versa), a file is
truncated by a full disk, a cache dir is restored from a stale backup —
and the sweep *looks* finished while ``ResultFrame.from_queue`` quietly
returns the wrong rows.  :func:`verify_fleet` audits every cell and
``--retry`` repairs what it can through the queue's ordinary machinery, so
a drained-then-verified queue converges to exactly the rows a serial run
would produce.

Audit categories (each a list of hashes on :class:`FleetAudit`):

``ghost_done``
    done marker present, cache row absent/unreadable — the broken
    contract.  Repair: forget the marker (``reset``) and re-enqueue.
``corrupt_markers``
    done marker unreadable or its payload hashes to a different cell.
    Repair: reset + re-enqueue (spec recovered from the batch manifest).
``orphan_cache``
    cache row for a cell nobody planned or enqueued.  Poisonous because
    ``ResultFrame.from_queue`` reads the *whole* cache dir — an orphan
    row pollutes every assembled frame.  Synthesized baseline rows
    (``baseline_spec_for``) are expected, not orphans.  Repair: the entry
    file is removed.
``cache_mismatches``
    cache row whose embedded spec does not hash to its filename (bit rot,
    hand-edited entry).  Repair: remove + re-enqueue.
``store_missing``
    done cells absent from the binary column store (``--store-dir``) —
    the serving mirror lags the cache.  Detect-only: re-ingest with
    ``repro store ingest``; re-running cells would not help.
``missing``
    planned cells absent from every queue state *and* the cache (lost
    pending file, manifest from a wider grid).  Repair: re-enqueue.
``expired``, ``failed``
    live-queue health (stale leases, quarantine) folded into the same
    report.  Repair: ``requeue_expired`` / ``retry_failed``.

All repairs go through the existing retry budget — verify never invents a
new execution path, it only puts cells back where workers will find them.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

from ..experiment.cache import ResultCache, SCHEMA_VERSION, spec_hash
from ..experiment.prune import ExperimentSpec, baseline_spec_for
from ..experiment.queue import WorkQueue
from .plan import planned_specs, read_batch_manifest

__all__ = ["FleetAudit", "verify_fleet"]


@dataclass
class FleetAudit:
    """What :func:`verify_fleet` found (hash lists per category)."""

    queue_dir: str = ""
    cache_dir: str = ""
    planned: int = 0
    done: int = 0
    cached: int = 0
    ghost_done: List[str] = field(default_factory=list)
    corrupt_markers: List[str] = field(default_factory=list)
    orphan_cache: List[str] = field(default_factory=list)
    cache_mismatches: List[str] = field(default_factory=list)
    store_missing: List[str] = field(default_factory=list)
    missing: List[str] = field(default_factory=list)
    expired: List[str] = field(default_factory=list)
    failed: List[str] = field(default_factory=list)

    _PROBLEMS = (
        "ghost_done", "corrupt_markers", "orphan_cache", "cache_mismatches",
        "store_missing", "missing", "expired", "failed",
    )

    @property
    def clean(self) -> bool:
        return not any(getattr(self, name) for name in self._PROBLEMS)

    def problems(self) -> Dict[str, List[str]]:
        """Non-empty categories only — the actionable part of the audit."""
        return {
            name: list(getattr(self, name))
            for name in self._PROBLEMS
            if getattr(self, name)
        }

    def to_dict(self) -> Dict:
        return {
            "queue_dir": self.queue_dir,
            "cache_dir": self.cache_dir,
            "planned": self.planned,
            "done": self.done,
            "cached": self.cached,
            "clean": self.clean,
            **{name: list(getattr(self, name)) for name in self._PROBLEMS},
        }


def _read_marker(path: Path) -> Optional[Dict]:
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    return payload if isinstance(payload, dict) else None


def _cache_entry_hashes(cache: ResultCache) -> Dict[str, Optional[str]]:
    """``filename-hash -> embedded-spec-hash`` for every cache entry
    (None when the entry is unreadable or schema-mismatched)."""
    out: Dict[str, Optional[str]] = {}
    for path in cache._entries():
        h = path.stem
        payload = _read_marker(path)
        if payload is None or payload.get("schema") != SCHEMA_VERSION \
                or not isinstance(payload.get("spec"), dict):
            out[h] = None
            continue
        try:
            out[h] = spec_hash(ExperimentSpec.from_dict(payload["spec"]))
        except Exception:
            out[h] = None
    return out


def _spec_from_payload(payload: Optional[Dict]) -> Optional[ExperimentSpec]:
    if payload is None or not isinstance(payload.get("spec"), dict):
        return None
    try:
        return ExperimentSpec.from_dict(payload["spec"])
    except Exception:
        return None


def verify_fleet(
    queue_dir,
    cache_dir=None,
    store_dir=None,
    retry: bool = False,
) -> Tuple[FleetAudit, Dict[str, List[str]]]:
    """Audit a fleet queue; with ``retry`` also repair what is repairable.

    Returns ``(audit, repairs)`` where ``audit`` describes the state
    *before* repairs and ``repairs`` maps action -> affected hashes
    (``requeued_expired``, ``reenqueued``, ``removed_orphans``,
    ``retried_failed``, ``unrecoverable``).  ``unrecoverable`` lists cells
    whose spec could not be recovered from any marker or the batch
    manifest — those need a re-plan.
    """
    queue = WorkQueue(queue_dir)
    if cache_dir is None:
        cache_dir = Path(queue_dir) / "cache"  # the worker/run default
    cache = ResultCache(cache_dir)
    audit = FleetAudit(queue_dir=str(queue.root), cache_dir=str(cache.root))
    repairs: Dict[str, List[str]] = {
        "requeued_expired": [],
        "reenqueued": [],
        "removed_orphans": [],
        "retried_failed": [],
        "unrecoverable": [],
    }

    manifest = read_batch_manifest(queue_dir)
    plan: Dict[str, ExperimentSpec] = {}
    if manifest is not None:
        try:
            plan = planned_specs(manifest)
        except Exception:
            plan = {}  # unreadable config: audit degrades gracefully
    audit.planned = len(plan)

    cache_entries = _cache_entry_hashes(cache)
    audit.cached = len(cache_entries)

    # recoverable spec per hash: queue payloads first, then the plan
    recover: Dict[str, ExperimentSpec] = dict(plan)

    # -- queue-side walk: done markers, leases, quarantine ---------------
    done_hashes: Set[str] = set()
    queue_hashes: Set[str] = set()
    for state, directory in (
        ("done", queue.done_dir),
        ("pending", queue.pending_dir),
        ("leased", queue.leased_dir),
        ("failed", queue.failed_dir),
    ):
        for path in sorted(directory.glob("*.json")):
            h = path.stem
            queue_hashes.add(h)
            payload = _read_marker(path)
            spec = _spec_from_payload(payload)
            if spec is not None:
                recover.setdefault(h, spec)
            if state != "done":
                continue
            done_hashes.add(h)
            if spec is None or spec_hash(spec) != h:
                audit.corrupt_markers.append(h)
            elif cache_entries.get(h) != h:
                # absent, unreadable, schema-mismatched, or holding a
                # different cell's row — the done contract is broken
                audit.ghost_done.append(h)
    audit.done = len(done_hashes)

    stats = queue.stats()
    audit.expired = sorted(
        lease["hash"] for lease in stats["leases"] if lease.get("expired")
    )
    audit.failed = sorted(row["hash"] for row in stats["failed"])

    # -- cache-side walk: orphans and integrity mismatches ---------------
    # Workers publish a synthesized baseline row alongside each pruned
    # cell; those hashes are expected even though no one enqueued them.
    expected: Set[str] = set(queue_hashes) | set(plan)
    for spec in list(recover.values()):
        try:
            expected.add(spec_hash(baseline_spec_for(spec)))
        except Exception:
            pass
    for h, embedded in sorted(cache_entries.items()):
        if embedded is not None and embedded != h:
            audit.cache_mismatches.append(h)
        elif h not in expected:
            audit.orphan_cache.append(h)

    # -- plan-side walk: cells that vanished entirely --------------------
    for h in sorted(plan):
        if h not in queue_hashes and h not in cache_entries:
            audit.missing.append(h)

    # -- store mirror ----------------------------------------------------
    if store_dir is not None:
        from ..store import ColumnStore

        try:
            stored = ColumnStore(store_dir).keys()
        except FileNotFoundError:
            stored = set()  # mirror never created: every done cell lags
        audit.store_missing = sorted(
            h for h in done_hashes
            if h not in audit.ghost_done and h not in audit.corrupt_markers
            and h not in stored
        )

    if not retry:
        return audit, repairs

    # -- repairs ---------------------------------------------------------
    repairs["requeued_expired"] = [h for h, _ in queue.requeue_expired()]
    for h in audit.ghost_done + audit.corrupt_markers:
        spec = recover.get(h)
        if spec is None:
            repairs["unrecoverable"].append(h)
            continue
        queue.reset(h)
        queue.submit(spec)
        repairs["reenqueued"].append(h)
    for h in audit.missing:
        spec = recover.get(h)
        if spec is None:
            repairs["unrecoverable"].append(h)
            continue
        queue.submit(spec)
        repairs["reenqueued"].append(h)
    for h in audit.cache_mismatches + audit.orphan_cache:
        (cache.root / h[:2] / f"{h}.json").unlink(missing_ok=True)
        repairs["removed_orphans"].append(h)
        if h in audit.cache_mismatches and h not in repairs["reenqueued"]:
            spec = recover.get(h)
            if spec is not None and queue.state(h) != "done":
                queue.submit(spec)
                repairs["reenqueued"].append(h)
    repairs["retried_failed"] = queue.retry_failed()
    return audit, repairs
