"""The worker launcher: start a fleet of queue workers from a hosts file.

``python -m repro worker <queue-dir>`` is the unit of execution; until now
every worker was started by hand.  :func:`launch_fleet` starts all of them
from one declarative *hosts file* and records what it did in a fleet
manifest, so the fleet can be audited (``repro fleet verify``), watched
(``repro queue watch``), and culled (the manifest holds every PID).

Hosts file
----------
One host per line; ``#`` starts a comment.  The first token is the host
name, the rest are ``key=value`` options::

    # host        options
    local         workers=4
    gpu-box-1     workers=8 launcher=ssh
    gpu-box-2     workers=8 python=/opt/conda/bin/python3

Recognized options: ``workers`` (worker processes on that host, default
from the CLI's ``--workers``), ``launcher`` (a ``LAUNCHERS`` registry
name; defaults to ``local`` for ``local``/``localhost``/``127.0.0.1`` and
``ssh`` for everything else), and ``python`` (the remote interpreter for
the ssh backend; the local backend always uses ``sys.executable``).

Launcher backends
-----------------
``LAUNCHERS`` is a :class:`~repro.registry.Registry` — the same seam the
executors and kernels use — of backends exposing ``build_argv(host,
worker_argv)``/``spawn(argv, log_path, env)``:

* ``local`` — ``subprocess.Popen`` in a **new session**
  (``start_new_session=True``), so workers survive the launcher being
  killed: the launcher is bookkeeping, the queue's leases are the only
  liveness protocol.
* ``ssh`` — wraps the same worker command line in ``ssh -o BatchMode=yes
  <host> ...`` (shell-quoted); the recorded PID is the local ssh client's.
  The queue directory path is passed through verbatim, so it must name the
  shared (NFS/sshfs) mount on the remote side too.

Every worker's stdout+stderr is appended to
``<queue-dir>/fleet/logs/<worker-id>.log`` and a record ``{worker_id,
host, launcher, pid, log, argv, started_at, launch}`` is merged into
``<queue-dir>/fleet/manifest.json`` (format in docs/FORMATS.md).
"""

from __future__ import annotations

import json
import os
import shlex
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from ..registry import Registry
from ..utils import atomic_write_text

__all__ = [
    "FLEET_SCHEMA_VERSION",
    "LAUNCHERS",
    "HostSpec",
    "LocalLauncher",
    "SshLauncher",
    "parse_hosts_file",
    "fleet_dir",
    "fleet_manifest_path",
    "read_fleet_manifest",
    "launch_fleet",
    "worker_alive",
]

#: bump when the fleet/batch manifest formats change incompatibly
FLEET_SCHEMA_VERSION = 1

#: host names the hosts-file parser treats as "this machine" (subprocess
#: backend) when no explicit ``launcher=`` option is given
LOCAL_HOST_NAMES = ("local", "localhost", "127.0.0.1")

#: pluggable launcher backends — register a class exposing
#: ``build_argv(host, worker_argv)`` and ``spawn(argv, log_path, env)``
LAUNCHERS = Registry("launcher")


@dataclass(frozen=True)
class HostSpec:
    """One hosts-file line: where and how many workers to start."""

    host: str
    workers: int = 1
    #: a ``LAUNCHERS`` name; None = infer from the host name
    launcher: Optional[str] = None
    #: remote interpreter (ssh backend only)
    python: str = "python3"

    def launcher_name(self) -> str:
        if self.launcher is not None:
            return self.launcher
        return "local" if self.host in LOCAL_HOST_NAMES else "ssh"


def parse_hosts_file(path, default_workers: int = 1) -> List[HostSpec]:
    """Parse a hosts file (format in the module docstring) into specs.

    Malformed lines fail loudly with the file name and line number —
    a silently dropped host is a silently smaller fleet.
    """
    path = Path(path)
    hosts: List[HostSpec] = []
    for lineno, raw in enumerate(path.read_text().splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        tokens = line.split()
        options: Dict[str, str] = {}
        for token in tokens[1:]:
            key, sep, value = token.partition("=")
            if not sep or not key or not value:
                raise ValueError(
                    f"{path}:{lineno}: expected key=value, got {token!r}"
                )
            if key not in ("workers", "launcher", "python"):
                raise ValueError(
                    f"{path}:{lineno}: unknown option {key!r} "
                    "(expected workers=, launcher=, or python=)"
                )
            options[key] = value
        try:
            workers = int(options.get("workers", default_workers))
        except ValueError as exc:
            raise ValueError(
                f"{path}:{lineno}: workers= must be an integer, "
                f"got {options['workers']!r}"
            ) from exc
        if workers < 1:
            raise ValueError(
                f"{path}:{lineno}: workers= must be >= 1, got {workers}"
            )
        launcher = options.get("launcher")
        if launcher is not None and launcher not in LAUNCHERS:
            raise ValueError(
                f"{path}:{lineno}: unknown launcher {launcher!r} "
                f"(available: {LAUNCHERS.available()})"
            )
        hosts.append(HostSpec(
            host=tokens[0], workers=workers, launcher=launcher,
            python=options.get("python", "python3"),
        ))
    if not hosts:
        raise ValueError(f"{path}: no hosts (every line blank or comment)")
    return hosts


class _SubprocessLauncher:
    """Shared spawn: detached Popen with the log file as stdout+stderr."""

    def spawn(self, argv: Sequence[str], log_path: Path,
              env: Optional[Dict[str, str]] = None) -> int:
        log_path.parent.mkdir(parents=True, exist_ok=True)
        merged = dict(os.environ)
        if env:
            merged.update(env)
        with open(log_path, "ab") as log:
            # start_new_session: the worker must survive the launcher —
            # killing `repro fleet launch` (even SIGKILL) leaves the fleet
            # running; lease expiry, not process parentage, is the
            # liveness protocol
            proc = subprocess.Popen(
                list(argv),
                stdin=subprocess.DEVNULL, stdout=log,
                stderr=subprocess.STDOUT,
                start_new_session=True, env=merged,
            )
        return proc.pid


@LAUNCHERS.register("local")
class LocalLauncher(_SubprocessLauncher):
    """Worker subprocesses on this machine (the test/bench workhorse)."""

    name = "local"

    def build_argv(self, host: HostSpec,
                   worker_argv: Sequence[str]) -> List[str]:
        return [sys.executable, "-m", "repro"] + list(worker_argv)


@LAUNCHERS.register("ssh")
class SshLauncher(_SubprocessLauncher):
    """Workers on a remote host over ssh (shared queue dir required).

    ``BatchMode=yes`` fails fast instead of prompting for a password —
    a launcher must never block on a tty.  The recorded PID is the local
    ssh client process; killing it does *not* kill the remote worker
    (lease expiry recovers its cells, same as any lost machine).
    """

    name = "ssh"

    def build_argv(self, host: HostSpec,
                   worker_argv: Sequence[str]) -> List[str]:
        remote = " ".join(
            shlex.quote(a)
            for a in [host.python, "-m", "repro"] + list(worker_argv)
        )
        return ["ssh", "-o", "BatchMode=yes", host.host, remote]


# -- fleet manifest ---------------------------------------------------------

def fleet_dir(queue_dir) -> Path:
    return Path(queue_dir) / "fleet"


def fleet_manifest_path(queue_dir) -> Path:
    return fleet_dir(queue_dir) / "manifest.json"


def read_fleet_manifest(queue_dir) -> Optional[Dict]:
    """The fleet manifest, or None when no fleet was ever launched."""
    try:
        payload = json.loads(fleet_manifest_path(queue_dir).read_text())
    except (OSError, json.JSONDecodeError):
        return None
    return payload if isinstance(payload, dict) else None


def worker_alive(entry: Dict) -> Optional[bool]:
    """Whether a manifest worker's *local* process is still running.

    Only meaningful on the machine that launched it (PIDs are local to
    the launcher host); returns None when the entry has no usable PID.
    For the ssh backend this reports the ssh client process, which is a
    good proxy while the connection lasts.
    """
    pid = entry.get("pid")
    if not isinstance(pid, int) or pid <= 0:
        return None
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    except OSError:
        return None
    return True


def _worker_cli_argv(
    queue_dir,
    worker_id: str,
    imports: Sequence[str] = (),
    idle_timeout: Optional[float] = None,
    max_cells: Optional[int] = None,
    cache_dir=None,
    store_dir=None,
    kernel_backend: Optional[str] = None,
) -> List[str]:
    """The ``python -m repro`` argv tail every launched worker runs."""
    argv: List[str] = ["worker", str(queue_dir), "--worker-id", worker_id]
    for module in imports:
        argv += ["--import", module]
    if idle_timeout is not None:
        argv += ["--idle-timeout", str(idle_timeout)]
    if max_cells is not None:
        argv += ["--max-cells", str(max_cells)]
    if cache_dir is not None:
        argv += ["--cache-dir", str(cache_dir)]
    if store_dir is not None:
        argv += ["--store-dir", str(store_dir)]
    if kernel_backend is not None:
        argv += ["--kernel-backend", kernel_backend]
    return argv


def launch_fleet(
    hosts: Sequence[HostSpec],
    queue_dir,
    imports: Sequence[str] = (),
    idle_timeout: Optional[float] = None,
    max_cells: Optional[int] = None,
    cache_dir=None,
    store_dir=None,
    kernel_backend: Optional[str] = None,
    env: Optional[Dict[str, str]] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict:
    """Start every host's workers and merge them into the fleet manifest.

    Returns the updated manifest dict (also written to
    ``<queue-dir>/fleet/manifest.json``).  The queue directory must
    already have the work-queue layout — run ``repro fleet plan`` (or
    ``repro run --executor queue``) first, so a typo'd path cannot grow a
    sham queue skeleton.
    """
    from ..analysis.frame import is_queue_dir

    queue_dir = Path(queue_dir)
    if not is_queue_dir(queue_dir):
        raise ValueError(
            f"no work queue at {queue_dir} (missing queue.json) — create "
            "it first with `repro fleet plan` or "
            "`repro run --executor queue --queue-dir`"
        )
    logs_dir = fleet_dir(queue_dir) / "logs"
    manifest = read_fleet_manifest(queue_dir) or {
        "schema": FLEET_SCHEMA_VERSION,
        "queue_dir": str(queue_dir),
        "launches": 0,
        "workers": [],
    }
    launch_seq = int(manifest.get("launches", 0)) + 1
    existing = len(manifest.get("workers", []))
    started: List[Dict] = []
    for host in hosts:
        launcher = LAUNCHERS.create(host.launcher_name())
        for i in range(host.workers):
            worker_id = f"{host.host}-w{existing + len(started)}"
            argv = launcher.build_argv(
                host,
                _worker_cli_argv(
                    queue_dir, worker_id, imports=imports,
                    idle_timeout=idle_timeout, max_cells=max_cells,
                    cache_dir=cache_dir, store_dir=store_dir,
                    kernel_backend=kernel_backend,
                ),
            )
            log_path = logs_dir / f"{worker_id}.log"
            pid = launcher.spawn(argv, log_path, env=env)
            entry = {
                "worker_id": worker_id,
                "host": host.host,
                "launcher": host.launcher_name(),
                "pid": pid,
                "log": str(log_path.relative_to(queue_dir)),
                "argv": list(argv),
                "started_at": time.time(),
                "launch": launch_seq,
            }
            started.append(entry)
            if progress:
                progress(f"launched {worker_id} on {host.host} "
                         f"({host.launcher_name()}, pid {pid}) "
                         f"-> {entry['log']}")
    manifest["workers"] = list(manifest.get("workers", [])) + started
    manifest["launches"] = launch_seq
    manifest["updated_at"] = time.time()
    atomic_write_text(fleet_manifest_path(queue_dir),
                      json.dumps(manifest, indent=1))
    return manifest
