"""The batch planner: split a sweep into audited queue submissions.

``repro run --executor queue`` submits a whole sweep at once and waits for
it; a fleet-scale sweep wants the submission itself to be durable,
inspectable, and re-runnable.  :func:`fleet_plan` expands a
:class:`~repro.experiment.config.SweepConfig`, splits the deduplicated
cells into contiguous batches, submits each batch to the
:class:`~repro.experiment.queue.WorkQueue`, and writes
``<queue-dir>/fleet/batch_manifest.json`` recording the spec hashes of
every batch.

The manifest is the fleet's audit trail, load-bearing in two ways:

* ``repro fleet verify`` cross-checks every planned hash against the
  queue's markers and the shared cache — and because the manifest embeds
  the full config, verify can re-derive the :class:`ExperimentSpec` for
  any hash and re-enqueue cells whose on-disk record was lost or
  corrupted (a bare hash could never be re-executed).
* Planning is **idempotent**: re-running ``fleet plan`` with the same
  config re-submits only what is missing (``submit`` skips
  pending/leased/done cells), so a crashed planning run is simply run
  again.  A *different* config on an already-planned queue is refused
  unless forced — two overlapping grids sharing one queue directory would
  make the audit trail ambiguous.

Batch manifest format (docs/FORMATS.md)::

    {"schema": 1, "created_at": ..., "config": {...SweepConfig...},
     "config_hash": "<16 hex>", "batch_size": 64, "n_cells": 1000,
     "batches": [{"index": 0, "hashes": ["...", ...],
                  "submitted": 61, "already_done": 3, "already_queued": 0},
                 ...]}
"""

from __future__ import annotations

import hashlib
import json
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..experiment.cache import spec_hash
from ..experiment.config import SweepConfig
from ..experiment.queue import WorkQueue
from ..utils import atomic_write_text, canonical_json
from .launcher import FLEET_SCHEMA_VERSION, fleet_dir

__all__ = [
    "batch_manifest_path",
    "config_hash",
    "plan_batches",
    "fleet_plan",
    "read_batch_manifest",
]


def batch_manifest_path(queue_dir) -> Path:
    return fleet_dir(queue_dir) / "batch_manifest.json"


def config_hash(config: SweepConfig) -> str:
    """Stable 16-hex content hash of a sweep config (canonical JSON)."""
    blob = canonical_json(config.to_dict())
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def read_batch_manifest(queue_dir) -> Optional[Dict]:
    """The batch manifest, or None when the queue was never planned."""
    try:
        payload = json.loads(batch_manifest_path(queue_dir).read_text())
    except (OSError, json.JSONDecodeError):
        return None
    return payload if isinstance(payload, dict) else None


def plan_batches(specs: Sequence, batch_size: int) -> List[List]:
    """Contiguous ``batch_size``-cell chunks of the deduplicated specs.

    Expansion can repeat a hash (shared baselines); each unique cell is
    planned exactly once, first occurrence wins, expansion order is kept
    so a batch maps back to a contiguous slice of the grid.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    seen = set()
    unique = []
    for spec in specs:
        h = spec_hash(spec)
        if h not in seen:
            seen.add(h)
            unique.append(spec)
    return [unique[i:i + batch_size]
            for i in range(0, len(unique), batch_size)]


def fleet_plan(
    config: SweepConfig,
    queue_dir,
    batch_size: int = 64,
    lease_timeout: Optional[float] = None,
    max_retries: Optional[int] = None,
    kernel_backend: Optional[str] = None,
    submit: bool = True,
    force: bool = False,
) -> Dict:
    """Plan (and by default submit) a config into a queue; returns the
    written batch manifest.

    Queue settings come from the config's ``executor_options`` (the same
    keys a ``--executor queue`` run would use) with explicit arguments
    winning — so a planned queue and a ``repro run`` queue behave
    identically for workers.  ``submit=False`` (CLI ``--dry-run``) writes
    the manifest without touching ``pending/``.
    """
    queue_dir = Path(queue_dir)
    chash = config_hash(config)
    previous = read_batch_manifest(queue_dir)
    if previous is not None and previous.get("config_hash") != chash \
            and not force:
        raise ValueError(
            f"queue {queue_dir} is already planned from a different config "
            f"(manifest hash {previous.get('config_hash')}, this config "
            f"{chash}) — pass --force to replace the plan"
        )
    options = dict(config.executor_options)
    if lease_timeout is None:
        lease_timeout = options.get("lease_timeout")
    if max_retries is None:
        max_retries = options.get("max_retries")
    if kernel_backend is None:
        kernel_backend = options.get("kernel_backend")
    queue = WorkQueue(
        queue_dir, lease_timeout=lease_timeout, max_retries=max_retries,
        kernel_backend=kernel_backend,
    )
    batches = plan_batches(config.expand(), batch_size)
    entries: List[Dict] = []
    n_cells = 0
    for index, batch in enumerate(batches):
        counts = {"submitted": 0, "already_done": 0, "already_queued": 0}
        hashes = []
        for spec in batch:
            h = spec_hash(spec)
            hashes.append(h)
            n_cells += 1
            state = queue.state(h)
            if state == "done":
                counts["already_done"] += 1
            elif state in ("pending", "leased"):
                counts["already_queued"] += 1
            elif submit:
                queue.submit(spec)  # also resurrects quarantined cells
                counts["submitted"] += 1
        entries.append({"index": index, "hashes": hashes, **counts})
    manifest = {
        "schema": FLEET_SCHEMA_VERSION,
        "created_at": time.time(),
        "queue_dir": str(queue_dir),
        "config": config.to_dict(),
        "config_hash": chash,
        "batch_size": batch_size,
        "n_cells": n_cells,
        "submitted": submit,
        "batches": entries,
    }
    atomic_write_text(batch_manifest_path(queue_dir),
                      json.dumps(manifest, indent=1))
    return manifest


def planned_specs(manifest: Dict) -> Dict[str, object]:
    """``hash -> ExperimentSpec`` for every cell the manifest planned.

    Re-expands the embedded config — the property that makes a corrupted
    or ghost-done cell *recoverable*: the hash alone names the cell, the
    re-expansion supplies the spec to re-enqueue.
    """
    config = SweepConfig.from_dict(manifest["config"])
    by_hash = {}
    for spec in config.expand():
        by_hash.setdefault(spec_hash(spec), spec)
    return by_hash
