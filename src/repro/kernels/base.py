"""Shared infrastructure for kernel backends: buffer pool and saved-forward
contexts.

A *kernel backend* is an object exposing the hot compute primitives the
autograd layer dispatches through (see :mod:`repro.kernels`).  Every
primitive operates on plain ``numpy.ndarray`` values — backends know nothing
about :class:`~repro.autograd.tensor.Tensor` or the tape, which is what lets
a Numba/C backend drop in later without touching autograd.

Forward kernels that have a matching backward return an opaque *context*
object carrying whatever the backward needs (the im2col matrix, the reshaped
weight, the ReLU mask).  The autograd op closes over the context; when the
tape node is garbage-collected the context goes with it, which is also how
pooled buffers find their way back to the :class:`BufferPool` (see
:class:`PooledConvCtx`).
"""

from __future__ import annotations

import threading
from typing import Optional, Tuple

import numpy as np

__all__ = [
    "BufferPool",
    "ConvCtx",
    "PooledConvCtx",
    "LinearCtx",
    "KernelBackend",
]


class BufferPool:
    """A free-list of reusable scratch arrays keyed by (shape, dtype).

    The conv kernels allocate multi-megabyte im2col/col2im scratch on every
    call; across the thousands of train steps of a sweep cell those
    allocations are pure malloc/page-fault churn, since the shapes repeat
    from step to step.  ``acquire`` pops a recycled buffer (or allocates on
    miss) and ``release`` returns one for reuse.

    Contents of acquired buffers are *undefined* — callers must fully
    overwrite them.  The pool is thread-safe (a lock guards the free lists;
    ownership between ``acquire`` and ``release`` is exclusive to the
    caller).  ``max_per_key``/``max_bytes`` bound retained memory; releases
    beyond either bound simply drop the buffer to the garbage collector.
    """

    def __init__(self, max_per_key: int = 8, max_bytes: int = 1 << 28) -> None:
        self.max_per_key = max_per_key
        self.max_bytes = max_bytes
        self._free: dict = {}
        self._bytes = 0
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def acquire(self, shape: Tuple[int, ...], dtype) -> np.ndarray:
        key = (tuple(shape), np.dtype(dtype).str)
        with self._lock:
            lst = self._free.get(key)
            if lst:
                self.hits += 1
                arr = lst.pop()
                self._bytes -= arr.nbytes
                return arr
            self.misses += 1
        return np.empty(shape, dtype)

    def release(self, arr: Optional[np.ndarray]) -> None:
        if arr is None:
            return
        key = (arr.shape, arr.dtype.str)
        with self._lock:
            lst = self._free.setdefault(key, [])
            if (
                len(lst) < self.max_per_key
                and self._bytes + arr.nbytes <= self.max_bytes
            ):
                lst.append(arr)
                self._bytes += arr.nbytes

    def clear(self) -> None:
        with self._lock:
            self._free.clear()
            self._bytes = 0

    def stats(self) -> dict:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "retained_bytes": self._bytes,
                "keys": len(self._free),
            }


class ConvCtx:
    """Saved-forward state for ``conv2d_backward`` (and the fused variant)."""

    __slots__ = (
        "cols",
        "w_mat",
        "x_shape",
        "w_shape",
        "stride",
        "padding",
        "has_bias",
        "mask",
    )

    def __init__(self, **kw) -> None:
        self.mask = None
        for k, v in kw.items():
            setattr(self, k, v)


class PooledConvCtx(ConvCtx):
    """A :class:`ConvCtx` whose ``cols`` buffer came from a :class:`BufferPool`.

    The buffer returns to the pool when the context is garbage-collected —
    i.e. when the autograd tape node holding the backward closure dies.
    Tying the release to object lifetime (rather than to the backward call)
    keeps repeated ``backward()`` on a retained tape safe: the buffer cannot
    be recycled while anything can still read it.
    """

    __slots__ = ("pool",)

    def __init__(self, pool: Optional[BufferPool] = None, **kw) -> None:
        super().__init__(**kw)
        self.pool = pool

    def __del__(self) -> None:
        try:
            pool = getattr(self, "pool", None)
            cols = getattr(self, "cols", None)
            if pool is not None and cols is not None:
                self.cols = None
                pool.release(cols)
        except Exception:  # pragma: no cover - interpreter shutdown
            pass


class LinearCtx:
    """Saved-forward state for ``linear_backward``."""

    __slots__ = ("x", "w", "has_bias")

    def __init__(self, x, w, has_bias) -> None:
        self.x = x
        self.w = w
        self.has_bias = has_bias


class KernelBackend:
    """Base class for kernel backends: names the protocol, owns the dtype mode.

    Subclasses implement the primitives (see :class:`ReferenceKernels` for
    the canonical signatures):

    * ``gemm(a, b, out=None)``
    * ``conv2d_forward(x, w, b, stride, padding, want_ctx)`` /
      ``conv2d_backward(g, ctx)``
    * ``fused_conv_bias_relu_forward(...)`` / ``..._backward(g, ctx)``
    * ``maxpool_forward(x, kernel, stride)`` /
      ``maxpool_backward(x_shape, arg, g, kernel, stride, dtype)``
    * ``linear_forward(x, w, b, want_ctx)`` / ``linear_backward(g, ctx)``
    * elementwise train-step ops: ``relu_forward(x)``, ``relu_backward(g, x)``
      and the in-place ``sgd_update(param, grad, velocity, ...)``

    ``compute_dtype`` is the float32-throughout mode: when set, forward and
    backward kernels cast their float inputs to it (via :meth:`cast`) so the
    GEMMs run in single precision.  Optimizer state is deliberately *not*
    cast — ``sgd_update`` works in the parameter's own dtype, and autograd's
    gradient accumulation casts grads back to the parameter dtype.
    """

    def __init__(self, name: str, compute_dtype=None) -> None:
        self.name = name
        self.compute_dtype = None if compute_dtype is None else np.dtype(compute_dtype)

    def cast(self, a: Optional[np.ndarray]) -> Optional[np.ndarray]:
        """Cast a float array to the backend's compute dtype (no-op by default)."""
        if a is None or self.compute_dtype is None:
            return a
        if a.dtype == self.compute_dtype or a.dtype.kind not in "f":
            return a
        return a.astype(self.compute_dtype)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        dt = self.compute_dtype.name if self.compute_dtype is not None else "preserve"
        return f"{type(self).__name__}({self.name!r}, compute_dtype={dt})"
