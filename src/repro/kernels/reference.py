"""The reference kernel backend: the original NumPy hot-path code, verbatim.

The module-level functions here (:func:`im2col`, :func:`col2im`, the two
max-pool scatter variants, :func:`conv_output_shape`) are the exact
implementations that previously lived in :mod:`repro.autograd.conv`; that
module now re-exports them for backward compatibility.
:class:`ReferenceKernels` wraps them in the backend protocol so every other
backend can be equivalence-tested against it.

Registered names:

* ``reference`` — dtype-preserving, the process default.
* ``reference-f32`` — same math with all float inputs cast to float32
  (the float32-throughout mode's own reference, so the ``fast-f32`` backend
  has a byte-equivalence twin).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from .base import ConvCtx, KernelBackend, LinearCtx

__all__ = [
    "ReferenceKernels",
    "conv_output_shape",
    "im2col",
    "col2im",
    "max_pool2d_backward_scatter",
    "max_pool2d_backward_add_at",
]


def conv_output_shape(
    in_hw: Tuple[int, int], kernel: Tuple[int, int], stride: int, padding: int
) -> Tuple[int, int]:
    """Spatial output shape of a conv/pool with the given geometry."""
    h = (in_hw[0] + 2 * padding - kernel[0]) // stride + 1
    w = (in_hw[1] + 2 * padding - kernel[1]) // stride + 1
    if h <= 0 or w <= 0:
        raise ValueError(
            f"Non-positive conv output {h}x{w} for input {in_hw}, "
            f"kernel {kernel}, stride {stride}, padding {padding}"
        )
    return h, w


def im2col(
    x: np.ndarray, kh: int, kw: int, stride: int, padding: int
) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Extract sliding patches as a GEMM-ready matrix.

    Returns ``cols`` of shape ``(N*OH*OW, C*kh*kw)`` (C-contiguous) so that
    both the forward pass and the two backward passes are single large BLAS
    GEMMs rather than batched small ones.
    """
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    n, c, h, w = x.shape
    oh, ow = (h - kh) // stride + 1, (w - kw) // stride + 1
    # windows: strided view (N, C, OH, OW, kh, kw)
    windows = sliding_window_view(x, (kh, kw), axis=(2, 3))[
        :, :, ::stride, ::stride, :, :
    ]
    # -> (N, OH, OW, C, kh, kw) -> (N*OH*OW, C*kh*kw); one materializing copy.
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(n * oh * ow, c * kh * kw)
    return cols, (oh, ow)


def col2im(
    dcols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Adjoint of :func:`im2col`: scatter patch grads back to the image.

    ``dcols`` has shape ``(N*OH*OW, C*kh*kw)``.  The scatter uses a kh×kw
    loop of fully-vectorised strided adds (the standard fast col2im).
    """
    n, c, h, w = x_shape
    oh, ow = conv_output_shape((h, w), (kh, kw), stride, padding)
    hp, wp = h + 2 * padding, w + 2 * padding
    dx = np.zeros((n, c, hp, wp), dtype=dcols.dtype)
    # One sequential materializing copy into (kh, kw, N, C, OH, OW) so each
    # scatter-add below reads a contiguous source block.
    d6 = np.ascontiguousarray(
        dcols.reshape(n, oh, ow, c, kh, kw).transpose(4, 5, 0, 3, 1, 2)
    )
    for i in range(kh):
        hi = i + stride * oh
        for j in range(kw):
            wj = j + stride * ow
            dx[:, :, i:hi:stride, j:wj:stride] += d6[i, j]
    if padding:
        dx = dx[:, :, padding:-padding, padding:-padding]
    return dx


def max_pool2d_backward_scatter(
    x_shape: Tuple[int, int, int, int],
    arg: np.ndarray,
    g: np.ndarray,
    kernel: int,
    stride: int,
    dtype,
) -> np.ndarray:
    """Max-pool input gradient for *non-overlapping* windows (stride ≥ kernel).

    Each input cell then receives at most one window's gradient, so the
    scatter-add degenerates to a pure scatter: a fancy-index *assignment*,
    which is several times faster than :func:`np.add.at`'s unbuffered
    accumulation.  ``g + 0.0`` normalizes ``-0.0`` gradients to ``+0.0`` so
    the result stays byte-identical to adding into a zeroed buffer.
    """
    n, c, _, _ = x_shape
    oh, ow = arg.shape[2], arg.shape[3]
    dx = np.zeros(x_shape, dtype=dtype)
    ki, kj = np.divmod(arg, kernel)
    oi, oj = np.ogrid[0:oh, 0:ow]
    ni = np.arange(n)[:, None, None, None]
    ci = np.arange(c)[None, :, None, None]
    dx[ni, ci, oi * stride + ki, oj * stride + kj] = g + 0.0
    return dx


def max_pool2d_backward_add_at(
    x_shape: Tuple[int, int, int, int],
    arg: np.ndarray,
    g: np.ndarray,
    kernel: int,
    stride: int,
    dtype,
) -> np.ndarray:
    """Reference max-pool input gradient via ``np.add.at``.

    Correct for any stride/kernel combination (overlapping windows
    accumulate); :func:`max_pool2d_backward_scatter` is equivalence-tested
    against this and used on the non-overlapping hot path.
    """
    dx = np.zeros(x_shape, dtype=dtype)
    ki, kj = np.divmod(arg, kernel)
    ni, ci, oi, oj = np.indices(arg.shape, sparse=False)
    rows = oi * stride + ki
    cols_ = oj * stride + kj
    np.add.at(dx, (ni, ci, rows, cols_), g)
    return dx


class ReferenceKernels(KernelBackend):
    """Dtype-preserving backend built on the verbatim reference functions.

    Every primitive produces results bit-identical to the pre-kernels
    autograd code paths (modulo the optional ``compute_dtype`` cast), which
    makes this the equivalence oracle for all other backends.
    """

    # -- GEMM -----------------------------------------------------------
    def gemm(self, a: np.ndarray, b: np.ndarray, out: Optional[np.ndarray] = None):
        """Single large BLAS matmul (batched via numpy's stacked matmul)."""
        return np.matmul(self.cast(a), self.cast(b), out=out)

    # -- im2col plumbing (overridable by pooled backends) ---------------
    def im2col(self, x, kh, kw, stride, padding):
        return im2col(x, kh, kw, stride, padding)

    def col2im(self, dcols, x_shape, kh, kw, stride, padding):
        return col2im(dcols, x_shape, kh, kw, stride, padding)

    # -- dense conv2d ---------------------------------------------------
    def conv2d_forward(
        self,
        x: np.ndarray,
        w: np.ndarray,
        b: Optional[np.ndarray],
        stride: int,
        padding: int,
        want_ctx: bool,
    ) -> Tuple[np.ndarray, Optional[ConvCtx]]:
        """im2col + one GEMM.  Returns ``(out, ctx)``; ctx is None when the
        caller will not run a backward pass."""
        x, w, b = self.cast(x), self.cast(w), self.cast(b)
        n = x.shape[0]
        c_out = w.shape[0]
        kh, kw_ = w.shape[2], w.shape[3]
        cols, (oh, ow) = self.im2col(x, kh, kw_, stride, padding)  # (N*P, K)
        w_mat = w.reshape(c_out, -1)  # (F, K)
        out2d = cols @ w_mat.T  # single GEMM -> (N*P, F)
        out = np.moveaxis(out2d.reshape(n, oh, ow, c_out), 3, 1)
        if b is not None:
            out = out + b.reshape(1, c_out, 1, 1)
        else:
            out = np.ascontiguousarray(out)
        if not want_ctx:
            return out, None
        ctx = ConvCtx(
            cols=cols,
            w_mat=w_mat,
            x_shape=x.shape,
            w_shape=w.shape,
            stride=stride,
            padding=padding,
            has_bias=b is not None,
        )
        return out, ctx

    def conv2d_backward(self, g: np.ndarray, ctx: ConvCtx):
        """Two GEMMs + col2im scatter.  Returns ``(gx, gw[, gb])``."""
        g = self.cast(g)
        n = ctx.x_shape[0]
        c_out, _, kh, kw_ = ctx.w_shape
        oh, ow = g.shape[2], g.shape[3]
        # (N,F,OH,OW) -> (N*P, F); one materializing copy.
        g2d = np.moveaxis(g, 1, 3).reshape(n * oh * ow, c_out)
        gw = (g2d.T @ ctx.cols).reshape(ctx.w_shape)  # single GEMM
        dcols = g2d @ ctx.w_mat  # single GEMM -> (N*P, K)
        gx = self.col2im(dcols, ctx.x_shape, kh, kw_, ctx.stride, ctx.padding)
        if not ctx.has_bias:
            return gx, gw
        gb = g.sum(axis=(0, 2, 3))
        return gx, gw, gb

    # -- fused conv + bias + relu ---------------------------------------
    def fused_conv_bias_relu_forward(
        self, x, w, b, stride: int, padding: int, want_ctx: bool
    ):
        """conv2d + bias + ReLU as one kernel (byte-equal to the composed ops)."""
        out, ctx = self.conv2d_forward(x, w, b, stride, padding, want_ctx)
        if ctx is not None:
            ctx.mask = out > 0
        return np.maximum(out, 0), ctx

    def fused_conv_bias_relu_backward(self, g: np.ndarray, ctx: ConvCtx):
        """ReLU mask then the conv backward; gb sees the masked gradient."""
        return self.conv2d_backward(self.cast(g) * ctx.mask, ctx)

    # -- max pooling ----------------------------------------------------
    def maxpool_forward(self, x: np.ndarray, kernel: int, stride: int):
        """Windowed argmax; returns ``(out, arg)`` with arg kept for backward."""
        x = self.cast(x)
        n, c, h, w = x.shape
        oh, ow = conv_output_shape((h, w), (kernel, kernel), stride, 0)
        windows = sliding_window_view(x, (kernel, kernel), axis=(2, 3))[
            :, :, ::stride, ::stride
        ]  # (N,C,OH,OW,k,k)
        flat = windows.reshape(n, c, oh, ow, kernel * kernel)
        arg = flat.argmax(axis=-1)
        out = np.take_along_axis(flat, arg[..., None], axis=-1)[..., 0]
        return np.ascontiguousarray(out), arg

    def maxpool_backward(self, x_shape, arg, g, kernel: int, stride: int, dtype):
        """Scatter (non-overlapping fast path) or add.at (general) input grad."""
        g = self.cast(g)
        if self.compute_dtype is not None:
            dtype = self.compute_dtype
        scatter = (
            max_pool2d_backward_scatter
            if stride >= kernel
            else max_pool2d_backward_add_at
        )
        return scatter(x_shape, arg, g, kernel, stride, dtype)

    # -- linear (2-D affine) --------------------------------------------
    def linear_forward(
        self, x: np.ndarray, w: np.ndarray, b: Optional[np.ndarray], want_ctx: bool
    ):
        """``x @ w.T + b`` for 2-D ``x`` with PyTorch ``(out, in)`` weights."""
        x, w, b = self.cast(x), self.cast(w), self.cast(b)
        out = x @ w.T
        if b is not None:
            out = out + b
        ctx = LinearCtx(x=x, w=w, has_bias=b is not None) if want_ctx else None
        return out, ctx

    def linear_backward(self, g: np.ndarray, ctx: LinearCtx):
        g = self.cast(g)
        gx = g @ ctx.w
        gw = g.T @ ctx.x
        if not ctx.has_bias:
            return gx, gw
        return gx, gw, g.sum(axis=0)

    # -- elementwise train-step ops -------------------------------------
    def relu_forward(self, x: np.ndarray) -> np.ndarray:
        return np.maximum(self.cast(x), 0)

    def relu_backward(self, g: np.ndarray, x: np.ndarray) -> np.ndarray:
        return self.cast(g) * (x > 0)

    def sgd_update(
        self,
        param: np.ndarray,
        grad: np.ndarray,
        velocity: Optional[np.ndarray],
        lr: float,
        momentum: float,
        nesterov: bool,
        weight_decay: float,
    ) -> Optional[np.ndarray]:
        """In-place SGD step on one parameter; returns the velocity buffer.

        Runs in the parameter's own dtype regardless of ``compute_dtype`` —
        optimizer state precision is a training-semantics decision, not a
        kernel one.
        """
        g = grad
        if weight_decay:
            g = g + weight_decay * param
        if momentum:
            if velocity is None:
                velocity = np.zeros_like(param)
            velocity *= momentum
            velocity += g
            g = g + momentum * velocity if nesterov else velocity
        param -= lr * g
        return velocity
