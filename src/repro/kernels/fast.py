"""The fast kernel backend: pooled scratch buffers and ``out=`` GEMMs.

Same arithmetic as :class:`~repro.kernels.reference.ReferenceKernels` — the
equivalence tests assert byte-identical outputs — but the multi-megabyte
im2col/col2im scratch arrays are recycled through a :class:`BufferPool`
instead of being re-allocated (and page-faulted in) on every call, and the
forward/backward GEMMs write into pooled buffers via ``np.matmul(..., out=)``.
Buffer shapes repeat across the thousands of train steps in a sweep cell, so
steady-state training allocates almost no conv scratch at all.

Ownership protocol:

* scratch that dies within one kernel call (padded input, col2im's 6-D
  staging array, backward's ``g2d``/``dcols``) is released explicitly;
* the ``cols`` matrix must survive until the backward pass, so it rides in a
  :class:`PooledConvCtx` and returns to the pool when the autograd tape node
  is garbage-collected.

Registered names:

* ``fast`` — dtype-preserving; byte-equal to ``reference``.
* ``fast-f32`` — float32-throughout compute; byte-equal to
  ``reference-f32``, documented-tolerance vs the float64 ``reference``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from .base import BufferPool, PooledConvCtx
from .reference import ReferenceKernels, conv_output_shape

__all__ = ["FastKernels"]


class FastKernels(ReferenceKernels):
    """Buffer-pooled twin of the reference backend (byte-equal results)."""

    def __init__(self, name: str = "fast", compute_dtype=None) -> None:
        super().__init__(name, compute_dtype)
        self.pool = BufferPool()

    def clear_pool(self) -> None:
        """Drop all retained scratch (tests and memory-pressure escape hatch)."""
        self.pool.clear()

    # -- dense conv2d ---------------------------------------------------
    def conv2d_forward(self, x, w, b, stride, padding, want_ctx):
        x, w, b = self.cast(x), self.cast(w), self.cast(b)
        pool = self.pool
        n, c, h, w_in = x.shape
        c_out = w.shape[0]
        kh, kw_ = w.shape[2], w.shape[3]
        hp, wp = h + 2 * padding, w_in + 2 * padding
        # Stage the (padded) input in NHWC: sliding windows over an NHWC
        # array come out directly in cols order (n, oh, ow, c, kh, kw), so
        # the big gather below runs over longer contiguous runs than the
        # 6-D transpose the NCHW layout forces.  The values landing in
        # ``cols`` are identical either way, and the GEMM only sees
        # ``cols``, so byte-equality with the reference is preserved.
        xt = pool.acquire((n, hp, wp, c), x.dtype)
        if padding:
            xt[:, :padding, :, :] = 0.0
            xt[:, hp - padding :, :, :] = 0.0
            xt[:, :, :padding, :] = 0.0
            xt[:, :, wp - padding :, :] = 0.0
        xt[:, padding : padding + h, padding : padding + w_in, :] = (
            x.transpose(0, 2, 3, 1)
        )
        oh, ow = conv_output_shape((h, w_in), (kh, kw_), stride, padding)
        windows = sliding_window_view(xt, (kh, kw_), axis=(1, 2))[
            :, ::stride, ::stride
        ]
        cols = pool.acquire((n * oh * ow, c * kh * kw_), x.dtype)
        cols.reshape(n, oh, ow, c, kh, kw_)[...] = windows
        pool.release(xt)
        w_mat = w.reshape(c_out, -1)
        # The GEMM must stay the reference's exact (p, k) @ (k, c_out) call:
        # reshaping it (e.g. a batched n x (c_out, k) @ (k, oh*ow) matmul
        # straight into NCHW) changes which BLAS kernel runs and with it the
        # last-ulp rounding, breaking byte-equality on odd shapes.
        out2d = pool.acquire((n * oh * ow, c_out), x.dtype)
        np.matmul(cols, w_mat.T, out=out2d)
        out4 = np.moveaxis(out2d.reshape(n, oh, ow, c_out), 3, 1)
        # The bias add (or the contiguity copy) materializes the fresh output
        # array, after which out2d is recyclable scratch.
        if b is not None:
            out = out4 + b.reshape(1, c_out, 1, 1)
        else:
            out = np.ascontiguousarray(out4)
        pool.release(out2d)
        if not want_ctx:
            pool.release(cols)
            return out, None
        ctx = PooledConvCtx(
            pool=pool,
            cols=cols,
            w_mat=w_mat,
            x_shape=x.shape,
            w_shape=w.shape,
            stride=stride,
            padding=padding,
            has_bias=b is not None,
        )
        return out, ctx

    def conv2d_backward(self, g, ctx):
        g = self.cast(g)
        pool = self.pool
        n = ctx.x_shape[0]
        c_out, _, kh, kw_ = ctx.w_shape
        oh, ow = g.shape[2], g.shape[3]
        p = n * oh * ow
        g2d = pool.acquire((p, c_out), g.dtype)
        g2d.reshape(n, oh, ow, c_out)[...] = np.moveaxis(g, 1, 3)
        gw = (g2d.T @ ctx.cols).reshape(ctx.w_shape)  # single GEMM
        dcols = pool.acquire((p, ctx.cols.shape[1]), g.dtype)
        np.matmul(g2d, ctx.w_mat, out=dcols)
        gx = self.col2im(dcols, ctx.x_shape, kh, kw_, ctx.stride, ctx.padding)
        pool.release(dcols)
        pool.release(g2d)
        if not ctx.has_bias:
            return gx, gw
        gb = g.sum(axis=(0, 2, 3))
        return gx, gw, gb

    def col2im(self, dcols, x_shape, kh, kw, stride, padding):
        n, c, h, w = x_shape
        oh, ow = conv_output_shape((h, w), (kh, kw), stride, padding)
        hp, wp = h + 2 * padding, w + 2 * padding
        # dx is (a view of) the returned gradient, so it cannot be pooled;
        # only the 6-D staging copy is recycled.
        dx = np.zeros((n, c, hp, wp), dtype=dcols.dtype)
        d6 = self.pool.acquire((kh, kw, n, c, oh, ow), dcols.dtype)
        d6[...] = dcols.reshape(n, oh, ow, c, kh, kw).transpose(4, 5, 0, 3, 1, 2)
        for i in range(kh):
            hi = i + stride * oh
            for j in range(kw):
                wj = j + stride * ow
                dx[:, :, i:hi:stride, j:wj:stride] += d6[i, j]
        self.pool.release(d6)
        if padding:
            dx = dx[:, :, padding:-padding, padding:-padding]
        return dx

    # -- fused conv + bias + relu ---------------------------------------
    def fused_conv_bias_relu_forward(self, x, w, b, stride, padding, want_ctx):
        out, ctx = self.conv2d_forward(x, w, b, stride, padding, want_ctx)
        if ctx is not None:
            ctx.mask = out > 0
        # out is freshly materialized by the bias add, so ReLU can run in place.
        np.maximum(out, 0, out=out)
        return out, ctx
