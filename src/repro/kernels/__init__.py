"""Pluggable compute-kernel backends for the autograd engine.

The paper's core argument (Blalock et al., MLSys 2020) is that performance
claims are only meaningful inside a shared, controlled harness.  This
package applies that logic to our own hot-path optimizations: all heavy
array math (im2col convolution, pooling, the 2-D affine map, the
elementwise train-step ops) is routed through *one* seam — the active
kernel backend — so reference and optimized implementations are
interchangeable and equivalence-tested, and a Numba/C backend can drop in
later without touching autograd.

Registered backends (``python -m repro ls kernels``):

* ``reference`` — the original NumPy code, verbatim; the default.
* ``fast`` — buffer-pooled scratch + ``out=`` GEMMs; byte-equal results.
* ``reference-f32`` / ``fast-f32`` — the same pair in float32-throughout
  compute mode (documented-tolerance vs the float64 backends).

Selection (first hit wins):

1. a ``with use_backend(name):`` block (thread-local — executors use this
   so worker threads don't fight over a global);
2. :func:`set_backend` (process-wide, e.g. from the ``--kernel-backend``
   CLI flag);
3. the ``REPRO_KERNEL_BACKEND`` environment variable;
4. the default, ``reference``.

Config precedence across the experiment stack is *env < config < CLI*:
``SweepConfig.executor_options["kernel_backend"]`` overrides the
environment (the executor wraps each cell in :func:`use_backend`), and the
``--kernel-backend`` flag overrides the config.
"""

from __future__ import annotations

import os
import threading
from typing import Dict, Optional, Union

import numpy as np

from ..registry import Registry
from .base import BufferPool, KernelBackend
from .fast import FastKernels
from .reference import ReferenceKernels

__all__ = [
    "KERNELS",
    "KernelBackend",
    "BufferPool",
    "ReferenceKernels",
    "FastKernels",
    "DEFAULT_BACKEND",
    "ENV_VAR",
    "resolve_backend",
    "active_backend",
    "active_backend_name",
    "set_backend",
    "use_backend",
]

#: registry of backend factories; ``KERNELS.create(name)`` builds a fresh
#: instance, :func:`resolve_backend` returns the shared singleton.
KERNELS = Registry("kernel backend")

DEFAULT_BACKEND = "reference"
ENV_VAR = "REPRO_KERNEL_BACKEND"


@KERNELS.register("reference")
def _reference() -> ReferenceKernels:
    return ReferenceKernels("reference")


@KERNELS.register("reference-f32")
def _reference_f32() -> ReferenceKernels:
    return ReferenceKernels("reference-f32", compute_dtype=np.float32)


@KERNELS.register("fast")
def _fast() -> FastKernels:
    return FastKernels("fast")


@KERNELS.register("fast-f32")
def _fast_f32() -> FastKernels:
    return FastKernels("fast-f32", compute_dtype=np.float32)


#: per-process singleton instances (the fast backends own a buffer pool, so
#: every dispatch site must see the same instance)
_INSTANCES: Dict[str, KernelBackend] = {}

#: process-wide default set by :func:`set_backend` (beats the env var)
_PROCESS_DEFAULT: Optional[str] = None

_THREAD = threading.local()


def resolve_backend(name: Union[str, KernelBackend]) -> KernelBackend:
    """The shared singleton instance for ``name`` (KeyError with suggestions)."""
    if isinstance(name, KernelBackend):
        return name
    inst = _INSTANCES.get(name)
    if inst is None:
        inst = _INSTANCES[name] = KERNELS.create(name)
    return inst


def active_backend() -> KernelBackend:
    """The backend every autograd op dispatches through right now."""
    stack = getattr(_THREAD, "stack", None)
    if stack:
        return stack[-1]
    name = _PROCESS_DEFAULT or os.environ.get(ENV_VAR) or DEFAULT_BACKEND
    return resolve_backend(name)


def active_backend_name() -> str:
    """Name of the active backend (recorded in per-cell result metadata)."""
    return active_backend().name


def set_backend(name: Optional[str]) -> None:
    """Set (or with ``None``, clear) the process-wide default backend."""
    global _PROCESS_DEFAULT
    if name is not None:
        resolve_backend(name)  # validate eagerly, not at the first conv
    _PROCESS_DEFAULT = name


class use_backend:
    """Thread-local backend override: ``with use_backend("fast"): ...``.

    ``use_backend(None)`` is a no-op passthrough, which lets call sites
    forward an optional setting without branching.  Enter returns the
    backend that is active inside the block.
    """

    def __init__(self, name: Optional[Union[str, KernelBackend]]) -> None:
        self._name = name

    def __enter__(self) -> KernelBackend:
        self._pushed = self._name is not None
        if self._pushed:
            stack = getattr(_THREAD, "stack", None)
            if stack is None:
                stack = _THREAD.stack = []
            stack.append(resolve_backend(self._name))
        return active_backend()

    def __exit__(self, *exc) -> None:
        if self._pushed:
            _THREAD.stack.pop()
