"""``python -m repro`` — the single reproduction command line.

Subcommands::

    python -m repro run sweep.json        # execute a declarative sweep
    python -m repro expand sweep.json     # dry-run: list cells + spec hashes
    python -m repro ls [models|datasets|strategies|schedules|optimizers|executors]
    python -m repro cache stats|gc|clear  # result-cache maintenance

``run`` takes a :class:`~repro.experiment.config.SweepConfig` JSON file (the
schema is documented in :mod:`repro.experiment.config`) and drives
expand → (shard) → execute → assemble, with the same parallelism and
multi-machine sharding flags the old ``python -m repro.experiment.sweep``
CLI offered::

    python -m repro run sweep.json --workers 4 --out results.json
    machine A:  python -m repro run sweep.json --shard 0/2
    machine B:  python -m repro run sweep.json --shard 1/2
    afterwards: python -m repro run sweep.json   # assembles from cache hits

``expand`` prints every cell the config describes without executing
anything — useful for eyeballing a grid and for verifying that a config
edit didn't silently change cached-cell identities (hashes are stable
across processes and machines).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .experiment.cache import ResultCache, spec_hash
from .experiment.config import SweepConfig
from .experiment.datasets import DATASETS
from .experiment.executor import (
    EXECUTORS,
    ProgressEvent,
    executor_for,
    shard_specs,
    spec_label,
)
from .experiment.runner import assemble_results
from .models import MODELS
from .optim import OPTIMIZERS
from .pruning import SCHEDULES, STRATEGIES

__all__ = ["build_parser", "main"]

#: the single source for ``ls`` — section name → shared Registry instance
REGISTRIES = {
    "models": MODELS,
    "datasets": DATASETS,
    "strategies": STRATEGIES,
    "schedules": SCHEDULES,
    "optimizers": OPTIMIZERS,
    "executors": EXECUTORS,
}


def _parse_shard(text: str):
    try:
        index, total = text.split("/")
        return int(index), int(total)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"--shard must look like 'i/n' (e.g. 0/4), got {text!r}"
        ) from exc


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduction toolkit for 'What is the State of Neural "
        "Network Pruning?' (Blalock et al., MLSys 2020).",
    )
    sub = p.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run", help="execute a SweepConfig JSON file end-to-end"
    )
    run.add_argument("config", help="path to a sweep config JSON file")
    run.add_argument("--workers", type=int, default=None,
                     help="override config workers: 1 = serial, 0 = all cores")
    run.add_argument("--executor", default=None,
                     help=f"override config executor; one of {EXECUTORS.available()}")
    run.add_argument("--shard", type=_parse_shard, default=None, metavar="I/N",
                     help="run only round-robin shard I of N (0-based)")
    run.add_argument("--no-cache", action="store_true",
                     help="bypass the on-disk result cache entirely")
    run.add_argument("--cache-dir", default=None,
                     help="result cache root (default: artifacts/results/cache)")
    run.add_argument("--out", default=None,
                     help="write the assembled ResultSet JSON here")
    run.add_argument("--quiet", action="store_true",
                     help="suppress progress lines")

    expand = sub.add_parser(
        "expand", help="list a config's cells and spec hashes without running"
    )
    expand.add_argument("config", help="path to a sweep config JSON file")
    expand.add_argument("--json", action="store_true", dest="as_json",
                        help="emit machine-readable JSON (one spec per entry)")

    ls = sub.add_parser("ls", help="list registered components")
    ls.add_argument("registry", nargs="?", default=None,
                    choices=sorted(REGISTRIES), metavar="REGISTRY",
                    help=f"one of {sorted(REGISTRIES)} (default: all)")

    cache = sub.add_parser("cache", help="result-cache maintenance")
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    stats = cache_sub.add_parser("stats", help="entry counts, size, schemas")
    gc = cache_sub.add_parser(
        "gc", help="drop stale-schema orphans; optionally evict by age/count"
    )
    gc.add_argument("--max-age-days", type=float, default=None,
                    help="also delete entries older than this many days")
    gc.add_argument("--max-entries", type=int, default=None,
                    help="also evict the oldest entries beyond this count")
    clear = cache_sub.add_parser("clear", help="delete every cache entry")
    for sp in (stats, gc, clear):
        sp.add_argument("--cache-dir", default=None,
                        help="result cache root (default: artifacts/results/cache)")
    return p


def _cmd_ls(args) -> int:
    names = [args.registry] if args.registry else list(REGISTRIES)
    for name in names:
        if len(names) > 1:
            print(f"{name}:")
            for entry in REGISTRIES[name].available():
                print(f"  {entry}")
        else:
            for entry in REGISTRIES[name].available():
                print(entry)
    return 0


def _cmd_expand(args) -> int:
    config = SweepConfig.load(args.config)
    specs = config.expand()
    if args.as_json:
        print(json.dumps(
            [{"hash": spec_hash(s), **s.to_dict()} for s in specs],
            indent=1, default=float,
        ))
    else:
        for spec in specs:
            print(f"{spec_hash(spec)}  {spec_label(spec)}")
        print(f"{len(specs)} cell(s)")
    return 0


def _progress_printer():
    def on_event(event: ProgressEvent) -> None:
        who = f" w{event.worker}" if event.worker is not None else ""
        if event.kind == "cache-hit":
            print(f"  [{event.done}/{event.total} {event.elapsed:.1f}s] "
                  f"{event.label} [cache hit]", flush=True)
        elif event.kind == "done":
            print(f"  [{event.done}/{event.total}{who} {event.elapsed:.1f}s] "
                  f"{event.label} [done]", flush=True)
        elif event.kind == "pretrain":
            print(f"  pretraining shared checkpoint {event.label}", flush=True)

    return on_event


def _cmd_run(args) -> int:
    config = SweepConfig.load(args.config)
    specs = config.expand()
    if args.shard is not None:
        index, total = args.shard
        specs = shard_specs(specs, index, total)

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    on_event = None if args.quiet else _progress_printer()
    executor_name = args.executor or config.executor
    workers = args.workers if args.workers is not None else config.workers
    if (args.executor is None and args.workers is not None
            and config.executor in ("serial", "parallel")):
        # a bare --workers override on a builtin executor picks
        # serial/parallel from the count, like the old CLI; a custom
        # registered executor keeps its name and just gets the new count
        executor = executor_for(workers, cache=cache, on_event=on_event)
    else:
        executor = EXECUTORS.create(
            executor_name, workers=workers or None, cache=cache,
            on_event=on_event,
        )

    print(f"{len(specs)} spec(s) to execute via "
          f"{type(executor).__name__}(workers={executor.workers})", flush=True)
    rows = executor.run(specs)
    results = assemble_results(
        specs, rows, config.strategies,
        replicate_baselines=config.dedupe_baselines,
    )

    if args.out:
        results.save(args.out)
        print(f"wrote {len(results)} rows to {args.out}")
    else:
        for r in results:
            print(f"{r.strategy:16s} c={r.compression:<5g} seed={r.seed} "
                  f"top1={r.top1:.3f} (Δ{r.delta_top1:+.3f}) "
                  f"actual={r.actual_compression:.2f}x")
    return 0


def _cmd_cache(args) -> int:
    cache = ResultCache(args.cache_dir)
    if args.cache_command == "stats":
        stats = cache.stats()
        print(f"root          : {stats['root']}")
        print(f"entries       : {stats['entries']}")
        print(f"size          : {stats['size_bytes'] / 1024:.1f} KiB")
        print(f"schema        : {stats['schema_version']}")
        print(f"stale entries : {stats['stale_entries']}")
        for schema, count in sorted(stats["by_schema"].items()):
            print(f"  schema {schema}: {count}")
    elif args.cache_command == "gc":
        max_age = None
        if args.max_age_days is not None:
            max_age = args.max_age_days * 86400.0
        removed = cache.gc(max_age=max_age, max_entries=args.max_entries)
        print(f"stale-schema orphans removed : {removed['stale']}")
        print(f"expired (age) removed        : {removed['expired']}")
        print(f"evicted (count) removed      : {removed['evicted']}")
        print(f"entries kept                 : {removed['kept']}")
    else:
        print(f"removed {cache.clear()} entries")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "expand":
        return _cmd_expand(args)
    if args.command == "ls":
        return _cmd_ls(args)
    return _cmd_cache(args)


if __name__ == "__main__":
    sys.exit(main())
