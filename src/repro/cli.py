"""``python -m repro`` — the single reproduction command line.

Subcommands::

    python -m repro run sweep.json        # execute a declarative sweep
    python -m repro report SOURCE         # §6 standard report from a sweep
    python -m repro serve SOURCE...       # long-running JSON results server
    python -m repro worker QUEUE_DIR      # pull + run cells from a work queue
    python -m repro queue stats|retry-failed|compact|watch QUEUE_DIR
    python -m repro fleet plan sweep.json QUEUE_DIR    # batch-submit a sweep
    python -m repro fleet launch hosts.txt QUEUE_DIR   # start the workers
    python -m repro fleet verify QUEUE_DIR [--retry]   # audit done vs cache
    python -m repro bench [PATTERN]       # performance microbenchmark suite
    python -m repro expand sweep.json     # dry-run: list cells + spec hashes
    python -m repro ls [models|datasets|strategies|schedules|optimizers|executors|kernels]
    python -m repro cache stats|gc|clear  # result-cache maintenance
    python -m repro --version

``report`` closes the loop on a finished sweep: point it at a saved
``results.json``, a result-cache directory, or a work-queue directory
(all three yield point-for-point identical curves) and it prints the
paper's §6 standard report — per-strategy accuracy-vs-compression and
accuracy-vs-speedup curves, the seeds × strategies summary table,
Pareto-dominant operating points, and the Appendix B checklist audit —
with ``--csv`` exporting the curve data::

    python -m repro run sweep.json --out results.json
    python -m repro report results.json --csv curves.csv
    python -m repro report /shared/q      # straight off the queue directory

``run`` takes a :class:`~repro.experiment.config.SweepConfig` JSON file (the
schema is documented in :mod:`repro.experiment.config`) and drives
expand → (shard) → execute → assemble, with the same parallelism and
multi-machine sharding flags the old ``python -m repro.experiment.sweep``
CLI offered::

    python -m repro run sweep.json --workers 4 --out results.json
    machine A:  python -m repro run sweep.json --shard 0/2
    machine B:  python -m repro run sweep.json --shard 1/2
    afterwards: python -m repro run sweep.json   # assembles from cache hits

``expand`` prints every cell the config describes without executing
anything — useful for eyeballing a grid and for verifying that a config
edit didn't silently change cached-cell identities (hashes are stable
across processes and machines).

``run --executor queue --queue-dir DIR`` submits through the durable work
queue (:mod:`repro.experiment.queue`) instead of local processes; ``worker``
is the other half — run it on every machine that shares ``DIR`` (NFS,
sshfs, rsync) and cells are claimed, executed, and published through the
shared result cache (default ``DIR/cache``) with crash-safe leases and
bounded retries::

    terminal A:  python -m repro run sweep.json --executor queue --queue-dir /shared/q
    terminal B:  python -m repro worker /shared/q --idle-timeout 60

``worker --import MODULE`` imports MODULE first so custom registered
components (models, datasets, strategies) exist in the worker process too.
"""

from __future__ import annotations

import argparse
import importlib
import json
import sys
from pathlib import Path
from typing import List, Optional

from .experiment.cache import ResultCache, spec_hash
from .experiment.config import SweepConfig
from .experiment.datasets import DATASETS
from .experiment.executor import (
    EXECUTORS,
    ProgressEvent,
    executor_for,
    shard_specs,
    spec_label,
)
from .experiment.queue import QueueWorker, WorkQueue
from .experiment.runner import assemble_results
from .kernels import KERNELS, set_backend
from .models import MODELS
from .optim import OPTIMIZERS
from .pruning import SCHEDULES, STRATEGIES

__all__ = ["build_parser", "main"]

#: the single source for ``ls`` — section name → shared Registry instance
REGISTRIES = {
    "models": MODELS,
    "datasets": DATASETS,
    "strategies": STRATEGIES,
    "schedules": SCHEDULES,
    "optimizers": OPTIMIZERS,
    "executors": EXECUTORS,
    "kernels": KERNELS,
}


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {text}")
    return value


def _nonneg_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {text}")
    return value


def _nonneg_float(text: str) -> float:
    value = float(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {text}")
    return value


def _parse_shard(text: str):
    try:
        index, total = text.split("/")
        return int(index), int(total)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"--shard must look like 'i/n' (e.g. 0/4), got {text!r}"
        ) from exc


def _add_command(sub, name: str, help_line: str, example: str):
    """One subparser per command, uniformly documented: a one-line help
    (shown in ``python -m repro -h``) plus a worked example in its own
    ``--help`` epilog."""
    return sub.add_parser(
        name,
        help=help_line,
        description=help_line[0].upper() + help_line[1:] + ".",
        epilog="example:\n  " + example,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )


def build_parser() -> argparse.ArgumentParser:
    from . import __version__

    p = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduction toolkit for 'What is the State of Neural "
        "Network Pruning?' (Blalock et al., MLSys 2020).",
    )
    p.add_argument("--version", action="version",
                   version=f"repro {__version__}")
    sub = p.add_subparsers(dest="command", required=True)

    run = _add_command(
        sub, "run",
        "execute a declarative SweepConfig JSON sweep end-to-end",
        "python -m repro run sweep.json --workers 4 --out results.json",
    )
    run.add_argument("config", help="path to a sweep config JSON file")
    run.add_argument("--workers", type=int, default=None,
                     help="override config workers: 1 = serial, 0 = all cores")
    run.add_argument("--executor", default=None,
                     help=f"override config executor; one of {EXECUTORS.available()}")
    run.add_argument("--shard", type=_parse_shard, default=None, metavar="I/N",
                     help="run only round-robin shard I of N (0-based)")
    run.add_argument("--no-cache", action="store_true",
                     help="bypass the on-disk result cache entirely")
    run.add_argument("--cache-dir", default=None,
                     help="result cache root (default: artifacts/results/cache)")
    run.add_argument("--out", default=None,
                     help="write the assembled ResultSet JSON here")
    run.add_argument("--quiet", action="store_true",
                     help="suppress progress lines")
    run.add_argument("--queue-dir", default=None, metavar="DIR",
                     help="work-queue directory for --executor queue "
                          "(shared with `python -m repro worker DIR`)")
    run.add_argument("--lease-timeout", type=float, default=None, metavar="S",
                     help="queue executor: seconds without a heartbeat before "
                          "a worker's cell is re-enqueued")
    run.add_argument("--max-retries", type=int, default=None, metavar="N",
                     help="queue executor: failed-cell retries before "
                          "quarantine (cell runs at most 1+N times)")
    run.add_argument("--wait-timeout", type=float, default=None, metavar="S",
                     help="queue executor: give up if the sweep is still "
                          "unfinished after this many seconds")
    run.add_argument("--kernel-backend", default=None, metavar="NAME",
                     help=f"compute-kernel backend for every cell (one of "
                          f"{KERNELS.available()}); overrides the config's "
                          "executor_options and REPRO_KERNEL_BACKEND")
    run.add_argument("--store-dir", default=None, metavar="DIR",
                     help="after the run, mirror the result cache into this "
                          "binary column store (idempotent; requires the "
                          "cache, i.e. not --no-cache)")

    worker = _add_command(
        sub, "worker",
        "pull cells from a shared work-queue directory and execute them",
        "python -m repro worker /shared/q --idle-timeout 60",
    )
    worker.add_argument("queue_dir", help="queue directory created by "
                        "`python -m repro run --executor queue --queue-dir`")
    worker.add_argument("--cache-dir", default=None,
                        help="shared result cache root "
                             "(default: <queue-dir>/cache)")
    worker.add_argument("--import", dest="imports", action="append",
                        default=[], metavar="MODULE",
                        help="import MODULE before working (registers custom "
                             "models/datasets/strategies); repeatable")
    worker.add_argument("--worker-id", default=None,
                        help="lease owner name (default: <hostname>-<pid>)")
    worker.add_argument("--once", action="store_true",
                        help="process at most one cell, then exit "
                             "(exits immediately when the queue is empty)")
    worker.add_argument("--max-cells", type=int, default=None,
                        help="exit after claiming this many cells")
    worker.add_argument("--idle-timeout", type=float, default=None, metavar="S",
                        help="exit after the queue stays empty this long "
                             "(default: wait for work forever)")
    worker.add_argument("--quiet", action="store_true",
                        help="suppress progress lines")
    worker.add_argument("--kernel-backend", default=None, metavar="NAME",
                        help="compute-kernel backend for claimed cells "
                             "(default: the submitter's choice stored in "
                             "queue.json, else REPRO_KERNEL_BACKEND)")
    worker.add_argument("--store-dir", default=None, metavar="DIR",
                        help="also publish finished rows to this binary "
                             "column store (the JSON cache stays the "
                             "canonical interchange copy)")

    report = _add_command(
        sub, "report",
        "print the §6 standard report for a finished sweep "
        "(results.json, result-cache dir, or queue dir)",
        "python -m repro report results.json --csv curves.csv --json report.json",
    )
    report.add_argument("source", help="results JSON file, result-cache "
                        "directory, work-queue directory, or binary "
                        "column-store directory")
    report.add_argument("--y", default="top1", choices=["top1", "top5"],
                        help="quality metric on the curves (default: top1)")
    report.add_argument("--csv", default=None, metavar="PATH",
                        help="also export the curve data "
                             "(strategy, x_metric, x, mean, std, n) as CSV")
    report.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="queue-dir sources only: read rows from this "
                             "shared result cache instead of "
                             "<queue-dir>/cache (mirrors run/worker "
                             "--cache-dir)")
    report.add_argument("--json", default=None, metavar="PATH",
                        dest="json_out",
                        help="write the machine-readable report JSON "
                             "(schema in docs/FORMATS.md) here; '-' for stdout")
    report.add_argument("--width", type=int, default=64,
                        help="ASCII plot width in columns")

    serve = _add_command(
        sub, "serve",
        "serve sweep results over HTTP (report/curves/pareto/summary/query "
        "JSON endpoints with ETag caching)",
        "python -m repro serve results.json --port 8751\n"
        "  curl -s localhost:8751/report | python -m json.tool\n"
        "  curl -s localhost:8751/query -d "
        "'{\"filter\": {\"strategy\": \"global_weight\"}}'",
    )
    serve.add_argument("sources", nargs="+", metavar="SOURCE",
                       help="results JSON file, result-cache directory, "
                            "work-queue directory, or binary column-store "
                            "directory; repeatable (each becomes a named "
                            "frame, NAME=PATH to name explicitly)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=_nonneg_int, default=8751,
                       help="bind port; 0 picks a free one (default: 8751)")
    serve.add_argument("--reload-interval", type=_nonneg_float, default=0.0,
                       metavar="S",
                       help="poll path-backed sources every S seconds and "
                            "atomically reload changed ones (still-draining "
                            "queue dirs converge live; default: off)")
    serve.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="queue-dir sources only: read rows from this "
                            "shared result cache instead of <queue-dir>/cache")
    serve.add_argument("--quiet", action="store_true",
                       help="suppress per-request and reload log lines "
                            "(the startup URL line is always printed)")

    queue = _add_command(
        sub, "queue",
        "work-queue maintenance (stats, retry quarantined cells, GC markers)",
        "python -m repro queue stats /shared/q",
    )
    queue_sub = queue.add_subparsers(dest="queue_command", required=True)
    qstats = queue_sub.add_parser(
        "stats", help="pending/leased/done/failed counts, lease ages, "
                      "quarantine roster"
    )
    qretry = queue_sub.add_parser(
        "retry-failed",
        help="re-enqueue quarantined cells with a fresh retry budget",
    )
    qcompact = queue_sub.add_parser(
        "compact", help="GC done/ markers (results stay in the cache)"
    )
    qcompact.add_argument("--max-age-days", type=float, default=None,
                          help="only remove markers older than this many days "
                               "(default: all)")
    qwatch = queue_sub.add_parser(
        "watch", help="live progress dashboard (counts, per-worker "
                      "heartbeats, throughput, ETA); exits when the queue "
                      "drains"
    )
    qwatch.add_argument("--interval", type=_nonneg_float, default=2.0,
                        metavar="S",
                        help="seconds between refreshes (default: 2)")
    qwatch.add_argument("--iterations", type=_positive_int, default=None,
                        metavar="N",
                        help="stop after N refreshes even if not drained "
                             "(for scripts/CI; default: until drained)")
    qwatch.add_argument("--no-clear", action="store_true",
                        help="append refreshes instead of clearing the "
                             "screen (log-friendly)")
    for sp in (qstats, qretry, qcompact, qwatch):
        sp.add_argument("queue_dir", help="work-queue directory")

    fleet = _add_command(
        sub, "fleet",
        "fleet-scale sweep orchestration: plan batches, launch workers "
        "from a hosts file, verify done markers against the cache",
        "python -m repro fleet plan sweep.json /shared/q\n"
        "  python -m repro fleet launch hosts.txt /shared/q\n"
        "  python -m repro queue watch /shared/q\n"
        "  python -m repro fleet verify /shared/q --retry",
    )
    fleet_sub = fleet.add_subparsers(dest="fleet_command", required=True)
    fplan = fleet_sub.add_parser(
        "plan",
        help="expand a sweep config and submit it in recorded batches "
             "(writes <queue-dir>/fleet/batch_manifest.json)",
    )
    fplan.add_argument("config", help="path to a sweep config JSON file")
    fplan.add_argument("queue_dir", help="work-queue directory "
                       "(created if missing)")
    fplan.add_argument("--batch-size", type=_positive_int, default=64,
                       metavar="N",
                       help="cells per recorded batch (default: 64)")
    fplan.add_argument("--dry-run", action="store_true",
                       help="write the batch manifest without submitting "
                            "anything to pending/")
    fplan.add_argument("--force", action="store_true",
                       help="replace an existing plan made from a "
                            "different config")
    fplan.add_argument("--lease-timeout", type=float, default=None,
                       metavar="S",
                       help="queue lease timeout (default: the config's "
                            "executor_options, else the queue default)")
    fplan.add_argument("--max-retries", type=_nonneg_int, default=None,
                       help="queue retry budget (default: the config's "
                            "executor_options, else the queue default)")
    fplan.add_argument("--kernel-backend", default=None, metavar="NAME",
                       help="kernel backend recorded in queue.json for "
                            "workers (default: the config's "
                            "executor_options)")
    flaunch = fleet_sub.add_parser(
        "launch",
        help="start `repro worker` processes on every host in a hosts "
             "file (logs + PID manifest under <queue-dir>/fleet/)",
    )
    flaunch.add_argument("hosts_file",
                         help="one host per line: `local workers=4`, "
                              "`gpu-box workers=8 launcher=ssh` "
                              "(# comments allowed)")
    flaunch.add_argument("queue_dir",
                         help="work-queue directory (plan it first)")
    flaunch.add_argument("--workers", type=_positive_int, default=1,
                         help="workers per host when a line has no "
                              "workers= option (default: 1)")
    flaunch.add_argument("--import", dest="imports", action="append",
                         default=[], metavar="MODULE",
                         help="passed through to every worker "
                              "(registers custom components); repeatable")
    flaunch.add_argument("--idle-timeout", type=float, default=None,
                         metavar="S",
                         help="workers exit after the queue stays empty "
                              "this long (default: wait forever)")
    flaunch.add_argument("--max-cells", type=int, default=None,
                         help="each worker exits after claiming this many "
                              "cells")
    flaunch.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="shared result cache for the workers "
                              "(default: <queue-dir>/cache)")
    flaunch.add_argument("--store-dir", default=None, metavar="DIR",
                         help="workers also publish rows to this binary "
                              "column store")
    flaunch.add_argument("--kernel-backend", default=None, metavar="NAME",
                         help="kernel backend for the workers (default: "
                              "the submitter's choice in queue.json)")
    fverify = fleet_sub.add_parser(
        "verify",
        help="audit done/ markers against the result cache (ghost-done "
             "cells, corrupt markers, orphan/mismatched cache entries); "
             "--retry re-enqueues the gaps",
    )
    fverify.add_argument("queue_dir", help="work-queue directory")
    fverify.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="shared result cache the workers published "
                              "to (default: <queue-dir>/cache)")
    fverify.add_argument("--store-dir", default=None, metavar="DIR",
                         help="also check done cells against this binary "
                              "column store's stored keys")
    fverify.add_argument("--retry", action="store_true",
                         help="repair: requeue expired leases, re-enqueue "
                              "ghost/corrupt/missing cells, drop orphan "
                              "cache entries, retry quarantined cells")
    fverify.add_argument("--json", action="store_true", dest="as_json",
                         help="emit the audit (and repairs) as JSON")

    bench = _add_command(
        sub, "bench",
        "run the performance microbenchmark suite over the repo's hot paths",
        "python -m repro bench frame --json BENCH_dev.json --compare BENCH_main.json",
    )
    bench.add_argument("pattern", nargs="?", default=None,
                       help="only run benchmarks whose name matches this "
                            "glob or substring (default: the full suite)")
    bench.add_argument("--list", action="store_true", dest="list_only",
                       help="list matching benchmarks without running them")
    bench.add_argument("--json", default=None, metavar="PATH", dest="json_out",
                       help="write the machine-readable report "
                            "(schema in docs/FORMATS.md) here")
    bench.add_argument("--tag", default=None,
                       help="free-form label recorded in the JSON report")
    bench.add_argument("--compare", default=None, metavar="BASELINE",
                       help="compare medians against a previous --json "
                            "report; exit 1 on any regression")
    bench.add_argument("--threshold", type=_nonneg_float, default=20.0,
                       metavar="PCT",
                       help="median slowdown vs baseline that counts as a "
                            "regression (default: 20%%)")
    bench.add_argument("--repeats", type=_positive_int, default=5,
                       help="timed reps per benchmark (default: 5)")
    bench.add_argument("--warmup", type=_nonneg_int, default=1,
                       help="untimed warmup calls per benchmark (default: 1)")
    bench.add_argument("--min-time", type=_nonneg_float, default=0.05,
                       metavar="S",
                       help="minimum seconds per rep; fast functions are "
                            "looped to reach it (default: 0.05)")
    bench.add_argument("--no-mem", action="store_true",
                       help="skip RSS/allocation tracking")
    bench.add_argument("--kernel-backend", default=None, metavar="NAME",
                       help="run backend-dispatching benches under this "
                            "kernel backend (per-backend twin benches pin "
                            "their own backend regardless)")

    expand = _add_command(
        sub, "expand",
        "list a config's cells and spec hashes without running anything",
        "python -m repro expand sweep.json --json",
    )
    expand.add_argument("config", help="path to a sweep config JSON file")
    expand.add_argument("--json", action="store_true", dest="as_json",
                        help="emit machine-readable JSON (one spec per entry)")

    ls = _add_command(
        sub, "ls",
        "list registered components (models, strategies, executors, ...)",
        "python -m repro ls strategies",
    )
    ls.add_argument("registry", nargs="?", default=None,
                    choices=sorted(REGISTRIES), metavar="REGISTRY",
                    help=f"one of {sorted(REGISTRIES)} (default: all)")

    cache = _add_command(
        sub, "cache",
        "result-cache maintenance (stats, GC stale/aged entries, clear)",
        "python -m repro cache gc --max-age-days 30",
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    stats = cache_sub.add_parser("stats", help="entry counts, size, schemas")
    gc = cache_sub.add_parser(
        "gc", help="drop stale-schema orphans; optionally evict by age/count"
    )
    gc.add_argument("--max-age-days", type=float, default=None,
                    help="also delete entries older than this many days")
    gc.add_argument("--max-entries", type=int, default=None,
                    help="also evict the oldest entries beyond this count")
    clear = cache_sub.add_parser("clear", help="delete every cache entry")
    for sp in (stats, gc, clear):
        sp.add_argument("--cache-dir", default=None,
                        help="result cache root (default: artifacts/results/cache)")

    store = _add_command(
        sub, "store",
        "binary column-store maintenance (ingest JSON artifacts, stats, "
        "compact)",
        "python -m repro store ingest results.json sweep_store/",
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)
    singest = store_sub.add_parser(
        "ingest",
        help="chunked merge of a results.json / result-cache dir / "
             "work-queue dir into a store",
    )
    singest.add_argument("source", help="results JSON file, result-cache "
                         "directory, or work-queue directory")
    singest.add_argument("store_dir", help="column-store directory "
                         "(created on first ingest)")
    singest.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="queue-dir sources only: read rows from this "
                              "shared result cache instead of "
                              "<queue-dir>/cache")
    singest.add_argument("--chunk-rows", type=_positive_int, default=65536,
                         metavar="N",
                         help="rows per sealed segment while streaming "
                              "(default: 65536)")
    singest.add_argument("--no-skip-existing", action="store_true",
                         help="re-append rows whose spec hash is already "
                              "stored (the new generation supersedes on "
                              "read; compact makes it physical)")
    singest.add_argument("--quiet", action="store_true",
                         help="suppress the per-chunk progress lines")
    sstats = store_sub.add_parser(
        "stats", help="rows, segments, columns, size, fingerprint"
    )
    sstats.add_argument("--segments", action="store_true",
                        help="also list every segment with its rows, "
                             "columns, and zone-map min/max stats")
    scompact = store_sub.add_parser(
        "compact",
        help="coalesce segments into one and drop superseded generations "
             "(also backfills zone-map stats)",
    )
    sanalyze = store_sub.add_parser(
        "analyze",
        help="backfill zone-map stats into segments written before stats "
             "existed (in place; the fingerprint does not change)",
    )
    for sp in (sstats, scompact, sanalyze):
        sp.add_argument("store_dir", help="column-store directory")
    return p


def _cmd_ls(args) -> int:
    names = [args.registry] if args.registry else list(REGISTRIES)
    for name in names:
        if len(names) > 1:
            print(f"{name}:")
            for entry in REGISTRIES[name].available():
                print(f"  {entry}")
        else:
            for entry in REGISTRIES[name].available():
                print(entry)
    return 0


def _cmd_expand(args) -> int:
    config = SweepConfig.load(args.config)
    specs = config.expand()
    if args.as_json:
        print(json.dumps(
            [{"hash": spec_hash(s), **s.to_dict()} for s in specs],
            indent=1, default=float,
        ))
    else:
        for spec in specs:
            print(f"{spec_hash(spec)}  {spec_label(spec)}")
        print(f"{len(specs)} cell(s)")
    return 0


def _progress_printer():
    def on_event(event: ProgressEvent) -> None:
        who = f" w{event.worker}" if event.worker is not None else ""
        if event.kind == "cache-hit":
            print(f"  [{event.done}/{event.total} {event.elapsed:.1f}s] "
                  f"{event.label} [cache hit]", flush=True)
        elif event.kind == "done":
            print(f"  [{event.done}/{event.total}{who} {event.elapsed:.1f}s] "
                  f"{event.label} [done]", flush=True)
        elif event.kind == "failed":
            # last traceback line = the exception itself ("CrashyError: ...")
            reason = ""
            if event.failure:
                reason = " — " + event.failure.strip().splitlines()[-1]
            print(f"  [{event.done}/{event.total} {event.elapsed:.1f}s] "
                  f"{event.label} [FAILED]{reason}", flush=True)
        elif event.kind == "pretrain":
            print(f"  pretraining shared checkpoint {event.label}", flush=True)

    return on_event


def _cmd_run(args) -> int:
    config = SweepConfig.load(args.config)
    specs = config.expand()
    if args.shard is not None:
        index, total = args.shard
        specs = shard_specs(specs, index, total)

    executor_name = args.executor or config.executor
    # config-file executor options belong to the config's executor; an
    # --executor override switches to a different constructor, so only
    # flag-provided options apply there
    options = dict(config.executor_options) if executor_name == config.executor else {}
    queue_flags = {
        key: getattr(args, key)
        for key in ("queue_dir", "lease_timeout", "max_retries", "wait_timeout")
        if getattr(args, key) is not None
    }
    if queue_flags and executor_name != "queue":
        flags = ", ".join("--" + k.replace("_", "-") for k in queue_flags)
        raise ValueError(
            f"{flags} only apply to the queue executor — add "
            f"--executor queue (current executor: {executor_name!r})"
        )
    options.update(queue_flags)
    if args.kernel_backend is not None:
        # precedence: REPRO_KERNEL_BACKEND env < executor_options < CLI flag
        options["kernel_backend"] = args.kernel_backend
    if args.no_cache and executor_name == "queue":
        raise ValueError(
            "--no-cache cannot be combined with the queue executor: the "
            "shared result cache is how workers deliver rows back (clear "
            "<queue-dir>/cache instead to force re-execution)"
        )
    if args.no_cache and args.store_dir is not None:
        raise ValueError(
            "--store-dir mirrors the result cache into the binary store, "
            "so it cannot be combined with --no-cache"
        )

    if args.no_cache:
        cache = None
    elif (executor_name == "queue" and args.cache_dir is None
            and "queue_dir" in options):
        # queue runs default the cache INTO the queue directory so workers
        # started with just `python -m repro worker <queue-dir>` share it
        cache = ResultCache(Path(options["queue_dir"]) / "cache")
    else:
        cache = ResultCache(args.cache_dir)
    on_event = None if args.quiet else _progress_printer()
    workers = args.workers if args.workers is not None else config.workers
    if (args.executor is None and args.workers is not None
            and config.executor in ("serial", "parallel")
            and not (options.keys() - {"kernel_backend"})):
        # a bare --workers override on a builtin executor picks
        # serial/parallel from the count, like the old CLI; a custom
        # registered executor keeps its name and just gets the new count
        executor = executor_for(
            workers, cache=cache, on_event=on_event,
            kernel_backend=options.get("kernel_backend"),
        )
    else:
        executor = EXECUTORS.create(
            executor_name, workers=workers or None, cache=cache,
            on_event=on_event, **options,
        )

    backend = getattr(executor, "kernel_backend", None)
    print(f"{len(specs)} spec(s) to execute via "
          f"{type(executor).__name__}(workers={executor.workers})"
          + (f" [kernel backend: {backend}]" if backend else ""),
          flush=True)
    rows = executor.run(specs)
    results = assemble_results(
        specs, rows, config.strategies,
        replicate_baselines=config.dedupe_baselines,
    )

    if args.store_dir is not None and cache is not None:
        from .store import ColumnStore

        stats = ColumnStore(args.store_dir).ingest(cache.root)
        print(f"store {args.store_dir}: +{stats['rows_appended']} row(s), "
              f"{stats['rows_skipped']} already stored")

    failed = [r for r in results if r.extra.get("failed")]
    if args.out:
        results.save(args.out)
        print(f"wrote {len(results)} rows to {args.out}")
    else:
        for r in results:
            if r.extra.get("failed"):
                print(f"{r.strategy:16s} c={r.compression:<5g} seed={r.seed} "
                      f"FAILED after {r.extra.get('attempts', '?')} attempt(s)")
            else:
                print(f"{r.strategy:16s} c={r.compression:<5g} seed={r.seed} "
                      f"top1={r.top1:.3f} (Δ{r.delta_top1:+.3f}) "
                      f"actual={r.actual_compression:.2f}x")
    if failed:
        print(f"WARNING: {len(failed)} quarantined cell(s) — see each row's "
              "extra['failures'] for tracebacks", file=sys.stderr)
        return 1  # scripted callers must not mistake a partial table for success
    return 0


def _cmd_report(args) -> int:
    from .analysis import (
        build_report,
        is_queue_dir,
        load_frame,
        queue_outstanding,
        render_report,
        write_report_csv,
    )

    from .store import is_store_dir

    source = Path(args.source)
    if args.cache_dir is not None and not (source.is_dir() and is_queue_dir(source)):
        print("--cache-dir only applies when SOURCE is a work-queue "
              "directory", file=sys.stderr)
        return 2
    # a queue directory may still be draining: a report over it is partial,
    # and the JSON document says so (``outstanding``), not just stderr
    counts = queue_outstanding(source)
    outstanding = sum(counts.values())
    try:
        if source.is_dir() and is_store_dir(source):
            # fold the store segment by segment (byte-identical to the
            # materialize-then-report path, without the union frame)
            from .analysis.report import build_report_from_store
            from .store import ColumnStore

            store = ColumnStore(source)
            if not store.rows():
                print(f"no result rows found in {args.source}",
                      file=sys.stderr)
                return 2
            report = build_report_from_store(store, y=args.y,
                                             outstanding=counts)
        else:
            frame = load_frame(source, cache_dir=args.cache_dir)
            if not len(frame):
                print(f"no result rows found in {args.source}",
                      file=sys.stderr)
                return 2
            report = build_report(frame, y=args.y, outstanding=counts)
    except (FileNotFoundError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.json_out == "-":
        from .analysis import report_json_text

        print(report_json_text(report))
    else:
        print(render_report(report, width=args.width))
    if args.csv:
        path = write_report_csv(report, args.csv)
        # with the JSON document on stdout, notices must not corrupt it
        notice = sys.stderr if args.json_out == "-" else sys.stdout
        print(f"\ncurve data -> {path}", file=notice)
    if args.json_out and args.json_out != "-":
        from .analysis import write_report_json

        path = write_report_json(report, args.json_out)
        print(f"report JSON -> {path}")
    if outstanding:
        print(f"WARNING: {outstanding} cell(s) still pending/leased in "
              f"{source} — this report is partial", file=sys.stderr)
    return 1 if (report.n_failed or outstanding) else 0


def _cmd_serve(args) -> int:
    import signal
    import threading

    from .serve import FrameSource, ResultsServer

    sources = []
    taken = set()
    for raw in args.sources:
        name, sep, path_text = raw.partition("=")
        if not sep:
            name, path_text = "", raw
        path = Path(path_text)
        if not name:
            name = path.name or str(path)
        if name in taken:  # two results.json from different dirs, say
            base, n = name, 2
            while name in taken:
                name, n = f"{base}-{n}", n + 1
        taken.add(name)
        sources.append(FrameSource(name, path, cache_dir=args.cache_dir))

    log = None if args.quiet else (lambda msg: print(msg, flush=True))
    server = ResultsServer(
        sources, host=args.host, port=args.port,
        reload_interval=args.reload_interval, log=log,
    )
    try:
        server.start()  # loads every source up front: bad paths fail here
    except (FileNotFoundError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    # always printed (even --quiet): with --port 0 this line is the only
    # place scripts can learn the assigned port
    print(f"serving {len(sources)} frame(s) on {server.url}", flush=True)

    stop = threading.Event()

    def _request_stop(signum, frame):
        stop.set()

    signal.signal(signal.SIGTERM, _request_stop)
    signal.signal(signal.SIGINT, _request_stop)
    try:
        stop.wait()
    finally:
        server.stop()
    if not args.quiet:
        print("shut down cleanly", flush=True)
    return 0


def _cmd_queue(args) -> int:
    from .analysis import is_queue_dir

    # WorkQueue() scaffolds the layout on construction; a maintenance
    # command must not do that to an arbitrary (e.g. cache) directory
    if not is_queue_dir(args.queue_dir):
        print(f"no work queue at {args.queue_dir} (missing queue.json)",
              file=sys.stderr)
        return 2
    if args.queue_command == "watch":
        from .fleet import watch_queue

        return watch_queue(
            args.queue_dir,
            interval=args.interval,
            iterations=args.iterations,
            clear=not args.no_clear,
        )
    queue = WorkQueue(args.queue_dir)
    if args.queue_command == "stats":
        stats = queue.stats()
        print(f"queue         : {stats['root']}")
        print(f"lease timeout : {stats['lease_timeout']:g}s")
        print(f"max retries   : {stats['max_retries']}")
        for state in ("pending", "leased", "done", "failed"):
            print(f"{state:14s}: {stats['counts'][state]}")
        if stats["leases"]:
            print("live leases:")
            for lease in stats["leases"]:
                flag = "  EXPIRED" if lease["expired"] else ""
                print(f"  {lease['hash']}  worker={lease['worker']} "
                      f"age={lease['age']:.1f}s{flag}")
        if stats["failed"]:
            print("quarantined:")
            for cell in stats["failed"]:
                print(f"  {cell['hash']}  attempts={cell['attempts']}"
                      + (f"  {cell['error']}" if cell["error"] else ""))
    elif args.queue_command == "retry-failed":
        retried = queue.retry_failed()
        print(f"re-enqueued {len(retried)} quarantined cell(s); "
              f"queue: {queue.counts()}")
    else:
        max_age = None
        if args.max_age_days is not None:
            max_age = args.max_age_days * 86400.0
        removed = queue.compact(max_age=max_age)
        print(f"removed {removed} done marker(s); queue: {queue.counts()}")
    return 0


def _cmd_fleet(args) -> int:
    from . import fleet

    if args.fleet_command == "plan":
        config = SweepConfig.load(args.config)
        try:
            manifest = fleet.fleet_plan(
                config,
                args.queue_dir,
                batch_size=args.batch_size,
                lease_timeout=args.lease_timeout,
                max_retries=args.max_retries,
                kernel_backend=args.kernel_backend,
                submit=not args.dry_run,
                force=args.force,
            )
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        verb = "planned (dry run)" if args.dry_run else "planned"
        print(f"{verb} {manifest['n_cells']} cell(s) in "
              f"{len(manifest['batches'])} batch(es) of "
              f"<= {manifest['batch_size']} "
              f"(config {manifest['config_hash']}) -> "
              f"{fleet.batch_manifest_path(args.queue_dir)}")
        for batch in manifest["batches"]:
            print(f"  batch {batch['index']:>3}: "
                  f"{len(batch['hashes'])} cell(s), "
                  f"{batch['submitted']} submitted, "
                  f"{batch['already_done']} done, "
                  f"{batch['already_queued']} queued")
        return 0

    if args.fleet_command == "launch":
        try:
            hosts = fleet.parse_hosts_file(
                args.hosts_file, default_workers=args.workers
            )
            manifest = fleet.launch_fleet(
                hosts,
                args.queue_dir,
                imports=args.imports,
                idle_timeout=args.idle_timeout,
                max_cells=args.max_cells,
                cache_dir=args.cache_dir,
                store_dir=args.store_dir,
                kernel_backend=args.kernel_backend,
                progress=lambda msg: print(msg, flush=True),
            )
        except (OSError, ValueError) as exc:
            print(str(exc), file=sys.stderr)
            return 2
        total = sum(h.workers for h in hosts)
        print(f"launched {total} worker(s) on {len(hosts)} host(s); "
              f"manifest: {fleet.fleet_manifest_path(args.queue_dir)}")
        return 0

    # verify
    from .analysis import is_queue_dir

    if not is_queue_dir(args.queue_dir):
        print(f"no work queue at {args.queue_dir} (missing queue.json)",
              file=sys.stderr)
        return 2
    cache_dir = args.cache_dir or Path(args.queue_dir) / "cache"
    audit, repairs = fleet.verify_fleet(
        args.queue_dir,
        cache_dir=cache_dir,
        store_dir=args.store_dir,
        retry=args.retry,
    )
    if args.as_json:
        print(json.dumps({"audit": audit.to_dict(), "repairs": repairs},
                         indent=1))
        return 0 if audit.clean else 1
    print(f"queue   : {audit.queue_dir}")
    print(f"cache   : {audit.cache_dir}")
    print(f"planned : {audit.planned}   done: {audit.done}   "
          f"cached: {audit.cached}")
    if audit.clean:
        print("audit   : clean — every done marker is backed by a cache row")
    else:
        print("audit   : PROBLEMS")
        for name, hashes in audit.problems().items():
            shown = ", ".join(hashes[:4]) + (" ..." if len(hashes) > 4 else "")
            print(f"  {name:<16} {len(hashes):>4}  {shown}")
    if args.retry:
        for action, hashes in repairs.items():
            if hashes:
                print(f"repair  : {action} x{len(hashes)}")
        if not any(repairs.values()):
            print("repair  : nothing to do")
    return 0 if audit.clean else 1


def _cmd_worker(args) -> int:
    for module in args.imports:
        importlib.import_module(module)
    queue = WorkQueue(args.queue_dir)
    cache = ResultCache(args.cache_dir or Path(args.queue_dir) / "cache")
    progress = None if args.quiet else lambda msg: print(msg, flush=True)
    worker = QueueWorker(queue, cache, worker_id=args.worker_id, progress=progress,
                         kernel_backend=args.kernel_backend,
                         store=args.store_dir)
    if not args.quiet:
        counts = queue.counts()
        backend = f"; kernel backend: {worker.kernel_backend}" \
            if worker.kernel_backend else ""
        print(f"worker {worker.worker_id} on {queue.root} "
              f"(cache {cache.root}{backend}; queue: {counts})", flush=True)
    max_cells = 1 if args.once else args.max_cells
    idle_timeout = args.idle_timeout
    if args.once and idle_timeout is None:
        idle_timeout = 0.0  # "at most one" must not block on an empty queue
    claimed = worker.run(max_cells=max_cells, idle_timeout=idle_timeout)
    if not args.quiet:
        print(f"worker {worker.worker_id} exiting after {claimed} cell(s); "
              f"queue: {queue.counts()}", flush=True)
    return 0


def _fmt_seconds(seconds: float) -> str:
    """Human scale: µs below 1 ms, ms below 1 s, else seconds."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:8.2f}µs"
    if seconds < 1.0:
        return f"{seconds * 1e3:8.2f}ms"
    return f"{seconds:8.3f}s "


def _cmd_bench(args) -> int:
    from .perf import (
        Timer,
        compare_results,
        load_bench_report,
        report_to_dict,
        run_benchmark,
        select_benchmarks,
    )

    if args.kernel_backend is not None:
        set_backend(args.kernel_backend)
    benches = select_benchmarks(args.pattern)
    if not benches:
        print(f"no benchmarks match {args.pattern!r} "
              f"(see `python -m repro bench --list`)", file=sys.stderr)
        return 2
    if args.list_only:
        for bench in benches:
            print(f"{bench.name:34s} {bench.description}")
        return 0

    timer = Timer(warmup=args.warmup, repeats=args.repeats,
                  min_time=args.min_time)
    results = []
    print(f"{len(benches)} benchmark(s), {args.repeats} rep(s), "
          f"min {args.min_time:g}s/rep", flush=True)
    for bench in benches:
        result = run_benchmark(bench, timer, track_mem=not args.no_mem)
        results.append(result)
        alloc = (f"  alloc {result.alloc_peak_kb / 1024:.1f}MiB"
                 if result.alloc_peak_kb is not None else "")
        print(f"  {result.name:34s} median {_fmt_seconds(result.median)}  "
              f"mean {_fmt_seconds(result.mean)} ±{result.std * 1e3:.2f}ms  "
              f"({result.reps}×{result.inner}){alloc}", flush=True)

    if args.json_out:
        payload = report_to_dict(results, tag=args.tag)
        path = Path(args.json_out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=1))
        print(f"report -> {path}")

    if args.compare:
        try:
            baseline = load_bench_report(args.compare)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"cannot load baseline {args.compare}: {exc}",
                  file=sys.stderr)
            return 2
        comparisons = compare_results(results, baseline["results"],
                                      threshold_pct=args.threshold)
        print(f"\nvs baseline {args.compare} "
              f"(threshold {args.threshold:g}%):")
        for comp in comparisons:
            print(f"  {comp.describe()}")
        regressions = [c for c in comparisons if c.status == "regression"]
        if regressions:
            print(f"FAIL: {len(regressions)} benchmark(s) regressed by more "
                  f"than {args.threshold:g}%", file=sys.stderr)
            return 1
    return 0


def _cmd_cache(args) -> int:
    cache = ResultCache(args.cache_dir)
    if args.cache_command == "stats":
        stats = cache.stats()
        print(f"root          : {stats['root']}")
        print(f"entries       : {stats['entries']}")
        print(f"size          : {stats['size_bytes'] / 1024:.1f} KiB")
        print(f"schema        : {stats['schema_version']}")
        print(f"stale entries : {stats['stale_entries']}")
        for schema, count in sorted(stats["by_schema"].items()):
            print(f"  schema {schema}: {count}")
    elif args.cache_command == "gc":
        max_age = None
        if args.max_age_days is not None:
            max_age = args.max_age_days * 86400.0
        removed = cache.gc(max_age=max_age, max_entries=args.max_entries)
        print(f"stale-schema orphans removed : {removed['stale']}")
        print(f"expired (age) removed        : {removed['expired']}")
        print(f"evicted (count) removed      : {removed['evicted']}")
        print(f"entries kept                 : {removed['kept']}")
    else:
        print(f"removed {cache.clear()} entries")
    return 0


def _cmd_store(args) -> int:
    from .store import ColumnStore

    store = ColumnStore(args.store_dir)
    if args.store_command == "ingest":
        source = Path(args.source)
        from .analysis import is_queue_dir

        if args.cache_dir is not None and not (
            source.is_dir() and is_queue_dir(source)
        ):
            print("--cache-dir only applies when SOURCE is a work-queue "
                  "directory", file=sys.stderr)
            return 2
        progress = None if args.quiet else (lambda line: print(line))
        try:
            stats = store.ingest(
                source,
                cache_dir=args.cache_dir,
                chunk_rows=args.chunk_rows,
                skip_existing=not args.no_skip_existing,
                progress=progress,
            )
        except FileNotFoundError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        print(f"ingested {stats['source']} -> {store.root}")
        print(f"rows appended  : {stats['rows_appended']}")
        print(f"rows skipped   : {stats['rows_skipped']}")
        print(f"segments added : {stats['segments_added']}")
        print(f"store rows     : {store.rows()}")
        return 0
    try:
        if args.store_command == "compact":
            result = store.compact()
            print(f"segments : {result['segments_before']} -> "
                  f"{result['segments_after']}")
            print(f"rows     : {result['rows_before']} -> "
                  f"{result['rows_after']}")
            print(f"swept    : {result['swept_dirs']} stray dir(s)")
            return 0
        if args.store_command == "analyze":
            result = store.analyze()
            print(f"segments : {result['segments']}")
            print(f"analyzed : {result['analyzed']} "
                  "(zone-map stats backfilled)")
            return 0
        stats = store.stats()
    except FileNotFoundError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(f"root        : {stats['root']}")
    print(f"rows        : {stats['rows']}")
    print(f"segments    : {stats['segments']} "
          f"({stats['keyed_segments']} keyed)")
    print(f"columns     : {', '.join(stats['columns'])}")
    print(f"size        : {stats['size_bytes'] / 1024:.1f} KiB")
    print(f"schema      : {stats['schema']}")
    print(f"fingerprint : {stats['fingerprint']}")
    if getattr(args, "segments", False):
        for entry in store.segments():
            _print_segment_stats(entry)
    return 0


def _print_segment_stats(entry) -> None:
    """One ``store stats --segments`` block: rows + per-column zone maps."""
    from .utils.jsonio import restore_nonfinite

    keyed = "keyed" if entry.get("keyed") else "unkeyed"
    print(f"\nsegment {entry['name']} : {entry['rows']} row(s), {keyed}")
    stats = entry.get("stats")
    if not isinstance(stats, dict):
        print("  (no zone-map stats — run `repro store analyze` or "
              "`repro store compact` to backfill)")
        return
    for name, kind in entry["columns"].items():
        col = stats.get(name)
        if not isinstance(col, dict):
            continue
        if kind == "object":
            values = col.get("values")
            pool = (f"{len(values)} distinct value(s)" if values is not None
                    else "pool too large for zone map")
            print(f"  {name:<22}: {kind:<8} {pool}, "
                  f"nulls {col.get('nulls', 0)}")
        else:
            lo = restore_nonfinite(col.get("min"))
            hi = restore_nonfinite(col.get("max"))
            span = "all-null" if lo is None else f"min {lo}, max {hi}"
            print(f"  {name:<22}: {kind:<8} {span}, "
                  f"nulls {col.get('nulls', 0)}")


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "worker":
        return _cmd_worker(args)
    if args.command == "queue":
        return _cmd_queue(args)
    if args.command == "fleet":
        return _cmd_fleet(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "expand":
        return _cmd_expand(args)
    if args.command == "ls":
        return _cmd_ls(args)
    if args.command == "store":
        return _cmd_store(args)
    return _cmd_cache(args)


if __name__ == "__main__":
    sys.exit(main())
