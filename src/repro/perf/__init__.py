"""Performance subsystem: microbenchmarks over the repo's own hot paths.

``python -m repro bench`` is the entry point; :mod:`repro.perf.harness`
documents the timing model and JSON report schema (see also
``docs/FORMATS.md``), and :mod:`repro.perf.suite` holds the curated
benchmarks — one per real hot path, with byte-equivalent reference twins
for every landed optimization so speedups stay measured, not remembered.

Importing this package registers the curated suite in :data:`BENCHMARKS`.
"""

from .harness import (
    BENCH_SCHEMA_VERSION,
    BENCHMARKS,
    Benchmark,
    BenchResult,
    Comparison,
    Timer,
    benchmark,
    compare_results,
    environment_info,
    load_bench_report,
    report_to_dict,
    run_benchmark,
    select_benchmarks,
)
from . import suite  # noqa: F401  (registers the curated benchmarks)
from .suite import make_result_frame

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BENCHMARKS",
    "Benchmark",
    "BenchResult",
    "Comparison",
    "Timer",
    "benchmark",
    "compare_results",
    "environment_info",
    "load_bench_report",
    "make_result_frame",
    "report_to_dict",
    "run_benchmark",
    "select_benchmarks",
]
