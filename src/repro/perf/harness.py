"""Microbenchmark harness: registry, timer, memory tracking, comparison.

The paper's core complaint is that pruning results are incomparable
because setups are under-specified and under-measured; this package holds
the repo to the same bar for its *own* performance.  Every hot path gets a
named, registered microbenchmark (:data:`BENCHMARKS`, the same
:class:`~repro.registry.Registry` mechanism behind models/strategies/...),
``python -m repro bench`` runs them with a calibrated timer, and the
resulting JSON reports are stable artifacts that later runs compare
against (``--compare``, nonzero exit on regression) — so "measurably
faster" and "accidentally slower" are both one command away.

Benchmark protocol
------------------
A benchmark is registered as a *factory*: a zero-argument callable that
builds the workload (allocates arrays, seeds caches, fills queues) and
returns either the function to time, or ``(fn, cleanup)`` when it owns
resources (temp directories) that must be released afterwards::

    @benchmark("experiment_cache_hit", "ResultCache.get on a stored spec")
    def _bench_cache_hit():
        tmp = tempfile.TemporaryDirectory()
        cache = ResultCache(tmp.name)
        cache.put(spec, row)
        return (lambda: cache.get(spec)), tmp.cleanup

Setup cost is thus excluded from the timing, and the timed function is
called many times (see :class:`Timer`), so it must be steady-state: leave
the workload the way you found it.

Timing model
------------
:class:`Timer` runs ``warmup`` untimed calls, calibrates an inner
iteration count so one *rep* lasts at least ``min_time`` seconds (shields
sub-microsecond benches from clock granularity), then measures ``repeats``
reps.  Each rep yields one per-call time (rep duration / inner); the
:class:`BenchResult` statistics (median/mean/std/min/max) are over reps.
Peak RSS (``resource.getrusage``) and the timed function's allocation
peak (``tracemalloc``, measured in a separate non-timed pass so tracing
overhead never pollutes timings) are recorded where the platform provides
them.

The JSON report schema is documented in ``docs/FORMATS.md`` and versioned
by :data:`BENCH_SCHEMA_VERSION`; non-finite or negative timings are
rejected at construction time so a corrupted baseline can never silently
win or lose a comparison.
"""

from __future__ import annotations

import dataclasses
import fnmatch
import json
import math
import os
import platform
import re
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .. import __version__
from ..registry import Registry

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BENCHMARKS",
    "Benchmark",
    "BenchResult",
    "Comparison",
    "Timer",
    "benchmark",
    "compare_results",
    "environment_info",
    "load_bench_report",
    "report_to_dict",
    "run_benchmark",
    "select_benchmarks",
]

#: bump when the ``--json`` report layout changes incompatibly; old
#: baselines are then rejected by :func:`load_bench_report` instead of
#: being compared apples-to-oranges
BENCH_SCHEMA_VERSION = 1

#: name → :class:`Benchmark`; the perf twin of MODELS/STRATEGIES/...
BENCHMARKS = Registry("benchmark")


@dataclass
class Benchmark:
    """One registered microbenchmark: a named workload factory."""

    name: str
    #: zero-arg callable returning ``fn`` or ``(fn, cleanup)``
    factory: Callable[[], Any]
    description: str = ""


def benchmark(name: str, description: str = ""):
    """Decorator registering a workload factory in :data:`BENCHMARKS`."""

    def decorator(factory):
        BENCHMARKS.register(name, Benchmark(name, factory, description))
        return factory

    return decorator


def _regex_search(pattern: str, name: str) -> bool:
    try:
        return re.search(pattern, name) is not None
    except re.error:
        return False


def select_benchmarks(pattern: Optional[str] = None) -> List[Benchmark]:
    """Registered benchmarks whose name matches ``pattern``, sorted by name.

    ``pattern`` is a shell glob (``frame_*``), a plain substring
    (``cache``), or a regular expression searched anywhere in the name
    (``store_.*``); ``|`` separates alternatives, any of which may match
    (``'kernel|conv|train_step'``); ``None`` selects everything.
    """
    names = BENCHMARKS.available()
    if pattern is not None:
        alternatives = [p for p in pattern.split("|") if p]
        names = [
            n for n in names
            if any(
                fnmatch.fnmatchcase(n, p) or p in n or _regex_search(p, n)
                for p in alternatives
            )
        ]
    return [BENCHMARKS.get(n) for n in names]


@dataclass
class BenchResult:
    """Statistics for one benchmark run (all times are seconds per call)."""

    name: str
    reps: int
    inner: int  # calibrated calls per rep
    warmup: int
    median: float
    mean: float
    std: float
    min: float
    max: float
    #: process-lifetime RSS high-water mark after the run, KiB (None where
    #: unsupported).  ``ru_maxrss`` never decreases, so in a multi-bench
    #: run this reflects the largest workload executed *so far*, not this
    #: bench alone — comparable only between runs of the same pattern.
    rss_peak_kb: Optional[float] = None
    #: tracemalloc peak of one call, KiB (None when tracking disabled)
    alloc_peak_kb: Optional[float] = None

    def __post_init__(self) -> None:
        for stat in ("median", "mean", "std", "min", "max"):
            value = getattr(self, stat)
            if not isinstance(value, (int, float)) or not math.isfinite(value):
                raise ValueError(
                    f"benchmark {self.name!r}: non-finite {stat} timing "
                    f"{value!r} (clock misbehaving or corrupted report)"
                )
            if value < 0:
                raise ValueError(
                    f"benchmark {self.name!r}: negative {stat} timing {value!r}"
                )
        if self.reps < 1 or self.inner < 1:
            raise ValueError(
                f"benchmark {self.name!r}: reps/inner must be >= 1, "
                f"got {self.reps}/{self.inner}"
            )

    @classmethod
    def from_times(
        cls, name: str, times: Sequence[float], inner: int, warmup: int
    ) -> "BenchResult":
        """Reduce per-rep times to the stored statistics."""
        arr = sorted(float(t) for t in times)
        n = len(arr)
        if not n:
            raise ValueError(f"benchmark {name!r}: no timings collected")
        mid = n // 2
        median = arr[mid] if n % 2 else (arr[mid - 1] + arr[mid]) / 2.0
        mean = sum(arr) / n
        std = math.sqrt(sum((t - mean) ** 2 for t in arr) / (n - 1)) if n > 1 else 0.0
        return cls(
            name=name, reps=n, inner=inner, warmup=warmup,
            median=median, mean=mean, std=std, min=arr[0], max=arr[-1],
        )

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "BenchResult":
        if not isinstance(d, dict):
            raise ValueError(
                f"benchmark entry must be an object, got {type(d).__name__}"
            )
        required = [
            k for k, f in cls.__dataclass_fields__.items()
            if f.default is dataclasses.MISSING
        ]
        missing = [k for k in required if k not in d]
        if missing:
            raise ValueError(
                f"benchmark entry {d.get('name', '<unnamed>')!r} is missing "
                f"required field(s) {missing}"
            )
        known = {k: d[k] for k in cls.__dataclass_fields__ if k in d}
        return cls(**known)


class Timer:
    """Calibrated repeat timer (see the module docstring's timing model)."""

    def __init__(
        self,
        warmup: int = 1,
        repeats: int = 5,
        min_time: float = 0.05,
        max_inner: int = 1_000_000,
    ) -> None:
        if repeats < 1:
            raise ValueError(f"repeats must be >= 1, got {repeats}")
        if warmup < 0:
            raise ValueError(f"warmup must be >= 0, got {warmup}")
        if min_time < 0:
            raise ValueError(f"min_time must be >= 0, got {min_time}")
        self.warmup = warmup
        self.repeats = repeats
        self.min_time = min_time
        self.max_inner = max_inner

    def calibrate(self, fn: Callable[[], Any]) -> int:
        """Inner iterations per rep so one rep lasts ≥ ``min_time``."""
        elapsed = 0.0
        calls = 0
        while elapsed < max(self.min_time / 8.0, 1e-4) and calls < self.max_inner:
            start = time.perf_counter()
            fn()
            elapsed += time.perf_counter() - start
            calls += 1
        per_call = elapsed / max(calls, 1)
        if per_call >= self.min_time:
            return 1
        return min(self.max_inner, max(1, math.ceil(self.min_time / max(per_call, 1e-9))))

    def measure(self, fn: Callable[[], Any]) -> Tuple[List[float], int]:
        """``(per-call seconds, one per rep; calibrated inner count)``."""
        for _ in range(self.warmup):
            fn()
        inner = self.calibrate(fn)
        times: List[float] = []
        for _ in range(self.repeats):
            start = time.perf_counter()
            for _ in range(inner):
                fn()
            times.append((time.perf_counter() - start) / inner)
        return times, inner


def rss_peak_kb() -> Optional[float]:
    """Process peak RSS in KiB, or None where the platform can't say."""
    try:
        import resource
    except ImportError:  # non-POSIX
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB, macOS bytes
    return peak / 1024.0 if platform.system() == "Darwin" else float(peak)


def traced_alloc_kb(fn: Callable[[], Any]) -> Optional[float]:
    """Python-allocation peak of one ``fn()`` call in KiB (tracemalloc).

    NumPy routes array buffers through the Python allocator, so this
    captures temporaries too.  Runs outside the timed section — tracing
    slows execution severely and must never pollute the statistics.
    """
    try:
        import tracemalloc
    except ImportError:
        return None
    if tracemalloc.is_tracing():
        return None  # a caller owns tracing; don't reset their snapshot
    tracemalloc.start()
    try:
        baseline = tracemalloc.get_traced_memory()[0]
        fn()
        peak = tracemalloc.get_traced_memory()[1]
    finally:
        tracemalloc.stop()
    return max(0.0, (peak - baseline) / 1024.0)


def run_benchmark(
    bench: Benchmark, timer: Optional[Timer] = None, track_mem: bool = True
) -> BenchResult:
    """Build, time, and (optionally) memory-profile one benchmark."""
    timer = timer or Timer()
    made = bench.factory()
    fn, cleanup = made if isinstance(made, tuple) else (made, None)
    try:
        times, inner = timer.measure(fn)
        alloc = traced_alloc_kb(fn) if track_mem else None
    finally:
        if cleanup is not None:
            cleanup()
    result = BenchResult.from_times(bench.name, times, inner, timer.warmup)
    if track_mem:
        result.rss_peak_kb = rss_peak_kb()
        result.alloc_peak_kb = alloc
    return result


def environment_info() -> Dict[str, Any]:
    """The environment block of the JSON report (§6 in spirit: report the
    setup alongside the numbers, or they are incomparable)."""
    import numpy as np

    return {
        "repro_version": __version__,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "blas_threads": os.environ.get("REPRO_BLAS_THREADS"),
    }


def report_to_dict(
    results: Sequence[BenchResult], tag: Optional[str] = None
) -> Dict[str, Any]:
    """The stable ``--json`` document (schema in ``docs/FORMATS.md``)."""
    return {
        "schema": BENCH_SCHEMA_VERSION,
        "tag": tag,
        "created": time.time(),
        "environment": environment_info(),
        "benchmarks": [r.to_dict() for r in results],
    }


def load_bench_report(path) -> Dict[str, Any]:
    """Parse + validate a ``--json`` report; results under ``"results"``.

    Raises ``ValueError`` on a wrong schema version or on entries with
    non-finite statistics (see :class:`BenchResult`), so regression
    comparisons only ever run against well-formed baselines.
    """
    payload = json.loads(Path(path).read_text())
    if not isinstance(payload, dict) or payload.get("schema") != BENCH_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: not a bench report with schema {BENCH_SCHEMA_VERSION} "
            f"(got {payload.get('schema') if isinstance(payload, dict) else type(payload).__name__!r})"
        )
    results = [BenchResult.from_dict(d) for d in payload.get("benchmarks", [])]
    return {**payload, "results": results}


@dataclass
class Comparison:
    """One benchmark's current-vs-baseline verdict."""

    name: str
    status: str  # "ok" | "regression" | "faster" | "no-baseline" | "missing"
    current: Optional[float] = None  # median, seconds per call
    baseline: Optional[float] = None
    ratio: Optional[float] = None  # current / baseline

    def describe(self) -> str:
        if self.status == "no-baseline":
            return f"{self.name}: new benchmark (no baseline entry)"
        if self.status == "missing":
            return f"{self.name}: in baseline but not in this run"
        return (
            f"{self.name}: {self.current * 1e3:.3f}ms vs "
            f"{self.baseline * 1e3:.3f}ms baseline "
            f"({self.ratio:.2f}x) [{self.status}]"
        )


def compare_results(
    current: Sequence[BenchResult],
    baseline: Sequence[BenchResult],
    threshold_pct: float = 20.0,
) -> List[Comparison]:
    """Median-vs-median comparison, one entry per bench in either run.

    A bench regresses when its median slows down by more than
    ``threshold_pct`` percent; symmetric speedups are flagged ``"faster"``.
    Benches present on only one side are reported (``"no-baseline"`` /
    ``"missing"``) but never count as regressions — a baseline written
    before a benchmark existed must not fail the comparison.
    """
    if threshold_pct < 0:
        raise ValueError(f"threshold_pct must be >= 0, got {threshold_pct}")
    base_by_name = {r.name: r for r in baseline}
    cur_by_name = {r.name: r for r in current}
    out: List[Comparison] = []
    for name in sorted(set(base_by_name) | set(cur_by_name)):
        cur, base = cur_by_name.get(name), base_by_name.get(name)
        if base is None:
            out.append(Comparison(name, "no-baseline", current=cur.median))
            continue
        if cur is None:
            out.append(Comparison(name, "missing", baseline=base.median))
            continue
        if base.median > 0:
            ratio = cur.median / base.median
        else:
            ratio = math.inf if cur.median > 0 else 1.0
        if ratio > 1.0 + threshold_pct / 100.0:
            status = "regression"
        elif ratio < 1.0 - threshold_pct / 100.0:
            status = "faster"
        else:
            status = "ok"
        out.append(
            Comparison(name, status, current=cur.median,
                       baseline=base.median, ratio=ratio)
        )
    return out
