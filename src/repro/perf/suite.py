"""The curated microbenchmark suite: one bench per real hot path.

Importing this module registers every benchmark in
:data:`~repro.perf.harness.BENCHMARKS`; ``python -m repro bench`` does so
and runs them.  Workloads are sized to finish the full suite in well under
a minute on one laptop core while still being large enough that the
measured path — not the harness — dominates.

Coverage map (layer → benches):

* **autograd/nn** — ``autograd_conv2d_forward`` / ``_backward`` (the
  im2col GEMM path), ``autograd_maxpool_backward`` vs
  ``autograd_maxpool_backward_addat`` (the non-overlap scatter fast path
  against its ``np.add.at`` reference), and ``nn_train_step`` (a full
  forward/backward/SGD step on a small conv net — the inner loop of every
  pretrain and fine-tune).
* **kernels** — per-backend twins pinned via ``use_backend`` regardless of
  ``REPRO_KERNEL_BACKEND``: ``kernel_conv2d_forward_<backend>`` /
  ``kernel_conv2d_backward_<backend>`` /
  ``kernel_fused_conv_bias_relu_<backend>`` / ``nn_train_step_<backend>``
  for ``reference`` and ``fast``, so every report documents the fast
  backend's current win over the byte-equivalent reference.
* **pruning** — ``pruning_mask_apply`` (the post-optimizer-step mask
  enforcement that runs once per training step) and
  ``pruning_magnitude_scores`` (the §7.2 scoring family shared by the
  magnitude baselines).
* **experiment** — ``experiment_cache_hit`` / ``_miss``
  (:class:`ResultCache` lookups, paid once per cell per sweep) and
  ``experiment_queue_claim`` (the rename-arbitrated claim that bounds
  multi-machine queue throughput).
* **analysis** — ``frame_filter`` / ``frame_group_by`` /
  ``frame_join_baseline``, each in a ``_vectorized`` and a ``_rowloop``
  variant over the same 100k-row frame, so the vectorization win is
  re-measured (not just asserted) on every run.
* **store** — ``store_ingest_1m`` / ``store_load_1m`` /
  ``report_from_store_1m`` plus their ``*_json_twin`` references: the
  binary column store's write, mmap-load and full-report paths against
  the per-row JSON paths they replace, at ``REPRO_STORE_BENCH_ROWS``
  rows (default one million — the only benches sized past the suite's
  under-a-minute budget; push CI shrinks them via the env knob, the
  nightly leg runs them at full scale).
* **serve** — ``serve_query_throughput``: a real
  :class:`~repro.serve.ResultsServer` on a loopback port answering
  concurrent keep-alive ``POST /query`` (filter + aggregate) clients over
  the same 100k-row frame — the many-readers workload the server exists
  for.

The paired ``*_rowloop`` / ``*_addat`` variants are intentionally the
byte-equivalent reference implementations the fast paths are tested
against (see ``tests/test_perf_bench.py`` and
``tests/test_autograd_conv.py``); a report therefore documents the current
speedup of every landed optimization.
"""

from __future__ import annotations

import os
import tempfile

import numpy as np

from ..autograd import Tensor, conv2d, conv2d_bias_relu, cross_entropy
from ..autograd.conv import (
    _max_pool2d_backward_add_at,
    _max_pool2d_backward_scatter,
)
from ..kernels import use_backend
from ..experiment.cache import ResultCache
from ..experiment.prune import ExperimentSpec
from ..experiment.queue import WorkQueue
from ..experiment.results import PruningResult
from ..analysis.frame import ResultFrame
from .. import nn
from ..optim import OPTIMIZERS
from ..pruning import MaskRegistry, magnitude_scores, prunable_parameters
from .harness import benchmark

__all__ = ["make_result_frame", "make_sweep_frame"]


# --------------------------------------------------------------------------
# autograd / nn
# --------------------------------------------------------------------------

def _conv_inputs(seed: int = 0):
    rng = np.random.default_rng(seed)
    x = Tensor(rng.standard_normal((16, 8, 16, 16)), requires_grad=True)
    w = Tensor(rng.standard_normal((16, 8, 3, 3)) * 0.1, requires_grad=True)
    b = Tensor(np.zeros(16), requires_grad=True)
    return x, w, b


@benchmark("autograd_conv2d_forward",
           "im2col + GEMM conv forward, 16x8x16x16 input, 3x3 kernel")
def _bench_conv2d_forward():
    x, w, b = _conv_inputs()
    return lambda: conv2d(x, w, b, padding=1)


@benchmark("autograd_conv2d_backward",
           "conv backward (two GEMMs + col2im scatter) through the tape")
def _bench_conv2d_backward():
    x, w, b = _conv_inputs()
    out = conv2d(x, w, b, padding=1)
    g = np.ones_like(out.data)

    def run():
        x.grad = w.grad = b.grad = None
        out.backward(g)

    return run


def _maxpool_backward_args(seed: int = 0):
    rng = np.random.default_rng(seed)
    n, c, h, w, k = 32, 16, 32, 32, 2
    oh = ow = (h - k) // k + 1
    arg = rng.integers(0, k * k, (n, c, oh, ow))
    g = rng.standard_normal((n, c, oh, ow))
    return (n, c, h, w), arg, g, k, k, np.float64


@benchmark("autograd_maxpool_backward",
           "max-pool input grad, non-overlap scatter fast path")
def _bench_maxpool_backward():
    args = _maxpool_backward_args()
    return lambda: _max_pool2d_backward_scatter(*args)


@benchmark("autograd_maxpool_backward_addat",
           "reference np.add.at max-pool input grad (equivalence twin)")
def _bench_maxpool_backward_addat():
    args = _maxpool_backward_args()
    return lambda: _max_pool2d_backward_add_at(*args)


def _small_convnet(seed: int = 0):
    rng = np.random.default_rng(seed)
    return nn.Sequential(
        nn.Conv2d(3, 8, 3, padding=1, rng=rng),
        nn.ReLU(),
        nn.MaxPool2d(2),
        nn.Conv2d(8, 16, 3, padding=1, rng=rng),
        nn.ReLU(),
        nn.GlobalAvgPool2d(),
        nn.Linear(16, 10, rng=rng),
    )


@benchmark("nn_train_step",
           "full train step (forward, cross-entropy, backward, SGD) on a "
           "small conv net, batch 32 of 3x16x16")
def _bench_train_step():
    rng = np.random.default_rng(0)
    model = _small_convnet()
    opt = OPTIMIZERS.create("sgd", list(model.parameters()), lr=0.01,
                            momentum=0.9)
    xb = rng.standard_normal((32, 3, 16, 16))
    yb = rng.integers(0, 10, 32)
    model.train()

    def step():
        loss = cross_entropy(model(Tensor(xb)), yb)
        model.zero_grad()
        loss.backward()
        opt.step()

    return step


# --------------------------------------------------------------------------
# kernels: per-backend twins (reference vs fast on identical workloads)
# --------------------------------------------------------------------------
#
# The conv twins call the backend primitives directly on raw ndarrays — the
# tape's contribution is already measured by the ``autograd_*`` benches, and
# keeping it out of the timed region stops the shared dispatch overhead from
# diluting the kernel-level difference.  The train-step twins keep the full
# autograd path (that IS their workload) pinned via ``use_backend``.

def _raw_conv_args(seed: int = 0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((16, 8, 16, 16))
    w = rng.standard_normal((16, 8, 3, 3)) * 0.1
    b = np.zeros(16)
    return x, w, b


def _make_kernel_conv_forward(backend: str):
    def setup():
        from ..kernels import resolve_backend

        kb = resolve_backend(backend)
        x, w, b = _raw_conv_args()
        return lambda: kb.conv2d_forward(x, w, b, 1, 1, True)

    return setup


def _make_kernel_conv_backward(backend: str):
    def setup():
        from ..kernels import resolve_backend

        kb = resolve_backend(backend)
        x, w, b = _raw_conv_args()
        out, ctx = kb.conv2d_forward(x, w, b, 1, 1, True)
        g = np.ones_like(out)
        return lambda: kb.conv2d_backward(g, ctx)

    return setup


def _make_kernel_fused_conv(backend: str):
    def setup():
        from ..kernels import resolve_backend

        kb = resolve_backend(backend)
        x, w, b = _raw_conv_args()
        return lambda: kb.fused_conv_bias_relu_forward(x, w, b, 1, 1, True)

    return setup


def _make_kernel_train_step(backend: str):
    def setup():
        rng = np.random.default_rng(0)
        model = _small_convnet()
        opt = OPTIMIZERS.create("sgd", list(model.parameters()), lr=0.01,
                                momentum=0.9)
        xb = rng.standard_normal((32, 3, 16, 16))
        yb = rng.integers(0, 10, 32)
        model.train()

        def step():
            with use_backend(backend):
                loss = cross_entropy(model(Tensor(xb)), yb)
                model.zero_grad()
                loss.backward()
                opt.step()

        return step

    return setup


for _backend in ("reference", "fast"):
    benchmark(
        f"kernel_conv2d_forward_{_backend}",
        f"conv2d forward pinned to the {_backend} backend (twin)",
    )(_make_kernel_conv_forward(_backend))
    benchmark(
        f"kernel_conv2d_backward_{_backend}",
        f"conv2d backward pinned to the {_backend} backend (twin)",
    )(_make_kernel_conv_backward(_backend))
    benchmark(
        f"kernel_fused_conv_bias_relu_{_backend}",
        f"fused conv+bias+ReLU forward on the {_backend} backend (twin)",
    )(_make_kernel_fused_conv(_backend))
    benchmark(
        f"nn_train_step_{_backend}",
        f"full train step pinned to the {_backend} backend (twin)",
    )(_make_kernel_train_step(_backend))
del _backend


# --------------------------------------------------------------------------
# pruning
# --------------------------------------------------------------------------

def _masked_model(seed: int = 0):
    rng = np.random.default_rng(seed)
    model = _small_convnet(seed)
    masks = MaskRegistry(model)
    for name, p in prunable_parameters(model):
        masks.set_mask(name, (rng.random(p.shape) > 0.5).astype(np.float32))
    return model, masks


@benchmark("pruning_mask_apply",
           "MaskRegistry.apply (runs after every fine-tune optimizer step)")
def _bench_mask_apply():
    _, masks = _masked_model()
    return masks.apply


@benchmark("pruning_magnitude_scores",
           "|w| scoring over all prunable tensors (Han et al. baseline)")
def _bench_magnitude_scores():
    model, _ = _masked_model()
    params = prunable_parameters(model)
    return lambda: magnitude_scores(params)


# --------------------------------------------------------------------------
# experiment (cache / queue)
# --------------------------------------------------------------------------

def _tiny_spec(seed: int = 0) -> ExperimentSpec:
    return ExperimentSpec(
        model="lenet-300-100", dataset="cifar10", strategy="global_weight",
        compression=4.0, seed=seed,
    )


def _tiny_row(spec: ExperimentSpec) -> PruningResult:
    return PruningResult(
        model=spec.model, dataset=spec.dataset, strategy=spec.strategy,
        compression=spec.compression, seed=spec.seed,
        actual_compression=4.1, theoretical_speedup=2.2,
        total_params=266_610, nonzero_params=65_027,
        dense_flops=5.3e5, effective_flops=2.4e5,
        baseline_top1=0.61, baseline_top5=0.95,
        pre_finetune_top1=0.31, pre_finetune_top5=0.71,
        top1=0.58, top5=0.93, pretrained_key="bench", finetune_epochs_ran=5,
    )


@benchmark("experiment_cache_hit",
           "ResultCache.get on a stored spec (hash + read + parse)")
def _bench_cache_hit():
    tmp = tempfile.TemporaryDirectory()
    cache = ResultCache(tmp.name)
    spec = _tiny_spec()
    cache.put(spec, _tiny_row(spec))
    assert cache.get(spec) is not None
    return (lambda: cache.get(spec)), tmp.cleanup


@benchmark("experiment_cache_miss",
           "ResultCache.get on an absent spec (hash + failed read)")
def _bench_cache_miss():
    tmp = tempfile.TemporaryDirectory()
    cache = ResultCache(tmp.name)
    spec = _tiny_spec(seed=12345)
    assert cache.get(spec) is None
    return (lambda: cache.get(spec)), tmp.cleanup


@benchmark("experiment_queue_claim",
           "WorkQueue.claim + release over a 32-cell pending set "
           "(rename-arbitrated lease throughput)")
def _bench_queue_claim():
    tmp = tempfile.TemporaryDirectory()
    queue = WorkQueue(os.path.join(tmp.name, "q"))
    for seed in range(32):
        queue.submit(_tiny_spec(seed=seed))

    def claim_release():
        claim = queue.claim("bench")
        assert claim is not None
        # put the cell straight back so the workload is steady-state
        os.rename(queue.leased_dir / f"{claim.hash}.json",
                  queue.pending_dir / f"{claim.hash}.json")
        (queue.leased_dir / f"{claim.hash}.lease").unlink(missing_ok=True)

    return claim_release, tmp.cleanup


#: cell count for the end-to-end queue-executor bench — the ROADMAP's
#: thousand-cell fleet target.  The push-CI smoke sets
#: ``REPRO_QUEUE_BENCH_CELLS`` small; nightly and local acceptance runs
#: keep the real thousand.  ``REPRO_QUEUE_BENCH_WORKERS`` sizes the
#: launched fleet.
QUEUE_BENCH_CELLS = int(os.environ.get("REPRO_QUEUE_BENCH_CELLS", "1000"))
QUEUE_BENCH_WORKERS = int(os.environ.get("REPRO_QUEUE_BENCH_WORKERS", "4"))


def _queue_bench_config(queue_dir, cells: int):
    """A ``cells``-cell micro-experiment grid: 2 strategies x 2 seeds x
    however many compression points it takes.  Real cells (pretrain +
    prune + finetune on the 8px synthetic dataset, ~tens of ms each), so
    the bench exercises the full claim/run/publish/complete path."""
    from ..experiment.config import OptimizerConfig, SweepConfig, TrainConfig

    strategies = ("global_weight", "random")
    seeds = (0, 1)
    points = max(1, -(-cells // (len(strategies) * len(seeds))))
    train = TrainConfig(epochs=1, batch_size=32,
                        optimizer=OptimizerConfig("sgd", 0.01),
                        early_stop_patience=None)
    # distinct ratios > 1 (no baseline dedup eating cells), bounded well
    # under the 8px LeNet's ~63x reachable-compression cap even at the
    # thousand-cell default (250 points -> 1.05 + 0.05*249 ~= 13.5x)
    return SweepConfig(
        model="lenet-300-100",
        dataset="cifar10",
        strategies=strategies,
        compressions=tuple(1.05 + 0.05 * i for i in range(points)),
        seeds=seeds,
        model_kwargs=dict(input_size=8, in_channels=3),
        dataset_kwargs=dict(n_train=32, n_val=16, size=8, noise=0.5),
        pretrain=train,
        finetune=train,
        executor="queue",
        executor_options=dict(queue_dir=str(queue_dir), local_workers=0),
    )


@benchmark("queue_executor_e2e",
           f"end-to-end fleet sweep: plan + launch {QUEUE_BENCH_WORKERS} "
           f"local workers + coordinate {QUEUE_BENCH_CELLS} real micro-"
           "cells through the queue executor, then verify done-vs-cache")
def _bench_queue_executor_e2e():
    import shutil
    import signal as _signal

    from ..experiment.queue import QueueExecutor
    from ..fleet import HostSpec, fleet_plan, launch_fleet, verify_fleet

    tmp = tempfile.TemporaryDirectory()
    counter = iter(range(10**9))
    fleet_pids = []

    def sweep():
        queue_dir = os.path.join(tmp.name, f"q-{next(counter)}")
        config = _queue_bench_config(queue_dir, QUEUE_BENCH_CELLS)
        specs = config.expand()
        fleet_plan(config, queue_dir, batch_size=128)
        manifest = launch_fleet(
            [HostSpec(host="local", workers=QUEUE_BENCH_WORKERS)],
            queue_dir,
            idle_timeout=10.0,
            cache_dir=os.path.join(queue_dir, "cache"),
        )
        pids = [w["pid"] for w in manifest["workers"]]
        fleet_pids.extend(pids)
        try:
            executor = QueueExecutor(
                queue_dir=queue_dir, local_workers=0, wait_timeout=600.0,
                cache=ResultCache(os.path.join(queue_dir, "cache")),
            )
            rows = executor.run(specs)
            assert len(rows) == len(specs)
            audit, _ = verify_fleet(queue_dir)
            assert audit.clean, audit.problems()
        finally:
            for pid in pids:
                try:
                    os.kill(pid, _signal.SIGTERM)
                except OSError:
                    pass
            shutil.rmtree(queue_dir, ignore_errors=True)

    def cleanup():
        for pid in fleet_pids:
            try:
                os.kill(pid, _signal.SIGKILL)
            except OSError:
                pass
        tmp.cleanup()

    return sweep, cleanup


# --------------------------------------------------------------------------
# analysis (ResultFrame at 100k rows)
# --------------------------------------------------------------------------

#: row count for the frame benches — the ROADMAP's "100k+ rows" target
FRAME_ROWS = 100_000


def make_result_frame(rows: int = FRAME_ROWS, seed: int = 0) -> ResultFrame:
    """A synthetic sweep-shaped frame (also used by the equivalence tests)."""
    rng = np.random.default_rng(seed)
    strategies = np.array(
        ["global_weight", "layer_weight", "global_gradient", "random"],
        dtype=object,
    )
    models = np.array(["resnet-20", "vgg-11", "lenet-300-100"], dtype=object)
    compression = rng.choice([1.0, 2.0, 4.0, 8.0, 16.0, 32.0], rows)
    return ResultFrame({
        "model": models[rng.integers(0, len(models), rows)],
        "dataset": np.array(["cifar10"] * rows, dtype=object),
        "strategy": strategies[rng.integers(0, len(strategies), rows)],
        "compression": compression,
        "seed": rng.integers(0, 10, rows).astype(np.int64),
        "top1": rng.random(rows),
        "top5": rng.random(rows),
    })


def _rowloop_filter(frame: ResultFrame, **conditions) -> ResultFrame:
    """Naive per-row filter: the pre-columnar baseline the frame replaced."""
    def matches(i):
        for name, cond in conditions.items():
            v = frame.column(name)[i]
            if isinstance(cond, (list, tuple, set)):
                if v not in cond:
                    return False
            elif v != cond:
                return False
        return True

    return frame.take([i for i in range(len(frame)) if matches(i)])


@benchmark("frame_filter_vectorized",
           f"ResultFrame.filter (strategy + compression set) at {FRAME_ROWS} rows")
def _bench_frame_filter():
    frame = make_result_frame()
    return lambda: frame.filter(strategy="global_weight",
                                compression=[2.0, 4.0, 8.0])


@benchmark("frame_filter_rowloop",
           "same filter as a per-row Python loop (pre-frame baseline)")
def _bench_frame_filter_rowloop():
    frame = make_result_frame()
    return lambda: _rowloop_filter(frame, strategy="global_weight",
                                   compression=[2.0, 4.0, 8.0])


@benchmark("frame_group_by_vectorized",
           f"ResultFrame.group_by (strategy, compression) at {FRAME_ROWS} rows")
def _bench_frame_group_by():
    frame = make_result_frame()
    return lambda: frame.group_by(("strategy", "compression"))


@benchmark("frame_group_by_rowloop",
           "reference row-by-row group_by (equivalence twin)")
def _bench_frame_group_by_rowloop():
    frame = make_result_frame()
    return lambda: frame._group_by_rows(("strategy", "compression"),
                                        single=False, sort=True)


@benchmark("frame_join_baseline_vectorized",
           f"batched baseline join at {FRAME_ROWS} rows")
def _bench_frame_join_baseline():
    frame = make_result_frame()
    return lambda: frame._join_baseline_batched(("model", "dataset", "seed"))


@benchmark("frame_join_baseline_rowloop",
           "reference per-row dict-probe baseline join (equivalence twin)")
def _bench_frame_join_baseline_rowloop():
    frame = make_result_frame()
    return lambda: frame._join_baseline_rows(("model", "dataset", "seed"))


# --------------------------------------------------------------------------
# store (binary column store at corpus scale)
# --------------------------------------------------------------------------

#: row count for the store benches — the corpus-scale target from ROADMAP
#: item 2.  The default is a genuine million rows (the nightly CI leg and
#: local acceptance runs use it); the push-CI smoke sets
#: ``REPRO_STORE_BENCH_ROWS`` to a small value so the full suite stays
#: under its time budget.
STORE_BENCH_ROWS = int(os.environ.get("REPRO_STORE_BENCH_ROWS", "1000000"))


def make_sweep_frame(rows: int = STORE_BENCH_ROWS, seed: int = 0) -> ResultFrame:
    """A synthetic full-schema sweep frame (every PruningResult column), so
    ``build_report`` runs unmodified over it — the store benches' workload."""
    frame = make_result_frame(rows, seed)
    rng = np.random.default_rng(seed + 1)
    compression = frame.column("compression")
    backends = np.array([{"kernel_backend": "fast"}, {"kernel_backend": "reference"}],
                        dtype=object)
    top1 = frame.column("top1")
    return ResultFrame({
        **{name: frame.column(name) for name in frame.columns},
        "actual_compression": compression * rng.uniform(0.9, 1.1, rows),
        "theoretical_speedup": compression * rng.uniform(0.5, 0.9, rows),
        "total_params": np.full(rows, 266_610, dtype=np.int64),
        "nonzero_params": (266_610 / compression).astype(np.int64),
        "dense_flops": np.full(rows, 5.3e5),
        "effective_flops": 5.3e5 / compression,
        "baseline_top1": np.clip(top1 + rng.uniform(0.0, 0.1, rows), 0, 1),
        "baseline_top5": rng.random(rows),
        "pre_finetune_top1": rng.random(rows),
        "pre_finetune_top5": rng.random(rows),
        "pretrained_key": np.array(["bench"] * rows, dtype=object),
        "finetune_epochs_ran": rng.integers(0, 30, rows).astype(np.int64),
        "extra": backends[rng.integers(0, 2, rows)],
    }).derived()


def _store_workdir():
    """(tmpdir, results.json path, sealed store dir) for the store benches:
    the same ``STORE_BENCH_ROWS`` rows as both a JSON artifact and a
    compacted single-segment store — the two sides of the 10x claim."""
    from ..store import ColumnStore

    tmp = tempfile.TemporaryDirectory()
    frame = make_sweep_frame()
    json_path = os.path.join(tmp.name, "results.json")
    frame.save(json_path)
    store = ColumnStore(os.path.join(tmp.name, "store"))
    store.ingest(json_path, chunk_rows=262_144)
    store.compact()
    return tmp, json_path, store


@benchmark("store_ingest_1m",
           f"repro store ingest of a {STORE_BENCH_ROWS}-row results.json "
           "(streaming parse + chunked segment writes)")
def _bench_store_ingest():
    from ..store import ColumnStore

    tmp = tempfile.TemporaryDirectory()
    frame = make_sweep_frame()
    json_path = os.path.join(tmp.name, "results.json")
    frame.save(json_path)
    counter = iter(range(10**9))

    def ingest():
        store = ColumnStore(os.path.join(tmp.name, f"store-{next(counter)}"))
        store.ingest(json_path, chunk_rows=262_144)

    return ingest, tmp.cleanup


@benchmark("store_load_1m",
           f"ColumnStore.to_frame at {STORE_BENCH_ROWS} rows "
           "(mmap columns, no per-row parsing)")
def _bench_store_load():
    tmp, _, store = _store_workdir()
    return store.to_frame, tmp.cleanup


@benchmark("store_load_1m_json_twin",
           f"ResultFrame.from_json over the same {STORE_BENCH_ROWS} rows "
           "(the per-row JSON path the store replaces)")
def _bench_store_load_json_twin():
    tmp, json_path, _ = _store_workdir()
    return (lambda: ResultFrame.from_json(json_path)), tmp.cleanup


@benchmark("report_from_store_1m",
           f"load_frame(store) + build_report at {STORE_BENCH_ROWS} rows "
           "(the full `repro report <store-dir>` pipeline)")
def _bench_report_from_store():
    from ..analysis import build_report, load_frame

    tmp, _, store = _store_workdir()
    return (lambda: build_report(load_frame(store.root))), tmp.cleanup


@benchmark("report_from_store_1m_json_twin",
           f"load_frame(results.json) + build_report at {STORE_BENCH_ROWS} "
           "rows (the JSON-cache-path twin of report_from_store_1m)")
def _bench_report_from_json_twin():
    from ..analysis import build_report, load_frame

    tmp, json_path, _ = _store_workdir()
    return (lambda: build_report(load_frame(json_path))), tmp.cleanup


#: the pushdown benches' selective predicate: one seed value out of
#: ``PUSHDOWN_SEEDS``, over a store whose segments are seed-clustered —
#: so the zone maps rule out ~95% of segments (the ISSUE's "≤10% of
#: segments match" acceptance shape)
PUSHDOWN_SEEDS = 20
PUSHDOWN_SEGMENTS = 64
PUSHDOWN_QUERY = {
    "filter": {"seed": {"op": "==", "value": 7}},
    "columns": ["strategy", "compression", "seed", "top1"],
    "limit": 100,
}


def _pushdown_workdir():
    """(tmpdir, sealed multi-segment store) for the pushdown benches: the
    sweep rows re-seeded over ``PUSHDOWN_SEEDS`` values and sorted by seed
    before ingest, so each of the ``PUSHDOWN_SEGMENTS`` segments covers a
    narrow seed range and a single-seed predicate prunes almost all of
    them — the clustered-ingest layout the zone maps are designed for."""
    from ..store import ColumnStore

    tmp = tempfile.TemporaryDirectory()
    frame = make_sweep_frame()
    rows = len(frame)
    rng = np.random.default_rng(7)
    columns = {name: frame.column(name) for name in frame.columns}
    columns["seed"] = rng.integers(0, PUSHDOWN_SEEDS, rows).astype(np.int64)
    frame = ResultFrame(columns).sort_by("seed")
    json_path = os.path.join(tmp.name, "results.json")
    frame.save(json_path)
    store = ColumnStore(os.path.join(tmp.name, "store"))
    store.ingest(json_path, chunk_rows=max(1, -(-rows // PUSHDOWN_SEGMENTS)))
    return tmp, store


@benchmark("store_query_pushdown_1m",
           f"zone-map pushdown /query (seed == 7 over {PUSHDOWN_SEGMENTS} "
           f"seed-clustered segments, {STORE_BENCH_ROWS} rows): skip "
           "non-matching segments, load only referenced columns")
def _bench_store_query_pushdown():
    from ..analysis.query import compile_query

    tmp, store = _pushdown_workdir()
    query = compile_query(PUSHDOWN_QUERY)
    return (lambda: query.apply_store(store)), tmp.cleanup


@benchmark("store_query_fullscan_twin_1m",
           f"full-scan twin of store_query_pushdown_1m: materialize all "
           f"{STORE_BENCH_ROWS} rows, then apply the same query")
def _bench_store_query_fullscan_twin():
    from ..analysis.query import compile_query

    tmp, store = _pushdown_workdir()
    query = compile_query(PUSHDOWN_QUERY)
    return (lambda: query.apply(store.to_frame())), tmp.cleanup


@benchmark("report_from_store_incremental_1m",
           f"build_report_from_store at {STORE_BENCH_ROWS} rows: fold "
           "segments into the report without materializing the union "
           "frame (byte-identical twin of report_from_store_1m)")
def _bench_report_from_store_incremental():
    from ..analysis.report import build_report_from_store

    tmp, _, store = _store_workdir()
    return (lambda: build_report_from_store(store)), tmp.cleanup


# --------------------------------------------------------------------------
# serve (results server under concurrent load)
# --------------------------------------------------------------------------

#: the serve bench's client fan-out: threads × keep-alive requests each
SERVE_CLIENT_THREADS = 4
SERVE_REQUESTS_PER_THREAD = 25


@benchmark("serve_query_throughput",
           f"{SERVE_CLIENT_THREADS} client threads × "
           f"{SERVE_REQUESTS_PER_THREAD} keep-alive POST /query requests "
           f"(filter + aggregate) against a {FRAME_ROWS}-row frame")
def _bench_serve_query_throughput():
    import http.client
    import json as _json
    import threading

    from ..serve import FrameSource, ResultsServer

    server = ResultsServer(
        [FrameSource.from_frame("bench", make_result_frame())]
    )
    server.start()
    body = _json.dumps({
        "filter": {
            "strategy": "global_weight",
            "compression": {"op": ">=", "value": 4.0},
        },
        "aggregate": {"by": ["strategy", "compression"], "values": ["top1"]},
        "limit": 10,
    }).encode()
    headers = {"Content-Type": "application/json"}

    def client() -> None:
        conn = http.client.HTTPConnection(server.host, server.port)
        try:
            for _ in range(SERVE_REQUESTS_PER_THREAD):
                conn.request("POST", "/query", body=body, headers=headers)
                response = conn.getresponse()
                payload = response.read()
                assert response.status == 200, payload[:200]
        finally:
            conn.close()

    def run() -> None:
        threads = [threading.Thread(target=client)
                   for _ in range(SERVE_CLIENT_THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    return run, server.stop
