"""Numerical gradient checking for the autograd engine.

Used by the test suite to validate every op's backward pass against central
finite differences — the gold-standard correctness check for autodiff.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor

__all__ = ["numerical_gradient", "gradcheck"]


def numerical_gradient(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    index: int,
    eps: float = 1e-3,
) -> np.ndarray:
    """Central-difference gradient of ``sum(fn(*inputs))`` w.r.t. one input."""
    x = inputs[index]
    grad = np.zeros_like(x.data, dtype=np.float64)
    flat = x.data.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = float(fn(*inputs).data.sum())
        flat[i] = orig - eps
        lo = float(fn(*inputs).data.sum())
        flat[i] = orig
        gflat[i] = (hi - lo) / (2.0 * eps)
    return grad


def gradcheck(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    atol: float = 1e-2,
    rtol: float = 1e-2,
    eps: float = 1e-3,
) -> bool:
    """Check analytic grads of ``fn`` against finite differences.

    Inputs must be float tensors with ``requires_grad=True``.  Raises
    ``AssertionError`` with a diagnostic message on mismatch; returns True
    otherwise.  Tolerances are loose because the engine runs float32.
    """
    for t in inputs:
        t.zero_grad()
    out = fn(*inputs)
    out.backward(np.ones_like(out.data))
    for i, t in enumerate(inputs):
        if not t.requires_grad:
            continue
        analytic = t.grad if t.grad is not None else np.zeros_like(t.data)
        numeric = numerical_gradient(fn, inputs, i, eps=eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = np.abs(analytic - numeric).max()
            raise AssertionError(
                f"gradcheck failed for input {i}: max abs err {worst:.4g}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}"
            )
    return True
