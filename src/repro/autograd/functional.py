"""Fused neural-network functionals: softmax, losses, batch norm.

These are implemented as dedicated autograd ops (rather than compositions of
primitive ops) for numerical stability and speed, exactly as deep-learning
frameworks do.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..kernels import active_backend
from .tensor import Tensor, as_tensor, is_grad_enabled

__all__ = [
    "softmax",
    "log_softmax",
    "cross_entropy",
    "nll_loss",
    "mse_loss",
    "batch_norm2d",
    "dropout",
    "linear",
]


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable softmax along ``axis``."""
    x = as_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    out = e / e.sum(axis=axis, keepdims=True)

    def backward(g: np.ndarray):
        dot = (g * out).sum(axis=axis, keepdims=True)
        return (out * (g - dot),)

    return Tensor._make(out, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable log-softmax along ``axis``."""
    x = as_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    lse = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out = shifted - lse
    sm = np.exp(out)

    def backward(g: np.ndarray):
        return (g - sm * g.sum(axis=axis, keepdims=True),)

    return Tensor._make(out, (x,), backward)


def nll_loss(log_probs: Tensor, targets: np.ndarray) -> Tensor:
    """Mean negative log-likelihood given log-probabilities.

    ``targets`` is an integer class-index array of shape ``(N,)``.
    """
    log_probs = as_tensor(log_probs)
    targets = np.asarray(targets)
    n = log_probs.shape[0]
    picked = log_probs.data[np.arange(n), targets]
    out = np.asarray(-picked.mean(), dtype=log_probs.dtype)

    def backward(g: np.ndarray):
        dx = np.zeros_like(log_probs.data)
        dx[np.arange(n), targets] = -1.0 / n
        return (dx * g,)

    return Tensor._make(out, (log_probs,), backward)


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean softmax cross-entropy from raw logits (fused, stable).

    The backward pass is the classic ``(softmax - onehot) / N``.
    """
    logits = as_tensor(logits)
    targets = np.asarray(targets)
    n = logits.shape[0]
    shifted = logits.data - logits.data.max(axis=1, keepdims=True)
    lse = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    log_probs = shifted - lse
    out = np.asarray(-log_probs[np.arange(n), targets].mean(), dtype=logits.dtype)
    sm = np.exp(log_probs)

    def backward(g: np.ndarray):
        dx = sm.copy()
        dx[np.arange(n), targets] -= 1.0
        return (dx * (g / n),)

    return Tensor._make(out, (logits,), backward)


def mse_loss(pred: Tensor, target: Tensor) -> Tensor:
    """Mean squared error."""
    pred, target = as_tensor(pred), as_tensor(target)
    diff = pred - target
    return (diff * diff).mean()


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map ``x @ weight.T + bias`` (PyTorch weight layout).

    The common 2-D case runs as a single fused kernel on the active backend
    (one tape node instead of three, and the bias gradient is a plain
    ``sum(axis=0)`` rather than a generic unbroadcast); other ranks fall
    back to the composed primitive ops.
    """
    x, weight = as_tensor(x), as_tensor(weight)
    if x.ndim != 2 or weight.ndim != 2:
        out = x @ weight.T
        if bias is not None:
            out = out + bias
        return out
    bias = as_tensor(bias) if bias is not None else None
    kb = active_backend()
    want_ctx = is_grad_enabled() and (
        x.requires_grad
        or weight.requires_grad
        or (bias is not None and bias.requires_grad)
    )
    out, ctx = kb.linear_forward(
        x.data, weight.data, None if bias is None else bias.data, want_ctx
    )
    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(g: np.ndarray):
        return kb.linear_backward(g, ctx)

    return Tensor._make(out, parents, backward)


def dropout(x: Tensor, p: float, rng: np.random.Generator, training: bool) -> Tensor:
    """Inverted dropout: scales kept activations by ``1/(1-p)`` at train time."""
    if not training or p <= 0.0:
        return x
    x = as_tensor(x)
    keep = (rng.random(x.shape) >= p).astype(x.dtype) / (1.0 - p)

    def backward(g: np.ndarray):
        return (g * keep,)

    return Tensor._make(x.data * keep, (x,), backward)


def batch_norm2d(
    x: Tensor,
    gamma: Tensor,
    beta: Tensor,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    training: bool,
    momentum: float = 0.1,
    eps: float = 1e-5,
) -> Tensor:
    """Batch normalization over (N,H,W) per channel for NCHW input.

    At train time uses batch statistics and updates the running buffers
    in place; at eval time uses the running buffers.
    """
    x = as_tensor(x)
    n, c, h, w = x.shape
    if training:
        axes = (0, 2, 3)
        mean = x.data.mean(axis=axes)
        var = x.data.var(axis=axes)
        m = n * h * w
        running_mean *= 1.0 - momentum
        running_mean += momentum * mean
        # Unbiased variance in the running buffer, biased in the normalizer
        # (PyTorch semantics).
        unbiased = var * (m / max(m - 1, 1))
        running_var *= 1.0 - momentum
        running_var += momentum * unbiased
    else:
        mean, var = running_mean, running_var

    inv_std = 1.0 / np.sqrt(var + eps)
    x_hat = (x.data - mean[None, :, None, None]) * inv_std[None, :, None, None]
    out = gamma.data[None, :, None, None] * x_hat + beta.data[None, :, None, None]

    def backward(g: np.ndarray):
        axes = (0, 2, 3)
        g_gamma = (g * x_hat).sum(axis=axes)
        g_beta = g.sum(axis=axes)
        if not training:
            gx = g * (gamma.data * inv_std)[None, :, None, None]
            return gx, g_gamma, g_beta
        m = n * h * w
        g_xhat = g * gamma.data[None, :, None, None]
        # Standard batch-norm backward (Ioffe & Szegedy 2015, vectorised).
        sum_gxhat = g_xhat.sum(axis=axes, keepdims=True)
        sum_gxhat_xhat = (g_xhat * x_hat).sum(axis=axes, keepdims=True)
        gx = (
            inv_std[None, :, None, None]
            / m
            * (m * g_xhat - sum_gxhat - x_hat * sum_gxhat_xhat)
        )
        return gx.astype(g.dtype), g_gamma, g_beta

    return Tensor._make(out.astype(x.dtype), (x, gamma, beta), backward)
