"""Pure-NumPy reverse-mode autograd engine (the PyTorch substitute).

Public surface:

* :class:`Tensor` — array wrapper with ``backward()``.
* :func:`no_grad` — context manager disabling tape recording.
* conv/pool ops in :mod:`repro.autograd.conv`.
* fused NN functionals in :mod:`repro.autograd.functional`.
* :func:`gradcheck` for finite-difference validation.
"""

from .tensor import Tensor, as_tensor, cat, is_grad_enabled, no_grad, stack, unbroadcast
from .conv import (
    avg_pool2d,
    conv2d,
    conv2d_bias_relu,
    conv_output_shape,
    depthwise_conv2d,
    global_avg_pool2d,
    max_pool2d,
)
from .functional import (
    batch_norm2d,
    cross_entropy,
    dropout,
    linear,
    log_softmax,
    mse_loss,
    nll_loss,
    softmax,
)
from .gradcheck import gradcheck, numerical_gradient

__all__ = [
    "Tensor",
    "as_tensor",
    "cat",
    "stack",
    "no_grad",
    "is_grad_enabled",
    "unbroadcast",
    "conv2d",
    "conv2d_bias_relu",
    "depthwise_conv2d",
    "max_pool2d",
    "avg_pool2d",
    "global_avg_pool2d",
    "conv_output_shape",
    "softmax",
    "log_softmax",
    "cross_entropy",
    "nll_loss",
    "mse_loss",
    "batch_norm2d",
    "dropout",
    "linear",
    "gradcheck",
    "numerical_gradient",
]
