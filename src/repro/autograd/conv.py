"""Convolution and pooling ops for the NumPy autograd engine.

Implements im2col-based 2-D convolution (with stride/padding/groups), a fast
dedicated depthwise convolution, and max/avg pooling — all as differentiable
ops on :class:`repro.autograd.tensor.Tensor`.

The forward pass uses ``numpy.lib.stride_tricks.sliding_window_view`` plus a
single large matmul per layer, which keeps the hot path inside BLAS.  The
backward pass for the input gradient uses a small K×K Python loop (at most 49
iterations for a 7×7 kernel) over fully-vectorised slice additions — the
standard fast col2im formulation.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from .tensor import Tensor, as_tensor

__all__ = [
    "conv2d",
    "depthwise_conv2d",
    "max_pool2d",
    "avg_pool2d",
    "global_avg_pool2d",
    "conv_output_shape",
]


def conv_output_shape(
    in_hw: Tuple[int, int], kernel: Tuple[int, int], stride: int, padding: int
) -> Tuple[int, int]:
    """Spatial output shape of a conv/pool with the given geometry."""
    h = (in_hw[0] + 2 * padding - kernel[0]) // stride + 1
    w = (in_hw[1] + 2 * padding - kernel[1]) // stride + 1
    if h <= 0 or w <= 0:
        raise ValueError(
            f"Non-positive conv output {h}x{w} for input {in_hw}, "
            f"kernel {kernel}, stride {stride}, padding {padding}"
        )
    return h, w


def _im2col(
    x: np.ndarray, kh: int, kw: int, stride: int, padding: int
) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Extract sliding patches as a GEMM-ready matrix.

    Returns ``cols`` of shape ``(N*OH*OW, C*kh*kw)`` (C-contiguous) so that
    both the forward pass and the two backward passes are single large BLAS
    GEMMs rather than batched small ones.
    """
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    n, c, h, w = x.shape
    oh, ow = (h - kh) // stride + 1, (w - kw) // stride + 1
    # windows: strided view (N, C, OH, OW, kh, kw)
    windows = sliding_window_view(x, (kh, kw), axis=(2, 3))[
        :, :, ::stride, ::stride, :, :
    ]
    # -> (N, OH, OW, C, kh, kw) -> (N*OH*OW, C*kh*kw); one materializing copy.
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(n * oh * ow, c * kh * kw)
    return cols, (oh, ow)


def _col2im(
    dcols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Adjoint of :func:`_im2col`: scatter patch grads back to the image.

    ``dcols`` has shape ``(N*OH*OW, C*kh*kw)``.  The scatter uses a kh×kw
    loop of fully-vectorised strided adds (the standard fast col2im).
    """
    n, c, h, w = x_shape
    oh, ow = conv_output_shape((h, w), (kh, kw), stride, padding)
    hp, wp = h + 2 * padding, w + 2 * padding
    dx = np.zeros((n, c, hp, wp), dtype=dcols.dtype)
    # One sequential materializing copy into (kh, kw, N, C, OH, OW) so each
    # scatter-add below reads a contiguous source block.
    d6 = np.ascontiguousarray(
        dcols.reshape(n, oh, ow, c, kh, kw).transpose(4, 5, 0, 3, 1, 2)
    )
    for i in range(kh):
        hi = i + stride * oh
        for j in range(kw):
            wj = j + stride * ow
            dx[:, :, i:hi:stride, j:wj:stride] += d6[i, j]
    if padding:
        dx = dx[:, :, padding:-padding, padding:-padding]
    return dx


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: int = 1,
    padding: int = 0,
    groups: int = 1,
) -> Tensor:
    """2-D convolution (cross-correlation) over NCHW input.

    Parameters
    ----------
    x: input of shape ``(N, C_in, H, W)``.
    weight: filters of shape ``(C_out, C_in // groups, KH, KW)``.
    bias: optional per-output-channel bias of shape ``(C_out,)``.
    groups: number of filter groups; ``groups == C_in`` with matching
        ``C_out`` dispatches to the fast depthwise path.
    """
    x, weight = as_tensor(x), as_tensor(weight)
    n, c_in, h, w = x.shape
    c_out, c_in_g, kh, kw = weight.shape
    if c_in % groups or c_out % groups:
        raise ValueError(f"groups={groups} must divide C_in={c_in}, C_out={c_out}")
    if c_in_g != c_in // groups:
        raise ValueError(
            f"weight expects {c_in_g} input channels/group, got {c_in // groups}"
        )
    if groups > 1 and groups == c_in and c_out == c_in:
        return depthwise_conv2d(x, weight, bias, stride=stride, padding=padding)
    if groups == 1:
        return _conv2d_dense(x, weight, bias, stride, padding)
    # General grouped conv: run the dense path per group and concatenate.
    from .tensor import cat

    cg_in, cg_out = c_in // groups, c_out // groups
    outs = []
    for g in range(groups):
        xg = x[:, g * cg_in : (g + 1) * cg_in]
        wg = weight[g * cg_out : (g + 1) * cg_out]
        bg = bias[g * cg_out : (g + 1) * cg_out] if bias is not None else None
        outs.append(_conv2d_dense(xg, wg, bg, stride, padding))
    return cat(outs, axis=1)


def _conv2d_dense(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor],
    stride: int,
    padding: int,
) -> Tensor:
    n, c_in, h, w = x.shape
    c_out, _, kh, kw = weight.shape
    cols, (oh, ow) = _im2col(x.data, kh, kw, stride, padding)  # (N*P, K)
    w_mat = weight.data.reshape(c_out, -1)  # (F, K)
    out2d = cols @ w_mat.T  # single GEMM -> (N*P, F)
    out = np.moveaxis(out2d.reshape(n, oh, ow, c_out), 3, 1)
    if bias is not None:
        out = out + bias.data.reshape(1, c_out, 1, 1)
    else:
        out = np.ascontiguousarray(out)
    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(g: np.ndarray):
        # (N,F,OH,OW) -> (N*P, F); one materializing copy.
        g2d = np.moveaxis(g, 1, 3).reshape(n * oh * ow, c_out)
        gw = (g2d.T @ cols).reshape(weight.shape)  # single GEMM
        dcols = g2d @ w_mat  # single GEMM -> (N*P, K)
        gx = _col2im(dcols, x.shape, kh, kw, stride, padding)
        if bias is None:
            return gx, gw
        gb = g.sum(axis=(0, 2, 3))
        return gx, gw, gb

    return Tensor._make(out, parents, backward)


def depthwise_conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """Depthwise 2-D convolution: one filter per input channel.

    ``weight`` has shape ``(C, 1, KH, KW)``; output has C channels.
    """
    x, weight = as_tensor(x), as_tensor(weight)
    n, c, h, w = x.shape
    c_out, one, kh, kw = weight.shape
    if c_out != c or one != 1:
        raise ValueError(f"depthwise weight must be (C,1,KH,KW); got {weight.shape}")
    xp = (
        np.pad(x.data, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
        if padding
        else x.data
    )
    oh, ow = conv_output_shape((h, w), (kh, kw), stride, padding)
    windows = sliding_window_view(xp, (kh, kw), axis=(2, 3))[
        :, :, ::stride, ::stride
    ]  # (N,C,OH,OW,kh,kw)
    wk = weight.data.reshape(c, kh, kw)
    out = np.einsum("nchwij,cij->nchw", windows, wk, optimize=True)
    if bias is not None:
        out = out + bias.data.reshape(1, c, 1, 1)
    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(g: np.ndarray):
        gw = np.einsum("nchwij,nchw->cij", windows, g, optimize=True).reshape(
            weight.shape
        )
        # Input grad: scatter g*w back via the K×K loop.
        dxp = np.zeros_like(xp)
        for i in range(kh):
            hi = i + stride * oh
            for j in range(kw):
                wj = j + stride * ow
                dxp[:, :, i:hi:stride, j:wj:stride] += (
                    g * wk[None, :, i, j, None, None]
                )
        gx = dxp[:, :, padding : padding + h, padding : padding + w] if padding else dxp
        if bias is None:
            return gx, gw
        return gx, gw, g.sum(axis=(0, 2, 3))

    return Tensor._make(out, parents, backward)


def _max_pool2d_backward_scatter(
    x_shape: Tuple[int, int, int, int],
    arg: np.ndarray,
    g: np.ndarray,
    kernel: int,
    stride: int,
    dtype,
) -> np.ndarray:
    """Max-pool input gradient for *non-overlapping* windows (stride ≥ kernel).

    Each input cell then receives at most one window's gradient, so the
    scatter-add degenerates to a pure scatter: a fancy-index *assignment*,
    which is several times faster than :func:`np.add.at`'s unbuffered
    accumulation.  ``g + 0.0`` normalizes ``-0.0`` gradients to ``+0.0`` so
    the result stays byte-identical to adding into a zeroed buffer.
    """
    n, c, _, _ = x_shape
    oh, ow = arg.shape[2], arg.shape[3]
    dx = np.zeros(x_shape, dtype=dtype)
    ki, kj = np.divmod(arg, kernel)
    oi, oj = np.ogrid[0:oh, 0:ow]
    ni = np.arange(n)[:, None, None, None]
    ci = np.arange(c)[None, :, None, None]
    dx[ni, ci, oi * stride + ki, oj * stride + kj] = g + 0.0
    return dx


def _max_pool2d_backward_add_at(
    x_shape: Tuple[int, int, int, int],
    arg: np.ndarray,
    g: np.ndarray,
    kernel: int,
    stride: int,
    dtype,
) -> np.ndarray:
    """Reference max-pool input gradient via ``np.add.at``.

    Correct for any stride/kernel combination (overlapping windows
    accumulate); :func:`_max_pool2d_backward_scatter` is equivalence-tested
    against this and used on the non-overlapping hot path.
    """
    dx = np.zeros(x_shape, dtype=dtype)
    ki, kj = np.divmod(arg, kernel)
    ni, ci, oi, oj = np.indices(arg.shape, sparse=False)
    rows = oi * stride + ki
    cols_ = oj * stride + kj
    np.add.at(dx, (ni, ci, rows, cols_), g)
    return dx


def max_pool2d(x: Tensor, kernel: int = 2, stride: Optional[int] = None) -> Tensor:
    """Max pooling over non-overlapping or strided windows (NCHW)."""
    x = as_tensor(x)
    stride = stride or kernel
    n, c, h, w = x.shape
    oh, ow = conv_output_shape((h, w), (kernel, kernel), stride, 0)
    windows = sliding_window_view(x.data, (kernel, kernel), axis=(2, 3))[
        :, :, ::stride, ::stride
    ]  # (N,C,OH,OW,k,k)
    flat = windows.reshape(n, c, oh, ow, kernel * kernel)
    arg = flat.argmax(axis=-1)
    out = np.take_along_axis(flat, arg[..., None], axis=-1)[..., 0]

    def backward(g: np.ndarray):
        scatter = (
            _max_pool2d_backward_scatter
            if stride >= kernel
            else _max_pool2d_backward_add_at
        )
        return (scatter(x.shape, arg, g, kernel, stride, x.data.dtype),)

    return Tensor._make(np.ascontiguousarray(out), (x,), backward)


def avg_pool2d(x: Tensor, kernel: int = 2, stride: Optional[int] = None) -> Tensor:
    """Average pooling over windows (NCHW)."""
    x = as_tensor(x)
    stride = stride or kernel
    n, c, h, w = x.shape
    oh, ow = conv_output_shape((h, w), (kernel, kernel), stride, 0)
    windows = sliding_window_view(x.data, (kernel, kernel), axis=(2, 3))[
        :, :, ::stride, ::stride
    ]
    out = windows.mean(axis=(-1, -2))
    scale = 1.0 / (kernel * kernel)

    def backward(g: np.ndarray):
        dx = np.zeros_like(x.data)
        gs = g * scale
        for i in range(kernel):
            hi = i + stride * oh
            for j in range(kernel):
                wj = j + stride * ow
                dx[:, :, i:hi:stride, j:wj:stride] += gs
        return (dx,)

    return Tensor._make(np.ascontiguousarray(out), (x,), backward)


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Mean over the spatial dims: (N,C,H,W) -> (N,C)."""
    return x.mean(axis=(2, 3))
