"""Convolution and pooling ops for the NumPy autograd engine.

Implements im2col-based 2-D convolution (with stride/padding/groups), a fast
dedicated depthwise convolution, and max/avg pooling — all as differentiable
ops on :class:`repro.autograd.tensor.Tensor`.

The heavy array math for the dense conv, the fused conv+bias+ReLU, and max
pooling is *not* implemented here: those ops dispatch through the active
kernel backend (:func:`repro.kernels.active_backend`), so the reference and
optimized implementations stay interchangeable and equivalence-tested.  The
backend's forward returns an opaque context that the backward closure hands
back — the tape never sees backend internals.

The historical private helpers (``_im2col``, ``_col2im``, the max-pool
scatter variants) now live in :mod:`repro.kernels.reference` and are
re-exported here under their old names for backward compatibility.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from ..kernels import active_backend
from ..kernels.reference import (
    col2im as _col2im,
    conv_output_shape,
    im2col as _im2col,
    max_pool2d_backward_add_at as _max_pool2d_backward_add_at,
    max_pool2d_backward_scatter as _max_pool2d_backward_scatter,
)
from .tensor import Tensor, as_tensor, is_grad_enabled

__all__ = [
    "conv2d",
    "conv2d_bias_relu",
    "depthwise_conv2d",
    "max_pool2d",
    "avg_pool2d",
    "global_avg_pool2d",
    "conv_output_shape",
]


def _wants_grad(*tensors: Optional[Tensor]) -> bool:
    """Whether a backward pass can reach any of the given (optional) tensors."""
    return is_grad_enabled() and any(
        t is not None and t.requires_grad for t in tensors
    )


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: int = 1,
    padding: int = 0,
    groups: int = 1,
) -> Tensor:
    """2-D convolution (cross-correlation) over NCHW input.

    Parameters
    ----------
    x: input of shape ``(N, C_in, H, W)``.
    weight: filters of shape ``(C_out, C_in // groups, KH, KW)``.
    bias: optional per-output-channel bias of shape ``(C_out,)``.
    groups: number of filter groups; ``groups == C_in`` with matching
        ``C_out`` dispatches to the fast depthwise path.
    """
    x, weight = as_tensor(x), as_tensor(weight)
    n, c_in, h, w = x.shape
    c_out, c_in_g, kh, kw = weight.shape
    if c_in % groups or c_out % groups:
        raise ValueError(f"groups={groups} must divide C_in={c_in}, C_out={c_out}")
    if c_in_g != c_in // groups:
        raise ValueError(
            f"weight expects {c_in_g} input channels/group, got {c_in // groups}"
        )
    if groups > 1 and groups == c_in and c_out == c_in:
        return depthwise_conv2d(x, weight, bias, stride=stride, padding=padding)
    if groups == 1:
        return _conv2d_dense(x, weight, bias, stride, padding)
    # General grouped conv: run the dense path per group and concatenate.
    from .tensor import cat

    cg_in, cg_out = c_in // groups, c_out // groups
    outs = []
    for g in range(groups):
        xg = x[:, g * cg_in : (g + 1) * cg_in]
        wg = weight[g * cg_out : (g + 1) * cg_out]
        bg = bias[g * cg_out : (g + 1) * cg_out] if bias is not None else None
        outs.append(_conv2d_dense(xg, wg, bg, stride, padding))
    return cat(outs, axis=1)


def _conv2d_dense(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor],
    stride: int,
    padding: int,
) -> Tensor:
    kb = active_backend()
    want_ctx = _wants_grad(x, weight, bias)
    out, ctx = kb.conv2d_forward(
        x.data,
        weight.data,
        None if bias is None else bias.data,
        stride,
        padding,
        want_ctx,
    )
    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(g: np.ndarray):
        return kb.conv2d_backward(g, ctx)

    return Tensor._make(out, parents, backward)


def conv2d_bias_relu(
    x: Tensor,
    weight: Tensor,
    bias: Tensor,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """Fused dense conv2d + bias + ReLU (byte-equal to the composed ops).

    One backend kernel instead of three tape nodes: the ReLU mask is saved
    at forward time and applied to the incoming gradient before the conv
    backward, so the intermediate pre-activation never hits the tape.
    Requires ``bias`` and ``groups == 1`` (that is the shape of every
    conv+ReLU block in the model zoo's hot paths).
    """
    x, weight, bias = as_tensor(x), as_tensor(weight), as_tensor(bias)
    if x.ndim != 4 or weight.ndim != 4:
        raise ValueError("conv2d_bias_relu expects NCHW input and OIHW weights")
    if x.shape[1] != weight.shape[1]:
        raise ValueError(
            f"conv2d_bias_relu is dense-only (groups=1); input has "
            f"{x.shape[1]} channels, weight expects {weight.shape[1]}"
        )
    kb = active_backend()
    want_ctx = _wants_grad(x, weight, bias)
    out, ctx = kb.fused_conv_bias_relu_forward(
        x.data, weight.data, bias.data, stride, padding, want_ctx
    )

    def backward(g: np.ndarray):
        return kb.fused_conv_bias_relu_backward(g, ctx)

    return Tensor._make(out, (x, weight, bias), backward)


def depthwise_conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """Depthwise 2-D convolution: one filter per input channel.

    ``weight`` has shape ``(C, 1, KH, KW)``; output has C channels.
    """
    x, weight = as_tensor(x), as_tensor(weight)
    n, c, h, w = x.shape
    c_out, one, kh, kw = weight.shape
    if c_out != c or one != 1:
        raise ValueError(f"depthwise weight must be (C,1,KH,KW); got {weight.shape}")
    xp = (
        np.pad(x.data, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
        if padding
        else x.data
    )
    oh, ow = conv_output_shape((h, w), (kh, kw), stride, padding)
    windows = sliding_window_view(xp, (kh, kw), axis=(2, 3))[
        :, :, ::stride, ::stride
    ]  # (N,C,OH,OW,kh,kw)
    wk = weight.data.reshape(c, kh, kw)
    out = np.einsum("nchwij,cij->nchw", windows, wk, optimize=True)
    if bias is not None:
        out = out + bias.data.reshape(1, c, 1, 1)
    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(g: np.ndarray):
        gw = np.einsum("nchwij,nchw->cij", windows, g, optimize=True).reshape(
            weight.shape
        )
        # Input grad: scatter g*w back via the K×K loop.
        dxp = np.zeros_like(xp)
        for i in range(kh):
            hi = i + stride * oh
            for j in range(kw):
                wj = j + stride * ow
                dxp[:, :, i:hi:stride, j:wj:stride] += (
                    g * wk[None, :, i, j, None, None]
                )
        gx = dxp[:, :, padding : padding + h, padding : padding + w] if padding else dxp
        if bias is None:
            return gx, gw
        return gx, gw, g.sum(axis=(0, 2, 3))

    return Tensor._make(out, parents, backward)


def max_pool2d(x: Tensor, kernel: int = 2, stride: Optional[int] = None) -> Tensor:
    """Max pooling over non-overlapping or strided windows (NCHW)."""
    x = as_tensor(x)
    stride = stride or kernel
    kb = active_backend()
    out, arg = kb.maxpool_forward(x.data, kernel, stride)

    def backward(g: np.ndarray):
        return (kb.maxpool_backward(x.shape, arg, g, kernel, stride, x.data.dtype),)

    return Tensor._make(out, (x,), backward)


def avg_pool2d(x: Tensor, kernel: int = 2, stride: Optional[int] = None) -> Tensor:
    """Average pooling over windows (NCHW)."""
    x = as_tensor(x)
    stride = stride or kernel
    n, c, h, w = x.shape
    oh, ow = conv_output_shape((h, w), (kernel, kernel), stride, 0)
    windows = sliding_window_view(x.data, (kernel, kernel), axis=(2, 3))[
        :, :, ::stride, ::stride
    ]
    out = windows.mean(axis=(-1, -2))
    scale = 1.0 / (kernel * kernel)

    def backward(g: np.ndarray):
        dx = np.zeros_like(x.data)
        gs = g * scale
        for i in range(kernel):
            hi = i + stride * oh
            for j in range(kernel):
                wj = j + stride * ow
                dx[:, :, i:hi:stride, j:wj:stride] += gs
        return (dx,)

    return Tensor._make(np.ascontiguousarray(out), (x,), backward)


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Mean over the spatial dims: (N,C,H,W) -> (N,C)."""
    return x.mean(axis=(2, 3))
