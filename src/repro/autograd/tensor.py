"""Reverse-mode automatic differentiation on NumPy arrays.

This module provides :class:`Tensor`, a thin wrapper around ``numpy.ndarray``
that records a tape of operations and supports backpropagation through
arbitrary DAGs of the supported ops.  It is the substrate that replaces
PyTorch for this reproduction: ShrinkBench-style pruning only needs access to
parameter values and their gradients, both of which this engine exposes.

Design notes
------------
* Every differentiable op creates a new ``Tensor`` whose ``_parents`` hold the
  input tensors and whose ``_backward`` closure scatters the output gradient
  to the parents.  ``Tensor.backward()`` topologically sorts the graph and
  runs the closures in reverse order.
* Gradients are plain ``numpy.ndarray`` objects stored on ``Tensor.grad`` and
  are accumulated (summed) across uses, exactly like PyTorch leaf semantics.
* Broadcasting is fully supported; :func:`unbroadcast` reduces an upstream
  gradient back to the shape of the broadcast operand.
* All computation is vectorised NumPy; there are no per-element Python loops
  on the hot paths (see the ml-systems performance guide).
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "unbroadcast", "as_tensor"]

ArrayLike = Union["Tensor", np.ndarray, float, int, list, tuple]

# Grad mode is per-thread (like torch's): executors that run experiment
# cells on worker threads must not have one thread's eval-time no_grad()
# silently stop a concurrently *training* thread from recording its tape.
_GRAD_STATE = threading.local()


class no_grad:
    """Context manager that disables graph construction.

    Inside a ``with no_grad():`` block, ops return plain result tensors with
    no parents, mirroring ``torch.no_grad``.  Used by evaluation loops and by
    in-place parameter updates in the optimizers.  The mode only affects the
    current thread.
    """

    def __enter__(self) -> "no_grad":
        self._prev = is_grad_enabled()
        _GRAD_STATE.enabled = False
        return self

    def __exit__(self, *exc) -> None:
        _GRAD_STATE.enabled = self._prev


def is_grad_enabled() -> bool:
    """Return whether new ops will be recorded on the autograd tape
    (in the current thread)."""
    return getattr(_GRAD_STATE, "enabled", True)


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, inverting NumPy broadcasting.

    Broadcasting replicates values along new leading axes and along axes of
    size one; its adjoint is summation over the replicated axes.
    """
    if grad.shape == shape:
        return grad
    # Sum over extra leading dims introduced by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over dims that were 1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy-backed tensor with reverse-mode autodiff support.

    Parameters
    ----------
    data:
        Array data.  Anything accepted by ``np.asarray``; floats are stored
        as ``float32`` by default to mirror deep-learning practice.
    requires_grad:
        If True, gradients will be accumulated into ``self.grad`` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        name: Optional[str] = None,
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        arr = np.asarray(data)
        # float16 is upcast for numerical safety; float64 is preserved so the
        # gradcheck suite can validate ops in double precision.  Python
        # scalars/lists default to float32 to match deep-learning practice.
        if arr.dtype == np.float16:
            arr = arr.astype(np.float32)
        elif arr.dtype == np.float64 and not isinstance(
            data, (np.ndarray, np.generic)
        ):
            arr = arr.astype(np.float32)
        elif arr.dtype.kind not in "fiub":
            arr = arr.astype(np.float32)
        self.data: np.ndarray = arr
        self.grad: Optional[np.ndarray] = None
        self.requires_grad: bool = bool(requires_grad)
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()
        self.name = name

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_part = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, dtype={self.dtype}{grad_part})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Graph construction helper
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Create an op output, recording the tape edge if grad is enabled."""
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        """Accumulate ``grad`` into ``self.grad`` (allocating on first use)."""
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = grad.astype(self.data.dtype, copy=True)
        else:
            self.grad += grad

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Seed gradient.  Defaults to ones for scalar outputs (the common
            ``loss.backward()`` case); required for non-scalar outputs.
        """
        gdtype = self.data.dtype if self.data.dtype.kind == "f" else np.float32
        if grad is None:
            if self.size != 1:
                raise ValueError(
                    "backward() without a gradient argument requires a scalar "
                    f"output, got shape {self.shape}"
                )
            grad = np.ones_like(self.data, dtype=gdtype)
        grad = np.asarray(grad, dtype=gdtype).reshape(self.shape)

        # Topological order via iterative DFS (avoids recursion limits on
        # deep networks like ResNet-110).
        topo: List[Tensor] = []
        visited = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for p in node._parents:
                if id(p) not in visited and (p.requires_grad or p._parents):
                    stack.append((p, False))

        # Seed and propagate.  Intermediate gradients live in a side table so
        # that only leaves (requires_grad with no parents) keep .grad.
        grads = {id(self): grad}
        self_is_leaf = self.requires_grad and self._backward is None
        if self_is_leaf:
            self._accumulate(grad)
        for node in reversed(topo):
            g = grads.pop(id(node), None)
            if g is None:
                continue
            if node._backward is not None:
                node._backward_dispatch(g, grads)

    def _backward_dispatch(self, g: np.ndarray, grads: dict) -> None:
        """Run this node's backward closure, routing parent grads."""
        # The closure returns one gradient array per parent (or None).
        parent_grads = self._backward(g)
        if parent_grads is None:
            return
        if not isinstance(parent_grads, tuple):
            parent_grads = (parent_grads,)
        for parent, pg in zip(self._parents, parent_grads):
            if pg is None:
                continue
            if parent._backward is None:
                # Leaf: accumulate into .grad
                parent._accumulate(pg)
            else:
                key = id(parent)
                if key in grads:
                    grads[key] = grads[key] + pg
                else:
                    grads[key] = pg

    # ------------------------------------------------------------------
    # Arithmetic ops
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        a, b = self, other
        out_data = a.data + b.data

        def backward(g: np.ndarray):
            return unbroadcast(g, a.shape), unbroadcast(g, b.shape)

        return Tensor._make(out_data, (a, b), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        a = self

        def backward(g: np.ndarray):
            return (-g,)

        return Tensor._make(-a.data, (a,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        a, b = self, other
        out_data = a.data - b.data

        def backward(g: np.ndarray):
            return unbroadcast(g, a.shape), unbroadcast(-g, b.shape)

        return Tensor._make(out_data, (a, b), backward)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other).__sub__(self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        a, b = self, other
        out_data = a.data * b.data

        def backward(g: np.ndarray):
            ga = unbroadcast(g * b.data, a.shape) if a.requires_grad or a._parents else None
            gb = unbroadcast(g * a.data, b.shape) if b.requires_grad or b._parents else None
            return ga, gb

        return Tensor._make(out_data, (a, b), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        a, b = self, other
        out_data = a.data / b.data

        def backward(g: np.ndarray):
            ga = unbroadcast(g / b.data, a.shape)
            gb = unbroadcast(-g * a.data / (b.data * b.data), b.shape)
            return ga, gb

        return Tensor._make(out_data, (a, b), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("Tensor.__pow__ supports scalar exponents only")
        a = self
        out_data = a.data ** exponent

        def backward(g: np.ndarray):
            return (g * exponent * a.data ** (exponent - 1),)

        return Tensor._make(out_data, (a,), backward)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        a, b = self, other
        out_data = a.data @ b.data

        def backward(g: np.ndarray):
            if a.data.ndim == 1 and b.data.ndim == 1:
                # inner product
                return g * b.data, g * a.data
            ga = gb = None
            a_d, b_d = a.data, b.data
            # Promote 1-D operands to 2-D for a uniform rule, then squeeze.
            a2 = a_d[None, :] if a_d.ndim == 1 else a_d
            b2 = b_d[:, None] if b_d.ndim == 1 else b_d
            g2 = g
            if a_d.ndim == 1:
                g2 = np.expand_dims(g2, -2)
            if b_d.ndim == 1:
                g2 = np.expand_dims(g2, -1)
            ga = g2 @ np.swapaxes(b2, -1, -2)
            gb = np.swapaxes(a2, -1, -2) @ g2
            if a_d.ndim == 1:
                ga = ga.reshape(a_d.shape) if ga.ndim <= 1 else unbroadcast(
                    ga.sum(axis=-2), a_d.shape
                )
            else:
                ga = unbroadcast(ga, a_d.shape)
            if b_d.ndim == 1:
                gb = gb.reshape(b_d.shape) if gb.ndim <= 1 else unbroadcast(
                    gb.sum(axis=-1), b_d.shape
                )
            else:
                gb = unbroadcast(gb, b_d.shape)
            return ga, gb

        return Tensor._make(out_data, (a, b), backward)

    # ------------------------------------------------------------------
    # Elementwise nonlinear ops
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        a = self
        out_data = np.exp(a.data)

        def backward(g: np.ndarray):
            return (g * out_data,)

        return Tensor._make(out_data, (a,), backward)

    def log(self) -> "Tensor":
        a = self
        out_data = np.log(a.data)

        def backward(g: np.ndarray):
            return (g / a.data,)

        return Tensor._make(out_data, (a,), backward)

    def sqrt(self) -> "Tensor":
        a = self
        out_data = np.sqrt(a.data)

        def backward(g: np.ndarray):
            return (g * 0.5 / out_data,)

        return Tensor._make(out_data, (a,), backward)

    def abs(self) -> "Tensor":
        a = self
        out_data = np.abs(a.data)

        def backward(g: np.ndarray):
            return (g * np.sign(a.data),)

        return Tensor._make(out_data, (a,), backward)

    def tanh(self) -> "Tensor":
        a = self
        out_data = np.tanh(a.data)

        def backward(g: np.ndarray):
            return (g * (1.0 - out_data * out_data),)

        return Tensor._make(out_data, (a,), backward)

    def sigmoid(self) -> "Tensor":
        a = self
        out_data = 1.0 / (1.0 + np.exp(-a.data))

        def backward(g: np.ndarray):
            return (g * out_data * (1.0 - out_data),)

        return Tensor._make(out_data, (a,), backward)

    def relu(self) -> "Tensor":
        from ..kernels import active_backend

        a = self
        kb = active_backend()
        out_data = kb.relu_forward(a.data)

        def backward(g: np.ndarray):
            return (kb.relu_backward(g, a.data),)

        return Tensor._make(out_data, (a,), backward)

    def clip(self, lo: float, hi: float) -> "Tensor":
        a = self
        out_data = np.clip(a.data, lo, hi)
        passthrough = (a.data >= lo) & (a.data <= hi)

        def backward(g: np.ndarray):
            return (g * passthrough,)

        return Tensor._make(out_data, (a,), backward)

    def maximum(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        a, b = self, other
        out_data = np.maximum(a.data, b.data)
        a_wins = a.data >= b.data

        def backward(g: np.ndarray):
            return (
                unbroadcast(g * a_wins, a.shape),
                unbroadcast(g * ~a_wins, b.shape),
            )

        return Tensor._make(out_data, (a, b), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        a = self
        out_data = a.data.sum(axis=axis, keepdims=keepdims)

        def backward(g: np.ndarray):
            g_exp = g
            if axis is not None and not keepdims:
                ax = axis if isinstance(axis, tuple) else (axis,)
                ax = tuple(d % a.ndim for d in ax)
                for d in sorted(ax):
                    g_exp = np.expand_dims(g_exp, d)
            return (np.broadcast_to(g_exp, a.shape).astype(g.dtype),)

        return Tensor._make(out_data, (a,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        a = self
        out_data = a.data.mean(axis=axis, keepdims=keepdims)
        if axis is None:
            count = a.size
        else:
            ax = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([a.shape[d % a.ndim] for d in ax]))

        def backward(g: np.ndarray):
            g_exp = g
            if axis is not None and not keepdims:
                axs = axis if isinstance(axis, tuple) else (axis,)
                axs_n = tuple(d % a.ndim for d in axs)
                for d in sorted(axs_n):
                    g_exp = np.expand_dims(g_exp, d)
            return (
                (np.broadcast_to(g_exp, a.shape) / count).astype(g.dtype),
            )

        return Tensor._make(out_data, (a,), backward)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        centered = self - self.mean(axis=axis, keepdims=True)
        sq = centered * centered
        return sq.mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        a = self
        out_data = a.data.max(axis=axis, keepdims=keepdims)

        def backward(g: np.ndarray):
            g_exp = g
            out_exp = out_data
            if axis is not None and not keepdims:
                axs = axis if isinstance(axis, tuple) else (axis,)
                axs_n = tuple(d % a.ndim for d in axs)
                for d in sorted(axs_n):
                    g_exp = np.expand_dims(g_exp, d)
                    out_exp = np.expand_dims(out_exp, d)
            winners = a.data == out_exp
            # Split gradient equally among ties, matching numerical gradcheck.
            counts = winners.sum(
                axis=axis if axis is not None else None, keepdims=True
            )
            return ((winners / counts * g_exp).astype(g.dtype),)

        return Tensor._make(out_data, (a,), backward)

    # ------------------------------------------------------------------
    # Shape ops
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        a = self
        out_data = a.data.reshape(shape)

        def backward(g: np.ndarray):
            return (g.reshape(a.shape),)

        return Tensor._make(out_data, (a,), backward)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        a = self
        out_data = a.data.transpose(axes)
        inverse = np.argsort(axes)

        def backward(g: np.ndarray):
            return (g.transpose(inverse),)

        return Tensor._make(out_data, (a,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def flatten(self, start_dim: int = 1) -> "Tensor":
        lead = self.shape[:start_dim]
        return self.reshape(lead + (-1,))

    def __getitem__(self, idx) -> "Tensor":
        a = self
        out_data = a.data[idx]

        def backward(g: np.ndarray):
            full = np.zeros_like(a.data, dtype=g.dtype)
            np.add.at(full, idx, g)
            return (full,)

        return Tensor._make(out_data, (a,), backward)

    def pad2d(self, pad: int) -> "Tensor":
        """Zero-pad the last two (spatial) dims by ``pad`` on each side."""
        if pad == 0:
            return self
        a = self
        widths = [(0, 0)] * (a.ndim - 2) + [(pad, pad), (pad, pad)]
        out_data = np.pad(a.data, widths)

        def backward(g: np.ndarray):
            sl = [slice(None)] * (a.ndim - 2) + [
                slice(pad, -pad),
                slice(pad, -pad),
            ]
            return (g[tuple(sl)],)

        return Tensor._make(out_data, (a,), backward)

    # ------------------------------------------------------------------
    # Comparison helpers (no grad)
    # ------------------------------------------------------------------
    def argmax(self, axis=None) -> np.ndarray:
        return self.data.argmax(axis=axis)

    def __eq__(self, other):  # type: ignore[override]
        other = other.data if isinstance(other, Tensor) else other
        return self.data == other

    def __hash__(self) -> int:
        return id(self)


def as_tensor(value: ArrayLike) -> Tensor:
    """Coerce ``value`` to a :class:`Tensor` (no copy when already one)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


def cat(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(g: np.ndarray):
        grads = []
        for i, t in enumerate(tensors):
            sl = [slice(None)] * g.ndim
            sl[axis] = slice(offsets[i], offsets[i + 1])
            grads.append(g[tuple(sl)])
        return tuple(grads)

    return Tensor._make(out_data, tensors, backward)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` with gradient support."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(g: np.ndarray):
        parts = np.split(g, len(tensors), axis=axis)
        return tuple(np.squeeze(p, axis=axis) for p in parts)

    return Tensor._make(out_data, tensors, backward)
