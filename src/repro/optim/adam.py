"""Adam optimizer (Kingma & Ba 2015).

The paper's CIFAR-10 fine-tuning setup (Appendix C.2) is Adam with a fixed
learning rate of 3e-4; the Figure 8 pretrained checkpoints use Adam with
lr 1e-3 ("Weights A") and 1e-4 ("Weights B").
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from ..nn import Parameter
from .base import Optimizer

__all__ = ["Adam"]


class Adam(Optimizer):
    """Adam with bias-corrected first/second moment estimates."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: List[Optional[np.ndarray]] = [None] * len(self.params)
        self._v: List[Optional[np.ndarray]] = [None] * len(self.params)
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1**self._t
        bias2 = 1.0 - b2**self._t
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            m, v = self._m[i], self._v[i]
            if m is None:
                m = np.zeros_like(p.data)
                v = np.zeros_like(p.data)
                self._m[i], self._v[i] = m, v
            m *= b1
            m += (1 - b1) * g
            v *= b2
            v += (1 - b2) * (g * g)
            m_hat = m / bias1
            v_hat = v / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
        self._post_step()
