"""Optimizer base class with post-step hooks (used for mask reapplication).

ShrinkBench semantics: once a model is pruned, masks are fixed; fine-tuning
must not resurrect pruned weights.  Optimizers therefore expose
``add_post_step_hook``, which the pruning ``MaskRegistry`` uses to re-zero
masked entries after every parameter update (momentum and weight decay could
otherwise leak mass back into pruned coordinates).
"""

from __future__ import annotations

from typing import Callable, Iterable, List

from ..nn import Parameter

__all__ = ["Optimizer"]


class Optimizer:
    """Base optimizer: holds parameters, lr, and post-step hooks."""

    def __init__(self, params: Iterable[Parameter], lr: float) -> None:
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer got an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr
        self._post_step_hooks: List[Callable[[], None]] = []

    def add_post_step_hook(self, hook: Callable[[], None]) -> None:
        """Register a callable invoked after every :meth:`step`."""
        self._post_step_hooks.append(hook)

    def _post_step(self) -> None:
        for hook in self._post_step_hooks:
            hook()

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError
