"""Validation-accuracy early stopping.

Appendix C.2 of the paper: "Early stopping is implemented during finetuning.
Thus if the validation accuracy repeatedly decreases after some point we stop
the finetuning process to prevent overfitting."  This helper tracks the best
validation accuracy and stops after ``patience`` consecutive non-improving
epochs, restoring nothing (the caller may snapshot best weights).
"""

from __future__ import annotations

from typing import Optional

__all__ = ["EarlyStopping"]


class EarlyStopping:
    """Stop when a monitored metric fails to improve ``patience`` times."""

    def __init__(self, patience: int = 5, min_delta: float = 0.0) -> None:
        if patience < 1:
            raise ValueError("patience must be >= 1")
        self.patience = patience
        self.min_delta = min_delta
        self.best: Optional[float] = None
        self.best_epoch: int = -1
        self.num_bad_epochs = 0
        self.stopped = False

    def update(self, metric: float, epoch: int) -> bool:
        """Record an epoch's metric; return True if training should stop."""
        if self.best is None or metric > self.best + self.min_delta:
            self.best = metric
            self.best_epoch = epoch
            self.num_bad_epochs = 0
        else:
            self.num_bad_epochs += 1
            if self.num_bad_epochs >= self.patience:
                self.stopped = True
        return self.stopped
