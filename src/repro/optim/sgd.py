"""Stochastic gradient descent with (Nesterov) momentum and weight decay.

The paper's ImageNet fine-tuning setup (Appendix C.2) is SGD with Nesterov
momentum 0.9 at a fixed learning rate of 1e-3; this implementation follows
PyTorch's update rule so those hyperparameters mean the same thing here.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from ..kernels import active_backend
from ..nn import Parameter
from .base import Optimizer

__all__ = ["SGD"]


class SGD(Optimizer):
    """SGD with optional momentum, Nesterov acceleration, weight decay."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 0.1,
        momentum: float = 0.0,
        nesterov: bool = False,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        if nesterov and momentum <= 0.0:
            raise ValueError("Nesterov momentum requires momentum > 0")
        self.momentum = momentum
        self.nesterov = nesterov
        self.weight_decay = weight_decay
        self._velocity: List[Optional[np.ndarray]] = [None] * len(self.params)

    def step(self) -> None:
        kb = active_backend()
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            self._velocity[i] = kb.sgd_update(
                p.data,
                p.grad,
                self._velocity[i],
                self.lr,
                self.momentum,
                self.nesterov,
                self.weight_decay,
            )
        self._post_step()
