"""Optimizers, LR schedules and early stopping (the ``torch.optim`` substitute).

``OPTIMIZERS`` is the shared :class:`repro.registry.Registry` of optimizer
builders.  Every registered builder has the normalized signature
``(params, lr=..., momentum=..., nesterov=..., weight_decay=...)`` so that
an :class:`~repro.experiment.config.OptimizerConfig` can select one by name;
builders ignore hyperparameters their update rule doesn't use (Adam drops
``momentum``/``nesterov``, matching the historical behavior).
"""

from .base import Optimizer
from .sgd import SGD
from .adam import Adam
from .lr_scheduler import CosineAnnealingLR, FixedLR, LRScheduler, StepLR
from .early_stopping import EarlyStopping
from ..registry import Registry

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "OPTIMIZERS",
    "LRScheduler",
    "FixedLR",
    "StepLR",
    "CosineAnnealingLR",
    "EarlyStopping",
]

OPTIMIZERS = Registry("optimizer")


@OPTIMIZERS.register("sgd")
def _build_sgd(params, lr=0.1, momentum=0.0, nesterov=False, weight_decay=0.0):
    return SGD(
        params, lr=lr, momentum=momentum, nesterov=nesterov, weight_decay=weight_decay
    )


@OPTIMIZERS.register("adam")
def _build_adam(params, lr=1e-3, momentum=0.0, nesterov=False, weight_decay=0.0):
    return Adam(params, lr=lr, weight_decay=weight_decay)
