"""Optimizers, LR schedules and early stopping (the ``torch.optim`` substitute)."""

from .base import Optimizer
from .sgd import SGD
from .adam import Adam
from .lr_scheduler import CosineAnnealingLR, FixedLR, LRScheduler, StepLR
from .early_stopping import EarlyStopping

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "LRScheduler",
    "FixedLR",
    "StepLR",
    "CosineAnnealingLR",
    "EarlyStopping",
]
