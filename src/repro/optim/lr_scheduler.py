"""Learning-rate schedules.

The paper's reported fine-tuning runs all use a *fixed* schedule
(Appendix C.2), provided here as :class:`FixedLR`; step and cosine schedules
are included because pretraining recipes commonly need them and they are
listed among the confounding variables the paper calls out (§4.5).
"""

from __future__ import annotations

import math

from .base import Optimizer

__all__ = ["LRScheduler", "FixedLR", "StepLR", "CosineAnnealingLR"]


class LRScheduler:
    """Base: mutate ``optimizer.lr`` once per epoch via :meth:`step`."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def get_lr(self) -> float:
        raise NotImplementedError

    def step(self) -> None:
        self.epoch += 1
        self.optimizer.lr = self.get_lr()


class FixedLR(LRScheduler):
    """Constant learning rate (the paper's fine-tuning schedule)."""

    def get_lr(self) -> float:
        return self.base_lr


class StepLR(LRScheduler):
    """Decay lr by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        super().__init__(optimizer)
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self) -> float:
        return self.base_lr * self.gamma ** (self.epoch // self.step_size)


class CosineAnnealingLR(LRScheduler):
    """Cosine decay from base lr to ``eta_min`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0):
        super().__init__(optimizer)
        if t_max <= 0:
            raise ValueError("t_max must be positive")
        self.t_max = t_max
        self.eta_min = eta_min

    def get_lr(self) -> float:
        frac = min(self.epoch, self.t_max) / self.t_max
        return self.eta_min + 0.5 * (self.base_lr - self.eta_min) * (
            1 + math.cos(math.pi * frac)
        )
