"""repro — reproduction of "What is the State of Neural Network Pruning?"
(Blalock, Gonzalez Ortiz, Frankle & Guttag, MLSys 2020).

Run ``python -m repro`` for the command line (execute declarative sweep
configs, list registered components, maintain the result cache).

Top-level packages:

* :mod:`repro.registry` — the shared component Registry (models, datasets,
  strategies, schedules, optimizers, executors).
* :mod:`repro.autograd` — pure-NumPy reverse-mode autodiff engine.
* :mod:`repro.nn` — layers and module system.
* :mod:`repro.optim` — SGD/Adam, LR schedules, early stopping.
* :mod:`repro.data` — datasets, loaders, synthetic CIFAR/ImageNet/MNIST.
* :mod:`repro.models` — LeNet/VGG/ResNet/MobileNet zoo.
* :mod:`repro.pruning` — the ShrinkBench core: masks, scores, strategies.
* :mod:`repro.metrics` — size, FLOPs, compression ratio, speedup, accuracy.
* :mod:`repro.experiment` — train → prune → fine-tune → evaluate harness.
* :mod:`repro.analysis` — columnar ResultFrame queries + the §6 standard
  report (``python -m repro report``).
* :mod:`repro.perf` — microbenchmark harness + curated hot-path suite
  (``python -m repro bench``).
* :mod:`repro.meta` — the 81-paper corpus meta-analysis (Figures 1-5, Table 1).
* :mod:`repro.plotting` — tradeoff curves, ASCII plots, CSV export.

See ``README.md`` for the CLI tour and ``docs/ARCHITECTURE.md`` for the
layer-by-layer narrative.
"""

from .utils.threads import configure_blas_threads_from_env as _configure_blas

# Pin the BLAS pool before any heavy numpy work (see repro.utils.threads).
_configure_blas()

__version__ = "1.1.0"

__all__ = ["__version__"]
