"""The :class:`ColumnStore` implementation (see package docstring).

On-disk layout
--------------
::

    <store>/
      manifest.json               atomic: the store IS this file's contents
      .lock                       writer mutex (O_EXCL create; advisory)
      segments/
        seg-00000003-9aa0c3f1/    seal order + first 8 hex of fingerprint
          top1.npy                float64/int64 columns: raw npy, mmap-read
          strategy.codes.npy      object columns: int32 codes into ...
          strategy.values.json    ... a deduplicated strict-JSON value pool
          keys.npy                optional <U16 spec hashes (row identity)
        .tmp-<pid>-<seq>/         in-flight write; never read, swept by compact

Writers serialize on ``.lock`` and seal a segment with ``rename`` before
rewriting the manifest (atomic temp + ``os.replace``), so readers — which
take no lock — either see the old manifest or the new one, never a torn
segment: a crash mid-append leaves an unreferenced directory that
``compact`` sweeps.  Readers trust only the manifest; anything on disk it
does not name does not exist.

Row identity and supersession: a segment written with ``keys`` (spec
hashes) is *keyed*.  When every segment is keyed, ``to_frame()``
deduplicates by key with the last-sealed occurrence winning — re-running a
cell supersedes its old row exactly like a cache overwrite — and
``compact`` makes the supersession physical by rewriting the survivors as
one segment and deleting the rest.

Zone maps: each manifest segment entry may carry a ``"stats"`` mapping —
per-column min/max/NaN-count for numeric columns, null count plus (small)
distinct value pool for dict-encoded object columns.  ``to_frame(columns=
..., where=...)`` uses them to skip whole segments whose stats prove no
row can match, and loads only the referenced column files.  Stats are
optional (legacy manifests keep loading, just without pruning) and are
backfilled by ``compact`` or ``analyze``; they are deliberately excluded
from the manifest fingerprint so a backfill never changes row identity.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.frame import ResultFrame, is_queue_dir
from ..utils import (
    atomic_write_text,
    canonical_json,
    restore_nonfinite,
    sanitize_nonfinite,
)

__all__ = [
    "STORE_SCHEMA_VERSION",
    "ZONE_MAP_MAX_VALUES",
    "ColumnStore",
    "StoreError",
    "StoreLockTimeout",
    "is_store_dir",
]

#: bump when the manifest/segment layout changes incompatibly; readers
#: refuse (loudly — a store is one artifact, not a cache of many) rather
#: than skip, because silently dropping segments would corrupt reports.
STORE_SCHEMA_VERSION = 1

_MANIFEST = "manifest.json"
_SEGMENTS = "segments"
_NUMERIC_KINDS = ("int64", "float64")

#: object-column zone maps record the segment's distinct value pool only
#: up to this size — beyond it the pool stops being selective and would
#: bloat the manifest, so only the null count is kept.
ZONE_MAP_MAX_VALUES = 64


class StoreError(RuntimeError):
    """A store directory violates the documented layout/schema."""


class StoreLockTimeout(StoreError, TimeoutError):
    """Could not acquire the writer lock within the timeout."""


def is_store_dir(path) -> bool:
    """True when ``path`` has the binary-store layout (a manifest file).

    The single definition of "looks like a store", mirrored on
    :func:`repro.analysis.frame.is_queue_dir` — shared by ``load_frame``'s
    sniffing, the results server and the CLI guards.
    """
    return (Path(path) / _MANIFEST).is_file()


def _column_file_names(name: str, kind: str) -> List[str]:
    if kind in _NUMERIC_KINDS:
        return [f"{name}.npy"]
    return [f"{name}.codes.npy", f"{name}.values.json"]


def _check_column_name(name: str) -> str:
    # column names become file names; the cache/frame vocabulary is
    # [a-z0-9_] and "keys" is reserved for the identity file
    if not name or not name.replace("_", "a").isalnum() or name == "keys":
        raise StoreError(f"column name {name!r} is not storable")
    return name


def _encode_object_column(arr: np.ndarray) -> Tuple[np.ndarray, List[Any]]:
    """Dictionary-encode an object column: int32 codes + strict-JSON pool."""
    codes = np.empty(len(arr), dtype=np.int32)
    pool: List[Any] = []
    index: Dict[Any, int] = {}
    for i, value in enumerate(arr):
        safe = sanitize_nonfinite(value)
        if isinstance(safe, str):
            key: Any = ("s", safe)
        else:
            key = ("j", json.dumps(safe, sort_keys=True, default=str))
        code = index.get(key)
        if code is None:
            code = len(pool)
            index[key] = code
            pool.append(safe)
        codes[i] = code
    return codes, pool


def _decode_object_column(codes: np.ndarray, pool: List[Any]) -> np.ndarray:
    values = np.empty(len(pool), dtype=object)
    values[:] = [restore_nonfinite(v) for v in pool]
    return values[np.asarray(codes)]


def _to_object(arr: np.ndarray) -> np.ndarray:
    out = np.empty(len(arr), dtype=object)
    out[:] = arr.tolist()
    return out


# -- zone-map statistics ---------------------------------------------------
def _json_bound(value: Any) -> Any:
    """A numeric bound as a manifest-storable JSON value.

    The manifest is written with ``allow_nan=False``, so non-finite bounds
    use the same sentinel convention as result entries (jsonio).
    """
    if isinstance(value, np.integer):
        return int(value)
    return sanitize_nonfinite(float(value))


def _numeric_stats(arr: np.ndarray) -> Dict[str, Any]:
    """Zone map for one numeric segment column: min/max over non-NaN rows
    (None when every row is NaN) plus the NaN count."""
    arr = np.asarray(arr)
    nulls = int(np.isnan(arr).sum()) if arr.dtype.kind == "f" else 0
    if nulls == len(arr) or not len(arr):
        lo: Any = None
        hi: Any = None
    elif nulls:
        lo, hi = _json_bound(np.nanmin(arr)), _json_bound(np.nanmax(arr))
    else:
        lo, hi = _json_bound(arr.min()), _json_bound(arr.max())
    return {"min": lo, "max": hi, "nulls": nulls}


def _object_stats(codes: np.ndarray, pool: List[Any]) -> Dict[str, Any]:
    """Zone map for one dict-encoded object column: null (None) row count
    plus, for small pools, the distinct sanitized value pool itself."""
    none_codes = [i for i, value in enumerate(pool) if value is None]
    nulls = int(np.isin(np.asarray(codes), none_codes).sum()) if none_codes else 0
    stats: Dict[str, Any] = {"nulls": nulls}
    if len(pool) <= ZONE_MAP_MAX_VALUES:
        # round-trip through the exact dialect values.json uses, so the
        # manifest pool is bit-identical to what _load_segment will decode
        stats["values"] = json.loads(
            json.dumps(pool, allow_nan=False, default=str)
        )
    return stats


def _normalize_condition(cond: Any) -> Optional[Tuple[str, Any]]:
    """``(op, value)`` for a frame.mask-style condition, or None when the
    condition's shape could make the full scan raise (planner must keep)."""
    if isinstance(cond, dict):
        op = cond.get("op")
        if set(cond) != {"op", "value"} or not isinstance(op, str):
            return None
        return op, cond.get("value")
    if isinstance(cond, (list, tuple, set, frozenset, np.ndarray)):
        return "in", list(cond)
    return "==", cond


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float, np.integer, np.floating))


def _plain_members(value: Any) -> Optional[List[Any]]:
    """Membership list as plain scalars, or None when it contains anything
    the full-scan membership test could choke on (keep the segment)."""
    if not isinstance(value, (list, tuple, set, frozenset, np.ndarray)):
        return None
    members = list(value)
    for member in members:
        if not isinstance(member, (int, float, str, bool, type(None))):
            return None
    return members


def _numeric_may_match(cond: Any, stats: Dict[str, Any]) -> bool:
    """Conservative zone-map test for one condition against one numeric
    segment column: False only when *provably* no row can match.

    Mirrors ``ResultFrame._op_mask`` semantics exactly: NaN rows compare
    False under ==/</<=/>/>=/in and True under !=/not-in; conditions whose
    evaluation could raise on real data always keep the segment so the
    full-scan error surfaces.
    """
    normalized = _normalize_condition(cond)
    if normalized is None:
        return True
    op, value = normalized
    lo = restore_nonfinite(stats.get("min"))
    hi = restore_nonfinite(stats.get("max"))
    nulls = stats.get("nulls", 0)
    has_values = lo is not None and hi is not None
    if op == "==":
        if not _is_number(value) or value != value:
            return False  # non-numeric / NaN never equals a numeric row
        return has_values and lo <= value <= hi
    if op == "!=":
        # only a constant segment with no NaN rows can fail to match
        return not (
            nulls == 0
            and has_values
            and _is_number(value)
            and value == value
            and lo == hi == value
        )
    if op in ("<", "<=", ">", ">="):
        if not _is_number(value):
            return True  # full scan may raise (e.g. None/str bound): keep
        if value != value or not has_values:
            return False  # NaN bound or all-NaN column: comparisons are False
        if op == "<":
            return lo < value
        if op == "<=":
            return lo <= value
        if op == ">":
            return hi > value
        return hi >= value
    if op == "in":
        members = _plain_members(value)
        if members is None:
            return True
        if not has_values:
            return False
        return any(
            _is_number(m) and m == m and lo <= m <= hi for m in members
        )
    if op == "not-in":
        members = _plain_members(value)
        if members is None:
            return True
        if nulls > 0 or not has_values or lo != hi:
            return True
        return not any(_is_number(m) and m == lo for m in members)
    return True  # unknown op: the full scan will raise; keep the segment


def _values_may_match(name: str, cond: Any, values: np.ndarray) -> bool:
    """Evaluate one condition against a small value array through the real
    mask machinery — exact semantics for every op; any error keeps the
    segment so the full scan raises it instead."""
    if not len(values):
        return False
    try:
        return bool(ResultFrame({name: values}).mask(**{name: cond}).any())
    except Exception:
        return True


def _pool_may_match(name: str, cond: Any, stats: Dict[str, Any]) -> bool:
    """Zone-map test for an object column: every pool value has at least
    one row, so "some pool value matches" == "some row matches"."""
    pool = stats.get("values")
    if pool is None:
        return True  # pool too large to record: cannot prune
    values = np.empty(len(pool), dtype=object)
    values[:] = [restore_nonfinite(v) for v in pool]
    return _values_may_match(name, cond, values)


def _fill_may_match(name: str, cond: Any, target: str) -> bool:
    """Whether the union fill value (NaN / None) of a column absent from a
    segment can satisfy the condition."""
    if target == "object":
        fill = np.empty(1, dtype=object)
    else:
        fill = np.full(1, np.nan)
    return _values_may_match(name, cond, fill)


class ColumnStore:
    """Append-only columnar result store (layout in the module docstring).

    Usage::

        store = ColumnStore("artifacts/store")
        store.ingest(cache_dir)          # chunked merge from JSON artifacts
        frame = store.to_frame()         # mmap-backed ResultFrame
        store.compact()                  # coalesce segments, drop superseded
    """

    #: a writer lock older than this is presumed crashed and is broken
    LOCK_STALE_SECONDS = 300.0

    def __init__(self, root, lock_timeout: float = 30.0) -> None:
        self.root = Path(root)
        self.lock_timeout = float(lock_timeout)

    # -- paths / manifest -------------------------------------------------
    @property
    def manifest_path(self) -> Path:
        return self.root / _MANIFEST

    @property
    def segments_dir(self) -> Path:
        return self.root / _SEGMENTS

    def exists(self) -> bool:
        return self.manifest_path.is_file()

    def _read_manifest(self) -> Optional[Dict[str, Any]]:
        try:
            manifest = json.loads(self.manifest_path.read_text())
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError) as exc:
            raise StoreError(f"unreadable store manifest {self.manifest_path}: {exc}")
        if not isinstance(manifest, dict) or not isinstance(
            manifest.get("segments"), list
        ):
            raise StoreError(f"{self.manifest_path} is not a store manifest")
        if manifest.get("schema") != STORE_SCHEMA_VERSION:
            raise StoreError(
                f"store {self.root} has schema {manifest.get('schema')!r}, "
                f"this build reads {STORE_SCHEMA_VERSION}"
            )
        return manifest

    def _require_manifest(self) -> Dict[str, Any]:
        manifest = self._read_manifest()
        if manifest is None:
            raise FileNotFoundError(f"no store at {self.root} (missing {_MANIFEST})")
        return manifest

    def _empty_manifest(self) -> Dict[str, Any]:
        return {
            "schema": STORE_SCHEMA_VERSION,
            "fingerprint": "",
            "rows": 0,
            "columns": [],
            "segments": [],
        }

    def _write_manifest(self, manifest: Dict[str, Any]) -> None:
        manifest["rows"] = sum(s["rows"] for s in manifest["segments"])
        manifest["fingerprint"] = hashlib.sha256(
            canonical_json(
                {
                    "schema": manifest["schema"],
                    "columns": manifest["columns"],
                    "segments": [
                        [s["name"], s["rows"], s["fingerprint"]]
                        for s in manifest["segments"]
                    ],
                }
            ).encode()
        ).hexdigest()
        atomic_write_text(
            self.manifest_path, json.dumps(manifest, indent=1, allow_nan=False)
        )

    def fingerprint(self) -> str:
        """The manifest fingerprint: changes iff the stored rows change."""
        return self._require_manifest()["fingerprint"]

    def rows(self) -> int:
        return self._require_manifest()["rows"]

    # -- writer lock ------------------------------------------------------
    def _lock_path(self) -> Path:
        return self.root / ".lock"

    def _acquire_lock(self) -> None:
        lock = self._lock_path()
        deadline = time.monotonic() + self.lock_timeout
        while True:
            try:
                fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                os.write(fd, f"{os.getpid()}\n".encode())
                os.close(fd)
                return
            except FileExistsError:
                pass
            try:
                age = time.time() - lock.stat().st_mtime
            except OSError:
                continue  # holder just released; retry immediately
            if age > self.LOCK_STALE_SECONDS:
                lock.unlink(missing_ok=True)  # crashed writer; break the lock
                continue
            if time.monotonic() >= deadline:
                raise StoreLockTimeout(
                    f"store {self.root} writer lock held for {age:.0f}s "
                    f"(waited {self.lock_timeout:.0f}s); remove {lock} if the "
                    "holder is dead"
                )
            time.sleep(0.05)

    def _release_lock(self) -> None:
        self._lock_path().unlink(missing_ok=True)

    # -- append -----------------------------------------------------------
    def append_frame(
        self, frame: ResultFrame, keys: Optional[Sequence[str]] = None
    ) -> Optional[Dict[str, Any]]:
        """Seal ``frame``'s rows as one new segment; returns its manifest
        entry (None for an empty frame).

        ``keys`` (one spec hash per row) makes the segment *keyed* — see
        the module docstring for the supersession semantics.  Column values
        must be JSON-native; appends are serialized on the writer lock and
        the manifest is rewritten only after the segment is sealed, so a
        crash can never publish a torn segment.
        """
        if keys is not None and len(keys) != len(frame):
            raise ValueError(
                f"got {len(keys)} keys for {len(frame)} rows"
            )
        if not len(frame):
            return None
        columns = {name: frame[name] for name in frame.columns}
        self.root.mkdir(parents=True, exist_ok=True)
        self._acquire_lock()
        try:
            manifest = self._read_manifest() or self._empty_manifest()
            entry = self._seal_segment(manifest, columns, keys)
            manifest["segments"].append(entry)
            for name in columns:
                if name not in manifest["columns"]:
                    manifest["columns"].append(name)
            self._write_manifest(manifest)
        finally:
            self._release_lock()
        return entry

    def append_rows(
        self, rows: Iterable[Any], keys: Optional[Sequence[str]] = None
    ) -> Optional[Dict[str, Any]]:
        """``append_frame`` over result rows (:class:`PruningResult` or
        plain record dicts)."""
        rows = list(rows)
        if rows and hasattr(rows[0], "to_dict"):
            frame = ResultFrame.from_results(rows)
        else:
            frame = ResultFrame.from_records(rows)
        return self.append_frame(frame, keys=keys)

    def _next_seq(self, manifest: Dict[str, Any]) -> int:
        seqs = [0]
        for entry in manifest["segments"]:
            try:
                seqs.append(int(entry["name"].split("-")[1]) + 1)
            except (IndexError, ValueError):
                pass
        if self.segments_dir.is_dir():
            # also step past unreferenced (crashed/stray) directories so a
            # recovered writer can never collide with one
            for path in self.segments_dir.glob("seg-*"):
                try:
                    seqs.append(int(path.name.split("-")[1]) + 1)
                except (IndexError, ValueError):
                    pass
        return max(seqs)

    def _seal_segment(
        self,
        manifest: Dict[str, Any],
        columns: Dict[str, np.ndarray],
        keys: Optional[Sequence[str]],
    ) -> Dict[str, Any]:
        seq = self._next_seq(manifest)
        tmp = self.segments_dir / f".tmp-{os.getpid()}-{seq}"
        tmp.mkdir(parents=True)
        col_kinds: Dict[str, str] = {}
        col_stats: Dict[str, Dict[str, Any]] = {}
        for name, arr in columns.items():
            _check_column_name(name)
            col_kinds[name], col_stats[name] = self._write_column(tmp, name, arr)
        if keys is not None:
            np.save(tmp / "keys.npy", np.asarray(list(keys), dtype=np.str_))
        fingerprint = self._fingerprint_segment(tmp)
        name = f"seg-{seq:08d}-{fingerprint[:8]}"
        tmp.rename(self.segments_dir / name)
        n_rows = len(next(iter(columns.values()))) if columns else 0
        return {
            "name": name,
            "rows": n_rows,
            "keyed": keys is not None,
            "fingerprint": fingerprint,
            "columns": col_kinds,
            "stats": col_stats,
        }

    @staticmethod
    def _write_column(
        seg_dir: Path, name: str, arr: np.ndarray
    ) -> Tuple[str, Dict[str, Any]]:
        kind = arr.dtype.kind
        if kind in "iu":
            data = np.ascontiguousarray(arr, np.int64)
            np.save(seg_dir / f"{name}.npy", data)
            return "int64", _numeric_stats(data)
        if kind == "f":
            data = np.ascontiguousarray(arr, np.float64)
            np.save(seg_dir / f"{name}.npy", data)
            return "float64", _numeric_stats(data)
        codes, pool = _encode_object_column(np.asarray(arr, dtype=object))
        np.save(seg_dir / f"{name}.codes.npy", codes)
        (seg_dir / f"{name}.values.json").write_text(
            json.dumps(pool, allow_nan=False, default=str)
        )
        return "object", _object_stats(codes, pool)

    @staticmethod
    def _fingerprint_segment(seg_dir: Path) -> str:
        digest = hashlib.sha256()
        for path in sorted(seg_dir.iterdir()):
            data = path.read_bytes()
            digest.update(f"{path.name}:{len(data)}:".encode())
            digest.update(data)
        return digest.hexdigest()

    # -- read -------------------------------------------------------------
    def _load_segment(
        self, entry: Dict[str, Any], subset: Optional[Sequence[str]] = None
    ) -> Dict[str, np.ndarray]:
        seg_dir = self.segments_dir / entry["name"]
        out: Dict[str, np.ndarray] = {}
        for name, kind in entry["columns"].items():
            if subset is not None and name not in subset:
                continue
            if kind in _NUMERIC_KINDS:
                out[name] = np.load(seg_dir / f"{name}.npy", mmap_mode="r")
            elif kind == "object":
                codes = np.load(seg_dir / f"{name}.codes.npy")
                pool = json.loads((seg_dir / f"{name}.values.json").read_text())
                out[name] = _decode_object_column(codes, pool)
            else:
                raise StoreError(
                    f"segment {entry['name']} column {name!r} has unknown "
                    f"kind {kind!r}"
                )
        return out

    def _load_segment_raw(
        self, entry: Dict[str, Any], subset: Sequence[str]
    ) -> Dict[str, Tuple[str, Any, Any]]:
        """Undecoded segment columns for the incremental aggregation path:
        ``{"name": ("numeric", array, None) | ("object", codes, pool)}``."""
        seg_dir = self.segments_dir / entry["name"]
        out: Dict[str, Tuple[str, Any, Any]] = {}
        for name, kind in entry["columns"].items():
            if name not in subset:
                continue
            if kind in _NUMERIC_KINDS:
                out[name] = (
                    "numeric",
                    np.load(seg_dir / f"{name}.npy", mmap_mode="r"),
                    None,
                )
            elif kind == "object":
                codes = np.load(seg_dir / f"{name}.codes.npy")
                pool = json.loads((seg_dir / f"{name}.values.json").read_text())
                out[name] = ("object", codes, pool)
            else:
                raise StoreError(
                    f"segment {entry['name']} column {name!r} has unknown "
                    f"kind {kind!r}"
                )
        return out

    def _segment_keys(self, entry: Dict[str, Any]) -> np.ndarray:
        return np.load(self.segments_dir / entry["name"] / "keys.npy")

    def to_frame(
        self,
        columns: Optional[Sequence[str]] = None,
        where: Optional[Dict[str, Any]] = None,
        manifest: Optional[Dict[str, Any]] = None,
    ) -> ResultFrame:
        """The store (or a projected/filtered slice of it) as one
        :class:`ResultFrame`.

        Numeric columns of a single-segment store stay memory-mapped
        (zero-copy); multi-segment stores concatenate.  When every segment
        is keyed, rows are deduplicated by key — last sealed wins — so a
        re-ingested/re-run cell supersedes its old row without a compact.

        ``columns`` restricts the load to the named columns (projection —
        unreferenced column files are never opened).  ``where`` takes
        :meth:`ResultFrame.mask`-style conditions (scalar equality, list
        membership, ``{"op": ..., "value": ...}``) and is the pushdown
        read path: segments whose zone-map statistics prove no row can
        match are skipped without touching their data files, and surviving
        segments are masked with the exact ``mask`` semantics, so the
        result is byte-identical to ``to_frame().filter(**where)``
        projected to ``columns``.  Callable conditions cannot be pushed
        down — filter the materialized frame instead.  ``manifest`` pins a
        previously read manifest (the server uses this to keep one
        snapshot's reads self-consistent).
        """
        frame, _ = self._load_frame(columns=columns, where=where, manifest=manifest)
        return frame

    def keys(self) -> set:
        """Spec hashes present in keyed segments (for idempotent ingest)."""
        out: set = set()
        for entry in self._require_manifest()["segments"]:
            if entry.get("keyed"):
                out.update(self._segment_keys(entry).tolist())
        return out

    @staticmethod
    def _union_kind(kinds: Sequence[Optional[str]]) -> str:
        """The dtype a column takes in the union frame, given its kind in
        each segment (None where the segment lacks the column)."""
        if "object" in kinds:
            return "object"
        if "float64" in kinds or None in kinds:
            return "float64"  # missing segments fill with NaN
        return "int64"

    @staticmethod
    def _empty_column(target: str) -> np.ndarray:
        if target == "object":
            return np.empty(0, dtype=object)
        return np.empty(0, dtype=np.int64 if target == "int64" else np.float64)

    def _check_where(
        self, where: Optional[Dict[str, Any]], names: Sequence[str]
    ) -> Optional[Dict[str, Any]]:
        if not where:
            return None
        for name, cond in where.items():
            if name not in names:
                raise KeyError(
                    f"unknown filter column {name!r}; available: {list(names)}"
                )
            if callable(cond):
                raise ValueError(
                    f"filter for column {name!r} is a callable; only "
                    "mask-style conditions push down — use "
                    "to_frame().filter(...) instead"
                )
        return dict(where)

    def _segment_may_match(
        self,
        entry: Dict[str, Any],
        where: Dict[str, Any],
        targets: Dict[str, str],
    ) -> bool:
        """Conservative planner predicate: False only when the segment's
        zone maps *prove* no row can satisfy every condition.  Segments
        from legacy (pre-stats) manifests always load."""
        stats = entry.get("stats") or {}
        for name, cond in where.items():
            kind = entry["columns"].get(name)
            if kind is None:
                # the column is absent here: every row holds the union fill
                if not _fill_may_match(name, cond, targets[name]):
                    return False
                continue
            col_stats = stats.get(name)
            if not isinstance(col_stats, dict):
                continue  # no stats recorded for this column: cannot prune
            if kind == "object":
                if not _pool_may_match(name, cond, col_stats):
                    return False
            elif not _numeric_may_match(cond, col_stats):
                return False
        return True

    def scan_plan(
        self,
        where: Optional[Dict[str, Any]] = None,
        columns: Optional[Sequence[str]] = None,
        manifest: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """What a pushdown read would touch, without touching it.

        Returns ``{"segments_total", "segments_selected", "rows_total",
        "rows_selected", "columns_loaded"}`` — the observable planner
        decision, used by tests and ``repro store stats`` to prove a skip
        actually skips.
        """
        manifest = manifest or self._require_manifest()
        segments = manifest["segments"]
        names = list(manifest["columns"])
        where = self._check_where(where, names)
        if columns is None:
            needed = list(names)
        else:
            needed = [self._check_column(name, names) for name in columns]
            for name in where or ():
                if name not in needed:
                    needed.append(name)
        targets = {
            name: self._union_kind([e["columns"].get(name) for e in segments])
            for name in needed
        }
        chosen = [
            entry
            for entry in segments
            if not where or self._segment_may_match(entry, where, targets)
        ]
        return {
            "segments_total": len(segments),
            "segments_selected": len(chosen),
            "rows_total": sum(e["rows"] for e in segments),
            "rows_selected": sum(e["rows"] for e in chosen),
            "columns_loaded": needed,
        }

    @staticmethod
    def _check_column(name: str, names: Sequence[str]) -> str:
        if name not in names:
            raise KeyError(f"unknown column {name!r}; available: {list(names)}")
        return name

    def _dedup_keep_masks(
        self, segments: Sequence[Dict[str, Any]]
    ) -> Tuple[Optional[List[np.ndarray]], Optional[List[np.ndarray]]]:
        """Global key-supersession masks, one boolean mask per segment.

        Keys are loaded from *every* segment (they are small) even when the
        planner skips a segment's data, because a superseded row in a loaded
        segment may be shadowed by a newer generation in a skipped one.
        Returns ``(key_parts, keep_masks)`` — ``(None, None)`` when any
        segment is unkeyed, ``(parts, None)`` when no key repeats.
        """
        if not segments or not all(e.get("keyed") for e in segments):
            return None, None
        parts = [self._segment_keys(entry) for entry in segments]
        keys = parts[0] if len(parts) == 1 else np.concatenate(parts)
        keep = self._last_occurrence(keys)
        if keep is None:
            return parts, None
        keep_all = np.zeros(len(keys), dtype=bool)
        keep_all[keep] = True
        masks: List[np.ndarray] = []
        offset = 0
        for entry in segments:
            masks.append(keep_all[offset : offset + entry["rows"]])
            offset += entry["rows"]
        return parts, masks

    def _load_frame(
        self,
        columns: Optional[Sequence[str]] = None,
        where: Optional[Dict[str, Any]] = None,
        manifest: Optional[Dict[str, Any]] = None,
    ) -> Tuple[ResultFrame, Optional[np.ndarray]]:
        manifest = manifest or self._require_manifest()
        segments = manifest["segments"]
        all_names = list(manifest["columns"])
        if columns is None:
            names = all_names
        else:
            names = [self._check_column(name, all_names) for name in columns]
        where = self._check_where(where, all_names)
        if not segments:
            return ResultFrame.from_records([], columns=names), None
        needed = list(names)
        for name in where or ():
            if name not in needed:
                needed.append(name)
        # union dtypes come from ALL segments — a skipped segment still
        # widens int64 to float64, exactly as the full scan would
        targets = {
            name: self._union_kind([e["columns"].get(name) for e in segments])
            for name in needed
        }
        key_parts, keep_masks = self._dedup_keep_masks(segments)
        keyed = key_parts is not None
        col_parts: Dict[str, List[np.ndarray]] = {name: [] for name in names}
        key_out: List[np.ndarray] = []
        for i, entry in enumerate(segments):
            if where and not self._segment_may_match(entry, where, targets):
                continue
            loaded = self._load_segment(entry, subset=needed)
            arrays: Dict[str, np.ndarray] = {}
            for name in needed:
                if name in loaded:
                    arrays[name] = self._cast(loaded[name], targets[name])
                elif targets[name] == "object":
                    arrays[name] = np.empty(entry["rows"], dtype=object)
                else:
                    arrays[name] = np.full(entry["rows"], np.nan, dtype=np.float64)
            mask: Optional[np.ndarray] = None
            if keep_masks is not None:
                mask = keep_masks[i]
            if where:
                row_mask = ResultFrame(arrays).mask(**where)
                mask = row_mask if mask is None else (mask & row_mask)
            for name in names:
                col_parts[name].append(
                    arrays[name] if mask is None else arrays[name][mask]
                )
            if keyed:
                seg_keys = key_parts[i]
                key_out.append(seg_keys if mask is None else seg_keys[mask])
        out_columns: Dict[str, np.ndarray] = {}
        for name in names:
            parts = col_parts[name]
            if not parts:
                out_columns[name] = self._empty_column(targets[name])
            elif len(parts) == 1:
                out_columns[name] = parts[0]
            else:
                out_columns[name] = np.concatenate(parts)
        keys: Optional[np.ndarray] = None
        if keyed:
            if not key_out:
                keys = np.asarray([], dtype=np.str_)
            elif len(key_out) == 1:
                keys = key_out[0]
            else:
                keys = np.concatenate(key_out)
        return ResultFrame(out_columns), keys

    @staticmethod
    def _cast(arr: np.ndarray, target: str) -> np.ndarray:
        if target == "object" and arr.dtype.kind != "O":
            return _to_object(arr)
        if target == "float64" and arr.dtype.kind in "iu":
            return arr.astype(np.float64)
        return arr

    @staticmethod
    def _last_occurrence(keys: np.ndarray) -> Optional[np.ndarray]:
        """Row indices keeping the last occurrence of each key, in original
        order — or None when all keys are already unique."""
        reversed_first = np.unique(keys[::-1], return_index=True)[1]
        if len(reversed_first) == len(keys):
            return None
        return np.sort(len(keys) - 1 - reversed_first)

    # -- ingest -----------------------------------------------------------
    def ingest(
        self,
        source,
        cache_dir=None,
        chunk_rows: int = 65536,
        skip_existing: bool = True,
        progress=None,
    ) -> Dict[str, Any]:
        """Chunked/streaming merge of a JSON artifact into the store.

        ``source`` is sniffed exactly like ``load_frame``: a
        ``results.json`` file, a result-cache directory, or a work-queue
        directory (done cells from its cache — ``cache_dir`` mirrors the
        CLI override — plus quarantined placeholder rows).  Cache and queue
        rows are keyed by spec hash, so with ``skip_existing`` (default)
        re-ingest is idempotent and without it re-runs supersede old rows;
        ``results.json`` rows carry no identity and always append.  Rows
        stream in ``chunk_rows`` batches — a million-row cache never
        materializes in memory.  ``progress`` (a callable taking one
        string) receives a ``chunk i/N (rows)`` line per sealed chunk; N
        counts source candidates, so skipped rows can finish short of it.
        Returns ``{"rows_appended", "rows_skipped", "segments_added",
        "source"}``.
        """
        source = Path(source)
        stats = {
            "rows_appended": 0,
            "rows_skipped": 0,
            "segments_added": 0,
            "source": str(source),
        }
        if chunk_rows < 1:
            raise ValueError(f"chunk_rows must be >= 1, got {chunk_rows}")
        chunks_total = 0

        def flush_frame(frame: ResultFrame, keys: Optional[List[str]]) -> None:
            entry = self.append_frame(frame, keys=keys)
            if entry is not None:
                stats["rows_appended"] += entry["rows"]
                stats["segments_added"] += 1
                if progress is not None:
                    progress(
                        f"chunk {stats['segments_added']}/{chunks_total} "
                        f"({entry['rows']} rows)"
                    )

        if source.is_file():
            frame = ResultFrame.from_json(source)
            chunks_total = -(-len(frame) // chunk_rows) if len(frame) else 0
            for start in range(0, len(frame), chunk_rows):
                idx = np.arange(start, min(start + chunk_rows, len(frame)))
                flush_frame(frame.take(idx), None)
            return stats
        if not source.is_dir():
            raise FileNotFoundError(f"nothing to ingest at {source}")

        candidates = self._count_source_rows(source, cache_dir)
        chunks_total = -(-candidates // chunk_rows) if candidates else 0
        existing = self.keys() if skip_existing and self.exists() else set()
        rows: List[Any] = []
        keys: List[str] = []

        def flush_rows() -> None:
            if rows:
                flush_frame(ResultFrame.from_results(rows), list(keys))
                rows.clear()
                keys.clear()

        for key, row in self._iter_source_rows(source, cache_dir):
            if key in existing:
                stats["rows_skipped"] += 1
                continue
            rows.append(row)
            keys.append(key)
            if len(rows) >= chunk_rows:
                flush_rows()
        flush_rows()
        return stats

    @staticmethod
    def _count_source_rows(source: Path, cache_dir) -> int:
        """Candidate row count of a cache/queue source — a cheap directory
        listing (no JSON parsing) sizing the ingest progress denominator."""
        from ..experiment.cache import ResultCache

        queue = is_queue_dir(source)
        entries_root = (cache_dir or source / "cache") if queue else source
        count = sum(1 for _ in ResultCache(entries_root)._entries())
        if queue:
            count += sum(1 for _ in (source / "failed").glob("*.json"))
        return count

    @staticmethod
    def _iter_source_rows(source: Path, cache_dir) -> Iterator[Tuple[str, Any]]:
        """(spec-hash, PruningResult) rows of a cache or queue directory, in
        the exact order ``from_cache``/``from_queue`` assemble them."""
        from ..experiment.cache import iter_cache_entries
        from ..experiment.prune import ExperimentSpec
        from ..experiment.queue import QueueExecutor
        from ..experiment.results import PruningResult

        queue = is_queue_dir(source)
        entries_root = (cache_dir or source / "cache") if queue else source
        for key, result in iter_cache_entries(entries_root):
            yield key, PruningResult.from_dict(result)
        if not queue:
            return
        for path in sorted((source / "failed").glob("*.json")):
            try:
                payload = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                continue
            if not isinstance(payload, dict) or "spec" not in payload:
                continue
            spec = ExperimentSpec.from_dict(payload["spec"])
            yield path.stem, QueueExecutor._quarantine_row(spec, payload)

    # -- maintenance ------------------------------------------------------
    def compact(self) -> Dict[str, Any]:
        """Rewrite the store as one sealed segment and sweep everything else.

        Coalesces small segments (a queue worker publishing row-at-a-time
        produces many), makes key-supersession physical (superseded
        generations are dropped, not just masked at read time), and removes
        unreferenced segment directories left by crashed writers.  Readers
        racing a compact are safe: the manifest swap is atomic and old
        segment directories are deleted only after the new manifest is
        down.  Returns before/after segment and row counts.
        """
        self._require_manifest()  # compacting a non-store is a caller bug
        self._acquire_lock()
        try:
            manifest = self._require_manifest()  # re-read under the lock
            before_segments = len(manifest["segments"])
            before_rows = manifest["rows"]
            frame, keys = self._load_frame()
            manifest["segments"] = []
            if len(frame):
                columns = {name: frame[name] for name in frame.columns}
                entry = self._seal_segment(
                    manifest, columns, None if keys is None else keys.tolist()
                )
                manifest["segments"] = [entry]
            self._write_manifest(manifest)
            swept = self._sweep_unreferenced(manifest)
        finally:
            self._release_lock()
        return {
            "segments_before": before_segments,
            "segments_after": len(manifest["segments"]),
            "rows_before": before_rows,
            "rows_after": manifest["rows"],
            "swept_dirs": swept,
        }

    def analyze(self) -> Dict[str, Any]:
        """Backfill zone-map statistics for segments sealed before stats
        existed, rewriting only the manifest.

        Segment data files are immutable, so the stats are computed once
        from disk and recorded next to each entry.  The manifest
        fingerprint hashes only row identity (name/rows/segment digest),
        not stats, so backfilling never invalidates server ETags.  Returns
        ``{"segments", "analyzed"}``; segments that already carry stats are
        left untouched (``compact`` also produces stats as a side effect).
        """
        self._require_manifest()
        self._acquire_lock()
        try:
            manifest = self._require_manifest()  # re-read under the lock
            analyzed = 0
            for entry in manifest["segments"]:
                if isinstance(entry.get("stats"), dict):
                    continue
                entry["stats"] = self._stats_from_disk(entry)
                analyzed += 1
            if analyzed:
                self._write_manifest(manifest)
        finally:
            self._release_lock()
        return {"segments": len(manifest["segments"]), "analyzed": analyzed}

    def _stats_from_disk(self, entry: Dict[str, Any]) -> Dict[str, Any]:
        seg_dir = self.segments_dir / entry["name"]
        stats: Dict[str, Any] = {}
        for name, kind in entry["columns"].items():
            if kind in _NUMERIC_KINDS:
                stats[name] = _numeric_stats(
                    np.load(seg_dir / f"{name}.npy", mmap_mode="r")
                )
            else:
                codes = np.load(seg_dir / f"{name}.codes.npy")
                pool = json.loads((seg_dir / f"{name}.values.json").read_text())
                stats[name] = _object_stats(codes, pool)
        return stats

    def segments(self) -> List[Dict[str, Any]]:
        """The manifest's segment entries (name/rows/keyed/columns/stats) —
        the read API behind ``repro store stats --segments``."""
        return list(self._require_manifest()["segments"])

    def _sweep_unreferenced(self, manifest: Dict[str, Any]) -> int:
        live = {entry["name"] for entry in manifest["segments"]}
        swept = 0
        if not self.segments_dir.is_dir():
            return swept
        for path in self.segments_dir.iterdir():
            if path.name in live or not path.is_dir():
                continue
            for child in path.iterdir():
                child.unlink()
            path.rmdir()
            swept += 1
        return swept

    def stats(self) -> Dict[str, Any]:
        """Store statistics (for ``python -m repro store stats``)."""
        manifest = self._require_manifest()
        size_bytes = 0
        for entry in manifest["segments"]:
            seg_dir = self.segments_dir / entry["name"]
            for path in seg_dir.iterdir():
                try:
                    size_bytes += path.stat().st_size
                except OSError:
                    pass
        return {
            "root": str(self.root),
            "schema": manifest["schema"],
            "fingerprint": manifest["fingerprint"],
            "rows": manifest["rows"],
            "columns": list(manifest["columns"]),
            "segments": len(manifest["segments"]),
            "keyed_segments": sum(
                1 for entry in manifest["segments"] if entry.get("keyed")
            ),
            "size_bytes": size_bytes,
        }
