"""Append-only binary columnar store for million-row sweep results.

The one-JSON-file-per-spec :class:`~repro.experiment.cache.ResultCache` is
the *interchange* format — human-auditable, atomic, concurrency-safe — but
re-parsing 10⁶ small JSON files to answer one report query is the wrong
cost model at corpus scale (the paper's central complaint, applied to our
own tooling).  :class:`ColumnStore` is the *serving* format: results land
once as ``.npy`` column segments under a fingerprinted JSON manifest, and
``to_frame()`` memory-maps them straight into
:class:`~repro.analysis.frame.ResultFrame` columns with no per-row
parsing.  See docs/FORMATS.md for the on-disk layout and
docs/ARCHITECTURE.md for where the store sits in the pipeline.
"""

from .columnar import (
    STORE_SCHEMA_VERSION,
    ZONE_MAP_MAX_VALUES,
    ColumnStore,
    StoreError,
    StoreLockTimeout,
    is_store_dir,
)

__all__ = [
    "STORE_SCHEMA_VERSION",
    "ZONE_MAP_MAX_VALUES",
    "ColumnStore",
    "StoreError",
    "StoreLockTimeout",
    "is_store_dir",
]
