"""PruningExperiment: the paper's Algorithm 1 instrumented end-to-end.

Pipeline (Appendix C):

1. Load (or train-and-cache) the pretrained checkpoint — the *same* initial
   model for every strategy in a sweep (§7.3).
2. Evaluate the unpruned control (§6: report metrics for the control).
3. Prune to the target whole-model compression following the spec's
   schedule (§2.3): one-shot by default, or several prune → fine-tune
   rounds for iterative/polynomial schedules; gradient-based scores get a
   single minibatch.
4. Fine-tune with masks enforced after every optimizer step; early stopping
   on validation accuracy.
5. Report raw Top-1/Top-5, compression ratio AND theoretical speedup.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import Dict, Optional

import numpy as np

from ..data import DataLoader
from ..kernels import active_backend_name
from ..metrics import (
    dense_flops,
    effective_flops,
    evaluate,
    nonzero_params,
    theoretical_speedup,
    total_params,
)
from ..models import MODELS
from ..models.pretrained import get_pretrained_state
from ..nn import Module
from ..pruning import STRATEGIES, Pruner, PruningContext, schedule_targets
from .config import TrainConfig, _known_fields, cifar_finetune_config
from .datasets import DATASETS
from .results import PruningResult
from .train import Trainer

__all__ = [
    "ExperimentSpec",
    "PruningExperiment",
    "BASELINE_STRATEGY",
    "baseline_spec_for",
]

#: sentinel strategy for deduped baseline specs (compression 1 never prunes,
#: so the strategy is irrelevant at execution time).  A fixed sentinel —
#: rather than ``strategies[0]`` — keeps the baseline's spec hash independent
#: of the sweep's strategy list, so sweeps over different strategy sets share
#: cached baseline cells.
BASELINE_STRATEGY = "__baseline__"


@dataclass
class ExperimentSpec:
    """Everything needed to reproduce one pruning run.

    Component fields (``model``, ``dataset``, ``strategy``, ``schedule``)
    are registry names, so a serialized spec is all a remote worker needs:
    ``ExperimentSpec.from_dict(json.loads(text))`` rebuilds it losslessly
    (identical :func:`~repro.experiment.cache.spec_hash`).
    """

    model: str
    dataset: str
    strategy: str
    compression: float
    seed: int = 0
    model_kwargs: Dict = field(default_factory=dict)
    dataset_kwargs: Dict = field(default_factory=dict)
    pretrain: TrainConfig = field(default_factory=lambda: cifar_finetune_config(epochs=10))
    finetune: TrainConfig = field(default_factory=lambda: cifar_finetune_config(epochs=5))
    prune_classifier: bool = False
    #: seed used for pretraining; defaults to 0 so all sweep seeds share one
    #: initial model (§7.3).  Set per-seed to study init variance instead.
    pretrain_seed: int = 0
    #: SCHEDULES registry name; "one_shot" reproduces the paper's protocol,
    #: iterative schedules interleave prune and fine-tune rounds (§2.3)
    schedule: str = "one_shot"
    schedule_steps: int = 1

    def to_dict(self) -> Dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: Dict) -> "ExperimentSpec":
        kwargs = _known_fields(cls, d)
        for key in ("pretrain", "finetune"):
            if isinstance(kwargs.get(key), dict):
                kwargs[key] = TrainConfig.from_dict(kwargs[key])
        return cls(**kwargs)


def baseline_spec_for(spec: ExperimentSpec) -> ExperimentSpec:
    """The normalized unpruned-control spec sharing ``spec``'s setup.

    Strategy and schedule are irrelevant when nothing is pruned, so both are
    pinned to fixed sentinels — every sweep over the same model/dataset/
    train-config/seed hits the same cached baseline cell regardless of its
    strategy list or schedule.
    """
    return replace(
        spec,
        strategy=BASELINE_STRATEGY,
        compression=1.0,
        schedule="one_shot",
        schedule_steps=1,
    )


class PruningExperiment:
    """Run one :class:`ExperimentSpec` and produce a :class:`PruningResult`.

    After :meth:`run`, ``baseline_result`` holds the synthesized row for the
    corresponding :func:`baseline_spec_for` cell (pruned specs only): every
    pruned run evaluates the unpruned control anyway, so the executors can
    cache the baseline row for free and a shard holding only pruned cells
    no longer forces the merge run to re-derive baselines.
    """

    def __init__(self, spec: ExperimentSpec) -> None:
        self.spec = spec
        self.dataset = DATASETS.create(spec.dataset, **spec.dataset_kwargs)
        self.model: Optional[Module] = None
        self.pretrained_key = ""
        self.baseline_result: Optional[PruningResult] = None

    # -- stages ----------------------------------------------------------
    def _build_model(self) -> Module:
        return MODELS.create(
            self.spec.model, seed=self.spec.pretrain_seed, **self.spec.model_kwargs
        )

    def _pretrain_factory(self):
        def factory():
            model = self._build_model()
            trainer = Trainer(
                model, self.dataset, self.spec.pretrain, seed=self.spec.pretrain_seed
            )
            history = trainer.run()
            return model, history

        return factory

    def load_pretrained(self) -> Module:
        """Stage 1: the shared initial model (cached on disk)."""
        spec = self.spec
        state, key = get_pretrained_state(
            spec.model,
            spec.model_kwargs,
            spec.dataset,
            spec.dataset_kwargs,
            spec.pretrain,
            spec.pretrain_seed,
            self._pretrain_factory(),
        )
        self.pretrained_key = key
        model = self._build_model()
        model.load_state_dict(state)
        self.model = model
        return model

    def run(self) -> PruningResult:
        spec = self.spec
        model = self.load_pretrained()
        input_shape = self.dataset.train.sample_shape

        eval_loader = DataLoader(
            self.dataset.val,
            batch_size=128,
            shuffle=False,
            seed=spec.seed,
            transform=self.dataset.eval_transform(),
        )
        baseline = evaluate(model, eval_loader)
        result = PruningResult(
            model=spec.model,
            dataset=spec.dataset,
            strategy=spec.strategy,
            compression=spec.compression,
            seed=spec.seed,
            baseline_top1=baseline["top1"],
            baseline_top5=baseline.get("top5", 0.0),
            pretrained_key=self.pretrained_key,
            dense_flops=dense_flops(model, input_shape),
        )
        # Provenance: which compute backend produced this row.  Reference and
        # fast are byte-equal, but f32 rows are not comparable bit-for-bit
        # with f64 rows, so reports surface mixed-backend tables.
        result.extra["kernel_backend"] = active_backend_name()

        if spec.compression > 1.0:
            # Snapshot the unpruned-control row before any mask lands: it is
            # exactly what executing baseline_spec_for(spec) would produce,
            # so executors can cache it alongside this cell's result.
            self.baseline_result = replace(
                result,
                strategy=BASELINE_STRATEGY,
                compression=1.0,
                actual_compression=1.0,
                pre_finetune_top1=baseline["top1"],
                pre_finetune_top5=baseline.get("top5", 0.0),
                top1=baseline["top1"],
                top5=baseline.get("top5", 0.0),
                total_params=total_params(model),
                nonzero_params=nonzero_params(model),
                effective_flops=effective_flops(model, input_shape),
                theoretical_speedup=theoretical_speedup(model, input_shape),
                extra={"kernel_backend": active_backend_name()},
            )  # fresh dict — replace() would otherwise share result's extra

            strategy = STRATEGIES.create(
                spec.strategy, prune_classifier=spec.prune_classifier
            )
            # Gradient scores and random masks draw from seed-specific streams
            # so seeds differ exactly where the paper says they should (C.1).
            score_loader = DataLoader(
                self.dataset.train,
                batch_size=spec.finetune.batch_size,
                shuffle=True,
                seed=spec.seed,
                transform=self.dataset.eval_transform(),
            )
            xb, yb = score_loader.one_batch()
            context = PruningContext(
                inputs=xb, targets=yb, rng=np.random.default_rng(spec.seed)
            )
            pruner = Pruner(model, strategy)
            targets = schedule_targets(
                spec.schedule, spec.compression, spec.schedule_steps
            )
            # Intermediate rounds: prune part-way, fine-tune, repeat (§2.3
            # iterative regime).  The final round's fine-tune happens below
            # after the pre-finetune metrics are recorded.
            for target in targets[:-1]:
                pruner.prune(target, context)
                inter = Trainer(
                    model, self.dataset, spec.finetune, seed=spec.seed,
                    masks=pruner.registry,
                )
                result.finetune_epochs_ran += len(inter.run())
            registry = pruner.prune(targets[-1], context)
            result.actual_compression = pruner.actual_compression()

            pre = evaluate(model, eval_loader)
            result.pre_finetune_top1 = pre["top1"]
            result.pre_finetune_top5 = pre.get("top5", 0.0)

            trainer = Trainer(
                model, self.dataset, spec.finetune, seed=spec.seed, masks=registry
            )
            history = trainer.run()
            result.finetune_epochs_ran += len(history)
            registry.validate()
        else:
            result.actual_compression = 1.0
            result.pre_finetune_top1 = baseline["top1"]
            result.pre_finetune_top5 = baseline.get("top5", 0.0)

        final = evaluate(model, eval_loader)
        result.top1 = final["top1"]
        result.top5 = final.get("top5", 0.0)
        result.total_params = total_params(model)
        result.nonzero_params = nonzero_params(model)
        result.effective_flops = effective_flops(model, input_shape)
        result.theoretical_speedup = theoretical_speedup(model, input_shape)
        return result
