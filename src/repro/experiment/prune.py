"""PruningExperiment: the paper's Algorithm 1 instrumented end-to-end.

Pipeline (Appendix C):

1. Load (or train-and-cache) the pretrained checkpoint — the *same* initial
   model for every strategy in a sweep (§7.3).
2. Evaluate the unpruned control (§6: report metrics for the control).
3. Prune one-shot to the target whole-model compression; gradient-based
   scores get a single minibatch.
4. Fine-tune with masks enforced after every optimizer step; early stopping
   on validation accuracy.
5. Report raw Top-1/Top-5, compression ratio AND theoretical speedup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..data import DataLoader
from ..metrics import (
    dense_flops,
    effective_flops,
    evaluate,
    nonzero_params,
    theoretical_speedup,
    total_params,
)
from ..models import create_model
from ..models.pretrained import get_pretrained_state
from ..nn import Module
from ..pruning import Pruner, PruningContext, create_strategy
from .config import TrainConfig, cifar_finetune_config
from .datasets import build_dataset
from .results import PruningResult
from .train import Trainer

__all__ = ["ExperimentSpec", "PruningExperiment"]


@dataclass
class ExperimentSpec:
    """Everything needed to reproduce one pruning run."""

    model: str
    dataset: str
    strategy: str
    compression: float
    seed: int = 0
    model_kwargs: Dict = field(default_factory=dict)
    dataset_kwargs: Dict = field(default_factory=dict)
    pretrain: TrainConfig = field(default_factory=lambda: cifar_finetune_config(epochs=10))
    finetune: TrainConfig = field(default_factory=lambda: cifar_finetune_config(epochs=5))
    prune_classifier: bool = False
    #: seed used for pretraining; defaults to 0 so all sweep seeds share one
    #: initial model (§7.3).  Set per-seed to study init variance instead.
    pretrain_seed: int = 0


class PruningExperiment:
    """Run one :class:`ExperimentSpec` and produce a :class:`PruningResult`."""

    def __init__(self, spec: ExperimentSpec) -> None:
        self.spec = spec
        self.dataset = build_dataset(spec.dataset, **spec.dataset_kwargs)
        self.model: Optional[Module] = None
        self.pretrained_key = ""

    # -- stages ----------------------------------------------------------
    def _build_model(self) -> Module:
        return create_model(
            self.spec.model, seed=self.spec.pretrain_seed, **self.spec.model_kwargs
        )

    def _pretrain_factory(self):
        def factory():
            model = self._build_model()
            trainer = Trainer(
                model, self.dataset, self.spec.pretrain, seed=self.spec.pretrain_seed
            )
            history = trainer.run()
            return model, history

        return factory

    def load_pretrained(self) -> Module:
        """Stage 1: the shared initial model (cached on disk)."""
        spec = self.spec
        state, key = get_pretrained_state(
            spec.model,
            spec.model_kwargs,
            spec.dataset,
            spec.dataset_kwargs,
            spec.pretrain,
            spec.pretrain_seed,
            self._pretrain_factory(),
        )
        self.pretrained_key = key
        model = self._build_model()
        model.load_state_dict(state)
        self.model = model
        return model

    def run(self) -> PruningResult:
        spec = self.spec
        model = self.load_pretrained()
        input_shape = self.dataset.train.sample_shape

        eval_loader = DataLoader(
            self.dataset.val,
            batch_size=128,
            shuffle=False,
            seed=spec.seed,
            transform=self.dataset.eval_transform(),
        )
        baseline = evaluate(model, eval_loader)
        result = PruningResult(
            model=spec.model,
            dataset=spec.dataset,
            strategy=spec.strategy,
            compression=spec.compression,
            seed=spec.seed,
            baseline_top1=baseline["top1"],
            baseline_top5=baseline.get("top5", 0.0),
            pretrained_key=self.pretrained_key,
            dense_flops=dense_flops(model, input_shape),
        )

        if spec.compression > 1.0:
            strategy = create_strategy(spec.strategy, spec.prune_classifier)
            # Gradient scores and random masks draw from seed-specific streams
            # so seeds differ exactly where the paper says they should (C.1).
            score_loader = DataLoader(
                self.dataset.train,
                batch_size=spec.finetune.batch_size,
                shuffle=True,
                seed=spec.seed,
                transform=self.dataset.eval_transform(),
            )
            xb, yb = score_loader.one_batch()
            context = PruningContext(
                inputs=xb, targets=yb, rng=np.random.default_rng(spec.seed)
            )
            pruner = Pruner(model, strategy)
            registry = pruner.prune(spec.compression, context)
            result.actual_compression = pruner.actual_compression()

            pre = evaluate(model, eval_loader)
            result.pre_finetune_top1 = pre["top1"]
            result.pre_finetune_top5 = pre.get("top5", 0.0)

            trainer = Trainer(
                model, self.dataset, spec.finetune, seed=spec.seed, masks=registry
            )
            history = trainer.run()
            result.finetune_epochs_ran = len(history)
            registry.validate()
        else:
            result.actual_compression = 1.0
            result.pre_finetune_top1 = baseline["top1"]
            result.pre_finetune_top5 = baseline.get("top5", 0.0)

        final = evaluate(model, eval_loader)
        result.top1 = final["top1"]
        result.top5 = final.get("top5", 0.0)
        result.total_params = total_params(model)
        result.nonzero_params = nonzero_params(model)
        result.effective_flops = effective_flops(model, input_shape)
        result.theoretical_speedup = theoretical_speedup(model, input_shape)
        return result
