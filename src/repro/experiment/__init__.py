"""Experiment harness: train → prune → fine-tune → evaluate → aggregate.

The declarative entry point is :class:`SweepConfig` (+ ``python -m repro
run sweep.json``); the pieces it drives — :func:`expand_sweep`,
:func:`spec_hash`, the ``EXECUTORS`` registry, :class:`ResultCache` — are
all public for programmatic use.  Multi-machine sweeps go through the
durable ``"queue"`` executor (:mod:`repro.experiment.queue`): the submitter
enqueues cells into a shared directory and any number of ``python -m repro
worker`` processes drain them, publishing rows through the shared cache.
"""

from .config import (
    OptimizerConfig,
    SWEEP_SCHEMA_VERSION,
    SweepConfig,
    TrainConfig,
    cifar_finetune_config,
    imagenet_finetune_config,
)
from .cache import ResultCache, spec_hash
from .datasets import DATASET_REGISTRY, DATASETS, available_datasets, build_dataset
from .executor import (
    EXECUTORS,
    ParallelExecutor,
    ProgressEvent,
    SerialExecutor,
    executor_for,
    shard_specs,
)
from .prune import (
    BASELINE_STRATEGY,
    ExperimentSpec,
    PruningExperiment,
    baseline_spec_for,
)
from .queue import QueueClaim, QueueExecutor, QueueWorker, WorkQueue
from .results import CurvePoint, PruningResult, ResultSet, aggregate_curve
from .runner import (
    PAPER_COMPRESSIONS,
    assemble_results,
    expand_sweep,
    run_config,
    run_sweep,
)
from .seeds import fix_seeds
from .train import Trainer, build_optimizer

__all__ = [
    "OptimizerConfig",
    "TrainConfig",
    "SweepConfig",
    "SWEEP_SCHEMA_VERSION",
    "cifar_finetune_config",
    "imagenet_finetune_config",
    "DATASETS",
    "DATASET_REGISTRY",
    "build_dataset",
    "available_datasets",
    "ExperimentSpec",
    "PruningExperiment",
    "BASELINE_STRATEGY",
    "baseline_spec_for",
    "PruningResult",
    "ResultSet",
    "ResultCache",
    "CurvePoint",
    "aggregate_curve",
    "spec_hash",
    "expand_sweep",
    "assemble_results",
    "run_config",
    "run_sweep",
    "EXECUTORS",
    "ProgressEvent",
    "SerialExecutor",
    "ParallelExecutor",
    "QueueExecutor",
    "QueueWorker",
    "QueueClaim",
    "WorkQueue",
    "executor_for",
    "shard_specs",
    "PAPER_COMPRESSIONS",
    "fix_seeds",
    "Trainer",
    "build_optimizer",
]
