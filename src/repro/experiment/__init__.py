"""Experiment harness: train → prune → fine-tune → evaluate → aggregate."""

from .config import (
    OptimizerConfig,
    TrainConfig,
    cifar_finetune_config,
    imagenet_finetune_config,
)
from .cache import ResultCache, spec_hash
from .datasets import DATASET_REGISTRY, available_datasets, build_dataset
from .executor import ParallelExecutor, SerialExecutor, executor_for, shard_specs
from .prune import ExperimentSpec, PruningExperiment
from .results import CurvePoint, PruningResult, ResultSet, aggregate_curve
from .runner import PAPER_COMPRESSIONS, assemble_results, expand_sweep, run_sweep
from .seeds import fix_seeds
from .train import Trainer, build_optimizer

__all__ = [
    "OptimizerConfig",
    "TrainConfig",
    "cifar_finetune_config",
    "imagenet_finetune_config",
    "DATASET_REGISTRY",
    "build_dataset",
    "available_datasets",
    "ExperimentSpec",
    "PruningExperiment",
    "PruningResult",
    "ResultSet",
    "ResultCache",
    "CurvePoint",
    "aggregate_curve",
    "spec_hash",
    "expand_sweep",
    "assemble_results",
    "run_sweep",
    "SerialExecutor",
    "ParallelExecutor",
    "executor_for",
    "shard_specs",
    "PAPER_COMPRESSIONS",
    "fix_seeds",
    "Trainer",
    "build_optimizer",
]
