"""Sweep expansion + execution: strategies × compressions × seeds → ResultSet.

This is the experiment matrix behind Figures 6-18: the paper recommends at
least 5 operating points spanning {2,4,8,16,32} (§6), three seeds for CIFAR
(Appendix C.1), and identical everything-else across strategies.

The matrix is split into three layers:

1. :func:`expand_sweep` — a pure grid expander producing a deterministic,
   ordered ``list[ExperimentSpec]`` (each content-addressable via
   :func:`~repro.experiment.cache.spec_hash`).  Baseline cells
   (compression ≤ 1) are strategy-independent, so by default exactly one
   baseline spec is emitted per seed, no matter how many strategies there
   are or how many duplicate ≤1 entries ``compressions`` contains.
2. Executors (:mod:`repro.experiment.executor`) — run the specs serially or
   across processes, optionally backed by the on-disk
   :class:`~repro.experiment.cache.ResultCache`.
3. :func:`assemble_results` — zip specs and rows back into a
   :class:`ResultSet`, replicating each deduped baseline row once per
   strategy so downstream filters see the full matrix.

:func:`run_config` glues the three together from a declarative
:class:`~repro.experiment.config.SweepConfig`; ``python -m repro run
sweep.json`` is the CLI equivalent with parallelism and sharding flags.
:func:`run_sweep` is the historical keyword-argument entry point, kept as a
deprecated wrapper.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, List, Optional, Sequence

from ..registry import warn_deprecated
from .cache import ResultCache
from .config import PAPER_COMPRESSIONS, SweepConfig, TrainConfig
from .executor import EXECUTORS, executor_for
from .prune import BASELINE_STRATEGY, ExperimentSpec, baseline_spec_for
from .results import PruningResult, ResultSet

__all__ = [
    "expand_sweep",
    "assemble_results",
    "run_config",
    "run_sweep",
    "PAPER_COMPRESSIONS",
    "BASELINE_STRATEGY",
]


def expand_sweep(
    model: str,
    dataset: str,
    strategies: Sequence[str],
    compressions: Sequence[float] = PAPER_COMPRESSIONS,
    seeds: Sequence[int] = (0, 1, 2),
    model_kwargs: Optional[Dict] = None,
    dataset_kwargs: Optional[Dict] = None,
    pretrain: Optional[TrainConfig] = None,
    finetune: Optional[TrainConfig] = None,
    pretrain_seed: int = 0,
    dedupe_baselines: bool = True,
    schedule: str = "one_shot",
    schedule_steps: int = 1,
    prune_classifier: bool = False,
) -> List[ExperimentSpec]:
    """Expand the experiment grid into an ordered list of specs.

    Pure function of its arguments: no I/O, no execution.  Order is
    seed-major, then ``compressions`` in the given order, then strategies —
    matching the historical ``run_sweep`` execution order.

    With ``dedupe_baselines`` (default), every compression ≤ 1 entry
    collapses to a single per-seed baseline spec at compression 1.0 with
    :data:`BASELINE_STRATEGY` as placeholder strategy and the schedule
    normalized away (no pruning happens, so neither matters); duplicate ≤1
    entries in ``compressions`` are dropped rather than re-run.
    :func:`assemble_results` later replicates each baseline row across
    strategies.
    """
    if not strategies:
        raise ValueError("strategies must be non-empty")
    base = ExperimentSpec(
        model=model,
        dataset=dataset,
        strategy=strategies[0],
        compression=1.0,
        model_kwargs=model_kwargs or {},
        dataset_kwargs=dataset_kwargs or {},
        pretrain_seed=pretrain_seed,
        prune_classifier=prune_classifier,
        schedule=schedule,
        schedule_steps=schedule_steps,
    )
    if pretrain is not None:
        base.pretrain = pretrain
    if finetune is not None:
        base.finetune = finetune

    specs: List[ExperimentSpec] = []
    for seed in seeds:
        baseline_emitted = False
        for compression in compressions:
            if compression <= 1.0 and dedupe_baselines:
                if not baseline_emitted:
                    specs.append(baseline_spec_for(replace(base, seed=seed)))
                    baseline_emitted = True
                continue
            for strat in strategies:
                specs.append(
                    replace(base, strategy=strat, compression=float(compression), seed=seed)
                )
    return specs


def assemble_results(
    specs: Sequence[ExperimentSpec],
    rows: Sequence[PruningResult],
    strategies: Sequence[str],
    replicate_baselines: bool = True,
) -> ResultSet:
    """Zip executed rows back into a :class:`ResultSet`.

    When ``replicate_baselines`` (matching ``expand_sweep``'s dedup), each
    baseline row (compression ≤ 1) is copied once per strategy so the
    ResultSet contains the full strategy × compression × seed matrix.
    """
    results = ResultSet()
    for spec, row in zip(specs, rows):
        if spec.compression <= 1.0 and replicate_baselines:
            for strat in strategies:
                clone = PruningResult.from_dict(row.to_dict())
                clone.strategy = strat
                results.add(clone)
        else:
            results.add(row)
    return results


def run_config(
    config: SweepConfig,
    cache: Optional[ResultCache] = None,
    executor=None,
    progress: Optional[Callable[[str], None]] = None,
    on_event: Optional[Callable] = None,
) -> ResultSet:
    """Run a declarative :class:`SweepConfig` end-to-end and collect results.

    The config's ``executor``/``workers`` fields pick the executor from the
    ``EXECUTORS`` registry unless an ``executor`` instance is passed
    explicitly (in which case that executor owns its cache/progress wiring,
    so combining it with ``cache`` is rejected rather than silently
    dropped).  Pass a :class:`ResultCache` to skip already-executed cells
    and to persist new ones for future sweeps.
    """
    specs = config.expand()
    if executor is None:
        executor = EXECUTORS.create(
            config.executor,
            workers=config.workers or None,  # 0 = all cores (parallel only)
            cache=cache,
            progress=progress,
            on_event=on_event,
            **dict(config.executor_options),
        )
    elif cache is not None or progress is not None or on_event is not None:
        raise ValueError(
            "pass cache/progress/on_event either to run_config or to the "
            "executor, not both"
        )
    rows = executor.run(specs)
    return assemble_results(
        specs,
        rows,
        config.strategies,
        replicate_baselines=config.dedupe_baselines,
    )


def run_sweep(
    model: str,
    dataset: str,
    strategies: Sequence[str],
    compressions: Sequence[float] = PAPER_COMPRESSIONS,
    seeds: Sequence[int] = (0, 1, 2),
    model_kwargs: Optional[Dict] = None,
    dataset_kwargs: Optional[Dict] = None,
    pretrain: Optional[TrainConfig] = None,
    finetune: Optional[TrainConfig] = None,
    pretrain_seed: int = 0,
    progress: Optional[Callable[[str], None]] = None,
    skip_baseline_duplicates: bool = True,
    executor=None,
    cache: Optional[ResultCache] = None,
) -> ResultSet:
    """Deprecated: build a :class:`SweepConfig` and call :func:`run_config`.

    Kept as a thin compatibility wrapper so pre-SweepConfig callers keep
    working; the keyword surface maps 1:1 onto config fields.  Matching the
    historical behavior, ``progress`` is quietly ignored when an explicit
    ``executor`` is passed (the executor owns its progress wiring).
    """
    warn_deprecated("repro.experiment.run_sweep", "repro.experiment.run_config")
    if executor is not None:
        progress = None  # the old wrapper only wired progress into defaults
    config = SweepConfig(
        model=model,
        dataset=dataset,
        strategies=tuple(strategies),
        compressions=tuple(compressions),
        seeds=tuple(seeds),
        model_kwargs=model_kwargs or {},
        dataset_kwargs=dataset_kwargs or {},
        pretrain=pretrain,
        finetune=finetune,
        pretrain_seed=pretrain_seed,
        dedupe_baselines=skip_baseline_duplicates,
    )
    return run_config(
        config, cache=cache, executor=executor, progress=progress
    )
