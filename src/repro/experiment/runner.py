"""Sweep runner: strategies × compression ratios × seeds → ResultSet.

This is the experiment matrix behind Figures 6-18: the paper recommends at
least 5 operating points spanning {2,4,8,16,32} (§6), three seeds for CIFAR
(Appendix C.1), and identical everything-else across strategies.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from .config import TrainConfig
from .prune import ExperimentSpec, PruningExperiment
from .results import PruningResult, ResultSet

__all__ = ["run_sweep", "PAPER_COMPRESSIONS"]

#: §6's recommended operating points (plus the unpruned control at 1).
PAPER_COMPRESSIONS: Sequence[float] = (1, 2, 4, 8, 16, 32)


def run_sweep(
    model: str,
    dataset: str,
    strategies: Sequence[str],
    compressions: Sequence[float] = PAPER_COMPRESSIONS,
    seeds: Sequence[int] = (0, 1, 2),
    model_kwargs: Optional[Dict] = None,
    dataset_kwargs: Optional[Dict] = None,
    pretrain: Optional[TrainConfig] = None,
    finetune: Optional[TrainConfig] = None,
    pretrain_seed: int = 0,
    progress: Optional[Callable[[str], None]] = None,
    skip_baseline_duplicates: bool = True,
) -> ResultSet:
    """Run the full experiment matrix and collect every result.

    ``skip_baseline_duplicates`` runs compression=1 only once per seed (it is
    strategy-independent: no pruning happens) and replicates the row per
    strategy, saving redundant evaluations.
    """
    base = ExperimentSpec(
        model=model,
        dataset=dataset,
        strategy=strategies[0],
        compression=1.0,
        model_kwargs=model_kwargs or {},
        dataset_kwargs=dataset_kwargs or {},
        pretrain_seed=pretrain_seed,
    )
    if pretrain is not None:
        base.pretrain = pretrain
    if finetune is not None:
        base.finetune = finetune

    results = ResultSet()
    for seed in seeds:
        baseline_row: Optional[PruningResult] = None
        for compression in compressions:
            if compression <= 1.0 and skip_baseline_duplicates:
                spec = replace(base, strategy=strategies[0], compression=1.0, seed=seed)
                if progress:
                    progress(f"[seed {seed}] baseline (compression 1)")
                baseline_row = PruningExperiment(spec).run()
                for strat in strategies:
                    row = PruningResult.from_dict(baseline_row.to_dict())
                    row.strategy = strat
                    results.add(row)
                continue
            for strat in strategies:
                spec = replace(
                    base, strategy=strat, compression=float(compression), seed=seed
                )
                if progress:
                    progress(
                        f"[seed {seed}] {strat} @ {compression}x"
                    )
                results.add(PruningExperiment(spec).run())
    return results
