"""Sweep expansion + execution: strategies × compressions × seeds → ResultSet.

This is the experiment matrix behind Figures 6-18: the paper recommends at
least 5 operating points spanning {2,4,8,16,32} (§6), three seeds for CIFAR
(Appendix C.1), and identical everything-else across strategies.

The matrix is split into three layers:

1. :func:`expand_sweep` — a pure grid expander producing a deterministic,
   ordered ``list[ExperimentSpec]`` (each content-addressable via
   :func:`~repro.experiment.cache.spec_hash`).  Baseline cells
   (compression ≤ 1) are strategy-independent, so by default exactly one
   baseline spec is emitted per seed, no matter how many strategies there
   are or how many duplicate ≤1 entries ``compressions`` contains.
2. Executors (:mod:`repro.experiment.executor`) — run the specs serially or
   across processes, optionally backed by the on-disk
   :class:`~repro.experiment.cache.ResultCache`.
3. :func:`assemble_results` — zip specs and rows back into a
   :class:`ResultSet`, replicating each deduped baseline row once per
   strategy so downstream filters see the full matrix.

:func:`run_sweep` is the thin compatibility wrapper gluing the three
together; ``python -m repro.experiment.sweep`` is the CLI equivalent with
parallelism and sharding flags.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, List, Optional, Sequence

from .cache import ResultCache
from .config import TrainConfig
from .executor import SerialExecutor
from .prune import ExperimentSpec
from .results import PruningResult, ResultSet

__all__ = [
    "expand_sweep",
    "assemble_results",
    "run_sweep",
    "PAPER_COMPRESSIONS",
    "BASELINE_STRATEGY",
]

#: §6's recommended operating points (plus the unpruned control at 1).
PAPER_COMPRESSIONS: Sequence[float] = (1, 2, 4, 8, 16, 32)

#: sentinel strategy for deduped baseline specs (compression 1 never prunes,
#: so the strategy is irrelevant at execution time).  A fixed sentinel —
#: rather than ``strategies[0]`` — keeps the baseline's spec hash independent
#: of the sweep's strategy list, so sweeps over different strategy sets share
#: cached baseline cells.
BASELINE_STRATEGY = "__baseline__"


def expand_sweep(
    model: str,
    dataset: str,
    strategies: Sequence[str],
    compressions: Sequence[float] = PAPER_COMPRESSIONS,
    seeds: Sequence[int] = (0, 1, 2),
    model_kwargs: Optional[Dict] = None,
    dataset_kwargs: Optional[Dict] = None,
    pretrain: Optional[TrainConfig] = None,
    finetune: Optional[TrainConfig] = None,
    pretrain_seed: int = 0,
    dedupe_baselines: bool = True,
) -> List[ExperimentSpec]:
    """Expand the experiment grid into an ordered list of specs.

    Pure function of its arguments: no I/O, no execution.  Order is
    seed-major, then ``compressions`` in the given order, then strategies —
    matching the historical ``run_sweep`` execution order.

    With ``dedupe_baselines`` (default), every compression ≤ 1 entry
    collapses to a single per-seed baseline spec at compression 1.0 with
    :data:`BASELINE_STRATEGY` as placeholder strategy (no pruning happens,
    so the strategy is irrelevant); duplicate ≤1 entries in ``compressions``
    are dropped rather than re-run.  :func:`assemble_results` later
    replicates each baseline row across strategies.
    """
    if not strategies:
        raise ValueError("strategies must be non-empty")
    base = ExperimentSpec(
        model=model,
        dataset=dataset,
        strategy=strategies[0],
        compression=1.0,
        model_kwargs=model_kwargs or {},
        dataset_kwargs=dataset_kwargs or {},
        pretrain_seed=pretrain_seed,
    )
    if pretrain is not None:
        base.pretrain = pretrain
    if finetune is not None:
        base.finetune = finetune

    specs: List[ExperimentSpec] = []
    for seed in seeds:
        baseline_emitted = False
        for compression in compressions:
            if compression <= 1.0 and dedupe_baselines:
                if not baseline_emitted:
                    specs.append(
                        replace(
                            base, strategy=BASELINE_STRATEGY, compression=1.0, seed=seed
                        )
                    )
                    baseline_emitted = True
                continue
            for strat in strategies:
                specs.append(
                    replace(base, strategy=strat, compression=float(compression), seed=seed)
                )
    return specs


def assemble_results(
    specs: Sequence[ExperimentSpec],
    rows: Sequence[PruningResult],
    strategies: Sequence[str],
    replicate_baselines: bool = True,
) -> ResultSet:
    """Zip executed rows back into a :class:`ResultSet`.

    When ``replicate_baselines`` (matching ``expand_sweep``'s dedup), each
    baseline row (compression ≤ 1) is copied once per strategy so the
    ResultSet contains the full strategy × compression × seed matrix.
    """
    results = ResultSet()
    for spec, row in zip(specs, rows):
        if spec.compression <= 1.0 and replicate_baselines:
            for strat in strategies:
                clone = PruningResult.from_dict(row.to_dict())
                clone.strategy = strat
                results.add(clone)
        else:
            results.add(row)
    return results


def run_sweep(
    model: str,
    dataset: str,
    strategies: Sequence[str],
    compressions: Sequence[float] = PAPER_COMPRESSIONS,
    seeds: Sequence[int] = (0, 1, 2),
    model_kwargs: Optional[Dict] = None,
    dataset_kwargs: Optional[Dict] = None,
    pretrain: Optional[TrainConfig] = None,
    finetune: Optional[TrainConfig] = None,
    pretrain_seed: int = 0,
    progress: Optional[Callable[[str], None]] = None,
    skip_baseline_duplicates: bool = True,
    executor=None,
    cache: Optional[ResultCache] = None,
) -> ResultSet:
    """Run the full experiment matrix and collect every result.

    Compatibility wrapper over ``expand_sweep`` → executor →
    ``assemble_results``.  ``skip_baseline_duplicates`` runs compression=1
    only once per seed (it is strategy-independent: no pruning happens) and
    replicates the row per strategy, saving redundant evaluations.

    ``executor`` may be any object with ``run(specs) -> list[PruningResult]``
    (e.g. :class:`~repro.experiment.executor.ParallelExecutor`); default is a
    :class:`~repro.experiment.executor.SerialExecutor` wired to ``progress``
    and ``cache``.  Pass a :class:`ResultCache` to skip already-executed
    cells and to persist new ones for future sweeps.  ``cache`` only applies
    to the default executor — an explicitly passed executor owns its cache
    wiring, so combining the two is rejected rather than silently dropped.
    """
    specs = expand_sweep(
        model=model,
        dataset=dataset,
        strategies=strategies,
        compressions=compressions,
        seeds=seeds,
        model_kwargs=model_kwargs,
        dataset_kwargs=dataset_kwargs,
        pretrain=pretrain,
        finetune=finetune,
        pretrain_seed=pretrain_seed,
        dedupe_baselines=skip_baseline_duplicates,
    )
    if executor is None:
        executor = SerialExecutor(cache=cache, progress=progress)
    elif cache is not None:
        raise ValueError(
            "pass cache either to run_sweep or to the executor, not both"
        )
    rows = executor.run(specs)
    return assemble_results(
        specs, rows, strategies, replicate_baselines=skip_baseline_duplicates
    )
