"""Content-addressed on-disk cache for experiment results.

Every :class:`~repro.experiment.prune.ExperimentSpec` hashes to a stable key
(:func:`spec_hash`); the cache stores one JSON file per executed spec so a
sweep can skip cells it has already paid for — across invocations, across
benchmarks that share cells (e.g. Figures 13-14 reuse Figure 7's ResNet-56
sweep), and across shards of a grid split over machines.

Cache layout
------------
::

    <root>/                       default: $REPRO_ARTIFACTS/results/cache
      ab/                         first two hex chars of the spec hash
        ab12cd34ef56a789.json     one file per spec, named by the full hash

Each file holds ``{"schema": 1, "key": <hash>, "spec": {...},
"result": {...}}`` — the spec is stored alongside the result row so entries
are self-describing and auditable.  Writes are atomic (temp file in the same
directory + ``os.replace``), so concurrent workers racing on the same cell
never expose a torn file; last writer wins with identical content because
experiments are deterministic in their spec.

Invalidation is by construction: any change to the spec (model, dataset,
strategy, compression, seed, train configs) changes the hash and therefore
the file name.  Delete the directory (or call :meth:`ResultCache.clear`) to
drop everything.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from pathlib import Path
from typing import Iterator, Optional

from ..utils import artifacts_dir, atomic_write_text
from .prune import ExperimentSpec
from .results import PruningResult

__all__ = ["spec_hash", "ResultCache"]

#: bump when PruningResult/ExperimentSpec semantics change incompatibly —
#: old cache entries then miss instead of poisoning new runs.
SCHEMA_VERSION = 1


def spec_hash(spec: ExperimentSpec) -> str:
    """Deterministic content hash of everything that defines a run.

    Serializes the full spec (model + kwargs, dataset + kwargs, strategy,
    compression, seed, pretrain/finetune configs, pretrain seed) as
    canonical JSON and hashes it.  Two specs collide iff they describe the
    same experiment.
    """
    blob = json.dumps(
        {"schema": SCHEMA_VERSION, "spec": asdict(spec)},
        sort_keys=True,
        default=str,
    )
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


class ResultCache:
    """Skip-on-hit store of :class:`PruningResult` rows keyed by spec hash.

    Usage::

        cache = ResultCache()               # under artifacts/results/cache
        row = cache.get(spec)               # None on miss
        if row is None:
            row = PruningExperiment(spec).run()
            cache.put(spec, row)
    """

    def __init__(self, root=None) -> None:
        self.root = Path(root) if root is not None else artifacts_dir("results/cache")

    def path_for(self, spec: ExperimentSpec) -> Path:
        key = spec_hash(spec)
        return self.root / key[:2] / f"{key}.json"

    def contains(self, spec: ExperimentSpec) -> bool:
        return self.path_for(spec).exists()

    __contains__ = contains

    def get(self, spec: ExperimentSpec) -> Optional[PruningResult]:
        """Cached result row for ``spec``, or None on miss/corruption."""
        path = self.path_for(spec)
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(payload, dict) or payload.get("schema") != SCHEMA_VERSION:
            return None
        result = payload.get("result")
        if not isinstance(result, dict):
            return None
        return PruningResult.from_dict(result)

    def put(self, spec: ExperimentSpec, result: PruningResult) -> Path:
        """Persist one result row atomically; returns the entry path."""
        path = self.path_for(spec)
        payload = {
            "schema": SCHEMA_VERSION,
            "key": path.stem,
            "spec": asdict(spec),
            "result": result.to_dict(),
        }
        atomic_write_text(path, json.dumps(payload, indent=1, default=float))
        return path

    # -- maintenance -----------------------------------------------------
    def _entries(self) -> Iterator[Path]:
        if not self.root.exists():
            return
        yield from self.root.glob("??/*.json")

    def __len__(self) -> int:
        return sum(1 for _ in self._entries())

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        n = 0
        for path in list(self._entries()):
            path.unlink(missing_ok=True)
            n += 1
        return n
