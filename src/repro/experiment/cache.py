"""Content-addressed on-disk cache for experiment results.

Every :class:`~repro.experiment.prune.ExperimentSpec` hashes to a stable key
(:func:`spec_hash`); the cache stores one JSON file per executed spec so a
sweep can skip cells it has already paid for — across invocations, across
benchmarks that share cells (e.g. Figures 13-14 reuse Figure 7's ResNet-56
sweep), and across shards of a grid split over machines.

Cache layout
------------
::

    <root>/                       default: $REPRO_ARTIFACTS/results/cache
      ab/                         first two hex chars of the spec hash
        ab12cd34ef56a789.json     one file per spec, named by the full hash

Each file holds ``{"schema": 1, "key": <hash>, "spec": {...},
"result": {...}}`` — the spec is stored alongside the result row so entries
are self-describing and auditable.  Writes are atomic (temp file in the same
directory + ``os.replace``), so concurrent workers racing on the same cell
never expose a torn file; last writer wins with identical content because
experiments are deterministic in their spec.

Invalidation is by construction: any change to the spec (model, dataset,
strategy, compression, seed, train configs) changes the hash and therefore
the file name.  Delete the directory (or call :meth:`ResultCache.clear`) to
drop everything.

The cache is also the *result transport* for multi-machine sweeps: the
work queue (:mod:`repro.experiment.queue`, layout documented there) moves
only specs between machines, while every worker publishes its rows to a
shared cache (by default ``<queue-dir>/cache``) *before* marking the cell
done — the submitter then assembles the final table purely from hits.
Atomic writes make concurrent workers racing on one cell harmless, and
content addressing makes the rows location-independent: any machine that
can see the directory can produce or consume them.
"""

from __future__ import annotations

import hashlib
import json
import re
import time
from dataclasses import asdict
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

from ..utils import (
    artifacts_dir,
    atomic_write_text,
    canonical_json,
    restore_nonfinite,
    sanitize_nonfinite,
)
from .prune import ExperimentSpec
from .results import PruningResult

__all__ = ["spec_hash", "ResultCache", "iter_cache_entries"]

#: bump when PruningResult/ExperimentSpec semantics change incompatibly —
#: old cache entries then miss instead of poisoning new runs (and are
#: reclaimed by :meth:`ResultCache.gc`'s orphan sweep).
#: v2: ExperimentSpec gained schedule/schedule_steps (pruning schedules).
SCHEMA_VERSION = 2


def spec_hash(spec: ExperimentSpec) -> str:
    """Deterministic content hash of everything that defines a run.

    Serializes the full spec (model + kwargs, dataset + kwargs, strategy,
    compression, seed, pretrain/finetune configs, pretrain seed) as
    canonical JSON and hashes it.  Two specs collide iff they describe the
    same experiment.

    Raises ``TypeError`` for specs carrying non-JSON-native kwargs (tuples,
    sets, arbitrary objects): hashing those through a stringification hook
    would let distinct specs alias whenever their ``str()`` collides, which
    silently corrupts the content address.  Kwargs must be JSON-native;
    hash values for such specs are unchanged from earlier releases.
    """
    blob = canonical_json({"schema": SCHEMA_VERSION, "spec": asdict(spec)})
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


class ResultCache:
    """Skip-on-hit store of :class:`PruningResult` rows keyed by spec hash.

    Usage::

        cache = ResultCache()               # under artifacts/results/cache
        row = cache.get(spec)               # None on miss
        if row is None:
            row = PruningExperiment(spec).run()
            cache.put(spec, row)
    """

    def __init__(self, root=None) -> None:
        self.root = Path(root) if root is not None else artifacts_dir("results/cache")

    def path_for(self, spec: ExperimentSpec) -> Path:
        key = spec_hash(spec)
        return self.root / key[:2] / f"{key}.json"

    def contains(self, spec: ExperimentSpec) -> bool:
        return self.path_for(spec).exists()

    __contains__ = contains

    def get(self, spec: ExperimentSpec) -> Optional[PruningResult]:
        """Cached result row for ``spec``, or None on miss/corruption."""
        path = self.path_for(spec)
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(payload, dict) or payload.get("schema") != SCHEMA_VERSION:
            return None
        result = payload.get("result")
        if not isinstance(result, dict):
            return None
        return PruningResult.from_dict(restore_nonfinite(result))

    def put(self, spec: ExperimentSpec, result: PruningResult) -> Path:
        """Persist one result row atomically; returns the entry path.

        Entries are strict RFC JSON: non-finite metrics are written with the
        sentinel convention from :mod:`repro.utils.jsonio` (documented in
        docs/FORMATS.md) rather than the bare ``Infinity``/``NaN`` tokens of
        Python's default dialect, so any strict parser — including the
        binary store's ingester — can consume them.  ``get`` restores the
        sentinels; entries written by older releases still parse.
        """
        path = self.path_for(spec)
        payload = {
            "schema": SCHEMA_VERSION,
            "key": path.stem,
            "spec": asdict(spec),
            "result": result.to_dict(),
        }
        text = json.dumps(
            sanitize_nonfinite(payload), indent=1, allow_nan=False, default=float
        )
        atomic_write_text(path, text)
        return path

    # -- maintenance -----------------------------------------------------
    #: a valid entry is <2-hex-shard>/<16-hex-hash>.json with the shard
    #: equal to the hash prefix — everything else (atomic-writer temp
    #: files, stray subdirectories, hand-dropped junk) is not ours to
    #: count or delete.
    _ENTRY_NAME = re.compile(r"^[0-9a-f]{16}\.json$")

    def _entries(self) -> Iterator[Path]:
        if not self.root.exists():
            return
        for path in sorted(self.root.glob("??/*.json")):
            name = path.name
            if not self._ENTRY_NAME.match(name):
                continue
            if path.parent.name != name[:2]:
                continue
            yield path

    def __len__(self) -> int:
        return sum(1 for _ in self._entries())

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        n = 0
        for path in list(self._entries()):
            path.unlink(missing_ok=True)
            n += 1
        return n

    @staticmethod
    def _entry_schema(path: Path) -> Optional[int]:
        """The entry's schema version, or None if unreadable/torn."""
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(payload, dict):
            return None
        schema = payload.get("schema")
        return schema if isinstance(schema, int) else None

    def stats(self) -> Dict:
        """Aggregate cache statistics (for ``python -m repro cache stats``)."""
        entries = 0
        size_bytes = 0
        schemas: Dict[str, int] = {}
        for path in self._entries():
            entries += 1
            schema = self._entry_schema(path)
            key = str(schema) if schema is not None else "unreadable"
            schemas[key] = schemas.get(key, 0) + 1
            try:
                size_bytes += path.stat().st_size
            except OSError:
                pass  # raced with a concurrent delete; already counted
        stale = sum(n for key, n in schemas.items() if key != str(SCHEMA_VERSION))
        return {
            "root": str(self.root),
            "entries": entries,
            "size_bytes": size_bytes,
            "schema_version": SCHEMA_VERSION,
            "by_schema": schemas,
            "stale_entries": stale,
        }

    def gc(
        self,
        max_age: Optional[float] = None,
        max_entries: Optional[int] = None,
    ) -> Dict[str, int]:
        """Reclaim space: orphan sweep + age- and size-based eviction.

        Three passes, in order:

        1. **orphan sweep** (always): entries whose schema version differs
           from the current :data:`SCHEMA_VERSION` — including unreadable/
           torn files — can never hit again and are deleted;
        2. **age**: entries older than ``max_age`` seconds (by mtime) are
           deleted, when ``max_age`` is given;
        3. **size**: if more than ``max_entries`` remain, the oldest are
           deleted until the cap holds, when ``max_entries`` is given.

        Returns removal counts per pass plus the surviving entry count.
        Exposed on the command line as ``python -m repro cache gc``.
        """
        if max_age is not None and max_age < 0:
            raise ValueError(f"max_age must be >= 0, got {max_age}")
        if max_entries is not None and max_entries < 0:
            raise ValueError(f"max_entries must be >= 0, got {max_entries}")
        removed = {"stale": 0, "expired": 0, "evicted": 0}
        now = time.time()
        survivors: List[Tuple[float, Path]] = []
        for path in list(self._entries()):
            if self._entry_schema(path) != SCHEMA_VERSION:
                path.unlink(missing_ok=True)
                removed["stale"] += 1
                continue
            try:
                mtime = path.stat().st_mtime
            except OSError:
                continue  # raced with a concurrent delete
            if max_age is not None and now - mtime > max_age:
                path.unlink(missing_ok=True)
                removed["expired"] += 1
                continue
            survivors.append((mtime, path))
        if max_entries is not None and len(survivors) > max_entries:
            survivors.sort()  # oldest first
            excess = len(survivors) - max_entries
            for _, path in survivors[:excess]:
                path.unlink(missing_ok=True)
                removed["evicted"] += 1
            survivors = survivors[excess:]
        removed["kept"] = len(survivors)
        return removed


def iter_cache_entries(root) -> Iterator[Tuple[str, Dict]]:
    """Yield ``(key, result_row_dict)`` per readable current-schema entry.

    The shared reader behind ``ResultFrame.from_cache`` and the binary
    store's ingester: deterministic (sorted hash) order, torn/stale files
    skipped, non-finite sentinels restored.  ``key`` is the 16-hex spec
    hash (the entry's file stem).
    """
    cache = ResultCache(root)
    for path in cache._entries():
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue  # torn write or concurrent delete
        if not isinstance(payload, dict) or payload.get("schema") != SCHEMA_VERSION:
            continue
        result = payload.get("result")
        if not isinstance(result, dict):
            continue
        yield path.stem, restore_nonfinite(result)
