"""Legacy flag-style sweep CLI (superseded by ``python -m repro run``).

Kept as a thin shim over the declarative :class:`SweepConfig` path: the
flags are translated into a config object and executed through exactly the
same expand → (shard) → execute → assemble pipeline as ``python -m repro
run sweep.json``.  Usage::

    PYTHONPATH=src python -m repro.experiment.sweep \\
        --model lenet-5 --dataset cifar10 \\
        --strategies global_weight,random \\
        --compressions 1,2,4 --seeds 0,1 \\
        --workers 4 --out artifacts/results/my_sweep.json

Prefer writing the sweep down::

    python -m repro expand my_sweep.json     # inspect the grid
    python -m repro run my_sweep.json        # run it

``--emit-config PATH`` writes the equivalent SweepConfig JSON for the given
flags, as a migration helper.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .cache import ResultCache
from .config import OptimizerConfig, PAPER_COMPRESSIONS, SweepConfig, TrainConfig
from .executor import executor_for, shard_specs
from .runner import assemble_results

__all__ = ["build_parser", "main"]


def _csv(text: str) -> List[str]:
    return [t for t in (s.strip() for s in text.split(",")) if t]


def _parse_shard(text: str):
    try:
        index, total = text.split("/")
        return int(index), int(total)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"--shard must look like 'i/n' (e.g. 0/4), got {text!r}"
        ) from exc


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.experiment.sweep",
        description="Run a pruning experiment grid with caching and parallelism "
        "(legacy interface; prefer `python -m repro run sweep.json`).",
    )
    p.add_argument("--model", required=True, help="model registry name, e.g. resnet-20")
    p.add_argument("--dataset", required=True, help="dataset registry name, e.g. cifar10")
    p.add_argument("--strategies", required=True, type=_csv,
                   help="comma-separated strategy names")
    p.add_argument("--compressions", type=lambda s: [float(c) for c in _csv(s)],
                   default=list(PAPER_COMPRESSIONS),
                   help="comma-separated targets (default: 1,2,4,8,16,32)")
    p.add_argument("--seeds", type=lambda s: [int(c) for c in _csv(s)],
                   default=[0, 1, 2], help="comma-separated seeds (default: 0,1,2)")
    p.add_argument("--model-kwargs", type=json.loads, default={},
                   help="JSON dict forwarded to the model constructor")
    p.add_argument("--dataset-kwargs", type=json.loads, default={},
                   help="JSON dict forwarded to the dataset builder")
    p.add_argument("--pretrain-epochs", type=int, default=None,
                   help="override pretraining epochs (default: spec default)")
    p.add_argument("--finetune-epochs", type=int, default=None,
                   help="override fine-tuning epochs (default: spec default)")
    p.add_argument("--batch-size", type=int, default=32)
    p.add_argument("--pretrain-seed", type=int, default=0)
    p.add_argument("--schedule", default="one_shot",
                   help="pruning schedule registry name (default: one_shot)")
    p.add_argument("--schedule-steps", type=int, default=1,
                   help="prune/fine-tune rounds for iterative schedules")
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes; 1 = serial, 0 = all cores")
    p.add_argument("--queue-dir", default=None, metavar="DIR",
                   help="run through the durable work-queue executor rooted "
                        "at DIR (pair with `python -m repro worker DIR`)")
    p.add_argument("--shard", type=_parse_shard, default=None, metavar="I/N",
                   help="run only round-robin shard I of N (0-based)")
    p.add_argument("--no-cache", action="store_true",
                   help="bypass the on-disk result cache entirely")
    p.add_argument("--cache-dir", default=None,
                   help="result cache root (default: artifacts/results/cache)")
    p.add_argument("--out", default=None,
                   help="write the assembled ResultSet JSON here")
    p.add_argument("--emit-config", default=None, metavar="PATH",
                   help="write the equivalent SweepConfig JSON and exit")
    p.add_argument("--quiet", action="store_true", help="suppress progress lines")
    return p


def _train_config(epochs: Optional[int], batch_size: int, lr: float) -> Optional[TrainConfig]:
    if epochs is None:
        return None
    return TrainConfig(
        epochs=epochs,
        batch_size=batch_size,
        optimizer=OptimizerConfig("adam", lr),
        early_stop_patience=None,
    )


def config_from_args(args) -> SweepConfig:
    """The declarative equivalent of one legacy flag invocation."""
    return SweepConfig(
        model=args.model,
        dataset=args.dataset,
        strategies=tuple(args.strategies),
        compressions=tuple(args.compressions),
        seeds=tuple(args.seeds),
        model_kwargs=args.model_kwargs,
        dataset_kwargs=args.dataset_kwargs,
        pretrain=_train_config(args.pretrain_epochs, args.batch_size, 2e-3),
        finetune=_train_config(args.finetune_epochs, args.batch_size, 3e-4),
        pretrain_seed=args.pretrain_seed,
        schedule=args.schedule,
        schedule_steps=args.schedule_steps,
        executor="queue" if args.queue_dir else (
            "serial" if args.workers == 1 else "parallel"
        ),
        workers=args.workers,
        executor_options=(
            {"queue_dir": args.queue_dir} if args.queue_dir else {}
        ),
    )


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    config = config_from_args(args)
    if args.emit_config:
        path = config.save(args.emit_config)
        print(f"wrote sweep config to {path}")
        return 0

    specs = config.expand()
    if args.shard is not None:
        index, total = args.shard
        specs = shard_specs(specs, index, total)

    progress = None if args.quiet else lambda msg: print(f"  {msg}", flush=True)
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    if args.queue_dir:
        from .executor import EXECUTORS

        if args.no_cache:
            raise ValueError(
                "--no-cache cannot be combined with --queue-dir: the shared "
                "result cache is how queue workers deliver rows back"
            )
        if args.cache_dir is None:
            cache = None  # let the executor default to <queue-dir>/cache
        executor = EXECUTORS.create(
            "queue", workers=args.workers or None, cache=cache,
            progress=progress, queue_dir=args.queue_dir,
        )  # 0 ("all cores") must not mean a zero-worker coordinator here
        print(f"{len(specs)} spec(s) via work queue at {args.queue_dir}",
              flush=True)
    else:
        executor = executor_for(args.workers, cache=cache, progress=progress)
        print(f"{len(specs)} spec(s) to execute "
              f"({'serial' if args.workers == 1 else f'workers={executor.workers}'})",
              flush=True)
    rows = executor.run(specs)
    results = assemble_results(specs, rows, config.strategies)

    if args.out:
        results.save(args.out)
        print(f"wrote {len(results)} rows to {args.out}")
    else:
        for r in results:
            print(f"{r.strategy:16s} c={r.compression:<5g} seed={r.seed} "
                  f"top1={r.top1:.3f} (Δ{r.delta_top1:+.3f}) "
                  f"actual={r.actual_compression:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
