"""Command-line sweep driver: expand → (shard) → execute → save.

Runs an experiment grid through the cached executor layer from a shell,
with parallel fan-out and multi-machine sharding.  Usage::

    PYTHONPATH=src python -m repro.experiment.sweep \\
        --model lenet-5 --dataset cifar10 \\
        --strategies global_weight,random \\
        --compressions 1,2,4 --seeds 0,1 \\
        --model-kwargs '{"input_size": 16, "in_channels": 3}' \\
        --dataset-kwargs '{"n_train": 512, "n_val": 192, "size": 16}' \\
        --pretrain-epochs 4 --finetune-epochs 2 \\
        --workers 4 --out artifacts/results/my_sweep.json

Splitting one grid across machines (cells land in the shared result cache;
the final merge run completes from cache hits alone)::

    machine A:  ... --shard 0/2
    machine B:  ... --shard 1/2
    afterwards: ...              # no --shard: assembles the full ResultSet

``--workers 1`` (the default) runs serially; ``--workers 0`` means "all
cores".  ``--no-cache`` forces every cell to re-run.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .cache import ResultCache
from .config import OptimizerConfig, TrainConfig
from .executor import executor_for, shard_specs
from .runner import PAPER_COMPRESSIONS, assemble_results, expand_sweep

__all__ = ["build_parser", "main"]


def _csv(text: str) -> List[str]:
    return [t for t in (s.strip() for s in text.split(",")) if t]


def _parse_shard(text: str):
    try:
        index, total = text.split("/")
        return int(index), int(total)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"--shard must look like 'i/n' (e.g. 0/4), got {text!r}"
        ) from exc


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.experiment.sweep",
        description="Run a pruning experiment grid with caching and parallelism.",
    )
    p.add_argument("--model", required=True, help="model registry name, e.g. resnet-20")
    p.add_argument("--dataset", required=True, help="dataset registry name, e.g. cifar10")
    p.add_argument("--strategies", required=True, type=_csv,
                   help="comma-separated strategy names")
    p.add_argument("--compressions", type=lambda s: [float(c) for c in _csv(s)],
                   default=list(PAPER_COMPRESSIONS),
                   help="comma-separated targets (default: 1,2,4,8,16,32)")
    p.add_argument("--seeds", type=lambda s: [int(c) for c in _csv(s)],
                   default=[0, 1, 2], help="comma-separated seeds (default: 0,1,2)")
    p.add_argument("--model-kwargs", type=json.loads, default={},
                   help="JSON dict forwarded to the model constructor")
    p.add_argument("--dataset-kwargs", type=json.loads, default={},
                   help="JSON dict forwarded to the dataset builder")
    p.add_argument("--pretrain-epochs", type=int, default=None,
                   help="override pretraining epochs (default: spec default)")
    p.add_argument("--finetune-epochs", type=int, default=None,
                   help="override fine-tuning epochs (default: spec default)")
    p.add_argument("--batch-size", type=int, default=32)
    p.add_argument("--pretrain-seed", type=int, default=0)
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes; 1 = serial, 0 = all cores")
    p.add_argument("--shard", type=_parse_shard, default=None, metavar="I/N",
                   help="run only round-robin shard I of N (0-based)")
    p.add_argument("--no-cache", action="store_true",
                   help="bypass the on-disk result cache entirely")
    p.add_argument("--cache-dir", default=None,
                   help="result cache root (default: artifacts/results/cache)")
    p.add_argument("--out", default=None,
                   help="write the assembled ResultSet JSON here")
    p.add_argument("--quiet", action="store_true", help="suppress progress lines")
    return p


def _train_config(epochs: Optional[int], batch_size: int, lr: float) -> Optional[TrainConfig]:
    if epochs is None:
        return None
    return TrainConfig(
        epochs=epochs,
        batch_size=batch_size,
        optimizer=OptimizerConfig("adam", lr),
        early_stop_patience=None,
    )


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    specs = expand_sweep(
        model=args.model,
        dataset=args.dataset,
        strategies=args.strategies,
        compressions=args.compressions,
        seeds=args.seeds,
        model_kwargs=args.model_kwargs,
        dataset_kwargs=args.dataset_kwargs,
        pretrain=_train_config(args.pretrain_epochs, args.batch_size, 2e-3),
        finetune=_train_config(args.finetune_epochs, args.batch_size, 3e-4),
        pretrain_seed=args.pretrain_seed,
    )
    if args.shard is not None:
        index, total = args.shard
        specs = shard_specs(specs, index, total)

    progress = None if args.quiet else lambda msg: print(f"  {msg}", flush=True)
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    executor = executor_for(args.workers, cache=cache, progress=progress)

    print(f"{len(specs)} spec(s) to execute "
          f"({'serial' if args.workers == 1 else f'workers={executor.workers}'})",
          flush=True)
    rows = executor.run(specs)
    results = assemble_results(specs, rows, args.strategies)

    if args.out:
        results.save(args.out)
        print(f"wrote {len(results)} rows to {args.out}")
    else:
        for r in results:
            print(f"{r.strategy:16s} c={r.compression:<5g} seed={r.seed} "
                  f"top1={r.top1:.3f} (Δ{r.delta_top1:+.3f}) "
                  f"actual={r.actual_compression:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
