"""Global seed fixing (Appendix C: "ShrinkBench fixes random seeds for all
the dependencies (PyTorch, NumPy, Python)").

Most components in this library take explicit seeds or Generators (the
stronger guarantee), but global fixing is provided for parity with
ShrinkBench and to tame any library code that consults the legacy global
RNGs.
"""

from __future__ import annotations

import random

import numpy as np

__all__ = ["fix_seeds"]


def fix_seeds(seed: int = 42) -> None:
    """Seed Python's and NumPy's global RNGs."""
    random.seed(seed)
    np.random.seed(seed % (2**32))
