"""Dataset registry for experiments.

Experiments and benchmarks reference datasets by name + kwargs so that a
result row fully identifies its data — the paper's first recommendation
("identify the exact sets of architectures, datasets, and metrics used ...
in a structured way").
"""

from __future__ import annotations

from typing import Callable, Dict

from ..data import SyntheticCIFAR10, SyntheticImageNet, SyntheticMNIST

__all__ = ["DATASET_REGISTRY", "build_dataset", "available_datasets"]

DATASET_REGISTRY: Dict[str, Callable] = {
    "cifar10": SyntheticCIFAR10,
    "imagenet": SyntheticImageNet,
    "mnist": SyntheticMNIST,
}


def build_dataset(name: str, **kwargs):
    """Instantiate a dataset bundle (train/val + transforms) by name."""
    if name not in DATASET_REGISTRY:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(DATASET_REGISTRY)}"
        )
    return DATASET_REGISTRY[name](**kwargs)


def available_datasets():
    return sorted(DATASET_REGISTRY)
