"""Dataset registry for experiments.

Experiments and benchmarks reference datasets by name + kwargs so that a
result row fully identifies its data — the paper's first recommendation
("identify the exact sets of architectures, datasets, and metrics used ...
in a structured way").

``DATASETS`` is the shared :class:`repro.registry.Registry` instance;
register custom bundles with ``@DATASETS.register("my-data")`` and
instantiate them with ``DATASETS.create("my-data", **kwargs)``.
``build_dataset`` / ``DATASET_REGISTRY`` are the historical entry points,
kept as thin aliases.
"""

from __future__ import annotations

from ..data import SyntheticCIFAR10, SyntheticImageNet, SyntheticMNIST
from ..registry import Registry, warn_deprecated

__all__ = ["DATASETS", "DATASET_REGISTRY", "build_dataset", "available_datasets"]

DATASETS = Registry(
    "dataset",
    {
        "cifar10": SyntheticCIFAR10,
        "imagenet": SyntheticImageNet,
        "mnist": SyntheticMNIST,
    },
)

#: historical dict-style alias — the same object as ``DATASETS``
DATASET_REGISTRY = DATASETS


def build_dataset(name: str, **kwargs):
    """Deprecated: use :meth:`DATASETS.create` instead."""
    warn_deprecated(
        "repro.experiment.build_dataset", "repro.experiment.DATASETS.create"
    )
    return DATASETS.create(name, **kwargs)


def available_datasets():
    return DATASETS.available()
