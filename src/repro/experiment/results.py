"""Experiment results: records, persistence, aggregation.

Implements the paper's reporting recommendations (§6): every result row
carries raw accuracy (not just deltas), both compression ratio and
theoretical speedup, Top-1 and Top-5, the unpruned control, and the seed —
so means and standard deviations across seeds are always computable.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

__all__ = ["PruningResult", "ResultSet", "CurvePoint", "aggregate_curve"]


@dataclass
class PruningResult:
    """One (model, dataset, strategy, compression, seed) outcome."""

    model: str
    dataset: str
    strategy: str
    compression: float  # target whole-model compression
    seed: int
    # -- size / compute metrics --------------------------------------------
    actual_compression: float = 1.0
    theoretical_speedup: float = 1.0
    total_params: int = 0
    nonzero_params: int = 0
    dense_flops: float = 0.0
    effective_flops: float = 0.0
    # -- quality metrics -----------------------------------------------------
    baseline_top1: float = 0.0  # unpruned control (the same initial model)
    baseline_top5: float = 0.0
    pre_finetune_top1: float = 0.0
    pre_finetune_top5: float = 0.0
    top1: float = 0.0  # after fine-tuning
    top5: float = 0.0
    # -- provenance ---------------------------------------------------------
    pretrained_key: str = ""
    finetune_epochs_ran: int = 0
    extra: Dict = field(default_factory=dict)

    @property
    def delta_top1(self) -> float:
        """Change in Top-1 vs the unpruned control (§4.5 near-universal metric)."""
        return self.top1 - self.baseline_top1

    def to_dict(self) -> Dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: Dict) -> "PruningResult":
        known = {k: d[k] for k in cls.__dataclass_fields__ if k in d}
        return cls(**known)


class ResultSet:
    """A collection of :class:`PruningResult` with query/aggregate helpers."""

    def __init__(self, results: Optional[Iterable[PruningResult]] = None) -> None:
        self.results: List[PruningResult] = list(results or [])

    # -- collection ---------------------------------------------------------
    def add(self, result: PruningResult) -> None:
        self.results.append(result)

    def extend(self, other: "ResultSet") -> None:
        self.results.extend(other.results)

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[PruningResult]:
        return iter(self.results)

    # -- queries -------------------------------------------------------------
    def filter(self, **conditions) -> "ResultSet":
        """Subset where every attribute equals the given value."""
        out = [
            r
            for r in self.results
            if all(getattr(r, k) == v for k, v in conditions.items())
        ]
        return ResultSet(out)

    def strategies(self) -> List[str]:
        return sorted({r.strategy for r in self.results})

    def compressions(self) -> List[float]:
        return sorted({r.compression for r in self.results})

    def seeds(self) -> List[int]:
        return sorted({r.seed for r in self.results})

    # -- persistence -----------------------------------------------------------
    def save(self, path) -> None:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps([r.to_dict() for r in self.results], indent=1, default=float)
        )

    @classmethod
    def load(cls, path) -> "ResultSet":
        data = json.loads(Path(path).read_text())
        return cls(PruningResult.from_dict(d) for d in data)


@dataclass
class CurvePoint:
    """One x-position of a tradeoff curve, aggregated over seeds."""

    x: float
    mean: float
    std: float
    n: int


def aggregate_curve(
    results: Iterable[PruningResult],
    x_attr: str = "compression",
    y_attr: str = "top1",
) -> List[CurvePoint]:
    """Group by x, compute mean ± sample std over seeds (§6: report both)."""
    groups: Dict[float, List[float]] = {}
    for r in results:
        groups.setdefault(float(getattr(r, x_attr)), []).append(
            float(getattr(r, y_attr))
        )
    points = []
    for x in sorted(groups):
        ys = np.asarray(groups[x], dtype=np.float64)
        std = float(ys.std(ddof=1)) if len(ys) > 1 else 0.0
        points.append(CurvePoint(x=x, mean=float(ys.mean()), std=std, n=len(ys)))
    return points
