"""Experiment results: records, persistence, aggregation.

Implements the paper's reporting recommendations (§6): every result row
carries raw accuracy (not just deltas), both compression ratio and
theoretical speedup, Top-1 and Top-5, the unpruned control, and the seed —
so means and standard deviations across seeds are always computable.

:class:`PruningResult` (the row) and :class:`ResultSet` (the transport
container: collect/persist/load) are the stable interchange format; the
*analysis* surface — filtering, grouping, aggregation, curves — lives in
the columnar :class:`repro.analysis.ResultFrame`.  ``ResultSet.filter``
and :func:`aggregate_curve` are kept as thin warn-once shims over the
frame, like the PR 2 registry shims.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from ..registry import warn_deprecated

__all__ = ["PruningResult", "ResultSet", "CurvePoint", "aggregate_curve"]


@dataclass
class PruningResult:
    """One (model, dataset, strategy, compression, seed) outcome."""

    model: str
    dataset: str
    strategy: str
    compression: float  # target whole-model compression
    seed: int
    # -- size / compute metrics --------------------------------------------
    actual_compression: float = 1.0
    theoretical_speedup: float = 1.0
    total_params: int = 0
    nonzero_params: int = 0
    dense_flops: float = 0.0
    effective_flops: float = 0.0
    # -- quality metrics -----------------------------------------------------
    baseline_top1: float = 0.0  # unpruned control (the same initial model)
    baseline_top5: float = 0.0
    pre_finetune_top1: float = 0.0
    pre_finetune_top5: float = 0.0
    top1: float = 0.0  # after fine-tuning
    top5: float = 0.0
    # -- provenance ---------------------------------------------------------
    pretrained_key: str = ""
    finetune_epochs_ran: int = 0
    extra: Dict = field(default_factory=dict)

    @property
    def delta_top1(self) -> float:
        """Change in Top-1 vs the unpruned control (§4.5 near-universal metric)."""
        return self.top1 - self.baseline_top1

    def to_dict(self) -> Dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: Dict) -> "PruningResult":
        known = {k: d[k] for k in cls.__dataclass_fields__ if k in d}
        return cls(**known)


class ResultSet:
    """A collection of :class:`PruningResult` with query/aggregate helpers."""

    def __init__(self, results: Optional[Iterable[PruningResult]] = None) -> None:
        self.results: List[PruningResult] = list(results or [])

    # -- collection ---------------------------------------------------------
    def add(self, result: PruningResult) -> None:
        self.results.append(result)

    def extend(self, other: "ResultSet") -> None:
        self.results.extend(other.results)

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[PruningResult]:
        return iter(self.results)

    # -- queries -------------------------------------------------------------
    def to_frame(self):
        """The columnar :class:`repro.analysis.ResultFrame` over these rows."""
        from ..analysis.frame import ResultFrame

        return ResultFrame.from_results(self)

    def filter(self, **conditions) -> "ResultSet":
        """Deprecated: subset where every attribute equals the given value.

        Thin shim over :meth:`repro.analysis.ResultFrame.filter` (which
        also supports sequence membership and predicates); kept so seed-era
        call sites keep working.  Returns the *same* row objects, not
        copies.
        """
        warn_deprecated(
            "repro.experiment.ResultSet.filter",
            "repro.analysis.ResultFrame.filter",
        )
        try:
            mask = self.to_frame().mask(**conditions)
            return ResultSet(
                self.results[i] for i in np.nonzero(mask)[0]
            )
        except KeyError:
            # non-column attribute (e.g. a custom property): old slow path
            out = [
                r
                for r in self.results
                if all(getattr(r, k) == v for k, v in conditions.items())
            ]
            return ResultSet(out)

    def strategies(self) -> List[str]:
        return sorted({r.strategy for r in self.results})

    def compressions(self) -> List[float]:
        return sorted({r.compression for r in self.results})

    def seeds(self) -> List[int]:
        return sorted({r.seed for r in self.results})

    # -- persistence -----------------------------------------------------------
    def save(self, path) -> None:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps([r.to_dict() for r in self.results], indent=1, default=float)
        )

    @classmethod
    def load(cls, path) -> "ResultSet":
        data = json.loads(Path(path).read_text())
        return cls(PruningResult.from_dict(d) for d in data)


@dataclass
class CurvePoint:
    """One x-position of a tradeoff curve, aggregated over seeds."""

    x: float
    mean: float
    std: float
    n: int


def aggregate_curve(
    results: Iterable[PruningResult],
    x_attr: str = "compression",
    y_attr: str = "top1",
) -> List[CurvePoint]:
    """Deprecated: group by x, mean ± sample std over seeds (§6).

    Thin warn-once shim over :meth:`repro.analysis.ResultFrame.curve`,
    which is where the aggregation now lives (and where Pareto frontiers,
    group-bys and the baseline join live alongside it).
    """
    warn_deprecated(
        "repro.experiment.aggregate_curve", "repro.analysis.ResultFrame.curve"
    )
    from ..analysis.frame import ResultFrame

    return ResultFrame.from_results(results).curve(x=x_attr, y=y_attr)
