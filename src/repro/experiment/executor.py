"""Executors: run a list of ExperimentSpecs serially or across processes.

The experiment matrix (strategies × compressions × seeds, §6/Appendix C.1)
is embarrassingly parallel at the cell level: each spec is self-contained
and deterministic.  Executors exploit that:

* :class:`SerialExecutor` — one process, specs in order.  The reference
  implementation; the parallel path must match it row for row.
* :class:`ParallelExecutor` — fan-out over a
  :class:`concurrent.futures.ProcessPoolExecutor` (default workers =
  ``os.cpu_count()``), with completion-order progress callbacks.

Both dedupe identical specs within a run, consult an optional
:class:`~repro.experiment.cache.ResultCache` for skip-on-hit / resume, and
return rows aligned with the input spec order, so ``ParallelExecutor`` is a
drop-in replacement for ``SerialExecutor``.  Any pruned cell that executes
also yields its unpruned-control row (see
:attr:`~repro.experiment.prune.PruningExperiment.baseline_result`), which is
cached under the baseline spec's hash — so a shard that holds only pruned
cells still contributes baselines, and the merge run completes from hits.

Executors are registered in the ``EXECUTORS``
:class:`~repro.registry.Registry` ("serial", "parallel", "queue") and share
the constructor signature ``(workers, cache, progress, on_event)`` — the
seam where new executors plug in without touching the sweep layer.  The
durable multi-machine ``"queue"`` executor lives in
:mod:`repro.experiment.queue` (shared-directory work queue + ``python -m
repro worker`` processes).

Progress is reported two ways: ``progress`` receives plain one-line strings
(legacy), ``on_event`` receives structured :class:`ProgressEvent` records
carrying ``(done, total, elapsed)`` plus the per-worker completion count.

For grids too big for one machine, :func:`shard_specs` splits a spec list
round-robin (``--shard i/n`` in the CLI); shards share work through the
cache, and a final unsharded invocation assembles the full ResultSet from
hits.
"""

from __future__ import annotations

import os
import time
import traceback
from concurrent.futures import (
    FIRST_COMPLETED,
    CancelledError,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..kernels import resolve_backend, use_backend
from ..models.pretrained import load_checkpoint, pretrained_key
from ..registry import Registry
from .cache import ResultCache, spec_hash
from .prune import ExperimentSpec, PruningExperiment, baseline_spec_for
from .results import PruningResult

__all__ = [
    "EXECUTORS",
    "ProgressEvent",
    "SerialExecutor",
    "ParallelExecutor",
    "executor_for",
    "shard_specs",
    "spec_label",
]

ProgressFn = Callable[[str], None]

EXECUTORS = Registry("executor")


@dataclass(frozen=True)
class ProgressEvent:
    """One structured progress tick from an executor.

    Attributes
    ----------
    kind:
        ``"start"`` (a cell began executing), ``"done"`` (a cell finished),
        ``"cache-hit"`` (a cell was satisfied from the result cache),
        ``"pretrain"`` (a shared checkpoint is being warmed), or
        ``"failed"`` (a cell raised; ``failure`` carries the traceback).
    label:
        Human-readable cell label (:func:`spec_label`).
    done, total:
        Cells completed so far (cache hits included) out of the run's total.
    elapsed:
        Seconds since the executor's ``run()`` started.
    worker:
        Worker slot that produced the event; ``None`` for parent-process
        work (cache hits, serial pre-warm).
    worker_done:
        Cells completed by that worker so far (0 for parent events).
    failure:
        For ``kind="failed"`` events: the cell's captured traceback (for
        process-pool cells this includes the remote worker's traceback, so
        the error's origin survives the process boundary).  None otherwise.
    """

    kind: str
    label: str
    done: int
    total: int
    elapsed: float
    worker: Optional[int] = None
    worker_done: int = 0
    failure: Optional[str] = None


EventFn = Callable[[ProgressEvent], None]


def spec_label(spec: ExperimentSpec) -> str:
    """Human-readable one-line label for progress output."""
    if spec.compression <= 1.0:
        return f"[seed {spec.seed}] baseline (compression 1)"
    return f"[seed {spec.seed}] {spec.strategy} @ {spec.compression:g}x"


def shard_specs(
    specs: Sequence[ExperimentSpec], index: int, total: int
) -> List[ExperimentSpec]:
    """Round-robin shard ``index`` of ``total`` (0-based), for multi-machine
    splits.  Round-robin (rather than contiguous blocks) balances load when
    cost varies systematically along the grid (e.g. low compressions
    fine-tune longer)."""
    if total < 1:
        raise ValueError(f"shard count must be >= 1, got {total}")
    if not 0 <= index < total:
        raise ValueError(f"shard index must be in [0, {total}), got {index}")
    return list(specs[index::total])


def executor_for(
    workers: Optional[int],
    cache: Optional[ResultCache] = None,
    progress: Optional[ProgressFn] = None,
    on_event: Optional[EventFn] = None,
    kernel_backend: Optional[str] = None,
) -> "_ExecutorBase":
    """Executor matching a worker count: 1 → serial, 0/None → all cores,
    N → N-process fan-out.  The one place flag/env worker counts map to an
    executor, shared by the CLI, benchmarks, and examples."""
    if workers is not None and workers < 0:
        raise ValueError(f"workers must be >= 0 (0 = all cores), got {workers}")
    name = "serial" if workers == 1 else "parallel"
    return EXECUTORS.create(
        name, workers=workers or None, cache=cache, progress=progress,
        on_event=on_event, kernel_backend=kernel_backend,
    )


def _run_spec(spec: ExperimentSpec) -> Tuple[PruningResult, Optional[PruningResult]]:
    """Execute one spec; returns (row, synthesized baseline row or None)."""
    experiment = PruningExperiment(spec)
    row = experiment.run()
    return row, experiment.baseline_result


def _run_spec_tagged(
    spec: ExperimentSpec,
    kernel_backend: Optional[str] = None,
) -> Tuple[int, PruningResult, Optional[PruningResult]]:
    """Worker entry point: (worker pid, row, baseline) — module-level for
    pickling; the pid lets the parent attribute progress per worker.  The
    kernel backend travels by name so pool children compute with the same
    kernels the parent was configured with."""
    with use_backend(kernel_backend):
        row, baseline = _run_spec(spec)
    return os.getpid(), row, baseline


def _copy_row(row: PruningResult) -> PruningResult:
    return PruningResult.from_dict(row.to_dict())


class _ExecutorBase:
    """Shared cache/dedupe/progress plumbing for all executors.

    ``kernel_backend`` selects the compute-kernel backend cells run under
    (``None`` defers to ``REPRO_KERNEL_BACKEND`` / the process default —
    the env < config < CLI precedence documented in :mod:`repro.kernels`).
    """

    def __init__(
        self,
        workers: Optional[int] = 1,
        cache: Optional[ResultCache] = None,
        progress: Optional[ProgressFn] = None,
        on_event: Optional[EventFn] = None,
        kernel_backend: Optional[str] = None,
    ) -> None:
        self.workers = workers or 1
        self.cache = cache
        self.progress = progress
        self.on_event = on_event
        if kernel_backend is not None:
            resolve_backend(kernel_backend)  # fail fast on unknown names
        self.kernel_backend = kernel_backend

    def _emit(
        self,
        spec: ExperimentSpec,
        suffix: str = "",
        *,
        kind: str = "done",
        done: int = 0,
        total: int = 0,
        started: float = 0.0,
        worker: Optional[int] = None,
        worker_done: int = 0,
        failure: Optional[str] = None,
    ) -> None:
        if self.progress:
            self.progress(spec_label(spec) + suffix)
        if self.on_event:
            self.on_event(
                ProgressEvent(
                    kind=kind,
                    label=spec_label(spec),
                    done=done,
                    total=total,
                    elapsed=time.monotonic() - started,
                    worker=worker,
                    worker_done=worker_done,
                    failure=failure,
                )
            )

    def _dedupe(
        self, specs: Sequence[ExperimentSpec]
    ) -> Dict[str, List[int]]:
        """Map spec hash → every input position holding that spec."""
        groups: Dict[str, List[int]] = {}
        for i, spec in enumerate(specs):
            groups.setdefault(spec_hash(spec), []).append(i)
        return groups

    @staticmethod
    def _fill(rows: List[Optional[PruningResult]], idxs: List[int], row: PruningResult) -> None:
        rows[idxs[0]] = row
        for i in idxs[1:]:  # duplicates get independent copies
            rows[i] = _copy_row(row)

    def _cache_put(
        self,
        spec: ExperimentSpec,
        row: PruningResult,
        baseline: Optional[PruningResult],
    ) -> None:
        """Persist a computed row, plus its free unpruned-control row.

        Every pruned cell evaluates the baseline anyway, so caching the
        synthesized row means shards holding only pruned cells still leave
        baselines behind for the merge run (ROADMAP: shard-aware baseline
        replication).
        """
        if self.cache is None:
            return
        self.cache.put(spec, row)
        if baseline is not None:
            bspec = baseline_spec_for(spec)
            if not self.cache.contains(bspec):
                self.cache.put(bspec, baseline)

    def run(self, specs: Sequence[ExperimentSpec]) -> List[PruningResult]:
        raise NotImplementedError


@EXECUTORS.register("serial")
class SerialExecutor(_ExecutorBase):
    """Run specs one after another in the current process."""

    def run(self, specs: Sequence[ExperimentSpec]) -> List[PruningResult]:
        with use_backend(self.kernel_backend):
            return self._run(specs)

    def _run(self, specs: Sequence[ExperimentSpec]) -> List[PruningResult]:
        started = time.monotonic()
        rows: List[Optional[PruningResult]] = [None] * len(specs)
        done = 0
        for idxs in self._dedupe(specs).values():
            spec = specs[idxs[0]]
            row = self.cache.get(spec) if self.cache is not None else None
            if row is not None:
                done += len(idxs)
                self._emit(
                    spec, " [cache hit]", kind="cache-hit", done=done,
                    total=len(specs), started=started, worker=None,
                )
            else:
                self._emit(
                    spec, kind="start", done=done, total=len(specs),
                    started=started, worker=0, worker_done=done,
                )
                try:
                    row, baseline = _run_spec(spec)
                except Exception:
                    # surface the traceback on the event stream before the
                    # raise unwinds the sweep: callers watching events see
                    # which cell died and why even if they swallow the error
                    self._emit(
                        spec, " [failed]", kind="failed", done=done,
                        total=len(specs), started=started, worker=0,
                        worker_done=done, failure=traceback.format_exc(),
                    )
                    raise
                self._cache_put(spec, row, baseline)
                done += len(idxs)
                if self.on_event:
                    self.on_event(
                        ProgressEvent(
                            kind="done", label=spec_label(spec), done=done,
                            total=len(specs),
                            elapsed=time.monotonic() - started,
                            worker=0, worker_done=done,
                        )
                    )
            self._fill(rows, idxs, row)
        return rows  # type: ignore[return-value]


@EXECUTORS.register("parallel")
class ParallelExecutor(_ExecutorBase):
    """Fan specs out over worker processes (spec-level parallelism).

    Cache hits are resolved in the parent before any worker spawns; only
    misses are submitted.  Results are cached by the parent as futures
    complete, so a crash mid-sweep loses at most the in-flight cells —
    rerunning resumes from the cache.

    Missing pretrained checkpoints shared by several pending specs are
    trained once in the parent first (the checkpoint store is keyed by the
    pretraining config, §7.3), so N workers never redundantly pretrain the
    same initial model.  Checkpoint writes are atomic either way, so even a
    direct race is safe — just wasteful.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        progress: Optional[ProgressFn] = None,
        on_event: Optional[EventFn] = None,
        warm_pretrained: bool = True,
        kernel_backend: Optional[str] = None,
    ) -> None:
        super().__init__(
            workers=workers if workers else (os.cpu_count() or 1),
            cache=cache,
            progress=progress,
            on_event=on_event,
            kernel_backend=kernel_backend,
        )
        self.warm_pretrained = warm_pretrained

    def _pretrain_key(self, spec: ExperimentSpec) -> str:
        return pretrained_key(
            spec.model,
            spec.model_kwargs,
            spec.dataset,
            spec.dataset_kwargs,
            spec.pretrain.to_dict(),
            spec.pretrain_seed,
        )

    def _warm_checkpoints(
        self, specs: Sequence[ExperimentSpec], total: int, started: float
    ) -> None:
        seen: Dict[str, ExperimentSpec] = {}
        for spec in specs:
            seen.setdefault(self._pretrain_key(spec), spec)
        for key, spec in seen.items():
            if load_checkpoint(key) is None:
                if self.progress:
                    self.progress(f"pretraining shared checkpoint {key}")
                if self.on_event:
                    self.on_event(
                        ProgressEvent(
                            kind="pretrain", label=key, done=0, total=total,
                            elapsed=time.monotonic() - started, worker=None,
                        )
                    )
                PruningExperiment(spec).load_pretrained()

    def run(self, specs: Sequence[ExperimentSpec]) -> List[PruningResult]:
        # Parent-side work (checkpoint warming, cache fills) honors the
        # backend too; pool children receive it by name via _run_spec_tagged.
        with use_backend(self.kernel_backend):
            return self._run_parallel(specs)

    def _run_parallel(self, specs: Sequence[ExperimentSpec]) -> List[PruningResult]:
        started = time.monotonic()
        total = len(specs)
        rows: List[Optional[PruningResult]] = [None] * total
        pending: Dict[str, List[int]] = {}
        done = 0
        for h, idxs in self._dedupe(specs).items():
            spec = specs[idxs[0]]
            row = self.cache.get(spec) if self.cache is not None else None
            if row is not None:
                done += len(idxs)
                self._emit(
                    spec, " [cache hit]", kind="cache-hit", done=done,
                    total=total, started=started, worker=None,
                )
                self._fill(rows, idxs, row)
            else:
                pending[h] = idxs
        if not pending:
            return rows  # type: ignore[return-value]

        miss_specs = [specs[idxs[0]] for idxs in pending.values()]
        if self.warm_pretrained:
            self._warm_checkpoints(miss_specs, total, started)

        n_workers = min(self.workers, len(miss_specs))
        if n_workers <= 1:  # no point forking for a single pending spec
            serial = SerialExecutor(
                cache=self.cache, progress=self.progress,
                on_event=self.on_event, kernel_backend=self.kernel_backend,
            )
            miss_rows = serial.run(miss_specs)
            for idxs, row in zip(pending.values(), miss_rows):
                self._fill(rows, idxs, row)
            return rows  # type: ignore[return-value]

        worker_slots: Dict[int, int] = {}  # pid → stable worker index
        worker_done: Dict[int, int] = {}  # worker index → cells completed
        first_error: Optional[BaseException] = None
        with ProcessPoolExecutor(max_workers=n_workers) as pool:
            future_to_idxs = {
                pool.submit(_run_spec_tagged, spec, self.kernel_backend): idxs
                for spec, idxs in zip(miss_specs, pending.values())
            }
            not_done = set(future_to_idxs)
            while not_done:
                finished, not_done = wait(not_done, return_when=FIRST_COMPLETED)
                for fut in finished:
                    idxs = future_to_idxs[fut]
                    spec = specs[idxs[0]]
                    try:
                        pid, row, baseline = fut.result()
                    except BaseException as exc:  # noqa: BLE001 — re-raised below
                        # Keep draining: cells already completed (or still
                        # running) must reach the cache so a rerun only
                        # re-pays the failed/cancelled ones.  Queued cells
                        # are cancelled rather than run-and-discarded.
                        # ProcessPoolExecutor re-raises with the remote
                        # traceback chained as __cause__; format the chain
                        # so the failure event names the worker-side origin
                        # rather than just this fut.result() line.
                        if not isinstance(exc, CancelledError):
                            self._emit(
                                spec, " [failed]", kind="failed", done=done,
                                total=total, started=started,
                                failure="".join(traceback.format_exception(
                                    type(exc), exc, exc.__traceback__
                                )),
                            )
                        if first_error is None:
                            first_error = exc
                            for pending_fut in not_done:
                                pending_fut.cancel()
                        continue
                    self._cache_put(spec, row, baseline)
                    slot = worker_slots.setdefault(pid, len(worker_slots))
                    worker_done[slot] = worker_done.get(slot, 0) + len(idxs)
                    done += len(idxs)
                    self._emit(
                        spec, " [done]", kind="done", done=done, total=total,
                        started=started, worker=slot,
                        worker_done=worker_done[slot],
                    )
                    self._fill(rows, idxs, row)
        if first_error is not None:
            raise first_error
        return rows  # type: ignore[return-value]
