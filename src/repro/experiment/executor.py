"""Executors: run a list of ExperimentSpecs serially or across processes.

The experiment matrix (strategies × compressions × seeds, §6/Appendix C.1)
is embarrassingly parallel at the cell level: each spec is self-contained
and deterministic.  Executors exploit that:

* :class:`SerialExecutor` — one process, specs in order.  The reference
  implementation; the parallel path must match it row for row.
* :class:`ParallelExecutor` — fan-out over a
  :class:`concurrent.futures.ProcessPoolExecutor` (default workers =
  ``os.cpu_count()``), with completion-order progress callbacks.

Both dedupe identical specs within a run, consult an optional
:class:`~repro.experiment.cache.ResultCache` for skip-on-hit / resume, and
return rows aligned with the input spec order, so ``ParallelExecutor`` is a
drop-in replacement for ``SerialExecutor``.

For grids too big for one machine, :func:`shard_specs` splits a spec list
round-robin (``--shard i/n`` in the sweep CLI); shards share work through
the cache, and a final unsharded invocation assembles the full ResultSet
from hits.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Callable, Dict, List, Optional, Sequence

from ..models.pretrained import load_checkpoint, pretrained_key
from .cache import ResultCache, spec_hash
from .prune import ExperimentSpec, PruningExperiment
from .results import PruningResult

__all__ = [
    "SerialExecutor",
    "ParallelExecutor",
    "executor_for",
    "shard_specs",
    "spec_label",
]

ProgressFn = Callable[[str], None]


def spec_label(spec: ExperimentSpec) -> str:
    """Human-readable one-line label for progress output."""
    if spec.compression <= 1.0:
        return f"[seed {spec.seed}] baseline (compression 1)"
    return f"[seed {spec.seed}] {spec.strategy} @ {spec.compression:g}x"


def shard_specs(
    specs: Sequence[ExperimentSpec], index: int, total: int
) -> List[ExperimentSpec]:
    """Round-robin shard ``index`` of ``total`` (0-based), for multi-machine
    splits.  Round-robin (rather than contiguous blocks) balances load when
    cost varies systematically along the grid (e.g. low compressions
    fine-tune longer)."""
    if total < 1:
        raise ValueError(f"shard count must be >= 1, got {total}")
    if not 0 <= index < total:
        raise ValueError(f"shard index must be in [0, {total}), got {index}")
    return list(specs[index::total])


def executor_for(
    workers: Optional[int],
    cache: Optional[ResultCache] = None,
    progress: Optional[ProgressFn] = None,
) -> "_ExecutorBase":
    """Executor matching a worker count: 1 → serial, 0/None → all cores,
    N → N-process fan-out.  The one place flag/env worker counts map to an
    executor, shared by the CLI, benchmarks, and examples."""
    if workers is not None and workers < 0:
        raise ValueError(f"workers must be >= 0 (0 = all cores), got {workers}")
    if workers == 1:
        return SerialExecutor(cache=cache, progress=progress)
    return ParallelExecutor(workers=workers or None, cache=cache, progress=progress)


def _run_spec(spec: ExperimentSpec) -> PruningResult:
    """Worker entry point: execute one spec (module-level for pickling)."""
    return PruningExperiment(spec).run()


def _copy_row(row: PruningResult) -> PruningResult:
    return PruningResult.from_dict(row.to_dict())


class _ExecutorBase:
    """Shared cache/dedupe plumbing for both executors."""

    def __init__(
        self,
        cache: Optional[ResultCache] = None,
        progress: Optional[ProgressFn] = None,
    ) -> None:
        self.cache = cache
        self.progress = progress

    def _emit(self, spec: ExperimentSpec, suffix: str = "") -> None:
        if self.progress:
            self.progress(spec_label(spec) + suffix)

    def _dedupe(
        self, specs: Sequence[ExperimentSpec]
    ) -> Dict[str, List[int]]:
        """Map spec hash → every input position holding that spec."""
        groups: Dict[str, List[int]] = {}
        for i, spec in enumerate(specs):
            groups.setdefault(spec_hash(spec), []).append(i)
        return groups

    @staticmethod
    def _fill(rows: List[Optional[PruningResult]], idxs: List[int], row: PruningResult) -> None:
        rows[idxs[0]] = row
        for i in idxs[1:]:  # duplicates get independent copies
            rows[i] = _copy_row(row)

    def run(self, specs: Sequence[ExperimentSpec]) -> List[PruningResult]:
        raise NotImplementedError


class SerialExecutor(_ExecutorBase):
    """Run specs one after another in the current process."""

    def run(self, specs: Sequence[ExperimentSpec]) -> List[PruningResult]:
        rows: List[Optional[PruningResult]] = [None] * len(specs)
        for idxs in self._dedupe(specs).values():
            spec = specs[idxs[0]]
            row = self.cache.get(spec) if self.cache is not None else None
            if row is not None:
                self._emit(spec, " [cache hit]")
            else:
                self._emit(spec)
                row = _run_spec(spec)
                if self.cache is not None:
                    self.cache.put(spec, row)
            self._fill(rows, idxs, row)
        return rows  # type: ignore[return-value]


class ParallelExecutor(_ExecutorBase):
    """Fan specs out over worker processes (spec-level parallelism).

    Cache hits are resolved in the parent before any worker spawns; only
    misses are submitted.  Results are cached by the parent as futures
    complete, so a crash mid-sweep loses at most the in-flight cells —
    rerunning resumes from the cache.

    Missing pretrained checkpoints shared by several pending specs are
    trained once in the parent first (the checkpoint store is keyed by the
    pretraining config, §7.3), so N workers never redundantly pretrain the
    same initial model.  Checkpoint writes are atomic either way, so even a
    direct race is safe — just wasteful.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        progress: Optional[ProgressFn] = None,
        warm_pretrained: bool = True,
    ) -> None:
        super().__init__(cache=cache, progress=progress)
        self.workers = workers if workers else (os.cpu_count() or 1)
        self.warm_pretrained = warm_pretrained

    def _pretrain_key(self, spec: ExperimentSpec) -> str:
        return pretrained_key(
            spec.model,
            spec.model_kwargs,
            spec.dataset,
            spec.dataset_kwargs,
            spec.pretrain.to_dict(),
            spec.pretrain_seed,
        )

    def _warm_checkpoints(self, specs: Sequence[ExperimentSpec]) -> None:
        seen: Dict[str, ExperimentSpec] = {}
        for spec in specs:
            seen.setdefault(self._pretrain_key(spec), spec)
        for key, spec in seen.items():
            if load_checkpoint(key) is None:
                if self.progress:
                    self.progress(f"pretraining shared checkpoint {key}")
                PruningExperiment(spec).load_pretrained()

    def run(self, specs: Sequence[ExperimentSpec]) -> List[PruningResult]:
        rows: List[Optional[PruningResult]] = [None] * len(specs)
        pending: Dict[str, List[int]] = {}
        for h, idxs in self._dedupe(specs).items():
            spec = specs[idxs[0]]
            row = self.cache.get(spec) if self.cache is not None else None
            if row is not None:
                self._emit(spec, " [cache hit]")
                self._fill(rows, idxs, row)
            else:
                pending[h] = idxs
        if not pending:
            return rows  # type: ignore[return-value]

        miss_specs = [specs[idxs[0]] for idxs in pending.values()]
        if self.warm_pretrained:
            self._warm_checkpoints(miss_specs)

        n_workers = min(self.workers, len(miss_specs))
        if n_workers <= 1:  # no point forking for a single pending spec
            serial = SerialExecutor(cache=self.cache, progress=self.progress)
            miss_rows = serial.run(miss_specs)
            for idxs, row in zip(pending.values(), miss_rows):
                self._fill(rows, idxs, row)
            return rows  # type: ignore[return-value]

        first_error: Optional[BaseException] = None
        with ProcessPoolExecutor(max_workers=n_workers) as pool:
            future_to_idxs = {
                pool.submit(_run_spec, spec): idxs
                for spec, idxs in zip(miss_specs, pending.values())
            }
            not_done = set(future_to_idxs)
            while not_done:
                done, not_done = wait(not_done, return_when=FIRST_COMPLETED)
                for fut in done:
                    idxs = future_to_idxs[fut]
                    spec = specs[idxs[0]]
                    try:
                        row = fut.result()
                    except BaseException as exc:  # noqa: BLE001 — re-raised below
                        # Keep draining: cells already completed (or still
                        # running) must reach the cache so a rerun only
                        # re-pays the failed/cancelled ones.  Queued cells
                        # are cancelled rather than run-and-discarded.
                        if first_error is None:
                            first_error = exc
                            for pending_fut in not_done:
                                pending_fut.cancel()
                        continue
                    if self.cache is not None:
                        self.cache.put(spec, row)
                    self._emit(spec, " [done]")
                    self._fill(rows, idxs, row)
        if first_error is not None:
            raise first_error
        return rows  # type: ignore[return-value]
