"""Training loop: the ``trainToConvergence`` / ``fineTune`` of Algorithm 1.

A single implementation serves both pretraining and fine-tuning; the only
difference is the optional :class:`~repro.pruning.MaskRegistry`, which when
present is re-applied after every optimizer step so pruned weights stay
zero (§2.1's ``M ⊙ W`` semantics).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..autograd import Tensor, cross_entropy
from ..data import DataLoader
from ..metrics import evaluate
from ..nn import Module
from ..optim import OPTIMIZERS, EarlyStopping, Optimizer
from ..pruning import MaskRegistry
from .config import TrainConfig

__all__ = ["Trainer", "build_optimizer"]


def build_optimizer(model: Module, config: TrainConfig) -> Optimizer:
    """Instantiate the optimizer described by ``config`` via ``OPTIMIZERS``."""
    oc = config.optimizer
    return OPTIMIZERS.create(
        oc.name,
        list(model.parameters()),
        lr=oc.lr,
        momentum=oc.momentum,
        nesterov=oc.nesterov,
        weight_decay=oc.weight_decay,
    )


class Trainer:
    """Train (or fine-tune) a model with eval-per-epoch and early stopping.

    Parameters
    ----------
    model:
        The network to optimize, modified in place.
    dataset:
        A dataset bundle exposing ``train``, ``val``, ``train_transform()``
        and ``eval_transform()`` (all zoo datasets do).
    config:
        Epochs, batch size, optimizer settings, early stopping.
    seed:
        Seeds the data order and augmentation stream.
    masks:
        Optional mask registry enforced after every step (fine-tuning a
        pruned model).
    """

    def __init__(
        self,
        model: Module,
        dataset,
        config: TrainConfig,
        seed: int = 0,
        masks: Optional[MaskRegistry] = None,
    ) -> None:
        self.model = model
        self.dataset = dataset
        self.config = config
        self.seed = seed
        self.masks = masks
        self.history: List[Dict[str, float]] = []
        self.train_loader = DataLoader(
            dataset.train,
            batch_size=config.batch_size,
            shuffle=True,
            seed=seed,
            transform=dataset.train_transform(),
        )
        self.val_loader = DataLoader(
            dataset.val,
            batch_size=max(config.batch_size, 128),
            shuffle=False,
            seed=seed,
            transform=dataset.eval_transform(),
        )
        self.optimizer = build_optimizer(model, config)
        if masks is not None:
            masks.apply()
            masks.attach(self.optimizer)

    def train_epoch(self) -> float:
        """One pass over the training set; returns mean training loss."""
        self.model.train()
        loss_sum, n = 0.0, 0
        for xb, yb in self.train_loader:
            out = self.model(Tensor(xb))
            loss = cross_entropy(out, yb)
            self.model.zero_grad()
            loss.backward()
            self.optimizer.step()
            loss_sum += loss.item() * len(yb)
            n += len(yb)
        return loss_sum / max(n, 1)

    def run(self) -> List[Dict[str, float]]:
        """Full training run; returns per-epoch history."""
        stopper = (
            EarlyStopping(self.config.early_stop_patience)
            if self.config.early_stop_patience
            else None
        )
        best_state = None
        best_acc = -1.0
        for epoch in range(self.config.epochs):
            train_loss = self.train_epoch()
            val = evaluate(self.model, self.val_loader)
            record = {
                "epoch": epoch,
                "train_loss": train_loss,
                "val_loss": val["loss"],
                "val_top1": val["top1"],
                "val_top5": val.get("top5", float("nan")),
            }
            self.history.append(record)
            if val["top1"] > best_acc:
                best_acc = val["top1"]
                if self.config.restore_best:
                    best_state = self.model.state_dict()
            if stopper is not None and stopper.update(val["top1"], epoch):
                break
        if best_state is not None:
            self.model.load_state_dict(best_state)
            if self.masks is not None:
                self.masks.apply()  # snapshot predates no masks, but be safe
        return self.history

    def final_metrics(self) -> Dict[str, float]:
        """Evaluate the (possibly restored) model on the validation set."""
        return evaluate(self.model, self.val_loader)
