"""Durable work-queue executor: fault-tolerant multi-machine sweeps.

The experiment matrix is embarrassingly parallel and every cell is
content-addressed (:func:`~repro.experiment.cache.spec_hash`), so the only
missing piece for multi-machine fan-out is a *durable* queue: something
that survives worker crashes, re-runs abandoned cells, and gives up on
poison cells instead of hanging the sweep.  This module provides it with
nothing but a shared directory — NFS, sshfs, or a directory rsync'd between
machines all work, no broker required.

On-disk queue layout
--------------------
::

    <queue-dir>/
      queue.json            lease_timeout / max_retries, written at creation
      pending/<hash>.json   cells waiting to be claimed (spec + attempt log)
      leased/<hash>.json    claimed cells (payload moved here by rename)
      leased/<hash>.lease   lease sidecar: worker id; mtime = last heartbeat
      done/<hash>.json      finished cells (result row lives in the cache)
      failed/<hash>.json    quarantined poison cells (full failure log)

Each payload file holds ``{"schema": 1, "hash": ..., "spec": {...},
"attempts": n, "failures": [{"worker", "attempt", "error"}, ...]}`` — the
spec travels with the cell, so ``ExperimentSpec.from_dict`` is everything a
worker needs.  Results never pass through the queue: workers publish rows
via the shared :class:`~repro.experiment.cache.ResultCache` (by default
``<queue-dir>/cache``) *before* marking a cell done, so a visible ``done/``
marker guarantees a cache hit.

Claiming is a single ``os.rename`` of ``pending/<h>.json`` to
``leased/<h>.json``: rename is atomic on POSIX, and when two workers race
only one rename succeeds — the loser gets ``FileNotFoundError`` and moves
on, so a cell can never be double-claimed.  The winner then writes a
``.lease`` sidecar naming itself and touches it periodically (heartbeat).
Any party — submitter or worker — may call :meth:`WorkQueue.requeue_expired`
to recover cells whose lease went stale (worker crashed, machine lost):
the cell goes back to ``pending/`` with the failure logged, or to
``failed/`` once its retry budget (1 initial run + ``max_retries`` retries)
is exhausted.

Quickstart: the two-terminal flow
---------------------------------
Terminal A (submit; streams progress, assembles the final table)::

    python -m repro run sweep.json --executor queue --queue-dir /shared/q

Terminal B — and any number of other machines that see ``/shared/q`` —
(pull cells until the queue stays empty for 60 s)::

    python -m repro worker /shared/q --idle-timeout 60

Kill a worker mid-cell and nothing is lost: its lease expires, the cell is
re-enqueued, and another worker (or the submitter's own local worker
thread) finishes it.  A cell that *keeps* failing is quarantined after
``max_retries`` retries and surfaced in the assembled results as a row with
``extra["failed"] = True`` instead of hanging the sweep.

:class:`QueueExecutor` is registered in ``EXECUTORS`` under ``"queue"``
with the uniform ``(workers, cache, progress, on_event)`` constructor; for
this executor ``workers`` means *local worker threads* (the submitting
process helps drain its own queue — ``local_workers=0`` makes it a pure
coordinator for remote-only execution).
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
import traceback
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..kernels import use_backend
from ..utils import atomic_write_text
from .cache import ResultCache, spec_hash
from .executor import (
    EXECUTORS,
    EventFn,
    ProgressFn,
    _ExecutorBase,
    _run_spec,
    spec_label,
)
from .prune import ExperimentSpec, baseline_spec_for
from .results import PruningResult

__all__ = ["WorkQueue", "QueueClaim", "QueueWorker", "QueueExecutor"]

#: bump when the payload format changes incompatibly
QUEUE_SCHEMA_VERSION = 1

#: default seconds without a heartbeat before a lease is considered dead
DEFAULT_LEASE_TIMEOUT = 60.0

#: default retry budget: a cell runs at most 1 + DEFAULT_MAX_RETRIES times
DEFAULT_MAX_RETRIES = 2


@dataclass
class QueueClaim:
    """One claimed cell: everything a worker needs to run and report it."""

    hash: str
    spec: Dict
    #: 1-based ordinal of this execution (attempts so far + 1)
    attempt: int
    worker: str
    payload: Dict = field(default_factory=dict)


class WorkQueue:
    """File/directory-backed queue of :class:`ExperimentSpec` cells.

    See the module docstring for the on-disk layout and claim protocol.
    ``lease_timeout``/``max_retries`` are persisted to ``queue.json`` when
    the queue directory is first created, so workers constructed with the
    bare directory path (``WorkQueue(path)``) adopt the submitter's
    settings; explicit arguments always win locally.
    """

    def __init__(
        self,
        root,
        lease_timeout: Optional[float] = None,
        max_retries: Optional[int] = None,
        kernel_backend: Optional[str] = None,
    ) -> None:
        self.root = Path(root)
        self.pending_dir = self.root / "pending"
        self.leased_dir = self.root / "leased"
        self.done_dir = self.root / "done"
        self.failed_dir = self.root / "failed"
        stored = self._load_settings()
        self.lease_timeout = float(
            lease_timeout if lease_timeout is not None
            else stored.get("lease_timeout", DEFAULT_LEASE_TIMEOUT)
        )
        self.max_retries = int(
            max_retries if max_retries is not None
            else stored.get("max_retries", DEFAULT_MAX_RETRIES)
        )
        # The submitter's kernel backend rides in queue.json so that remote
        # ``python -m repro worker <dir>`` processes compute cells with the
        # same kernels; explicit arguments (e.g. the worker CLI flag) win.
        self.kernel_backend = (
            kernel_backend if kernel_backend is not None
            else stored.get("kernel_backend")
        )
        if self.lease_timeout <= 0:
            raise ValueError(f"lease_timeout must be > 0, got {self.lease_timeout}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        for d in (self.pending_dir, self.leased_dir, self.done_dir, self.failed_dir):
            d.mkdir(parents=True, exist_ok=True)
        if not stored:
            atomic_write_text(
                self.root / "queue.json",
                json.dumps(
                    {
                        "schema": QUEUE_SCHEMA_VERSION,
                        "lease_timeout": self.lease_timeout,
                        "max_retries": self.max_retries,
                        "kernel_backend": self.kernel_backend,
                    },
                    indent=1,
                ),
            )

    #: queue.json settings older layouts may lack; value = validator for
    #: the stored value (anything else is treated as absent + defaulted)
    _SETTING_CHECKS = {
        "lease_timeout": lambda v: (
            isinstance(v, (int, float)) and not isinstance(v, bool) and v > 0
        ),
        "max_retries": lambda v: (
            isinstance(v, int) and not isinstance(v, bool) and v >= 0
        ),
    }

    def _load_settings(self) -> Dict:
        """queue.json settings, with missing/invalid keys dropped.

        Queue directories created by older layouts can lack settings keys
        (or hold ``null`` where a number belongs); dropping those keys
        here lets the constructor's ``.get(..., DEFAULT)`` defaults apply
        instead of crashing on ``float(None)``.  A warning names the
        defaulted keys so a surprising lease timeout is traceable.
        """
        try:
            settings = json.loads((self.root / "queue.json").read_text())
        except (OSError, json.JSONDecodeError):
            return {}
        if not isinstance(settings, dict):
            return {}
        defaulted = [
            key for key, valid in self._SETTING_CHECKS.items()
            if key not in settings or not valid(settings[key])
        ]
        if defaulted:
            for key in defaulted:
                settings.pop(key, None)
            warnings.warn(
                f"queue.json at {self.root} is missing or has invalid "
                f"settings for {defaulted} (older queue layout?); "
                "using defaults",
                RuntimeWarning,
                stacklevel=3,
            )
        return settings

    # -- paths -----------------------------------------------------------
    def _paths(self, h: str) -> Dict[str, Path]:
        return {
            "pending": self.pending_dir / f"{h}.json",
            "leased": self.leased_dir / f"{h}.json",
            "done": self.done_dir / f"{h}.json",
            "failed": self.failed_dir / f"{h}.json",
        }

    def _lease_path(self, h: str) -> Path:
        return self.leased_dir / f"{h}.lease"

    @staticmethod
    def _read_json(path: Path) -> Optional[Dict]:
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        return payload if isinstance(payload, dict) else None

    # -- submit ----------------------------------------------------------
    def submit(self, spec: ExperimentSpec) -> str:
        """Enqueue one cell; returns its hash.  Idempotent: a cell already
        pending/leased/done is left alone, and a previously quarantined
        cell is re-enqueued with a fresh retry budget (its failure history
        is kept for the audit trail)."""
        h = spec_hash(spec)
        paths = self._paths(h)
        if paths["pending"].exists() or paths["leased"].exists() or paths["done"].exists():
            return h
        failures: List[Dict] = []
        old = self._read_json(paths["failed"])
        if old is not None:
            failures = list(old.get("failures", []))
        payload = {
            "schema": QUEUE_SCHEMA_VERSION,
            "hash": h,
            "spec": spec.to_dict(),
            "attempts": 0,
            "failures": failures,
        }
        atomic_write_text(paths["pending"], json.dumps(payload, indent=1, default=str))
        paths["failed"].unlink(missing_ok=True)
        return h

    # -- claim / heartbeat ----------------------------------------------
    def claim(self, worker: str) -> Optional[QueueClaim]:
        """Atomically claim one pending cell, or None if nothing is ready.

        Arbitration is the rename itself: of N workers racing on the same
        pending file, exactly one rename succeeds; the others get
        ``FileNotFoundError`` and try the next cell.
        """
        for name in sorted(os.listdir(self.pending_dir)):
            if not name.endswith(".json"):
                continue
            h = name[: -len(".json")]
            src = self.pending_dir / name
            dst = self.leased_dir / name
            try:
                os.rename(src, dst)
            except FileNotFoundError:
                continue  # lost the race for this cell
            payload = self._read_json(dst) or {}
            attempt = int(payload.get("attempts", 0)) + 1
            atomic_write_text(
                self._lease_path(h),
                json.dumps(
                    {"worker": worker, "attempt": attempt, "claimed_at": time.time()}
                ),
            )
            return QueueClaim(
                hash=h,
                spec=payload.get("spec", {}),
                attempt=attempt,
                worker=worker,
                payload=payload,
            )
        return None

    def heartbeat(self, claim: QueueClaim) -> None:
        """Refresh the claim's lease (mtime of the sidecar is the beat)."""
        try:
            os.utime(self._lease_path(claim.hash))
        except OSError:
            pass  # lease was stolen/expired; completion handles the race

    def lease_info(self, h: str) -> Optional[Dict]:
        """The live lease for a cell ({'worker', 'attempt', ...}), or None."""
        return self._read_json(self._lease_path(h))

    # -- worker reports --------------------------------------------------
    def complete(self, claim: QueueClaim, elapsed: float = 0.0) -> None:
        """Mark a claimed cell done.  The worker must have published the
        result to the shared cache *before* calling this — the done marker
        is the signal that a cache hit is guaranteed.

        Tolerates stale claims (the lease expired mid-run and the cell was
        requeued or re-claimed): the work is deterministic, so recording it
        done — and removing any re-queued copy — only saves a re-run.
        """
        paths = self._paths(claim.hash)
        payload = dict(claim.payload)
        payload.update(
            {"attempts": claim.attempt, "worker": claim.worker, "elapsed": elapsed}
        )
        atomic_write_text(paths["done"], json.dumps(payload, indent=1, default=str))
        self._lease_path(claim.hash).unlink(missing_ok=True)
        paths["leased"].unlink(missing_ok=True)
        paths["pending"].unlink(missing_ok=True)
        paths["failed"].unlink(missing_ok=True)

    def fail(self, claim: QueueClaim, error: str) -> str:
        """Record a failed execution; returns the cell's new state.

        The cell is re-enqueued (``"pending"``) while its retry budget
        lasts, then quarantined (``"failed"``) so the sweep can finish and
        surface the failure instead of retrying forever.

        A *stale* claim — the lease expired mid-run and the cell was
        already requeued (that expiry logged this attempt's failure) or
        re-claimed by another worker — must not report: writing its old
        payload snapshot would roll the retry counter back (letting a
        poison cell dodge quarantine forever) and clobber the new owner's
        lease.  Ownership is checked against the live lease sidecar.
        """
        paths = self._paths(claim.hash)
        if paths["done"].exists():  # another worker finished it meanwhile
            self._lease_path(claim.hash).unlink(missing_ok=True)
            paths["leased"].unlink(missing_ok=True)
            return "done"
        lease = self.lease_info(claim.hash)
        stale = (
            lease is None  # expired + requeued/quarantined: already logged
            or lease.get("worker") != claim.worker
            or lease.get("attempt") != claim.attempt
        )
        if stale:
            return self.state(claim.hash) or "pending"
        state = self._record_failure(
            claim.hash, claim.payload, claim.worker, claim.attempt, error
        )
        self._lease_path(claim.hash).unlink(missing_ok=True)
        paths["leased"].unlink(missing_ok=True)
        return state

    def _record_failure(
        self, h: str, payload: Dict, worker: str, attempt: int, error: str
    ) -> str:
        """Write the post-failure payload to pending/ or failed/ (the shared
        tail of a worker-reported failure and a lease-expiry recovery)."""
        payload = dict(payload)
        payload["attempts"] = attempt
        payload["failures"] = list(payload.get("failures", [])) + [
            {"worker": worker, "attempt": attempt, "error": error}
        ]
        state = "failed" if attempt > self.max_retries else "pending"
        atomic_write_text(
            self._paths(h)[state], json.dumps(payload, indent=1, default=str)
        )
        return state

    def reset(self, h: str) -> None:
        """Forget a finished cell's done/failed marker so :meth:`submit` can
        re-enqueue it — used when a done marker outlives its cached row
        (e.g. the shared cache was cleared to force re-execution)."""
        paths = self._paths(h)
        paths["done"].unlink(missing_ok=True)
        paths["failed"].unlink(missing_ok=True)

    # -- lease recovery --------------------------------------------------
    def _lease_age(self, h: str, now: float) -> Optional[float]:
        """Seconds since the cell's last heartbeat, or None if not leased."""
        try:
            beat = self._lease_path(h).stat().st_mtime
        except OSError:
            # claimed-then-crashed before the sidecar landed: fall back to
            # the payload file (rename preserves mtime, so this reads as
            # already-old and the cell is recovered promptly — by design)
            try:
                beat = (self.leased_dir / f"{h}.json").stat().st_mtime
            except OSError:
                return None
        return now - beat

    def requeue_expired(self, now: Optional[float] = None) -> List[Tuple[str, str]]:
        """Recover cells whose lease went stale (crashed/partitioned worker).

        Counts as one failed attempt — a worker that crashes on the *cell*
        (not just bad luck) burns through the same retry budget as one that
        raises.  Returns ``[(hash, new_state), ...]`` for recovered cells.
        """
        now = time.time() if now is None else now
        recovered: List[Tuple[str, str]] = []
        for name in sorted(os.listdir(self.leased_dir)):
            if not name.endswith(".json"):
                continue
            h = name[: -len(".json")]
            age = self._lease_age(h, now)
            if age is None or age <= self.lease_timeout:
                continue
            # Arbitrate recovery the same way claims are arbitrated: rename
            # the leased payload aside.  Of N parties sweeping concurrently
            # exactly one rename succeeds, so an expiry is recorded (and the
            # attempt counted) once — and a worker that crashed before its
            # .lease sidecar even landed is still recovered, because the
            # payload itself is the thing renamed.
            src = self.leased_dir / name
            tmp = self.leased_dir / f"{h}.recovering"
            try:
                os.rename(src, tmp)
            except FileNotFoundError:
                continue  # owner just reported, or another recoverer won
            payload = self._read_json(tmp) or {}
            worker = str((self.lease_info(h) or {}).get("worker", "unknown"))
            state = self._record_failure(
                h,
                payload,
                worker,
                int(payload.get("attempts", 0)) + 1,
                f"lease expired after {age:.1f}s without a heartbeat "
                f"(worker {worker!r} presumed dead)",
            )
            self._lease_path(h).unlink(missing_ok=True)
            tmp.unlink(missing_ok=True)
            recovered.append((h, state))
        return recovered

    # -- introspection ---------------------------------------------------
    def state(self, h: str) -> Optional[str]:
        """'pending' | 'leased' | 'done' | 'failed' | None (unknown)."""
        paths = self._paths(h)
        for state in ("done", "failed", "leased", "pending"):
            if paths[state].exists():
                return state
        return None

    def payload(self, h: str) -> Optional[Dict]:
        """The cell's current payload, wherever it lives."""
        paths = self._paths(h)
        for state in ("done", "failed", "leased", "pending"):
            payload = self._read_json(paths[state])
            if payload is not None:
                return payload
        return None

    def counts(self) -> Dict[str, int]:
        """Cells per state (for progress lines and ``worker`` logging)."""
        out = {}
        for state, d in (
            ("pending", self.pending_dir),
            ("leased", self.leased_dir),
            ("done", self.done_dir),
            ("failed", self.failed_dir),
        ):
            try:
                out[state] = sum(1 for n in os.listdir(d) if n.endswith(".json"))
            except OSError:
                out[state] = 0
        return out

    # -- maintenance (python -m repro queue ...) -------------------------
    def stats(self) -> Dict:
        """Health snapshot: per-state counts, live leases with their ages,
        a per-worker rollup, and the quarantine roster — ``python -m repro
        queue stats`` and the ``queue watch`` dashboard."""
        now = time.time()
        leases: List[Dict] = []
        for name in sorted(os.listdir(self.leased_dir)):
            if not name.endswith(".json"):
                continue
            h = name[: -len(".json")]
            age = self._lease_age(h, now)
            if age is None:
                continue  # raced with completion
            # A beat from the "future" (clock skew between the worker's
            # host and ours on a shared filesystem) reads as a negative
            # age; report it as a fresh beat rather than a nonsense
            # negative number.  Expiry math is unaffected either way —
            # negative never exceeds the timeout.
            age = max(0.0, age)
            info = self.lease_info(h) or {}
            leases.append(
                {
                    "hash": h,
                    "worker": str(info.get("worker", "unknown")),
                    "age": age,
                    "expired": age > self.lease_timeout,
                }
            )
        workers: Dict[str, Dict] = {}
        for lease in leases:
            row = workers.setdefault(
                lease["worker"],
                {"worker": lease["worker"], "cells": 0,
                 "freshest_beat": lease["age"], "expired": False},
            )
            row["cells"] += 1
            row["freshest_beat"] = min(row["freshest_beat"], lease["age"])
            row["expired"] = row["expired"] or lease["expired"]
        failed: List[Dict] = []
        for name in sorted(os.listdir(self.failed_dir)):
            if not name.endswith(".json"):
                continue
            payload = self._read_json(self.failed_dir / name) or {}
            failures = payload.get("failures", [])
            # failure entries may predate this layout or be hand-edited:
            # tolerate non-dict entries and absent/empty error strings
            last = ""
            if failures and isinstance(failures[-1], dict):
                error_lines = str(
                    failures[-1].get("error", "")
                ).strip().splitlines()
                last = error_lines[-1] if error_lines else ""
            failed.append(
                {
                    "hash": name[: -len(".json")],
                    "attempts": payload.get("attempts", len(failures)),
                    "error": last,
                }
            )
        return {
            "root": str(self.root),
            "lease_timeout": self.lease_timeout,
            "max_retries": self.max_retries,
            "counts": self.counts(),
            "leases": leases,
            "workers": sorted(workers.values(), key=lambda r: r["worker"]),
            "failed": failed,
        }

    def retry_failed(self) -> List[str]:
        """Re-enqueue every quarantined cell with a fresh retry budget.

        :meth:`submit` already knows how to resurrect a quarantined cell
        (keeping its failure history for the audit trail); this sweeps the
        whole quarantine — ``python -m repro queue retry-failed``.
        Returns the re-enqueued hashes.
        """
        retried: List[str] = []
        for name in sorted(os.listdir(self.failed_dir)):
            if not name.endswith(".json"):
                continue
            payload = self._read_json(self.failed_dir / name)
            if payload is None or not isinstance(payload.get("spec"), dict):
                continue
            retried.append(self.submit(ExperimentSpec.from_dict(payload["spec"])))
        return retried

    def compact(self, max_age: Optional[float] = None) -> int:
        """GC ``done/`` markers; returns how many were removed.

        Done markers exist only to signal "the result is in the cache" to
        a submitter mid-run; once a sweep has been assembled they are pure
        bookkeeping and can be dropped (re-submitting the same cell later
        is still free — it resolves from the cache before enqueueing).
        With ``max_age`` only markers older than that many seconds go —
        ``python -m repro queue compact [--max-age-days]``.
        """
        if max_age is not None and max_age < 0:
            raise ValueError(f"max_age must be >= 0, got {max_age}")
        now = time.time()
        removed = 0
        for name in sorted(os.listdir(self.done_dir)):
            if not name.endswith(".json"):
                continue
            path = self.done_dir / name
            if max_age is not None:
                try:
                    if now - path.stat().st_mtime <= max_age:
                        continue
                except OSError:
                    continue  # raced with a concurrent delete
            path.unlink(missing_ok=True)
            removed += 1
        return removed


class QueueWorker:
    """Pull cells from a :class:`WorkQueue`, run them, publish via the cache.

    The worker loop is: recover expired leases, claim a cell, run it (with
    a daemon heartbeat thread keeping the lease fresh), publish the result
    row — plus the free synthesized baseline row — to the shared cache, and
    only then mark the cell done.  A cell that raises is reported through
    :meth:`WorkQueue.fail` with its full traceback; a worker that *dies*
    leaves a lease that expires.

    ``python -m repro worker <queue-dir>`` wraps this class; it is also
    directly usable in-process (tests run workers as threads).
    """

    def __init__(
        self,
        queue: WorkQueue,
        cache: ResultCache,
        worker_id: Optional[str] = None,
        heartbeat_interval: Optional[float] = -1.0,
        progress: Optional[ProgressFn] = None,
        kernel_backend: Optional[str] = None,
        store=None,
    ) -> None:
        self.queue = queue
        self.cache = cache
        self.worker_id = worker_id or f"{socket.gethostname()}-{os.getpid()}"
        if heartbeat_interval is not None and heartbeat_interval == -1.0:
            heartbeat_interval = queue.lease_timeout / 4.0
        self.heartbeat_interval = heartbeat_interval  # None disables beats
        self.progress = progress
        # default to the submitter's backend persisted in queue.json
        self.kernel_backend = (
            kernel_backend if kernel_backend is not None else queue.kernel_backend
        )
        # optional binary ColumnStore (or path) mirroring every published
        # row; the JSON cache stays the interchange format and is still
        # written first — the store is a serving-side copy
        if store is not None and not hasattr(store, "append_rows"):
            from ..store import ColumnStore

            store = ColumnStore(store)
        self.store = store

    def _say(self, message: str) -> None:
        if self.progress:
            self.progress(message)

    def run_once(self) -> bool:
        """Recover expired leases, then claim and process at most one cell."""
        self.queue.requeue_expired()
        claim = self.queue.claim(self.worker_id)
        if claim is None:
            return False
        self.process(claim)
        return True

    def process(self, claim: QueueClaim) -> bool:
        """Run one claimed cell end-to-end; returns True on success."""
        stop_beat = threading.Event()
        beater = None
        if self.heartbeat_interval is not None:
            def beat():
                while not stop_beat.wait(self.heartbeat_interval):
                    self.queue.heartbeat(claim)

            beater = threading.Thread(target=beat, daemon=True)
            beater.start()
        started = time.monotonic()
        try:
            spec = ExperimentSpec.from_dict(claim.spec)
            self._say(f"[{self.worker_id}] {spec_label(spec)} (attempt {claim.attempt})")
            with use_backend(self.kernel_backend):
                row, baseline = _run_spec(spec)
            self.cache.put(spec, row)
            published = [(spec, row)]
            if baseline is not None:
                bspec = baseline_spec_for(spec)
                if not self.cache.contains(bspec):
                    self.cache.put(bspec, baseline)
                    published.append((bspec, baseline))
            if self.store is not None:
                self._publish_to_store(published)
            self.queue.complete(claim, elapsed=time.monotonic() - started)
            self._say(f"[{self.worker_id}] done {claim.hash}")
            return True
        except Exception:
            state = self.queue.fail(claim, traceback.format_exc())
            self._say(f"[{self.worker_id}] cell {claim.hash} failed -> {state}")
            return False
        finally:
            stop_beat.set()
            if beater is not None:
                beater.join(timeout=1.0)

    def _publish_to_store(self, published) -> None:
        """Mirror freshly cached rows into the binary store, keyed by spec
        hash so a re-run supersedes its old row.  Best-effort: the cache
        write already succeeded, so a store hiccup (e.g. lock contention
        with a compact) must not fail the cell — it is reported and the
        row remains ingestable from the cache later."""
        try:
            self.store.append_rows(
                [row for _, row in published],
                keys=[spec_hash(spec) for spec, _ in published],
            )
        except Exception as exc:  # noqa: BLE001 - mirror is best-effort
            self._say(
                f"[{self.worker_id}] store publish failed ({exc}); rows "
                "remain in the cache"
            )

    def run(
        self,
        stop: Optional[threading.Event] = None,
        max_cells: Optional[int] = None,
        idle_timeout: Optional[float] = None,
        poll_interval: float = 0.05,
    ) -> int:
        """Process cells until stopped; returns how many were claimed.

        Exits when ``stop`` is set, ``max_cells`` have been claimed, or the
        queue has stayed empty for ``idle_timeout`` seconds (None = wait for
        work forever — the remote-worker default, killed from outside).
        """
        claimed = 0
        idle_since: Optional[float] = None
        while not (stop is not None and stop.is_set()):
            if self.run_once():
                claimed += 1
                idle_since = None
                if max_cells is not None and claimed >= max_cells:
                    break
            else:
                now = time.monotonic()
                if idle_timeout is not None:
                    if idle_since is None:
                        idle_since = now
                    elif now - idle_since > idle_timeout:
                        break
                time.sleep(poll_interval)
        return claimed


@EXECUTORS.register("queue")
class QueueExecutor(_ExecutorBase):
    """Run a sweep through a durable :class:`WorkQueue` (see module docstring).

    The submitting side: resolve cache hits, enqueue the misses, stream
    progress as workers report, recover expired leases, and assemble the
    final row list from cache hits.  Quarantined cells become placeholder
    rows with ``extra["failed"] = True`` (and the error log) instead of
    hanging or aborting the sweep — partial results stay usable.

    ``workers`` local worker threads are started for the duration of the
    run (default 1) so a bare ``--executor queue`` invocation completes on
    its own; any number of external ``python -m repro worker`` processes
    sharing the queue directory drain the same cells.  ``local_workers``
    overrides ``workers`` (use 0 for a pure coordinator).
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        progress: Optional[ProgressFn] = None,
        on_event: Optional[EventFn] = None,
        queue_dir=None,
        lease_timeout: Optional[float] = None,
        max_retries: Optional[int] = None,
        local_workers: Optional[int] = None,
        poll_interval: float = 0.05,
        wait_timeout: Optional[float] = None,
        kernel_backend: Optional[str] = None,
    ) -> None:
        if queue_dir is None:
            raise ValueError(
                "the queue executor needs a queue directory: pass "
                "queue_dir=... (CLI: --queue-dir PATH, or "
                '"executor_options": {"queue_dir": ...} in the sweep config)'
            )
        if local_workers is None:
            local_workers = 1 if workers is None else workers
        if local_workers < 0:
            raise ValueError(f"local_workers must be >= 0, got {local_workers}")
        super().__init__(
            workers=local_workers, cache=cache, progress=progress,
            on_event=on_event, kernel_backend=kernel_backend,
        )
        self.workers = local_workers  # _ExecutorBase maps 0 -> 1; keep 0
        # Persisting the backend in the queue settings is what lets remote
        # workers inherit it (env < config < CLI precedence ends here).
        self.queue = WorkQueue(
            queue_dir, lease_timeout=lease_timeout, max_retries=max_retries,
            kernel_backend=kernel_backend,
        )
        if self.cache is None:
            # the cache is the result transport: default it into the queue
            # directory so `python -m repro worker <queue-dir>` finds it
            self.cache = ResultCache(self.queue.root / "cache")
        self.poll_interval = poll_interval
        self.wait_timeout = wait_timeout

    @staticmethod
    def _quarantine_row(spec: ExperimentSpec, payload: Dict) -> PruningResult:
        """Placeholder row for a quarantined cell: identifies the cell and
        carries the failure log so assembled tables surface the problem."""
        failures = payload.get("failures", [])
        return PruningResult(
            model=spec.model,
            dataset=spec.dataset,
            strategy=spec.strategy,
            compression=spec.compression,
            seed=spec.seed,
            extra={
                "failed": True,
                "attempts": payload.get("attempts", len(failures)),
                "error": failures[-1]["error"] if failures else "unknown",
                "failures": failures,
            },
        )

    def run(self, specs: Sequence[ExperimentSpec]) -> List[PruningResult]:
        started = time.monotonic()
        total = len(specs)
        rows: List[Optional[PruningResult]] = [None] * total
        waiting: Dict[str, List[int]] = {}
        done = 0
        for h, idxs in self._dedupe(specs).items():
            spec = specs[idxs[0]]
            row = self.cache.get(spec)
            if row is not None:
                done += len(idxs)
                self._emit(
                    spec, " [cache hit]", kind="cache-hit", done=done,
                    total=total, started=started, worker=None,
                )
                self._fill(rows, idxs, row)
            else:
                self.queue.submit(spec)
                waiting[h] = idxs
        if not waiting:
            return rows  # type: ignore[return-value]

        stop = threading.Event()
        threads: List[threading.Thread] = []
        for i in range(self.workers):
            worker = QueueWorker(
                self.queue, self.cache, worker_id=f"local-{os.getpid()}-{i}"
            )
            t = threading.Thread(
                target=worker.run, kwargs=dict(stop=stop), daemon=True
            )
            t.start()
            threads.append(t)

        worker_slots: Dict[str, int] = {}  # worker id -> stable slot
        worker_done: Dict[int, int] = {}  # slot -> cells completed
        announced: set = set()  # hashes whose "start" event went out
        reset_done: set = set()  # stale done markers already reset once

        def slot_for(worker_id: str) -> int:
            return worker_slots.setdefault(worker_id, len(worker_slots))

        deadline = None if self.wait_timeout is None else started + self.wait_timeout
        try:
            while waiting:
                self.queue.requeue_expired()
                for h in list(waiting):
                    idxs = waiting[h]
                    spec = specs[idxs[0]]
                    state = self.queue.state(h)
                    if state == "leased" and h not in announced:
                        lease = self.queue.lease_info(h) or {}
                        announced.add(h)
                        self._emit(
                            spec, kind="start", done=done, total=total,
                            started=started,
                            worker=slot_for(str(lease.get("worker", "?"))),
                        )
                    elif state == "done":
                        row = self.cache.get(spec)
                        if row is None:
                            # A done marker without a cached row: either the
                            # cache was cleared to force re-execution (reset
                            # the marker and re-enqueue, once) or workers
                            # publish to a different cache than we read
                            # (re-running won't help — fail loudly).
                            if h in reset_done:
                                raise RuntimeError(
                                    f"queue cell {h} was re-executed but its "
                                    "done marker still has no row in the "
                                    f"result cache at {self.cache.root} — "
                                    "submitter and workers must share one "
                                    "cache directory"
                                )
                            reset_done.add(h)
                            announced.discard(h)
                            self.queue.reset(h)
                            self.queue.submit(spec)
                            continue
                        payload = self.queue.payload(h) or {}
                        slot = slot_for(str(payload.get("worker", "?")))
                        worker_done[slot] = worker_done.get(slot, 0) + len(idxs)
                        done += len(idxs)
                        self._emit(
                            spec, " [done]", kind="done", done=done, total=total,
                            started=started, worker=slot,
                            worker_done=worker_done[slot],
                        )
                        self._fill(rows, idxs, row)
                        del waiting[h]
                    elif state == "failed":
                        payload = self.queue.payload(h) or {}
                        row = self._quarantine_row(spec, payload)
                        done += len(idxs)
                        self._emit(
                            spec, " [quarantined]", kind="failed", done=done,
                            total=total, started=started,
                            failure=row.extra["error"],
                        )
                        self._fill(rows, idxs, row)
                        del waiting[h]
                    elif state is None:
                        self.queue.submit(spec)  # vanished (external clear)
                if waiting:
                    if deadline is not None and time.monotonic() > deadline:
                        raise TimeoutError(
                            f"queue sweep timed out after {self.wait_timeout:.0f}s "
                            f"with {len(waiting)} cell(s) unfinished "
                            f"(queue state: {self.queue.counts()})"
                        )
                    time.sleep(self.poll_interval)
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=5.0)
        return rows  # type: ignore[return-value]
