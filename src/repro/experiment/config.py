"""Experiment configuration dataclasses and the declarative sweep schema.

Training defaults mirror Appendix C.2 of the paper:

* CIFAR-10 fine-tuning: Adam, lr 3e-4, fixed schedule, batch 64, early
  stopping on validation accuracy;
* ImageNet fine-tuning: SGD + Nesterov momentum 0.9, lr 1e-3, fixed
  schedule.

Epoch counts and dataset sizes are scaled to the CPU budget via the
``scale`` factory arguments; EXPERIMENTS.md records the values used for
each reported figure.

Sweep schema
------------
:class:`SweepConfig` is the declarative description of a full experiment
grid — the "structured way" of identifying architectures, datasets,
strategies and hyperparameters that the paper calls for (§6).  It is a
frozen dataclass with a lossless JSON round-trip, so a sweep can be written
to a file, diffed, shipped to a remote worker, and replayed bit-for-bit::

    {
      "schema_version": 1,
      "model": "resnet-20",            // MODELS registry name
      "model_kwargs": {"width_scale": 0.5},
      "dataset": "cifar10",            // DATASETS registry name
      "dataset_kwargs": {"n_train": 1000, "n_val": 320, "size": 16},
      "strategies": ["global_weight", "random"],   // STRATEGIES names
      "compressions": [1, 2, 4, 8, 16, 32],
      "seeds": [0, 1, 2],
      "pretrain": {...TrainConfig...} | null,      // null = spec default
      "finetune": {...TrainConfig...} | null,
      "pretrain_seed": 0,
      "schedule": "one_shot",          // SCHEDULES registry name
      "schedule_steps": 1,
      "prune_classifier": false,
      "dedupe_baselines": true,
      "executor": "serial",            // EXECUTORS registry name
      "workers": 1,                    // 0 = all cores; serial ignores it
      "executor_options": {}           // extra executor kwargs, e.g. the
                                       // queue executor's {"queue_dir": ...,
                                       // "lease_timeout": 30, "max_retries": 2}.
                                       // Every executor accepts
                                       // {"kernel_backend": "fast"} (a KERNELS
                                       // registry name) to pin the compute
                                       // backend for all cells — including
                                       // queue workers, which inherit it via
                                       // queue.json.  Precedence:
                                       // REPRO_KERNEL_BACKEND env < this
                                       // option < --kernel-backend flag.
    }

Schema versioning: ``schema_version`` is bumped whenever a field is
renamed, removed, or changes meaning (adding a field with a default that
preserves old behavior is backward compatible and does **not** bump it).
``from_dict`` accepts any version ≤ the current one, filling absent fields
with their defaults, and rejects unknown keys and future versions loudly —
a config file never silently drops information.

Version history:

* **1** — initial schema (this PR): registry-named model/dataset/
  strategies/schedule/executor, grid axes, train configs, dedupe flag.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple

__all__ = [
    "OptimizerConfig",
    "TrainConfig",
    "SweepConfig",
    "SWEEP_SCHEMA_VERSION",
    "PAPER_COMPRESSIONS",
    "cifar_finetune_config",
    "imagenet_finetune_config",
]

#: §6's recommended operating points (plus the unpruned control at 1).
PAPER_COMPRESSIONS: Sequence[float] = (1, 2, 4, 8, 16, 32)

#: current :class:`SweepConfig` schema version (see module docstring)
SWEEP_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class OptimizerConfig:
    """Optimizer choice and hyperparameters (an ``OPTIMIZERS`` registry name)."""

    name: str = "adam"
    lr: float = 3e-4
    momentum: float = 0.0
    nesterov: bool = False
    weight_decay: float = 0.0

    def __post_init__(self):
        from ..optim import OPTIMIZERS

        if self.name not in OPTIMIZERS:
            raise ValueError(OPTIMIZERS.unknown_message(self.name))
        if self.lr <= 0:
            raise ValueError("lr must be positive")

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "OptimizerConfig":
        return cls(**_known_fields(cls, d))


@dataclass(frozen=True)
class TrainConfig:
    """One training (or fine-tuning) run."""

    epochs: int = 30
    batch_size: int = 64
    optimizer: OptimizerConfig = field(default_factory=OptimizerConfig)
    #: epochs with no val-accuracy improvement before stopping (None = off)
    early_stop_patience: Optional[int] = 5
    #: restore the best-val-accuracy weights at the end
    restore_best: bool = True

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "TrainConfig":
        kwargs = _known_fields(cls, d)
        opt = kwargs.get("optimizer")
        if isinstance(opt, dict):
            kwargs["optimizer"] = OptimizerConfig.from_dict(opt)
        return cls(**kwargs)


def _known_fields(cls, d: dict) -> dict:
    unknown = set(d) - {f.name for f in fields(cls)}
    if unknown:
        raise ValueError(
            f"unknown {cls.__name__} keys: {sorted(unknown)} "
            f"(known: {sorted(f.name for f in fields(cls))})"
        )
    return dict(d)


@dataclass(frozen=True)
class SweepConfig:
    """Declarative description of a full experiment grid (see module docstring).

    Every component is referenced by registry name, every axis is an explicit
    sequence, and the whole object round-trips losslessly through
    ``to_dict``/``from_dict`` (and therefore JSON): expanding a reloaded
    config yields byte-identical
    :func:`~repro.experiment.cache.spec_hash` values.
    """

    model: str
    dataset: str
    strategies: Tuple[str, ...]
    compressions: Tuple[float, ...] = tuple(PAPER_COMPRESSIONS)
    seeds: Tuple[int, ...] = (0, 1, 2)
    model_kwargs: Dict = field(default_factory=dict)
    dataset_kwargs: Dict = field(default_factory=dict)
    #: None = use :class:`~repro.experiment.prune.ExperimentSpec` defaults
    pretrain: Optional[TrainConfig] = None
    finetune: Optional[TrainConfig] = None
    pretrain_seed: int = 0
    schedule: str = "one_shot"
    schedule_steps: int = 1
    prune_classifier: bool = False
    dedupe_baselines: bool = True
    executor: str = "serial"
    workers: int = 1
    #: extra keyword arguments for the executor's constructor, beyond the
    #: uniform ``(workers, cache, progress, on_event)`` — the declarative
    #: home for executor-specific knobs like the queue executor's
    #: ``queue_dir``/``lease_timeout``/``max_retries``/``local_workers``.
    #: Additive with a no-op default, so schema_version stays 1.
    executor_options: Dict = field(default_factory=dict)
    schema_version: int = SWEEP_SCHEMA_VERSION

    def __post_init__(self):
        # normalize sequence axes to tuples so the config hashes/compares
        # identically whether built from lists (JSON) or tuples (Python)
        object.__setattr__(self, "strategies", tuple(self.strategies))
        object.__setattr__(
            self, "compressions", tuple(float(c) for c in self.compressions)
        )
        object.__setattr__(self, "seeds", tuple(int(s) for s in self.seeds))
        if not self.strategies:
            raise ValueError("strategies must be non-empty")
        if self.schema_version > SWEEP_SCHEMA_VERSION:
            raise ValueError(
                f"sweep schema version {self.schema_version} is newer than "
                f"this code understands ({SWEEP_SCHEMA_VERSION})"
            )
        if self.schedule_steps < 1:
            raise ValueError("schedule_steps must be >= 1")
        if self.workers < 0:
            raise ValueError("workers must be >= 0 (0 = all cores)")
        # Validate registry-backed fields that would otherwise only fail
        # deep into a run (a schedule typo surfaces after pretraining!).
        # Model/dataset/strategy names are deliberately NOT checked here:
        # custom components may be registered after a config is built, and
        # unknown names already fail fast when the first cell starts.
        from ..pruning import SCHEDULES

        if self.schedule not in SCHEDULES:
            raise ValueError(SCHEDULES.unknown_message(self.schedule))

    # -- round-trip ------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain JSON-able dict (tuples become lists, dataclasses dicts)."""
        d = asdict(self)
        d["strategies"] = list(self.strategies)
        d["compressions"] = list(self.compressions)
        d["seeds"] = list(self.seeds)
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "SweepConfig":
        kwargs = _known_fields(cls, d)
        for key in ("pretrain", "finetune"):
            if isinstance(kwargs.get(key), dict):
                kwargs[key] = TrainConfig.from_dict(kwargs[key])
        return cls(**kwargs)

    def to_json(self, indent: int = 1) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SweepConfig":
        return cls.from_dict(json.loads(text))

    def save(self, path) -> Path:
        """Write the config as JSON; the file is everything a worker needs."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json() + "\n")
        return path

    @classmethod
    def load(cls, path) -> "SweepConfig":
        return cls.from_json(Path(path).read_text())

    # -- execution glue --------------------------------------------------
    def expand(self):
        """Ordered :class:`ExperimentSpec` list for this grid.

        Delegates to :func:`repro.experiment.runner.expand_sweep`; defined
        here so a config object alone is enough to enumerate (and hash)
        every cell it describes.
        """
        from .runner import expand_sweep

        return expand_sweep(
            model=self.model,
            dataset=self.dataset,
            strategies=self.strategies,
            compressions=self.compressions,
            seeds=self.seeds,
            model_kwargs=dict(self.model_kwargs),
            dataset_kwargs=dict(self.dataset_kwargs),
            pretrain=self.pretrain,
            finetune=self.finetune,
            pretrain_seed=self.pretrain_seed,
            dedupe_baselines=self.dedupe_baselines,
            schedule=self.schedule,
            schedule_steps=self.schedule_steps,
            prune_classifier=self.prune_classifier,
        )


def cifar_finetune_config(epochs: int = 30, batch_size: int = 64) -> TrainConfig:
    """Appendix C.2 CIFAR-10 fine-tuning setup (Adam, 3e-4, fixed)."""
    return TrainConfig(
        epochs=epochs,
        batch_size=batch_size,
        optimizer=OptimizerConfig(name="adam", lr=3e-4),
        early_stop_patience=5,
    )


def imagenet_finetune_config(epochs: int = 20, batch_size: int = 256) -> TrainConfig:
    """Appendix C.2 ImageNet fine-tuning setup (SGD+Nesterov 0.9, 1e-3)."""
    return TrainConfig(
        epochs=epochs,
        batch_size=batch_size,
        optimizer=OptimizerConfig(name="sgd", lr=1e-3, momentum=0.9, nesterov=True),
        early_stop_patience=5,
    )
