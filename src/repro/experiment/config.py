"""Experiment configuration dataclasses.

Defaults mirror Appendix C.2 of the paper:

* CIFAR-10 fine-tuning: Adam, lr 3e-4, fixed schedule, batch 64, early
  stopping on validation accuracy;
* ImageNet fine-tuning: SGD + Nesterov momentum 0.9, lr 1e-3, fixed
  schedule.

Epoch counts and dataset sizes are scaled to the CPU budget via the
``scale`` factory arguments; EXPERIMENTS.md records the values used for
each reported figure.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Optional

__all__ = ["OptimizerConfig", "TrainConfig", "cifar_finetune_config", "imagenet_finetune_config"]


@dataclass(frozen=True)
class OptimizerConfig:
    """Optimizer choice and hyperparameters."""

    name: str = "adam"  # "adam" | "sgd"
    lr: float = 3e-4
    momentum: float = 0.0
    nesterov: bool = False
    weight_decay: float = 0.0

    def __post_init__(self):
        if self.name not in ("adam", "sgd"):
            raise ValueError(f"unknown optimizer {self.name!r}")
        if self.lr <= 0:
            raise ValueError("lr must be positive")


@dataclass(frozen=True)
class TrainConfig:
    """One training (or fine-tuning) run."""

    epochs: int = 30
    batch_size: int = 64
    optimizer: OptimizerConfig = field(default_factory=OptimizerConfig)
    #: epochs with no val-accuracy improvement before stopping (None = off)
    early_stop_patience: Optional[int] = 5
    #: restore the best-val-accuracy weights at the end
    restore_best: bool = True

    def to_dict(self) -> dict:
        return asdict(self)


def cifar_finetune_config(epochs: int = 30, batch_size: int = 64) -> TrainConfig:
    """Appendix C.2 CIFAR-10 fine-tuning setup (Adam, 3e-4, fixed)."""
    return TrainConfig(
        epochs=epochs,
        batch_size=batch_size,
        optimizer=OptimizerConfig(name="adam", lr=3e-4),
        early_stop_patience=5,
    )


def imagenet_finetune_config(epochs: int = 20, batch_size: int = 256) -> TrainConfig:
    """Appendix C.2 ImageNet fine-tuning setup (SGD+Nesterov 0.9, 1e-3)."""
    return TrainConfig(
        epochs=epochs,
        batch_size=batch_size,
        optimizer=OptimizerConfig(name="sgd", lr=1e-3, momentum=0.9, nesterov=True),
        early_stop_patience=5,
    )
