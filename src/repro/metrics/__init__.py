"""Metrics: model size, FLOPs/theoretical speedup, Top-1/Top-5 accuracy."""

from .size import (
    compression_ratio,
    compression_ratio_misused,
    fraction_pruned,
    fraction_remaining,
    model_size_bytes,
    nonzero_params,
    per_layer_nonzero,
    total_params,
)
from .flops import (
    DEFAULT_CONVENTION,
    FlopsConvention,
    LayerTrace,
    dense_flops,
    effective_flops,
    flops_by_layer,
    theoretical_speedup,
    trace_layers,
)
from .accuracy import evaluate, topk_accuracy

__all__ = [
    "total_params",
    "nonzero_params",
    "compression_ratio",
    "compression_ratio_misused",
    "fraction_pruned",
    "fraction_remaining",
    "model_size_bytes",
    "per_layer_nonzero",
    "FlopsConvention",
    "DEFAULT_CONVENTION",
    "LayerTrace",
    "trace_layers",
    "dense_flops",
    "effective_flops",
    "flops_by_layer",
    "theoretical_speedup",
    "topk_accuracy",
    "evaluate",
]
