"""FLOPs (multiply-add) counting and theoretical speedup.

§2.4: "in convolutional layers, filters applied to spatially larger inputs
are associated with more computation" — so FLOPs must be counted per layer
with the actual spatial output shape, which we obtain by tracing a forward
pass with module hooks.

§5.2 documents that papers disagree on the convention (up to 4× for the
same network: 371 vs 724 vs 1500 MFLOPs for AlexNet).  We therefore expose
an explicit :class:`FlopsConvention` covering the main axes of disagreement:
multiply-adds vs 2-ops-per-MAC, and conv-only vs all layers.  The default
matches the paper's recommendation: multiply-adds over all parameterized
layers.

**Effective (pruned) FLOPs**: each conv MAC is attributed to one weight, so
a layer's effective MACs = (nonzero weights) × (spatial output positions);
for linear layers, = nonzero weights.  Theoretical speedup = dense MACs /
effective MACs (§6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..autograd import Tensor, no_grad
from ..nn import Conv2d, Linear, Module

__all__ = [
    "FlopsConvention",
    "LayerTrace",
    "trace_layers",
    "dense_flops",
    "effective_flops",
    "theoretical_speedup",
    "flops_by_layer",
]


@dataclass(frozen=True)
class FlopsConvention:
    """Counting convention (the §5.2 ambiguity, made explicit).

    Attributes
    ----------
    ops_per_mac:
        1 counts multiply-adds (the paper's recommendation); 2 counts
        multiply and add separately.
    include_linear:
        Include fully-connected layers (some papers count conv only).
    include_bias:
        Count one add per output element for biased layers.
    """

    ops_per_mac: int = 1
    include_linear: bool = True
    include_bias: bool = False

    def __post_init__(self):
        if self.ops_per_mac not in (1, 2):
            raise ValueError("ops_per_mac must be 1 or 2")


#: The convention used everywhere unless stated otherwise.
DEFAULT_CONVENTION = FlopsConvention()


@dataclass
class LayerTrace:
    """One parameterized layer observed during a traced forward pass."""

    name: str
    module: Module
    input_shape: Tuple[int, ...]
    output_shape: Tuple[int, ...]


def trace_layers(model: Module, input_shape: Tuple[int, ...]) -> List[LayerTrace]:
    """Run a dummy forward pass, recording conv/linear layer shapes.

    ``input_shape`` excludes the batch dimension, e.g. ``(3, 32, 32)``.
    """
    traces: List[LayerTrace] = []
    removers = []
    name_of = {id(m): n for n, m in model.named_modules()}

    def make_hook(module: Module):
        def hook(mod, args, out):
            traces.append(
                LayerTrace(
                    name=name_of.get(id(mod), "?"),
                    module=mod,
                    input_shape=tuple(args[0].shape),
                    output_shape=tuple(out.shape),
                )
            )

        return hook

    for n, m in model.named_modules():
        if isinstance(m, (Conv2d, Linear)):
            removers.append(m.register_forward_hook(make_hook(m)))
    was_training = model.training
    model.eval()
    try:
        with no_grad():
            dummy = Tensor(np.zeros((1,) + tuple(input_shape), dtype=np.float32))
            model(dummy)
    finally:
        model.train(was_training)
        for remove in removers:
            remove()
    return traces


def _layer_macs(trace: LayerTrace, nonzero_weights: Optional[int]) -> float:
    """MACs for one layer; ``nonzero_weights=None`` means dense count."""
    m = trace.module
    if isinstance(m, Conv2d):
        out_positions = trace.output_shape[2] * trace.output_shape[3]
        weights = m.weight.size if nonzero_weights is None else nonzero_weights
        return float(weights) * out_positions
    if isinstance(m, Linear):
        weights = m.weight.size if nonzero_weights is None else nonzero_weights
        return float(weights)
    raise TypeError(f"unsupported layer {type(m).__name__}")


def _bias_ops(trace: LayerTrace) -> float:
    m = trace.module
    if getattr(m, "bias", None) is None:
        return 0.0
    out = trace.output_shape
    return float(np.prod(out[1:]))


def flops_by_layer(
    model: Module,
    input_shape: Tuple[int, ...],
    convention: FlopsConvention = DEFAULT_CONVENTION,
    effective: bool = False,
) -> Dict[str, float]:
    """Per-layer FLOPs.  ``effective=True`` counts only nonzero weights."""
    result: Dict[str, float] = {}
    for trace in trace_layers(model, input_shape):
        if isinstance(trace.module, Linear) and not convention.include_linear:
            continue
        nz = (
            int(np.count_nonzero(trace.module.weight.data)) if effective else None
        )
        ops = _layer_macs(trace, nz) * convention.ops_per_mac
        if convention.include_bias:
            ops += _bias_ops(trace)
        result[trace.name] = result.get(trace.name, 0.0) + ops
    return result


def dense_flops(
    model: Module,
    input_shape: Tuple[int, ...],
    convention: FlopsConvention = DEFAULT_CONVENTION,
) -> float:
    """Total FLOPs of the dense (unpruned) model for one input."""
    return sum(flops_by_layer(model, input_shape, convention).values())


def effective_flops(
    model: Module,
    input_shape: Tuple[int, ...],
    convention: FlopsConvention = DEFAULT_CONVENTION,
) -> float:
    """Total FLOPs counting only nonzero weights (pruned model cost)."""
    return sum(
        flops_by_layer(model, input_shape, convention, effective=True).values()
    )


def theoretical_speedup(
    model: Module,
    input_shape: Tuple[int, ...],
    convention: FlopsConvention = DEFAULT_CONVENTION,
) -> float:
    """§6 definition: original multiply-adds / pruned multiply-adds."""
    dense = dense_flops(model, input_shape, convention)
    eff = effective_flops(model, input_shape, convention)
    if eff <= 0:
        raise ValueError("model has zero effective FLOPs (fully pruned?)")
    return dense / eff
