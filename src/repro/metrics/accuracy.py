"""Accuracy metrics: Top-1 / Top-5, batched model evaluation.

§6: "For ImageNet and other many-class datasets, report both Top-1 and
Top-5 accuracy.  There is again no reason to report only one of these."
:func:`evaluate` therefore always returns both.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..autograd import Tensor, cross_entropy, no_grad
from ..data import DataLoader
from ..nn import Module

__all__ = ["topk_accuracy", "evaluate"]


def topk_accuracy(logits: np.ndarray, targets: np.ndarray, k: int = 1) -> float:
    """Fraction of rows whose target is among the k largest logits."""
    if k < 1:
        raise ValueError("k must be >= 1")
    n, c = logits.shape
    if k >= c:
        return 1.0
    # argpartition: top-k indices per row in O(c).
    topk = np.argpartition(logits, c - k, axis=1)[:, c - k :]
    return float(np.mean(np.any(topk == targets[:, None], axis=1)))


def evaluate(model: Module, loader: DataLoader, top5: bool = True) -> Dict[str, float]:
    """Evaluate a model: loss, Top-1 and (optionally) Top-5 accuracy.

    Runs in eval mode under ``no_grad`` and restores the previous mode.
    """
    was_training = model.training
    model.eval()
    n_total = 0
    loss_sum = 0.0
    top1_sum = 0.0
    top5_sum = 0.0
    try:
        with no_grad():
            for xb, yb in loader:
                out = model(Tensor(xb))
                n = len(yb)
                loss_sum += cross_entropy(out, yb).item() * n
                top1_sum += topk_accuracy(out.data, yb, 1) * n
                if top5:
                    top5_sum += topk_accuracy(out.data, yb, 5) * n
                n_total += n
    finally:
        model.train(was_training)
    if n_total == 0:
        raise ValueError("empty loader")
    result = {"loss": loss_sum / n_total, "top1": top1_sum / n_total}
    if top5:
        result["top5"] = top5_sum / n_total
    return result
