"""Model-size metrics and the §5.2/§6 metric conventions.

The paper documents widespread ambiguity around size metrics:

* "compression ratio" should mean ``original / compressed`` (§6), but many
  papers use ``1 − compressed/original``;
* "Pruned%" sometimes means fraction *removed*, sometimes fraction
  *remaining*.

Both conventions are provided under explicit names so the ambiguity is
machine-checkable, and the recommended definitions carry the plain names.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..nn import Module

__all__ = [
    "total_params",
    "nonzero_params",
    "compression_ratio",
    "compression_ratio_misused",
    "fraction_pruned",
    "fraction_remaining",
    "model_size_bytes",
    "per_layer_nonzero",
]


def total_params(model: Module) -> int:
    """Number of parameters (all tensors, dense count)."""
    return sum(p.size for p in model.parameters())


def nonzero_params(model: Module) -> int:
    """Number of non-zero parameters (the paper's compressed size)."""
    return int(sum(np.count_nonzero(p.data) for p in model.parameters()))


def compression_ratio(original_size: float, compressed_size: float) -> float:
    """The recommended definition: original / compressed (§6)."""
    if compressed_size <= 0:
        raise ValueError("compressed size must be positive")
    if original_size <= 0:
        raise ValueError("original size must be positive")
    return original_size / compressed_size


def compression_ratio_misused(original_size: float, compressed_size: float) -> float:
    """The *misused* definition: ``1 − compressed/original`` (§5.2).

    Provided only so analyses can translate results from papers that use it;
    do not report this as "compression ratio".
    """
    if original_size <= 0:
        raise ValueError("original size must be positive")
    return 1.0 - compressed_size / original_size


def fraction_pruned(original_size: float, compressed_size: float) -> float:
    """"Pruned%" as fraction REMOVED."""
    return 1.0 - compressed_size / original_size


def fraction_remaining(original_size: float, compressed_size: float) -> float:
    """"Pruned%" as fraction REMAINING (the other convention in the wild)."""
    return compressed_size / original_size


def model_size_bytes(model: Module, bytes_per_param: int = 4, sparse: bool = False) -> int:
    """Storage footprint estimate.

    ``sparse=True`` counts only non-zero parameters (idealized sparse
    storage, ignoring index overhead); dense counts every slot.
    """
    count = nonzero_params(model) if sparse else total_params(model)
    return count * bytes_per_param


def per_layer_nonzero(model: Module) -> Dict[str, Dict[str, int]]:
    """Per-parameter-tensor dense size and nonzero count."""
    out: Dict[str, Dict[str, int]] = {}
    for name, p in model.named_parameters():
        out[name] = {
            "size": int(p.size),
            "nonzero": int(np.count_nonzero(p.data)),
        }
    return out
