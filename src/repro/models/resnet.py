"""ResNet architectures.

Two families, matching the two He et al. (2016a) variants the paper warns
are often conflated (§5.1 "Architecture Ambiguity"):

* **CIFAR ResNets** (ResNet-20/32/56/110): 3×3 stem, three stages of widths
  ``[16, 32, 64] × width_scale`` with ``(depth - 2) / 6`` basic blocks each.
* **ImageNet-style ResNet-18**: four stages ``[64, 128, 256, 512] ×
  width_scale`` with two basic blocks each and a stride-2 stem regime.

``width_scale`` shrinks channel counts for the CPU budget while preserving
topology — the property pruning behaviour depends on (see DESIGN.md).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..autograd import Tensor
from ..nn import (
    BatchNorm2d,
    Conv2d,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    Module,
    ModuleList,
    ReLU,
    Sequential,
)

__all__ = [
    "BasicBlock",
    "CifarResNet",
    "resnet20",
    "resnet32",
    "resnet56",
    "resnet110",
    "ResNet18",
    "resnet18",
]


def _conv_bn(
    in_ch: int, out_ch: int, kernel: int, stride: int, padding: int, rng
) -> Sequential:
    return Sequential(
        Conv2d(in_ch, out_ch, kernel, stride=stride, padding=padding, bias=False, rng=rng),
        BatchNorm2d(out_ch),
    )


class BasicBlock(Module):
    """Two 3×3 conv-bn pairs with a residual connection."""

    def __init__(self, in_ch: int, out_ch: int, stride: int, rng) -> None:
        super().__init__()
        self.conv1 = Conv2d(in_ch, out_ch, 3, stride=stride, padding=1, bias=False, rng=rng)
        self.bn1 = BatchNorm2d(out_ch)
        self.conv2 = Conv2d(out_ch, out_ch, 3, stride=1, padding=1, bias=False, rng=rng)
        self.bn2 = BatchNorm2d(out_ch)
        if stride != 1 or in_ch != out_ch:
            self.shortcut = _conv_bn(in_ch, out_ch, 1, stride, 0, rng)
        else:
            self.shortcut = Identity()

    def forward(self, x: Tensor) -> Tensor:
        out = self.bn1(self.conv1(x)).relu()
        out = self.bn2(self.conv2(out))
        return (out + self.shortcut(x)).relu()


class CifarResNet(Module):
    """He et al. CIFAR ResNet with ``depth = 6n + 2``."""

    def __init__(
        self,
        depth: int,
        num_classes: int = 10,
        width_scale: float = 1.0,
        in_channels: int = 3,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if (depth - 2) % 6 != 0:
            raise ValueError(f"CIFAR ResNet depth must be 6n+2, got {depth}")
        n = (depth - 2) // 6
        rng = np.random.default_rng(seed)
        widths = [max(4, int(round(w * width_scale))) for w in (16, 32, 64)]
        self.depth = depth
        self.stem = Conv2d(in_channels, widths[0], 3, padding=1, bias=False, rng=rng)
        self.bn = BatchNorm2d(widths[0])
        blocks: List[Module] = []
        in_ch = widths[0]
        for stage, w in enumerate(widths):
            for b in range(n):
                stride = 2 if (stage > 0 and b == 0) else 1
                blocks.append(BasicBlock(in_ch, w, stride, rng))
                in_ch = w
        self.blocks = ModuleList(blocks)
        self.pool = GlobalAvgPool2d()
        self.fc = Linear(in_ch, num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        out = self.bn(self.stem(x)).relu()
        for block in self.blocks:
            out = block(out)
        return self.fc(self.pool(out))

    @property
    def classifier(self) -> Linear:
        """The final layer before the softmax (excluded from pruning by default)."""
        return self.fc


def resnet20(num_classes: int = 10, width_scale: float = 1.0, seed: int = 0, **kw):
    """ResNet-20 for CIFAR-shaped input."""
    return CifarResNet(20, num_classes, width_scale, seed=seed, **kw)


def resnet32(num_classes: int = 10, width_scale: float = 1.0, seed: int = 0, **kw):
    """ResNet-32 for CIFAR-shaped input."""
    return CifarResNet(32, num_classes, width_scale, seed=seed, **kw)


def resnet56(num_classes: int = 10, width_scale: float = 1.0, seed: int = 0, **kw):
    """ResNet-56 for CIFAR-shaped input (used in Figures 7, 8, 13, 14)."""
    return CifarResNet(56, num_classes, width_scale, seed=seed, **kw)


def resnet110(num_classes: int = 10, width_scale: float = 1.0, seed: int = 0, **kw):
    """ResNet-110 for CIFAR-shaped input (used in Figures 15, 16)."""
    return CifarResNet(110, num_classes, width_scale, seed=seed, **kw)


class ResNet18(Module):
    """ImageNet-style ResNet-18: stages [2,2,2,2], widths [64,128,256,512]·s.

    For small inputs (<64 px) the stem is a 3×3 stride-1 conv; for larger
    inputs it is the standard 7×7 stride-2 conv plus 3×3 max-pool.
    """

    def __init__(
        self,
        num_classes: int = 20,
        width_scale: float = 1.0,
        in_channels: int = 3,
        input_size: int = 32,
        seed: int = 0,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        widths = [max(4, int(round(w * width_scale))) for w in (64, 128, 256, 512)]
        if input_size >= 64:
            self.stem = Conv2d(in_channels, widths[0], 7, stride=2, padding=3, bias=False, rng=rng)
            self.stem_pool: Module = MaxPool2d(3, 2)
        else:
            self.stem = Conv2d(in_channels, widths[0], 3, stride=1, padding=1, bias=False, rng=rng)
            self.stem_pool = Identity()
        self.bn = BatchNorm2d(widths[0])
        blocks: List[Module] = []
        in_ch = widths[0]
        for stage, w in enumerate(widths):
            for b in range(2):
                stride = 2 if (stage > 0 and b == 0) else 1
                blocks.append(BasicBlock(in_ch, w, stride, rng))
                in_ch = w
        self.blocks = ModuleList(blocks)
        self.pool = GlobalAvgPool2d()
        self.fc = Linear(in_ch, num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        out = self.bn(self.stem(x)).relu()
        out = self.stem_pool(out)
        for block in self.blocks:
            out = block(out)
        return self.fc(self.pool(out))

    @property
    def classifier(self) -> Linear:
        return self.fc


def resnet18(num_classes: int = 20, width_scale: float = 1.0, seed: int = 0, **kw):
    """ResNet-18 (used in Figures 6, 17, 18)."""
    return ResNet18(num_classes, width_scale, seed=seed, **kw)
