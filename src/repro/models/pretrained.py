"""Pretrained-weight store: train once, cache, reuse everywhere.

§7.3 ("Using the Same Initial Model is Essential") shows that starting
different methods from different checkpoints of the same architecture skews
comparisons.  The store guarantees every (model, dataset, recipe, seed)
tuple maps to exactly one checkpoint on disk, so every strategy in a sweep
prunes the *same* initial model.

Checkpoints are ``.npz`` files under ``artifacts/pretrained/`` keyed by a
hash of the full configuration; the Figure 8 experiment gets its two
distinct checkpoints ("Weights A"/"Weights B") by varying the recipe's
learning rate, exactly as in the paper.
"""

from __future__ import annotations

import hashlib
import json
import zipfile
from pathlib import Path
from typing import Dict, Optional, Tuple

import numpy as np

from ..nn import Module
from ..utils import artifacts_dir, atomic_write_text, atomic_writer

__all__ = ["pretrained_key", "load_checkpoint", "save_checkpoint", "get_pretrained_state"]


def pretrained_key(
    model_name: str,
    model_kwargs: Dict,
    dataset_name: str,
    dataset_kwargs: Dict,
    train_config: Dict,
    seed: int,
) -> str:
    """Stable hash identifying one pretraining configuration."""
    blob = json.dumps(
        {
            "model": model_name,
            "model_kwargs": model_kwargs,
            "dataset": dataset_name,
            "dataset_kwargs": dataset_kwargs,
            "train": train_config,
            "seed": seed,
        },
        sort_keys=True,
        default=str,
    )
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def _path_for(key: str) -> Path:
    return artifacts_dir("pretrained") / f"{key}.npz"


def save_checkpoint(key: str, state: Dict[str, np.ndarray], meta: Optional[Dict] = None) -> Path:
    """Persist a state dict (and JSON metadata sidecar) under ``key``.

    Writes are atomic (temp file in the same directory + ``os.replace``), so
    parallel sweep workers racing to cache the same checkpoint can never
    expose a torn ``.npz`` to a concurrent :func:`load_checkpoint`; the last
    writer wins with byte-identical content because pretraining is
    deterministic in the key's configuration.
    """
    path = _path_for(key)
    with atomic_writer(path) as tmp:
        with open(tmp, "wb") as f:
            np.savez_compressed(f, **state)
    if meta is not None:
        atomic_write_text(
            path.with_suffix(".json"), json.dumps(meta, indent=2, default=str)
        )
    return path


def load_checkpoint(key: str) -> Optional[Dict[str, np.ndarray]]:
    """Load a cached state dict, or None if absent."""
    path = _path_for(key)
    if not path.exists():
        return None
    try:
        with np.load(path) as data:
            return {name: data[name] for name in data.files}
    # Torn/corrupt files (crashed pre-atomic writer, disk-full truncation):
    # np.load raises BadZipFile for truncated archives and EOFError for
    # zero-byte files, besides the OSError/ValueError cases.
    except (OSError, ValueError, EOFError, zipfile.BadZipFile):
        return None


def get_pretrained_state(
    model_name: str,
    model_kwargs: Dict,
    dataset_name: str,
    dataset_kwargs: Dict,
    train_config,
    seed: int,
    trainer_factory,
) -> Tuple[Dict[str, np.ndarray], str]:
    """Return (state_dict, key), training and caching on first use.

    ``trainer_factory()`` must build, train and return the model; it is only
    invoked on a cache miss.
    """
    key = pretrained_key(
        model_name,
        model_kwargs,
        dataset_name,
        dataset_kwargs,
        train_config.to_dict() if hasattr(train_config, "to_dict") else dict(train_config),
        seed,
    )
    state = load_checkpoint(key)
    if state is None:
        model, history = trainer_factory()
        state = model.state_dict()
        save_checkpoint(
            key,
            state,
            meta={
                "model": model_name,
                "model_kwargs": model_kwargs,
                "dataset": dataset_name,
                "dataset_kwargs": dataset_kwargs,
                "seed": seed,
                "final_val_top1": history[-1]["val_top1"] if history else None,
                "epochs_ran": len(history),
            },
        )
    return state, key
