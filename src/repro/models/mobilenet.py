"""MobileNet-style depthwise-separable network.

MobileNet-v2 is one of the architecture families in Figure 1's
efficiency/accuracy frontier.  The corpus analysis uses published numbers for
that figure; this runnable scaled MobileNet exists so the *efficient
architecture vs pruning* comparison (§3.3) can also be exercised end-to-end
on the synthetic datasets (see ``examples/architecture_vs_pruning.py``).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..autograd import Tensor
from ..nn import (
    BatchNorm2d,
    Conv2d,
    GlobalAvgPool2d,
    Linear,
    Module,
    ModuleList,
    ReLU,
    Sequential,
)

__all__ = ["MobileNetSmall", "mobilenet_small"]


class _DepthwiseSeparable(Module):
    """Depthwise 3×3 conv followed by pointwise 1×1 conv, each with BN+ReLU."""

    def __init__(self, in_ch: int, out_ch: int, stride: int, rng) -> None:
        super().__init__()
        self.dw = Conv2d(in_ch, in_ch, 3, stride=stride, padding=1, groups=in_ch, bias=False, rng=rng)
        self.bn1 = BatchNorm2d(in_ch)
        self.pw = Conv2d(in_ch, out_ch, 1, bias=False, rng=rng)
        self.bn2 = BatchNorm2d(out_ch)

    def forward(self, x: Tensor) -> Tensor:
        out = self.bn1(self.dw(x)).relu()
        return self.bn2(self.pw(out)).relu()


class MobileNetSmall(Module):
    """MobileNet-v1-style stack scaled for small synthetic inputs."""

    # (out_channels, stride) per separable block, before width scaling.
    _CFG: List[Tuple[int, int]] = [(64, 1), (128, 2), (128, 1), (256, 2), (256, 1)]

    def __init__(
        self,
        num_classes: int = 10,
        width_scale: float = 1.0,
        in_channels: int = 3,
        seed: int = 0,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        stem_ch = max(4, int(round(32 * width_scale)))
        self.stem = Conv2d(in_channels, stem_ch, 3, stride=1, padding=1, bias=False, rng=rng)
        self.bn = BatchNorm2d(stem_ch)
        blocks: List[Module] = []
        ch = stem_ch
        for out, stride in self._CFG:
            out_ch = max(4, int(round(out * width_scale)))
            blocks.append(_DepthwiseSeparable(ch, out_ch, stride, rng))
            ch = out_ch
        self.blocks = ModuleList(blocks)
        self.pool = GlobalAvgPool2d()
        self.fc = Linear(ch, num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        out = self.bn(self.stem(x)).relu()
        for block in self.blocks:
            out = block(out)
        return self.fc(self.pool(out))

    @property
    def classifier(self) -> Linear:
        return self.fc


def mobilenet_small(num_classes: int = 10, width_scale: float = 1.0, seed: int = 0, **kw):
    """Small MobileNet for the architecture-vs-pruning example."""
    return MobileNetSmall(num_classes, width_scale, seed=seed, **kw)
