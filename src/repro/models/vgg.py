"""CIFAR-VGG (Zagoruyko 2015, "92.45% on CIFAR-10 in Torch").

The paper uses this exact network for Figures 7, 9, 10 and cites its origin
explicitly to avoid the VGG ambiguity catalogued in §5.1 (many papers call
incompatible custom variants "VGG-16").  Structure: conv stacks
[64,64, M, 128,128, M, 256,256, M, 512,512, M, 512,512, M] with batch norm,
then a 512→512→classes classifier with dropout.  ``width_scale`` shrinks
channels for the CPU budget; topology is preserved.
"""

from __future__ import annotations

from typing import List, Union

import numpy as np

from ..autograd import Tensor
from ..nn import (
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Linear,
    MaxPool2d,
    Module,
    ReLU,
    Sequential,
)

__all__ = ["CifarVGG", "cifar_vgg"]

# 'M' denotes 2x2 max-pooling.
_CFG: List[Union[int, str]] = [64, 64, "M", 128, 128, "M", 256, 256, "M", 512, 512, "M", 512, 512, "M"]


class CifarVGG(Module):
    """VGG-style conv stack + small FC head, per Zagoruyko (2015)."""

    def __init__(
        self,
        num_classes: int = 10,
        width_scale: float = 1.0,
        in_channels: int = 3,
        input_size: int = 32,
        dropout: float = 0.3,
        seed: int = 0,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        layers: List[Module] = []
        ch = in_channels
        n_pools = 0
        for item in _CFG:
            if item == "M":
                # Stop pooling once the spatial dims would hit zero (small inputs).
                if input_size // (2 ** (n_pools + 1)) >= 1:
                    layers.append(MaxPool2d(2, 2))
                    n_pools += 1
                continue
            out_ch = max(4, int(round(item * width_scale)))
            layers.append(Conv2d(ch, out_ch, 3, padding=1, bias=False, rng=rng))
            layers.append(BatchNorm2d(out_ch))
            layers.append(ReLU())
            ch = out_ch
        self.features = Sequential(*layers)
        hidden = max(8, int(round(512 * width_scale)))
        self.flatten = Flatten()
        final_spatial = max(1, input_size // (2**n_pools))
        flat_dim = ch * final_spatial * final_spatial
        self.fc1 = Linear(flat_dim, hidden, rng=rng)
        self.dropout = Dropout(dropout, rng=np.random.default_rng(seed + 1))
        self.fc2 = Linear(hidden, num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        out = self.features(x)
        out = self.flatten(out)
        out = self.dropout(self.fc1(out).relu())
        return self.fc2(out)

    @property
    def classifier(self) -> Linear:
        """Final pre-softmax layer (excluded from pruning by default)."""
        return self.fc2


def cifar_vgg(num_classes: int = 10, width_scale: float = 1.0, seed: int = 0, **kw):
    """CIFAR-VGG (used in Figures 7, 9, 10)."""
    return CifarVGG(num_classes, width_scale, seed=seed, **kw)
