"""Model zoo: LeNet, CIFAR-VGG, CIFAR/ImageNet ResNets, MobileNet."""

from .lenet import LeNet5, LeNet300100, lenet5, lenet_300_100
from .vgg import CifarVGG, cifar_vgg
from .resnet import (
    BasicBlock,
    CifarResNet,
    ResNet18,
    resnet18,
    resnet20,
    resnet32,
    resnet56,
    resnet110,
)
from .mobilenet import MobileNetSmall, mobilenet_small
from .registry import (
    MODEL_REGISTRY,
    MODELS,
    available_models,
    create_model,
    register_model,
)

__all__ = [
    "LeNet300100",
    "LeNet5",
    "lenet_300_100",
    "lenet5",
    "CifarVGG",
    "cifar_vgg",
    "BasicBlock",
    "CifarResNet",
    "ResNet18",
    "resnet18",
    "resnet20",
    "resnet32",
    "resnet56",
    "resnet110",
    "MobileNetSmall",
    "mobilenet_small",
    "MODELS",
    "MODEL_REGISTRY",
    "create_model",
    "available_models",
    "register_model",
]
