"""LeNet family (LeCun et al. 1998).

LeNet-300-100 and LeNet-5 appear among the most common benchmark networks in
the meta-analysis corpus (Table 1), despite the paper's recommendation to
retire them.  They are included for completeness, for tests (cheap fully-
connected pruning targets), and for the MNIST rows of the fragmentation
analysis.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor
from ..nn import Conv2d, Flatten, Linear, MaxPool2d, Module

__all__ = ["LeNet300100", "LeNet5", "lenet_300_100", "lenet5"]


class LeNet300100(Module):
    """Fully-connected 784–300–100–10 network."""

    def __init__(
        self, num_classes: int = 10, input_size: int = 28, in_channels: int = 1, seed: int = 0
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        flat = in_channels * input_size * input_size
        self.flatten = Flatten()
        self.fc1 = Linear(flat, 300, rng=rng)
        self.fc2 = Linear(300, 100, rng=rng)
        self.fc3 = Linear(100, num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        out = self.flatten(x)
        out = self.fc1(out).relu()
        out = self.fc2(out).relu()
        return self.fc3(out)

    @property
    def classifier(self) -> Linear:
        return self.fc3


class LeNet5(Module):
    """Convolutional LeNet-5: 6@5×5 → pool → 16@5×5 → pool → 120 → 84 → 10."""

    def __init__(
        self, num_classes: int = 10, input_size: int = 28, in_channels: int = 1, seed: int = 0
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.conv1 = Conv2d(in_channels, 6, 5, padding=2, rng=rng)
        self.pool1 = MaxPool2d(2, 2)
        self.conv2 = Conv2d(6, 16, 5, rng=rng)
        self.pool2 = MaxPool2d(2, 2)
        s = input_size // 2  # after pool1 (conv1 padding preserves size)
        s = (s - 4) // 2  # conv2 (no padding) then pool2
        self.flatten = Flatten()
        self.fc1 = Linear(16 * s * s, 120, rng=rng)
        self.fc2 = Linear(120, 84, rng=rng)
        self.fc3 = Linear(84, num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        out = self.pool1(self.conv1(x).relu())
        out = self.pool2(self.conv2(out).relu())
        out = self.flatten(out)
        out = self.fc1(out).relu()
        out = self.fc2(out).relu()
        return self.fc3(out)

    @property
    def classifier(self) -> Linear:
        return self.fc3


def lenet_300_100(num_classes: int = 10, seed: int = 0, **kw):
    """LeNet-300-100 for MNIST-shaped input."""
    return LeNet300100(num_classes, seed=seed, **kw)


def lenet5(num_classes: int = 10, seed: int = 0, **kw):
    """LeNet-5 for MNIST-shaped input."""
    return LeNet5(num_classes, seed=seed, **kw)
