"""Model registry: name → factory, with keyword passthrough.

Gives experiments and benchmarks a single string-keyed entry point, which is
also how results are tagged on disk (the paper's recommendation to "identify
the exact sets of architectures ... in a structured way").

``MODELS`` is the shared :class:`repro.registry.Registry` instance; register
custom architectures with ``@MODELS.register("my-net")`` and instantiate
them with ``MODELS.create("my-net", **kwargs)``.  ``create_model`` /
``register_model`` / ``MODEL_REGISTRY`` are the historical entry points,
kept as thin aliases.
"""

from __future__ import annotations

from typing import Callable, List

from ..nn import Module
from ..registry import Registry, warn_deprecated
from .lenet import lenet5, lenet_300_100
from .mobilenet import mobilenet_small
from .resnet import resnet18, resnet20, resnet32, resnet56, resnet110
from .vgg import cifar_vgg

__all__ = [
    "MODELS",
    "MODEL_REGISTRY",
    "create_model",
    "available_models",
    "register_model",
]

MODELS = Registry(
    "model",
    {
        "lenet-300-100": lenet_300_100,
        "lenet-5": lenet5,
        "cifar-vgg": cifar_vgg,
        "resnet-20": resnet20,
        "resnet-32": resnet32,
        "resnet-56": resnet56,
        "resnet-110": resnet110,
        "resnet-18": resnet18,
        "mobilenet-small": mobilenet_small,
    },
)

#: historical dict-style alias — the same object as ``MODELS``
MODEL_REGISTRY = MODELS


def register_model(name: str, factory: Callable[..., Module]) -> None:
    """Add a custom architecture to the registry (alias of MODELS.register)."""
    MODELS.register(name, factory)


def create_model(name: str, **kwargs) -> Module:
    """Deprecated: use :meth:`MODELS.create` instead."""
    warn_deprecated("repro.models.create_model", "repro.models.MODELS.create")
    return MODELS.create(name, **kwargs)


def available_models() -> List[str]:
    return MODELS.available()
