"""Model registry: name → factory, with keyword passthrough.

Gives experiments and benchmarks a single string-keyed entry point, which is
also how results are tagged on disk (the paper's recommendation to "identify
the exact sets of architectures ... in a structured way").
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..nn import Module
from .lenet import lenet5, lenet_300_100
from .mobilenet import mobilenet_small
from .resnet import resnet18, resnet20, resnet32, resnet56, resnet110
from .vgg import cifar_vgg

__all__ = ["MODEL_REGISTRY", "create_model", "available_models", "register_model"]

MODEL_REGISTRY: Dict[str, Callable[..., Module]] = {
    "lenet-300-100": lenet_300_100,
    "lenet-5": lenet5,
    "cifar-vgg": cifar_vgg,
    "resnet-20": resnet20,
    "resnet-32": resnet32,
    "resnet-56": resnet56,
    "resnet-110": resnet110,
    "resnet-18": resnet18,
    "mobilenet-small": mobilenet_small,
}


def register_model(name: str, factory: Callable[..., Module]) -> None:
    """Add a custom architecture to the registry (used by downstream code)."""
    if name in MODEL_REGISTRY:
        raise ValueError(f"model {name!r} already registered")
    MODEL_REGISTRY[name] = factory


def create_model(name: str, **kwargs) -> Module:
    """Instantiate a registered architecture by name."""
    if name not in MODEL_REGISTRY:
        raise KeyError(
            f"unknown model {name!r}; available: {sorted(MODEL_REGISTRY)}"
        )
    return MODEL_REGISTRY[name](**kwargs)


def available_models() -> List[str]:
    return sorted(MODEL_REGISTRY)
