"""Synthetic CIFAR-10 stand-in (see DESIGN.md substitution table).

Same tensor interface as the real dataset — 10 classes of 3×``size``×``size``
float images with train/val splits and the standard augmentation pipeline
(random crop + horizontal flip + per-channel normalization).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .dataset import ArrayDataset
from .synthetic import make_classification_images
from .transforms import Compose, Normalize, RandomCrop, RandomHorizontalFlip

__all__ = ["SyntheticCIFAR10"]


class SyntheticCIFAR10:
    """Deterministic CIFAR-10 surrogate.

    Parameters
    ----------
    n_train, n_val:
        Split sizes (the real dataset is 50k/10k; defaults are scaled to the
        CPU budget and can be raised).
    size:
        Spatial resolution (real CIFAR-10 is 32).
    seed:
        Controls the generated images; train and val come from disjoint
        streams of the same class-conditional distribution.
    noise:
        Pixel-noise level; governs the achievable top accuracy.
    """

    NUM_CLASSES = 10
    CHANNELS = 3

    def __init__(
        self,
        n_train: int = 4000,
        n_val: int = 1000,
        size: int = 32,
        seed: int = 0,
        noise: float = 0.55,
    ) -> None:
        self.size = size
        self.seed = seed
        x, y = make_classification_images(
            n_train + n_val,
            self.NUM_CLASSES,
            channels=self.CHANNELS,
            size=size,
            noise=noise,
            seed=seed,
        )
        # Channel statistics computed on the train split, like real pipelines.
        self.mean = x[:n_train].mean(axis=(0, 2, 3))
        self.std = x[:n_train].std(axis=(0, 2, 3)) + 1e-8
        self.train = ArrayDataset(x[:n_train], y[:n_train])
        self.val = ArrayDataset(x[n_train:], y[n_train:])

    def train_transform(self) -> Compose:
        """Augmentation used for (pre)training: crop + flip + normalize."""
        return Compose(
            [
                RandomCrop(padding=max(1, self.size // 16)),
                RandomHorizontalFlip(0.5),
                Normalize(self.mean, self.std),
            ]
        )

    def eval_transform(self) -> Compose:
        """Normalization only."""
        return Compose([Normalize(self.mean, self.std)])
