"""Data pipeline: datasets, loaders, transforms, synthetic generators."""

from .dataset import ArrayDataset, Dataset, Subset, train_val_split
from .dataloader import DataLoader
from .synthetic import bilinear_upsample, make_classification_images
from .transforms import Compose, Normalize, RandomCrop, RandomHorizontalFlip
from .cifar import SyntheticCIFAR10
from .imagenet import SyntheticImageNet
from .mnist import SyntheticMNIST

__all__ = [
    "Dataset",
    "ArrayDataset",
    "Subset",
    "train_val_split",
    "DataLoader",
    "make_classification_images",
    "bilinear_upsample",
    "Compose",
    "Normalize",
    "RandomCrop",
    "RandomHorizontalFlip",
    "SyntheticCIFAR10",
    "SyntheticImageNet",
    "SyntheticMNIST",
]
