"""Seeded mini-batch loader over in-memory datasets.

Batches whole arrays at once (no per-sample Python loop) and owns a
deterministic RNG used both for shuffling and for stochastic transforms, so a
(dataset, seed) pair always yields the identical batch stream — one of the
paper's core reproducibility recommendations.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from .dataset import ArrayDataset, Dataset

__all__ = ["DataLoader"]


class DataLoader:
    """Iterate ``(x_batch, y_batch)`` numpy pairs over a dataset.

    Parameters
    ----------
    dataset:
        An :class:`ArrayDataset` (fast path) or any map-style dataset.
    batch_size:
        Number of samples per batch.
    shuffle:
        Reshuffle at the start of every epoch.
    seed:
        Seed for the loader's private RNG (shuffling + transforms).
    transform:
        Optional callable ``(batch, rng) -> batch`` applied per batch.
    drop_last:
        Drop the trailing partial batch.
    """

    def __init__(
        self,
        dataset: Dataset,
        batch_size: int = 64,
        shuffle: bool = False,
        seed: int = 0,
        transform=None,
        drop_last: bool = False,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.transform = transform
        self.drop_last = drop_last
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        if isinstance(dataset, ArrayDataset):
            self._x, self._y = dataset.x, dataset.y
        else:  # materialize generic datasets once
            xs, ys = zip(*(dataset[i] for i in range(len(dataset))))
            self._x = np.stack(xs).astype(np.float32)
            self._y = np.asarray(ys, dtype=np.int64)

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        n = len(self._x)
        order = self.rng.permutation(n) if self.shuffle else np.arange(n)
        end = n - (n % self.batch_size) if self.drop_last else n
        for start in range(0, end, self.batch_size):
            idx = order[start : start + self.batch_size]
            xb = self._x[idx]
            yb = self._y[idx]
            if self.transform is not None:
                xb = self.transform(xb, self.rng)
            yield xb, yb

    def one_batch(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return a single batch (used by gradient-based pruning scores).

        Appendix C.1: "For both Global and Layerwise Gradient Magnitude
        Pruning a single minibatch is used to compute the gradients."

        Draws from an independent RNG stream forked off the loader seed, so
        calling it never consumes state from ``self.rng`` — the epoch batch
        stream produced by iterating this loader is identical whether or not
        ``one_batch()`` was called, preserving the "(dataset, seed) →
        identical batch stream" guarantee.  Repeated calls return the same
        (deterministic) batch, including any stochastic ``transform``.
        """
        rng = np.random.default_rng(np.random.SeedSequence(self.seed, spawn_key=(1,)))
        n = len(self._x)
        order = rng.permutation(n) if self.shuffle else np.arange(n)
        idx = order[: self.batch_size]
        xb = self._x[idx]
        yb = self._y[idx]
        if self.transform is not None:
            xb = self.transform(xb, rng)
        return xb, yb
