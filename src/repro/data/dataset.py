"""Dataset abstractions: in-memory array datasets, subsets, splits."""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

__all__ = ["Dataset", "ArrayDataset", "Subset", "train_val_split"]


class Dataset:
    """Minimal map-style dataset: ``len(ds)`` and ``ds[i] -> (x, y)``."""

    def __len__(self) -> int:
        raise NotImplementedError

    def __getitem__(self, index: int) -> Tuple[np.ndarray, int]:
        raise NotImplementedError


class ArrayDataset(Dataset):
    """Dataset backed by in-memory arrays ``X`` (N,...) and ``y`` (N,)."""

    def __init__(self, x: np.ndarray, y: np.ndarray) -> None:
        x = np.asarray(x, dtype=np.float32)
        y = np.asarray(y, dtype=np.int64)
        if len(x) != len(y):
            raise ValueError(f"length mismatch: X has {len(x)}, y has {len(y)}")
        self.x = x
        self.y = y

    def __len__(self) -> int:
        return len(self.x)

    def __getitem__(self, index: int) -> Tuple[np.ndarray, int]:
        return self.x[index], int(self.y[index])

    @property
    def num_classes(self) -> int:
        return int(self.y.max()) + 1

    @property
    def sample_shape(self) -> Tuple[int, ...]:
        return self.x.shape[1:]


class Subset(Dataset):
    """View of a dataset restricted to the given indices."""

    def __init__(self, dataset: Dataset, indices: Sequence[int]) -> None:
        self.dataset = dataset
        self.indices = np.asarray(indices, dtype=np.int64)

    def __len__(self) -> int:
        return len(self.indices)

    def __getitem__(self, index: int):
        return self.dataset[int(self.indices[index])]


def train_val_split(
    dataset: ArrayDataset, val_fraction: float, seed: int = 0
) -> Tuple[ArrayDataset, ArrayDataset]:
    """Random stratification-free split into train/val ArrayDatasets."""
    if not 0.0 < val_fraction < 1.0:
        raise ValueError("val_fraction must be in (0, 1)")
    n = len(dataset)
    rng = np.random.default_rng(seed)
    perm = rng.permutation(n)
    n_val = max(1, int(round(n * val_fraction)))
    val_idx, train_idx = perm[:n_val], perm[n_val:]
    return (
        ArrayDataset(dataset.x[train_idx], dataset.y[train_idx]),
        ArrayDataset(dataset.x[val_idx], dataset.y[val_idx]),
    )
