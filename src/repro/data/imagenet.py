"""Synthetic ImageNet stand-in (see DESIGN.md substitution table).

The paper's ImageNet experiments (Figures 6, 17, 18) measure Top-1 accuracy
of pruned ResNet-18 at several compression ratios.  This surrogate keeps the
properties those experiments rely on: many classes (so Top-5 ≠ Top-1), RGB
input, a stride-2 stem architecture regime, and non-trivial achievable
accuracy.  Resolution and class count are scaled to the CPU budget.
"""

from __future__ import annotations

import numpy as np

from .dataset import ArrayDataset
from .synthetic import make_classification_images
from .transforms import Compose, Normalize, RandomCrop, RandomHorizontalFlip

__all__ = ["SyntheticImageNet"]


class SyntheticImageNet:
    """Deterministic ImageNet surrogate with ``n_classes`` classes."""

    CHANNELS = 3

    def __init__(
        self,
        n_train: int = 4000,
        n_val: int = 1000,
        n_classes: int = 20,
        size: int = 32,
        seed: int = 100,
        noise: float = 0.65,
    ) -> None:
        if n_classes < 6:
            raise ValueError("need >=6 classes for Top-5 to be meaningful")
        self.size = size
        self.num_classes = n_classes
        self.seed = seed
        x, y = make_classification_images(
            n_train + n_val,
            n_classes,
            channels=self.CHANNELS,
            size=size,
            noise=noise,
            modes_per_class=4,
            seed=seed,
        )
        self.mean = x[:n_train].mean(axis=(0, 2, 3))
        self.std = x[:n_train].std(axis=(0, 2, 3)) + 1e-8
        self.train = ArrayDataset(x[:n_train], y[:n_train])
        self.val = ArrayDataset(x[n_train:], y[n_train:])

    def train_transform(self) -> Compose:
        return Compose(
            [
                RandomCrop(padding=max(1, self.size // 16)),
                RandomHorizontalFlip(0.5),
                Normalize(self.mean, self.std),
            ]
        )

    def eval_transform(self) -> Compose:
        return Compose([Normalize(self.mean, self.std)])
