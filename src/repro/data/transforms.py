"""Batch-level data transforms (augmentation and normalization).

Transforms operate on whole batches ``(N, C, H, W)`` for vectorisation.
Random transforms take an explicit ``numpy.random.Generator`` at call time so
the DataLoader can own a single seeded stream — §4.5 of the paper lists data
augmentation among the confounders that must be held constant, which requires
it to be deterministic per seed.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

__all__ = ["Compose", "Normalize", "RandomHorizontalFlip", "RandomCrop"]


class Compose:
    """Apply transforms in order."""

    def __init__(self, transforms: Sequence) -> None:
        self.transforms = list(transforms)

    def __call__(self, batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        for t in self.transforms:
            batch = t(batch, rng)
        return batch

    def __repr__(self) -> str:
        inner = ", ".join(repr(t) for t in self.transforms)
        return f"Compose([{inner}])"


class Normalize:
    """Per-channel standardization ``(x - mean) / std``."""

    def __init__(self, mean: Sequence[float], std: Sequence[float]) -> None:
        self.mean = np.asarray(mean, dtype=np.float32).reshape(1, -1, 1, 1)
        self.std = np.asarray(std, dtype=np.float32).reshape(1, -1, 1, 1)
        if np.any(self.std <= 0):
            raise ValueError("std must be positive")

    def __call__(self, batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return (batch - self.mean) / self.std

    def __repr__(self) -> str:
        return "Normalize()"


class RandomHorizontalFlip:
    """Flip each image left-right with probability ``p``."""

    def __init__(self, p: float = 0.5) -> None:
        self.p = p

    def __call__(self, batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        flip = rng.random(len(batch)) < self.p
        out = batch.copy()
        out[flip] = out[flip, :, :, ::-1]
        return out

    def __repr__(self) -> str:
        return f"RandomHorizontalFlip(p={self.p})"


class RandomCrop:
    """Pad by ``padding`` pixels then crop back to the original size."""

    def __init__(self, padding: int = 2) -> None:
        if padding < 0:
            raise ValueError("padding must be >= 0")
        self.padding = padding

    def __call__(self, batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if self.padding == 0:
            return batch
        n, c, h, w = batch.shape
        p = self.padding
        padded = np.pad(batch, ((0, 0), (0, 0), (p, p), (p, p)))
        offs = rng.integers(0, 2 * p + 1, size=(n, 2))
        out = np.empty_like(batch)
        # Group by offset: at most (2p+1)^2 groups, each a vectorised copy.
        unique, inverse = np.unique(offs, axis=0, return_inverse=True)
        for k, (dy, dx) in enumerate(unique):
            idx = np.nonzero(inverse == k)[0]
            out[idx] = padded[idx, :, dy : dy + h, dx : dx + w]
        return out

    def __repr__(self) -> str:
        return f"RandomCrop(padding={self.padding})"
