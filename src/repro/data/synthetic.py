"""Synthetic class-conditional image generation.

The execution environment has no access to CIFAR-10, ImageNet or MNIST, so
this module provides the dataset *substitute* documented in DESIGN.md: a
deterministic generator of class-conditional images with enough intra-class
variability that (a) convnets must be trained to non-trivial accuracy, and
(b) accuracy degrades smoothly as capacity is pruned away — the property the
paper's tradeoff curves measure.

Generation recipe (per class):

1. Draw ``modes_per_class`` low-frequency prototype patterns by sampling a
   coarse coefficient grid and bilinearly upsampling to the target size.
   Low-frequency structure rewards convolutional feature sharing, so conv
   layers matter (their FLOPs dominate, as in real networks).
2. Each sample picks a mode, scales it by a random contrast, adds a random
   brightness shift, a small random translation, and i.i.d. Gaussian pixel
   noise.  The noise floor keeps top accuracy below 100% and makes accuracy
   sensitive to remaining capacity.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["make_classification_images", "bilinear_upsample"]


def bilinear_upsample(coarse: np.ndarray, out_hw: Tuple[int, int]) -> np.ndarray:
    """Bilinearly upsample ``(..., h, w)`` to ``(..., H, W)``."""
    h, w = coarse.shape[-2:]
    out_h, out_w = out_hw
    # Sample positions in source coordinates (align_corners=True semantics).
    ys = np.linspace(0, h - 1, out_h)
    xs = np.linspace(0, w - 1, out_w)
    y0 = np.floor(ys).astype(int)
    x0 = np.floor(xs).astype(int)
    y1 = np.minimum(y0 + 1, h - 1)
    x1 = np.minimum(x0 + 1, w - 1)
    wy = (ys - y0)[:, None]
    wx = (xs - x0)[None, :]
    a = coarse[..., y0[:, None], x0[None, :]]
    b = coarse[..., y0[:, None], x1[None, :]]
    c = coarse[..., y1[:, None], x0[None, :]]
    d = coarse[..., y1[:, None], x1[None, :]]
    top = a * (1 - wx) + b * wx
    bot = c * (1 - wx) + d * wx
    return top * (1 - wy) + bot * wy


def _translate(batch: np.ndarray, shifts: np.ndarray) -> np.ndarray:
    """Translate each image by its (dy, dx) with zero fill (vectorised roll)."""
    out = np.zeros_like(batch)
    # Group samples by shift so each distinct shift is one slice copy.
    unique, inverse = np.unique(shifts, axis=0, return_inverse=True)
    h, w = batch.shape[-2:]
    for k, (dy, dx) in enumerate(unique):
        idx = np.nonzero(inverse == k)[0]
        src_y = slice(max(0, -dy), min(h, h - dy))
        dst_y = slice(max(0, dy), min(h, h + dy))
        src_x = slice(max(0, -dx), min(w, w - dx))
        dst_x = slice(max(0, dx), min(w, w + dx))
        out[idx[:, None, None, None], :, dst_y, dst_x] = batch[
            idx[:, None, None, None], :, src_y, src_x
        ]
    return out


def make_classification_images(
    n_samples: int,
    n_classes: int,
    channels: int = 3,
    size: int = 32,
    noise: float = 0.55,
    modes_per_class: int = 3,
    max_shift: int = 2,
    coarse: int = 4,
    seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Generate a synthetic image-classification dataset.

    Returns
    -------
    x : float32 array of shape ``(n_samples, channels, size, size)``
    y : int64 array of shape ``(n_samples,)`` with balanced classes
    """
    if n_samples < n_classes:
        raise ValueError("need at least one sample per class")
    rng = np.random.default_rng(seed)
    # Prototypes: (n_classes, modes, C, size, size), unit-normalised.
    coeffs = rng.normal(
        size=(n_classes, modes_per_class, channels, coarse, coarse)
    )
    protos = bilinear_upsample(coeffs, (size, size))
    protos /= np.sqrt((protos**2).mean(axis=(-1, -2, -3), keepdims=True))

    y = np.arange(n_samples) % n_classes
    rng.shuffle(y)
    modes = rng.integers(0, modes_per_class, size=n_samples)
    contrast = rng.uniform(0.7, 1.3, size=(n_samples, 1, 1, 1))
    brightness = rng.normal(0.0, 0.15, size=(n_samples, 1, 1, 1))
    x = protos[y, modes] * contrast + brightness
    if max_shift > 0:
        shifts = rng.integers(-max_shift, max_shift + 1, size=(n_samples, 2))
        x = _translate(x, shifts)
    x = x + rng.normal(0.0, noise, size=x.shape)
    return x.astype(np.float32), y.astype(np.int64)
