"""Synthetic MNIST stand-in (see DESIGN.md substitution table).

Grayscale 28×28 with mostly-near-zero backgrounds, mirroring the properties
the paper calls out in §4.2 ("its images are grayscale, composed mostly of
zeros, and possible to classify with over 99% accuracy using simple
models").  Used by the LeNet examples and tests; the paper's own experiments
deliberately avoid MNIST, and so do ours.
"""

from __future__ import annotations

import numpy as np

from .dataset import ArrayDataset
from .synthetic import make_classification_images
from .transforms import Compose, Normalize

__all__ = ["SyntheticMNIST"]


class SyntheticMNIST:
    """Deterministic MNIST surrogate: easy, sparse, grayscale."""

    NUM_CLASSES = 10
    CHANNELS = 1

    def __init__(
        self,
        n_train: int = 2000,
        n_val: int = 500,
        size: int = 28,
        seed: int = 7,
    ) -> None:
        self.size = size
        x, y = make_classification_images(
            n_train + n_val,
            self.NUM_CLASSES,
            channels=self.CHANNELS,
            size=size,
            noise=0.25,  # low noise: MNIST is easy by design
            modes_per_class=2,
            max_shift=2,
            seed=seed,
        )
        # Sparsify background like real MNIST: keep only strong activations.
        x = np.where(np.abs(x) > 0.6, x, 0.0).astype(np.float32)
        self.mean = x[:n_train].mean(axis=(0, 2, 3))
        self.std = x[:n_train].std(axis=(0, 2, 3)) + 1e-8
        self.train = ArrayDataset(x[:n_train], y[:n_train])
        self.val = ArrayDataset(x[n_train:], y[n_train:])

    def train_transform(self) -> Compose:
        return Compose([Normalize(self.mean, self.std)])

    def eval_transform(self) -> Compose:
        return Compose([Normalize(self.mean, self.std)])
