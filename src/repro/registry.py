"""Generic named-component registry.

The paper's central reproducibility recommendation is that experiments be
identified "in a structured way": exact architectures, datasets, metrics and
hyperparameters referenced by name so results are comparable and reusable.
This module is the single mechanism behind every such name → component
mapping in the codebase.  One :class:`Registry` instance exists per
component family:

===========  ==================================  =======================
Registry     Lives in                            Registers
===========  ==================================  =======================
MODELS       :mod:`repro.models.registry`        architecture factories
DATASETS     :mod:`repro.experiment.datasets`    dataset-bundle builders
STRATEGIES   :mod:`repro.pruning.strategies`     pruning strategies
SCHEDULES    :mod:`repro.pruning.schedule`       pruning schedules
OPTIMIZERS   :mod:`repro.optim`                  optimizer builders
EXECUTORS    :mod:`repro.experiment.executor`    sweep executors
===========  ==================================  =======================

Usage::

    MODELS = Registry("model")

    @MODELS.register("resnet-20")
    def resnet20(**kwargs): ...

    MODELS.create("resnet-20", width_scale=0.5)   # instantiate
    MODELS.get("resnet-20")                       # the raw factory
    MODELS.available()                            # sorted names
    "resnet-20" in MODELS                         # membership

Unknown names raise ``KeyError`` with the full list of registered names and
close-match suggestions ("did you mean ...?").  Re-registering a taken name
raises ``ValueError`` unless ``override=True`` is passed, so two libraries
can't silently shadow each other's components.

Registries also implement the read side of the ``Mapping`` protocol
(``[]``, ``in``, ``len``, iteration, ``items``/``keys``/``values``,
``setdefault``) so the historical plain-dict registries
(``MODEL_REGISTRY`` et al.) could become aliases of the shared instances
without breaking callers.
"""

from __future__ import annotations

import difflib
import warnings
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

__all__ = ["Registry", "warn_deprecated"]


class Registry:
    """A name → component mapping with helpful errors and safe registration.

    Parameters
    ----------
    kind:
        Human-readable singular noun for error messages ("model",
        "strategy", ...).
    entries:
        Optional initial ``{name: component}`` mapping.
    """

    def __init__(self, kind: str, entries: Optional[Dict[str, Any]] = None) -> None:
        self.kind = kind
        self._entries: Dict[str, Any] = {}
        for name, obj in (entries or {}).items():
            self._register(name, obj, override=False)

    # -- registration ----------------------------------------------------
    def register(
        self,
        name: Optional[str] = None,
        obj: Any = None,
        *,
        override: bool = False,
    ):
        """Register a component, directly or as a decorator.

        Either ``REG.register("name", component)`` or::

            @REG.register("name")
            def component(...): ...

        With no explicit name, a decorated component is registered under its
        ``name`` attribute (pruning strategies carry one) or ``__name__``.
        ``override=True`` replaces an existing entry instead of raising.
        """
        if obj is None:
            # bare ``@REG.register`` — name is actually the component
            if callable(name) and not isinstance(name, str):
                component = name
                self._register(_default_name(component), component, override)
                return component

            def decorator(component):
                key = name if name is not None else _default_name(component)
                self._register(key, component, override)
                return component

            return decorator
        self._register(name, obj, override)
        return obj

    def _register(self, name: Any, obj: Any, override: bool) -> None:
        if not isinstance(name, str) or not name:
            raise TypeError(
                f"{self.kind} registry keys must be non-empty strings, got {name!r}"
            )
        if name in self._entries and not override:
            raise ValueError(
                f"{self.kind} {name!r} already registered "
                f"(pass override=True to replace it)"
            )
        self._entries[name] = obj

    def unregister(self, name: str) -> Any:
        """Remove and return an entry (KeyError with suggestions if absent)."""
        obj = self.get(name)
        del self._entries[name]
        return obj

    # -- lookup ----------------------------------------------------------
    def get(self, name: str) -> Any:
        """The registered component, or KeyError naming close matches."""
        try:
            return self._entries[name]
        except KeyError:
            raise KeyError(self.unknown_message(name)) from None

    def create(self, name: str, *args, **kwargs) -> Any:
        """Look up ``name`` and call it with the given arguments."""
        return self.get(name)(*args, **kwargs)

    def available(self) -> List[str]:
        """Sorted registered names."""
        return sorted(self._entries)

    def unknown_message(self, name: Any) -> str:
        msg = f"unknown {self.kind} {name!r}; available: {self.available()}"
        close = difflib.get_close_matches(str(name), list(self._entries), n=3)
        if close:
            msg += f" — did you mean {', '.join(repr(c) for c in close)}?"
        return msg

    # -- Mapping protocol (back-compat with the old dict registries) -----
    def __getitem__(self, name: str) -> Any:
        return self.get(name)

    def __setitem__(self, name: str, obj: Any) -> None:
        # dict-style assignment keeps dict semantics: silent replace
        self._register(name, obj, override=True)

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def keys(self):
        return self._entries.keys()

    def values(self):
        return self._entries.values()

    def items(self):
        return self._entries.items()

    def setdefault(self, name: str, obj: Any) -> Any:
        if name not in self._entries:
            self._register(name, obj, override=False)
        return self._entries[name]

    def __repr__(self) -> str:
        return f"Registry({self.kind!r}, {self.available()})"


def _default_name(component: Any) -> Any:
    name = getattr(component, "name", None)
    if isinstance(name, str) and name:
        return name
    return getattr(component, "__name__", None)


# -- deprecation shims ---------------------------------------------------
#: shim names that have already warned this process (warn exactly once each)
_WARNED: set = set()


def warn_deprecated(name: str, replacement: str) -> None:
    """Emit a DeprecationWarning for ``name``, at most once per process.

    Used by the pre-registry entry points (``create_model``,
    ``create_strategy``, ``build_dataset``, ``run_sweep``) kept as thin
    wrappers over the new API.  Warning once — rather than per call — keeps
    sweeps that loop over the shims from flooding stderr while still being
    caught by ``-W error::DeprecationWarning`` CI checks.
    """
    if name in _WARNED:
        return
    _WARNED.add(name)
    warnings.warn(
        f"{name} is deprecated; use {replacement} instead",
        DeprecationWarning,
        stacklevel=3,
    )
