"""Setup shim.

The execution environment has no network access and no ``wheel`` package, so
``pip install -e .`` cannot build a modern editable wheel.  This shim lets
``python setup.py develop`` (or ``pip install -e . --no-build-isolation``
with older tooling) perform the equivalent legacy editable install.  All
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
