"""Quickstart: describe a pruning sweep declaratively, run it, report it.

The whole experiment lives in one :class:`SweepConfig` — the "structured
way" of identifying architectures, datasets and hyperparameters the paper
recommends (§6).  The config round-trips losslessly through JSON, so the
file this script writes can be replayed, diffed, or shipped to another
machine; the results file it produces feeds ``python -m repro report``,
which emits the paper's standard report for any finished sweep:

    python examples/quickstart.py
    python -m repro run artifacts/quickstart_sweep.json \
        --out artifacts/quickstart_results.json          # the CLI twin
    python -m repro report artifacts/quickstart_results.json

Runs in about a minute on a laptop CPU.
"""

import os

os.environ.setdefault("REPRO_ARTIFACTS", "artifacts")

from repro.analysis import ResultFrame, build_report, render_report
from repro.experiment import (
    OptimizerConfig,
    ResultCache,
    SweepConfig,
    TrainConfig,
    run_config,
)


def main() -> None:
    # 1. Describe the experiment: every component is a registry name
    #    (`python -m repro ls` lists what's available), every axis explicit.
    config = SweepConfig(
        model="resnet-20",
        model_kwargs=dict(width_scale=0.5),
        dataset="cifar10",  # SyntheticCIFAR10, the offline CIFAR surrogate
        dataset_kwargs=dict(n_train=1000, n_val=320, size=16),
        strategies=("global_weight", "random"),
        compressions=(1, 2, 4),
        seeds=(0,),
        pretrain=TrainConfig(epochs=6, batch_size=32,
                             optimizer=OptimizerConfig("adam", 2e-3),
                             early_stop_patience=None),
        finetune=TrainConfig(epochs=3, batch_size=32,
                             optimizer=OptimizerConfig("adam", 3e-4),
                             early_stop_patience=3),
        schedule="one_shot",  # the paper's own protocol (§2.3)
    )

    # 2. Write it down.  The JSON file alone reproduces this run anywhere:
    #    `python -m repro run artifacts/quickstart_sweep.json`.
    path = config.save("artifacts/quickstart_sweep.json")
    print(f"sweep config -> {path}")
    assert SweepConfig.load(path) == config  # lossless round-trip

    # 3. Run it.  Cells land in the content-addressed result cache, so
    #    re-running (or the CLI twin above) costs nothing the second time.
    results = run_config(
        config,
        cache=ResultCache(),
        progress=lambda msg: print(f"  {msg}"),
    )
    results.save("artifacts/quickstart_results.json")

    # 4. Report it.  `python -m repro report` turns any finished sweep —
    #    this results file, the result cache, or a queue directory — into
    #    the paper's §6 standard report: per-strategy accuracy-vs-
    #    compression AND accuracy-vs-speedup curves (mean ± std over
    #    seeds), a summary table, Pareto-dominant operating points, and
    #    the Appendix B checklist audit.  This is the same call the CLI
    #    makes:
    #
    #        python -m repro report artifacts/quickstart_results.json \
    #            --csv artifacts/quickstart_curves.csv
    frame = ResultFrame.from_results(results)
    print()
    print(render_report(build_report(frame)))

    # 5. The frame behind the report is directly queryable — vectorized
    #    filters (values, sequences, predicates), group-bys, aggregation,
    #    Pareto frontiers:
    best = frame.filter(compression=lambda c: c > 1).pareto_frontier(
        x="actual_compression", y="delta_top1"
    )
    rec = best.to_records()[0]  # frontier is x-ascending: [0] = best accuracy
    print(f"\nbest pruned cell: {rec['strategy']} @ {rec['compression']:g}x "
          f"(actual {rec['actual_compression']:.2f}x, "
          f"speedup {rec['theoretical_speedup']:.2f}x) "
          f"top1={rec['top1']:.3f} (Δ{rec['delta_top1']:+.3f} vs control)")

    # 6. Scaling out: the same config runs through the durable work-queue
    #    executor, which is how a sweep spans machines (and survives worker
    #    crashes).  The two-terminal flow over any shared directory:
    #
    #      terminal A (submit + assemble; streams progress):
    #        python -m repro run artifacts/quickstart_sweep.json \
    #            --executor queue --queue-dir artifacts/quickstart_queue
    #
    #      terminal B (on every machine that can see the directory):
    #        python -m repro worker artifacts/quickstart_queue --idle-timeout 60
    #
    #    Kill a worker mid-cell and nothing is lost: its lease expires, the
    #    cell is re-enqueued, and another worker finishes it.  Below, the
    #    submitter's built-in local worker drains the queue in-process —
    #    and because every cell above is already in the shared cache layout,
    #    the queue run completes from cache hits alone.  Afterwards,
    #    `python -m repro report artifacts/quickstart_queue` reports
    #    straight off the queue directory — identical curves, no assembly
    #    step needed.
    queue_results = run_config(
        SweepConfig.from_dict({
            **config.to_dict(),
            "executor": "queue",
            "executor_options": {"queue_dir": "artifacts/quickstart_queue"},
        }),
        cache=ResultCache(),
    )
    assert len(queue_results) == len(results)
    print("\nqueue executor replayed the sweep "
          f"({len(queue_results)} rows, all cache hits) — "
          "add `python -m repro worker artifacts/quickstart_queue` "
          "processes to fan real work out across machines")


if __name__ == "__main__":
    main()
