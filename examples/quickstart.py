"""Quickstart: describe a pruning sweep declaratively, run it, read results.

The whole experiment lives in one :class:`SweepConfig` — the "structured
way" of identifying architectures, datasets and hyperparameters the paper
recommends (§6).  The config round-trips losslessly through JSON, so the
file this script writes can be replayed, diffed, or shipped to another
machine:

    python examples/quickstart.py
    python -m repro run artifacts/quickstart_sweep.json   # the CLI twin

Runs in about a minute on a laptop CPU.
"""

import os

os.environ.setdefault("REPRO_ARTIFACTS", "artifacts")

from repro.experiment import (
    OptimizerConfig,
    ResultCache,
    SweepConfig,
    TrainConfig,
    aggregate_curve,
    run_config,
)
from repro.pruning import PAPER_LABELS


def main() -> None:
    # 1. Describe the experiment: every component is a registry name
    #    (`python -m repro ls` lists what's available), every axis explicit.
    config = SweepConfig(
        model="resnet-20",
        model_kwargs=dict(width_scale=0.5),
        dataset="cifar10",  # SyntheticCIFAR10, the offline CIFAR surrogate
        dataset_kwargs=dict(n_train=1000, n_val=320, size=16),
        strategies=("global_weight", "random"),
        compressions=(1, 2, 4),
        seeds=(0,),
        pretrain=TrainConfig(epochs=6, batch_size=32,
                             optimizer=OptimizerConfig("adam", 2e-3),
                             early_stop_patience=None),
        finetune=TrainConfig(epochs=3, batch_size=32,
                             optimizer=OptimizerConfig("adam", 3e-4),
                             early_stop_patience=3),
        schedule="one_shot",  # the paper's own protocol (§2.3)
    )

    # 2. Write it down.  The JSON file alone reproduces this run anywhere:
    #    `python -m repro run artifacts/quickstart_sweep.json`.
    path = config.save("artifacts/quickstart_sweep.json")
    print(f"sweep config -> {path}")
    assert SweepConfig.load(path) == config  # lossless round-trip

    # 3. Run it.  Cells land in the content-addressed result cache, so
    #    re-running (or the CLI twin above) costs nothing the second time.
    results = run_config(
        config,
        cache=ResultCache(),
        progress=lambda msg: print(f"  {msg}"),
    )

    # 4. Report the §6 recommended metrics: raw accuracy vs the unpruned
    #    control, and BOTH compression ratio and theoretical speedup.
    print("\n=== tradeoff curves (mean top-1 across seeds) ===")
    for strategy in results.strategies():
        rows = results.filter(strategy=strategy)
        points = aggregate_curve(rows, x_attr="compression", y_attr="top1")
        curve = "  ".join(f"{p.x:g}x:{p.mean:.3f}" for p in points)
        print(f"{PAPER_LABELS.get(strategy, strategy):14s} {curve}")

    best = max(
        (r for r in results if r.compression > 1), key=lambda r: r.delta_top1
    )
    print(f"\nbest pruned cell: {best.strategy} @ {best.compression:g}x "
          f"(actual {best.actual_compression:.2f}x, "
          f"speedup {best.theoretical_speedup:.2f}x) "
          f"top1={best.top1:.3f} (Δ{best.delta_top1:+.3f} vs control)")

    # 5. Scaling out: the same config runs through the durable work-queue
    #    executor, which is how a sweep spans machines (and survives worker
    #    crashes).  The two-terminal flow over any shared directory:
    #
    #      terminal A (submit + assemble; streams progress):
    #        python -m repro run artifacts/quickstart_sweep.json \
    #            --executor queue --queue-dir artifacts/quickstart_queue
    #
    #      terminal B (on every machine that can see the directory):
    #        python -m repro worker artifacts/quickstart_queue --idle-timeout 60
    #
    #    Kill a worker mid-cell and nothing is lost: its lease expires, the
    #    cell is re-enqueued, and another worker finishes it.  Below, the
    #    submitter's built-in local worker drains the queue in-process —
    #    and because every cell above is already in the shared cache layout,
    #    the queue run completes from cache hits alone.
    queue_results = run_config(
        SweepConfig.from_dict({
            **config.to_dict(),
            "executor": "queue",
            "executor_options": {"queue_dir": "artifacts/quickstart_queue"},
        }),
        cache=ResultCache(),
    )
    assert len(queue_results) == len(results)
    print("\nqueue executor replayed the sweep "
          f"({len(queue_results)} rows, all cache hits) — "
          "add `python -m repro worker artifacts/quickstart_queue` "
          "processes to fan real work out across machines")


if __name__ == "__main__":
    main()
