"""Quickstart: train a model, prune it, fine-tune, report paper-style metrics.

Runs in about a minute on a laptop CPU:

    python examples/quickstart.py
"""

import os

os.environ.setdefault("REPRO_ARTIFACTS", "artifacts")

from repro.data import DataLoader, SyntheticCIFAR10
from repro.experiment import Trainer, TrainConfig, OptimizerConfig
from repro.metrics import (
    dense_flops,
    effective_flops,
    evaluate,
    nonzero_params,
    theoretical_speedup,
    total_params,
)
from repro.models import create_model
from repro.pruning import GlobalMagWeight, Pruner


def main() -> None:
    # 1. Data + model.  SyntheticCIFAR10 is the offline CIFAR-10 surrogate.
    dataset = SyntheticCIFAR10(n_train=1000, n_val=320, size=16, seed=0)
    model = create_model("resnet-20", width_scale=0.5, seed=0)
    input_shape = dataset.train.sample_shape

    # 2. Train to convergence (Algorithm 1, line 2).
    pretrain = TrainConfig(epochs=6, batch_size=32,
                           optimizer=OptimizerConfig("adam", 2e-3),
                           early_stop_patience=None)
    print("pretraining ...")
    Trainer(model, dataset, pretrain, seed=0).run()

    val_loader = DataLoader(dataset.val, batch_size=128,
                            transform=dataset.eval_transform())
    baseline = evaluate(model, val_loader)
    print(f"baseline: top1={baseline['top1']:.3f} "
          f"params={total_params(model):,} "
          f"flops={dense_flops(model, input_shape)/1e6:.2f}M")

    # 3. Prune to 4x whole-model compression with Global Magnitude Pruning.
    pruner = Pruner(model, GlobalMagWeight())
    registry = pruner.prune(compression=4)
    pruned = evaluate(model, val_loader)
    print(f"after pruning to 4x: top1={pruned['top1']:.3f} "
          f"(compression={pruner.actual_compression():.2f}x)")

    # 4. Fine-tune with masks enforced (Appendix C.2 CIFAR recipe).
    finetune = TrainConfig(epochs=3, batch_size=32,
                           optimizer=OptimizerConfig("adam", 3e-4),
                           early_stop_patience=3)
    print("fine-tuning ...")
    Trainer(model, dataset, finetune, seed=0, masks=registry).run()
    registry.validate()

    # 5. Report the §6 recommended metrics: BOTH compression and speedup,
    #    raw accuracy, and the unpruned control.
    final = evaluate(model, val_loader)
    print("\n=== result ===")
    print(f"compression ratio   : {total_params(model)/nonzero_params(model):.2f}x")
    print(f"theoretical speedup : {theoretical_speedup(model, input_shape):.2f}x "
          f"({dense_flops(model, input_shape)/1e6:.2f}M -> "
          f"{effective_flops(model, input_shape)/1e6:.2f}M multiply-adds)")
    print(f"top-1 accuracy      : {final['top1']:.3f} "
          f"(control: {baseline['top1']:.3f}, delta {final['top1']-baseline['top1']:+.3f})")


if __name__ == "__main__":
    main()
