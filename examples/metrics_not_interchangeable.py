"""Figure-6-style demonstration: parameter count and FLOPs are NOT
interchangeable efficiency metrics.

Prunes the same checkpoint with Global vs Layerwise magnitude at matched
*compression ratios*, then shows the achieved *theoretical speedups*
diverge: global pruning concentrates on cheap (late, FC-ish) weights, so
it compresses parameters without reducing FLOPs proportionally.

    python examples/metrics_not_interchangeable.py
"""

import os

os.environ.setdefault("REPRO_ARTIFACTS", "artifacts")

from repro.data import SyntheticCIFAR10
from repro.experiment import OptimizerConfig, TrainConfig, Trainer
from repro.metrics import flops_by_layer, theoretical_speedup
from repro.models import MODELS
from repro.pruning import GlobalMagWeight, LayerMagWeight, Pruner

COMPRESSIONS = [2, 4, 8, 16]


def main() -> None:
    dataset = SyntheticCIFAR10(n_train=600, n_val=160, size=16, seed=0)
    base = MODELS.create("cifar-vgg", width_scale=0.25, input_size=16, seed=0)
    cfg = TrainConfig(epochs=4, batch_size=32,
                      optimizer=OptimizerConfig("adam", 2e-3),
                      early_stop_patience=None)
    print("pretraining CIFAR-VGG ...")
    Trainer(base, dataset, cfg, seed=0).run()
    state = base.state_dict()
    shape = dataset.train.sample_shape

    print(f"\n{'compression':>12s} {'Global speedup':>15s} {'Layer speedup':>14s}")
    for c in COMPRESSIONS:
        speedups = {}
        for name, cls in (("global", GlobalMagWeight), ("layer", LayerMagWeight)):
            model = MODELS.create("cifar-vgg", width_scale=0.25, input_size=16, seed=0)
            model.load_state_dict(state)
            Pruner(model, cls()).prune(c)
            speedups[name] = theoretical_speedup(model, shape)
        print(f"{c:>11d}x {speedups['global']:>14.2f}x {speedups['layer']:>13.2f}x")

    # Where do the FLOPs live?  Per-layer view at 8x global pruning.
    model = MODELS.create("cifar-vgg", width_scale=0.25, input_size=16, seed=0)
    model.load_state_dict(state)
    Pruner(model, GlobalMagWeight()).prune(8)
    dense = flops_by_layer(model, shape)
    eff = flops_by_layer(model, shape, effective=True)
    print("\nper-layer FLOPs surviving 8x GLOBAL pruning:")
    for layer in dense:
        frac = eff[layer] / dense[layer]
        print(f"  {layer:22s} {dense[layer]/1e3:9.1f}k MACs  -> {frac:5.1%} kept")
    print(
        "\nEarly conv layers (many FLOPs per weight) survive global pruning;\n"
        "late layers are gutted.  Hence: same parameter compression, very\n"
        "different speedup — reporting only one metric misleads (§7.3)."
    )


if __name__ == "__main__":
    main()
