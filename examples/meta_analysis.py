"""Reproduce the paper's meta-analysis artifacts from the corpus database:
Table 1, the §4.1/§4.2 statistics, and the Figure 2/4 histograms.

    python examples/meta_analysis.py
"""

from repro.meta import (
    build_corpus,
    comparison_stats,
    corpus_stats,
    fig5_split,
    in_degree_histogram,
    never_compared_to,
    out_degree_histogram,
    pairs_per_paper_histogram,
    points_per_curve_histogram,
    table1,
)
from repro.plotting import render_histogram


def main() -> None:
    corpus = build_corpus()

    print("== Corpus (§3.1, §4.2) ==")
    for key, val in corpus_stats(corpus).items():
        print(f"  {key:18s}: {val}")

    print("\n== Table 1: (dataset, architecture) pairs in >=4 papers ==")
    print(f"  {'Dataset':10s} {'Architecture':16s} {'# Papers':>8s}")
    for ds, arch, n in table1(corpus):
        print(f"  {ds:10s} {arch:16s} {n:8d}")

    print("\n== Comparison graph (§4.1, Figure 2) ==")
    stats = comparison_stats(corpus)
    print(f"  papers comparing to NO prior method : {stats['frac_compare_to_none']:.0%}")
    print(f"  papers comparing to at most one     : {stats['frac_compare_to_at_most_one']:.0%}")
    print(f"  papers comparing to at most three   : {stats['frac_compare_to_at_most_three']:.0%}")
    print(f"  most-compared-to paper in-degree    : {stats['max_in_degree']}")
    print(f"  modern papers never compared to     : {stats['n_never_compared_to']}")

    hist = in_degree_histogram(corpus)
    print("\n  Figure 2 top (in-degree):")
    print(render_histogram([str(k) for k in hist],
                           [b["peer_reviewed"] + b["other"] for b in hist.values()]))
    hist = out_degree_histogram(corpus)
    print("\n  Figure 2 bottom (out-degree):")
    print(render_histogram([str(k) for k in hist],
                           [b["peer_reviewed"] + b["other"] for b in hist.values()]))

    print("\n== Figure 4 (results per paper, MNIST excluded) ==")
    hist = pairs_per_paper_histogram(corpus)
    print(render_histogram([str(k) for k in hist],
                           [b["peer_reviewed"] + b["other"] for b in hist.values()],
                           title="  pairs per paper"))
    hist = points_per_curve_histogram(corpus)
    print(render_histogram([str(k) for k in hist],
                           [b["peer_reviewed"] + b["other"] for b in hist.values()],
                           title="  points per tradeoff curve"))

    print("\n== Figure 5 (ResNet-50/ImageNet variability) ==")
    mag, others = fig5_split(corpus)
    print(f"  unstructured-magnitude variants: {len(mag)} curves")
    print(f"  all other methods              : {len(others)} curves")

    few = never_compared_to(corpus)[:8]
    print(f"\nexamples of never-compared-to papers: {', '.join(few)} ...")


if __name__ == "__main__":
    main()
