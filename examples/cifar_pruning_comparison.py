"""Figure-7-style comparison: five pruning strategies on CIFAR-10.

Runs the full ShrinkBench protocol (shared pretrained checkpoint, one-shot
prune, Appendix-C fine-tuning, multiple seeds) for the paper's five baseline
strategies on a scaled ResNet-56 and renders the tradeoff curves.

Experiment cells fan out over worker processes and land in the on-disk
result cache, so re-running after an interruption (or tweaking the plot
code) only pays for cells not yet executed.

    python examples/cifar_pruning_comparison.py            # all cores
    REPRO_SWEEP_WORKERS=1 python examples/cifar_pruning_comparison.py
"""

import os

os.environ.setdefault("REPRO_ARTIFACTS", "artifacts")

from repro.analysis import ResultFrame
from repro.experiment import (
    OptimizerConfig,
    ResultCache,
    SweepConfig,
    TrainConfig,
    run_config,
)
from repro.meta import audit_results
from repro.plotting import curves_from_frame, render_curves
from repro.pruning import PAPER_LABELS

STRATEGIES = ("global_weight", "layer_weight", "global_gradient",
              "layer_gradient", "random")


def main() -> None:
    config = SweepConfig(
        model="resnet-56",
        dataset="cifar10",
        strategies=STRATEGIES,
        compressions=(1, 2, 4, 8, 16),
        seeds=(0, 1),
        model_kwargs=dict(width_scale=0.25),
        dataset_kwargs=dict(n_train=800, n_val=256, size=16, noise=0.5),
        pretrain=TrainConfig(epochs=6, batch_size=32,
                             optimizer=OptimizerConfig("adam", 2e-3),
                             early_stop_patience=None),
        finetune=TrainConfig(epochs=2, batch_size=32,
                             optimizer=OptimizerConfig("adam", 3e-4),
                             early_stop_patience=3),
        executor="parallel",
        workers=int(os.environ.get("REPRO_SWEEP_WORKERS", "0")),
    )
    results = run_config(
        config,
        cache=ResultCache(),
        progress=lambda msg: print(f"  {msg}"),
    )

    frame = ResultFrame.from_results(results)
    curves = curves_from_frame(frame, labels=PAPER_LABELS)
    print()
    print(render_curves(curves, title="ResNet-56 on CIFAR-10 (synthetic)",
                        x_label="compression ratio"))

    print("\nmean±std top-1 by strategy and compression:")
    for strat, points in frame.tradeoff_curves().items():
        row = " ".join(f"{p.x:g}x:{p.mean:.3f}±{p.std:.2f}" for p in points)
        print(f"  {PAPER_LABELS[strat]:16s} {row}")

    print("\nAppendix-B checklist audit of this run:")
    for item in audit_results(frame):
        print(f"  {item}")


if __name__ == "__main__":
    main()
