"""Appendix B as an executable audit: run a (deliberately flawed) mini
experiment and let the checklist point out what the paper would flag.

    python examples/checklist_audit.py
"""

import os

os.environ.setdefault("REPRO_ARTIFACTS", "artifacts")

from repro.experiment import OptimizerConfig, SweepConfig, TrainConfig, run_config
from repro.meta import audit_results


def run(label, strategies, compressions, seeds):
    print(f"\n=== {label} ===")
    config = SweepConfig(
        model="lenet-5",
        dataset="cifar10",
        strategies=tuple(strategies),
        compressions=tuple(compressions),
        seeds=tuple(seeds),
        model_kwargs=dict(input_size=16, in_channels=3),
        dataset_kwargs=dict(n_train=512, n_val=192, size=16, noise=0.45),
        pretrain=TrainConfig(epochs=4, batch_size=32,
                             optimizer=OptimizerConfig("adam", 2e-3),
                             early_stop_patience=None),
        finetune=TrainConfig(epochs=1, batch_size=32,
                             optimizer=OptimizerConfig("adam", 3e-4),
                             early_stop_patience=None),
    )
    results = run_config(config)
    for item in audit_results(results):
        print(f"  {item}")


def main() -> None:
    # The way too many papers in the corpus evaluate (one ratio, one seed,
    # no baselines) ...
    run("a typical under-specified evaluation",
        strategies=["global_gradient"], compressions=[1, 4], seeds=[0])

    # ... versus the protocol the paper recommends (§6 + Appendix B).
    run("the recommended evaluation",
        strategies=["global_weight", "layer_weight", "global_gradient", "random"],
        compressions=[1, 2, 4, 8, 12, 16], seeds=[0, 1, 2])


if __name__ == "__main__":
    main()
