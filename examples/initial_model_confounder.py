"""Figure-8-style experiment: the initial model is a confounder.

Trains TWO checkpoints of the same architecture with different optimizer
settings (Adam lr 1e-3 = "Weights A", lr 1e-4 = "Weights B"), then prunes
both with Global and Layerwise magnitude.  Shows (a) different initial
models give different tradeoff curves and (b) reporting accuracy *changes*
does not remove the confounder.

    python examples/initial_model_confounder.py
"""

import os

os.environ.setdefault("REPRO_ARTIFACTS", "artifacts")

from repro.data import DataLoader, SyntheticCIFAR10
from repro.experiment import OptimizerConfig, TrainConfig, Trainer
from repro.metrics import evaluate
from repro.models import MODELS
from repro.pruning import GlobalMagWeight, LayerMagWeight, Pruner

COMPRESSIONS = [1, 2, 4, 8, 16]


def pretrain(dataset, lr: float):
    model = MODELS.create("resnet-20", width_scale=0.5, seed=0)
    cfg = TrainConfig(epochs=6, batch_size=32,
                      optimizer=OptimizerConfig("adam", lr),
                      early_stop_patience=None)
    Trainer(model, dataset, cfg, seed=0).run()
    return model.state_dict()


def curve(dataset, state, strategy_cls):
    """Prune the given checkpoint at each compression; return top-1 list."""
    val = DataLoader(dataset.val, batch_size=128, transform=dataset.eval_transform())
    ft = TrainConfig(epochs=2, batch_size=32,
                     optimizer=OptimizerConfig("adam", 3e-4),
                     early_stop_patience=3)
    accs = []
    for c in COMPRESSIONS:
        model = MODELS.create("resnet-20", width_scale=0.5, seed=0)
        model.load_state_dict(state)
        if c > 1:
            pruner = Pruner(model, strategy_cls())
            registry = pruner.prune(c)
            Trainer(model, dataset, ft, seed=0, masks=registry).run()
        accs.append(evaluate(model, val)["top1"])
    return accs


def main() -> None:
    dataset = SyntheticCIFAR10(n_train=800, n_val=256, size=16, seed=0)
    print("pretraining Weights A (Adam, lr 1e-3) ...")
    weights_a = pretrain(dataset, 1e-3)
    print("pretraining Weights B (Adam, lr 1e-4) ...")
    weights_b = pretrain(dataset, 1e-4)

    rows = {}
    for wname, state in (("A", weights_a), ("B", weights_b)):
        for sname, cls in (("Global", GlobalMagWeight), ("Layer", LayerMagWeight)):
            print(f"pruning {sname} {wname} ...")
            rows[f"{sname} {wname}"] = curve(dataset, state, cls)

    header = " ".join(f"c={c:<4d}" for c in COMPRESSIONS)
    print(f"\n{'absolute top-1':14s} {header}")
    for label, accs in rows.items():
        print(f"{label:14s} " + " ".join(f"{a:.3f}" for a in accs))

    print(f"\n{'delta top-1':14s} {header}")
    for label, accs in rows.items():
        print(f"{label:14s} " + " ".join(f"{a - accs[0]:+.3f}" for a in accs))

    print(
        "\nNote how the Global-vs-Layer comparison depends on which initial\n"
        "model was used — and that switching to deltas does not fix it\n"
        "(the paper's §7.3 pitfall)."
    )


if __name__ == "__main__":
    main()
