"""§3.3-style question: prune a big architecture, or switch to an
efficient one?

Compares (a) a width-scaled CIFAR-VGG pruned to various ratios against
(b) a small depthwise-separable MobileNet trained directly, at matched
parameter budgets — the Figure 1 comparison, run live on the synthetic
dataset instead of from corpus numbers.

    python examples/architecture_vs_pruning.py
"""

import os

os.environ.setdefault("REPRO_ARTIFACTS", "artifacts")

from repro.data import DataLoader, SyntheticCIFAR10
from repro.experiment import OptimizerConfig, TrainConfig, Trainer
from repro.metrics import evaluate, nonzero_params, total_params
from repro.models import MODELS
from repro.pruning import GlobalMagWeight, Pruner


def main() -> None:
    dataset = SyntheticCIFAR10(n_train=800, n_val=256, size=16, seed=0)
    val = DataLoader(dataset.val, batch_size=128, transform=dataset.eval_transform())
    pre = TrainConfig(epochs=6, batch_size=32,
                      optimizer=OptimizerConfig("adam", 2e-3),
                      early_stop_patience=None)
    ft = TrainConfig(epochs=2, batch_size=32,
                     optimizer=OptimizerConfig("adam", 3e-4),
                     early_stop_patience=3)

    # (a) big VGG, pruned progressively
    print("training CIFAR-VGG (the 'big' architecture) ...")
    vgg = MODELS.create("cifar-vgg", width_scale=0.25, input_size=16, seed=0)
    Trainer(vgg, dataset, pre, seed=0).run()
    state = vgg.state_dict()

    rows = []
    for c in (1, 2, 4, 8, 16):
        model = MODELS.create("cifar-vgg", width_scale=0.25, input_size=16, seed=0)
        model.load_state_dict(state)
        if c > 1:
            registry = Pruner(model, GlobalMagWeight()).prune(c)
            Trainer(model, dataset, ft, seed=0, masks=registry).run()
        rows.append((f"VGG pruned {c}x", nonzero_params(model),
                     evaluate(model, val)["top1"]))

    # (b) an efficient architecture trained directly
    print("training MobileNet-small (the 'efficient' architecture) ...")
    mobile = MODELS.create("mobilenet-small", width_scale=0.5, seed=0)
    Trainer(mobile, dataset, pre, seed=0).run()
    rows.append(("MobileNet-small", nonzero_params(mobile),
                 evaluate(mobile, val)["top1"]))

    print(f"\n{'model':20s} {'nonzero params':>14s} {'top-1':>7s}")
    for name, params, top1 in sorted(rows, key=lambda r: -r[1]):
        print(f"{name:20s} {params:14,d} {top1:7.3f}")
    print(
        "\nThe paper's Figure 1 conclusion: pruning improves a given\n"
        "architecture's size/accuracy tradeoff, but an architecture designed\n"
        "for efficiency often dominates a heavily-pruned larger one."
    )


if __name__ == "__main__":
    main()
