"""§4.2 headline statistics: 81 papers, 49 datasets, 132 architectures,
195 (dataset, architecture) combinations."""

from repro.meta import build_corpus, corpus_stats


def test_corpus_stats(benchmark):
    stats = benchmark(lambda: corpus_stats(build_corpus()))
    print(f"\n== Corpus statistics (§4.2) ==\n{stats}")
    assert stats == {
        "n_papers": 81,
        "n_datasets": 49,
        "n_architectures": 132,
        "n_pairs": 195,
    }
