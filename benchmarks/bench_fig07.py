"""Figure 7: CIFAR-VGG and ResNet-56 on CIFAR-10 for all five baseline
strategies — results vary across models, datasets, and pruning amounts."""

import numpy as np

from common import PAPER_STRATEGIES, cached_sweep, print_accuracy_table
from repro.analysis import ResultFrame
from repro.plotting import curves_from_results, export_curves_csv, render_curves
from repro.pruning import PAPER_LABELS


def _sweeps():
    vgg = cached_sweep(
        name="fig07_cifarvgg", model="cifar-vgg", dataset="cifar10",
        strategies=PAPER_STRATEGIES,
    )
    resnet = cached_sweep(
        name="fig07_resnet56", model="resnet-56", dataset="cifar10",
        strategies=PAPER_STRATEGIES,
    )
    return vgg, resnet


def test_fig7(benchmark):
    vgg, resnet = benchmark.pedantic(_sweeps, rounds=1, iterations=1)

    for name, rs in (("CIFAR-VGG", vgg), ("ResNet-56", resnet)):
        print_accuracy_table(rs, title=f"Figure 7: {name} on CIFAR-10 (Top-1, mean±std)")
        curves = curves_from_results(list(rs), labels=PAPER_LABELS)
        print(render_curves(curves, title=f"{name} on CIFAR-10",
                            x_label="compression ratio"))
        export_curves_csv(curves, f"fig07_{name.lower().replace('-', '')}")

    def mean_at(rs, strat, comp):
        pts = ResultFrame.from_results(rs).filter(
            strategy=strat, compression=comp
        ).curve()
        return pts[0].mean if pts else None

    for rs in (vgg, resnet):
        comps = [
            c for c in ResultFrame.from_results(rs).unique("compression") if c > 1
        ]
        # compare at a large-but-not-floor ratio: at the most extreme point
        # all methods can collapse to chance, where ordering is noise
        hi = comps[-2] if len(comps) >= 2 else comps[-1]
        rnd = mean_at(rs, "random", hi)
        mag = mean_at(rs, "global_weight", hi)
        assert mag >= rnd, "magnitude must beat random at high compression"
        # accuracy at the highest ratio has declined from baseline
        assert mean_at(rs, "random", comps[-1]) < mean_at(rs, "random", 1.0)
