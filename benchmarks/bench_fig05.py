"""Figure 5: ResNet-50 on ImageNet — variability of unstructured
magnitude-based pruning variants rivals variability across entirely
different pruning methods (§4.5's confounding-variables evidence)."""

import numpy as np

from repro.meta import build_corpus, fig5_split


def _generate():
    return fig5_split(build_corpus())


def test_fig5(benchmark):
    magnitude, others = benchmark(_generate)

    def describe(curves):
        ys = np.array([y for c in curves for y in c.ys])
        return ys, float(np.percentile(ys, 90) - np.percentile(ys, 10))

    mag_ys, mag_spread = describe(magnitude)
    oth_ys, oth_spread = describe(others)

    print("\n== Figure 5: pruning ResNet-50 on ImageNet ==")
    print(f"  magnitude variants : {len(magnitude)} curves "
          f"({', '.join(c.label for c in magnitude)})")
    print(f"    top-1 range {mag_ys.min():.1f}-{mag_ys.max():.1f}%, "
          f"P10-P90 spread {mag_spread:.2f} pp")
    print(f"  all other methods  : {len(others)} curves")
    print(f"    top-1 range {oth_ys.min():.1f}-{oth_ys.max():.1f}%, "
          f"P10-P90 spread {oth_spread:.2f} pp")
    ratio = mag_spread / oth_spread
    print(f"  spread ratio (magnitude / others): {ratio:.2f}")

    # The paper's point: same-scoring-function variability is comparable to
    # cross-method variability (ratio near 1, certainly not << 1).
    assert len(magnitude) >= 5 and len(others) >= 5
    assert ratio > 0.4
