"""Ablation (§2.3 "Scheduling"): one-shot vs iterative vs polynomial-decay
pruning schedules at the same final compression.

The paper catalogs these scheduling families but does not benchmark them.
Each schedule runs as a normal sweep cell — ``ExperimentSpec.schedule`` /
``schedule_steps`` drive the iterative prune → fine-tune rounds inside
:class:`~repro.experiment.PruningExperiment` — through the same cached
executor path every figure benchmark uses, so schedule cells land in the
result cache, fan out over ``REPRO_SWEEP_WORKERS`` processes (or any
``REPRO_SWEEP_EXECUTOR``), and resume after interruption like everything
else.
"""

import numpy as np

from common import MODEL_KW, _CIFAR_KW, cifar_ft_config, pretrain_config, sweep_executor
from repro.analysis import ResultFrame
from repro.experiment import SweepConfig, run_config

FINAL_COMPRESSION = 8.0

#: (display label, SCHEDULES registry name, rounds)
SCHEDULE_AXIS = [
    ("one-shot", "one_shot", 1),
    ("iterative-linear", "iterative", 3),
    ("polynomial-decay", "polynomial", 3),
]


def _run_schedules():
    rows = []
    for label, schedule, steps in SCHEDULE_AXIS:
        config = SweepConfig(
            model="resnet-20",
            dataset="cifar10",
            strategies=("global_weight",),
            compressions=(FINAL_COMPRESSION,),
            seeds=(0,),
            model_kwargs=MODEL_KW["resnet-20"],
            dataset_kwargs=dict(_CIFAR_KW),
            pretrain=pretrain_config(),
            finetune=cifar_ft_config(),
            schedule=schedule,
            schedule_steps=steps,
        )
        results = run_config(config, executor=sweep_executor())
        frame = ResultFrame.from_results(results).filter(
            compression=FINAL_COMPRESSION
        )
        rows.append(
            (label, float(frame["actual_compression"][0]), float(frame["top1"][0]))
        )
    return rows


def test_schedule_ablation(benchmark):
    rows = benchmark.pedantic(_run_schedules, rounds=1, iterations=1)
    print(f"\n== Schedule ablation: global magnitude to {FINAL_COMPRESSION}x ==")
    for name, comp, top1 in rows:
        print(f"  {name:18s} final compression {comp:5.2f}x  top-1 {top1:.3f}")
    # all schedules must land on the same final compression
    comps = [c for _, c, _ in rows]
    assert max(comps) - min(comps) < 0.1
    # and produce functional models
    assert all(t > 0.15 for _, _, t in rows)
