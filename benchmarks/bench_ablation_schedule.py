"""Ablation (§2.3 "Scheduling"): one-shot vs iterative vs polynomial-decay
pruning schedules at the same final compression.

The paper catalogs these scheduling families but does not benchmark them;
this ablation exercises the schedule substrate end-to-end: each iterative
round prunes to the intermediate target and fine-tunes briefly.
"""

import numpy as np

from common import MODEL_KW, SCALE, _CIFAR_KW, cifar_ft_config, pretrain_config
from repro.data import DataLoader
from repro.experiment import DATASETS, PruningExperiment, ExperimentSpec, Trainer
from repro.metrics import evaluate
from repro.models.pretrained import get_pretrained_state
from repro.pruning import GlobalMagWeight, Pruner, iterative_linear, one_shot, polynomial_decay

FINAL_COMPRESSION = 8.0


def _run_schedule(schedule_name, targets):
    dataset = DATASETS.create("cifar10", **_CIFAR_KW)
    spec = ExperimentSpec(
        model="resnet-20", dataset="cifar10", strategy="global_weight",
        compression=FINAL_COMPRESSION, model_kwargs=MODEL_KW["resnet-20"],
        dataset_kwargs=dict(_CIFAR_KW), pretrain=pretrain_config(),
    )
    exp = PruningExperiment(spec)
    model = exp.load_pretrained()
    pruner = Pruner(model, GlobalMagWeight())
    ft = cifar_ft_config()
    for target in targets:
        pruner.prune(target)
        trainer = Trainer(model, dataset, ft, seed=0, masks=pruner.registry)
        trainer.run()
    loader = DataLoader(dataset.val, batch_size=128,
                        transform=dataset.eval_transform())
    top1 = evaluate(model, loader)["top1"]
    return schedule_name, pruner.actual_compression(), top1


def _generate():
    steps = 3
    rows = [
        _run_schedule("one-shot", one_shot(FINAL_COMPRESSION)),
        _run_schedule("iterative-linear", iterative_linear(FINAL_COMPRESSION, steps)),
        _run_schedule("polynomial-decay", polynomial_decay(FINAL_COMPRESSION, steps)),
    ]
    return rows


def test_schedule_ablation(benchmark):
    rows = benchmark.pedantic(_generate, rounds=1, iterations=1)
    print(f"\n== Schedule ablation: global magnitude to {FINAL_COMPRESSION}x ==")
    for name, comp, top1 in rows:
        print(f"  {name:18s} final compression {comp:5.2f}x  top-1 {top1:.3f}")
    # all schedules must land on the same final compression
    comps = [c for _, c, _ in rows]
    assert max(comps) - min(comps) < 0.1
    # and produce functional models
    assert all(t > 0.15 for _, _, t in rows)
