"""Figures 9-10 (appendix): CIFAR-VGG on CIFAR-10 — accuracy vs compression
ratio and vs theoretical speedup (reuses the Figure 7 sweep)."""

from common import PAPER_STRATEGIES, cached_sweep
from repro.plotting import curves_from_results, export_curves_csv, render_curves
from repro.pruning import PAPER_LABELS


def _sweep():
    return cached_sweep(
        name="fig07_cifarvgg", model="cifar-vgg", dataset="cifar10",
        strategies=PAPER_STRATEGIES,
    )


def test_fig9_fig10(benchmark):
    rs = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    comp_curves = curves_from_results(list(rs), labels=PAPER_LABELS)
    print(render_curves(comp_curves, title="Fig 9: CIFAR-VGG, accuracy vs compression"))
    export_curves_csv(comp_curves, "fig09_cifarvgg_compression")

    speed_curves = curves_from_results(
        list(rs), x_attr="theoretical_speedup", labels=PAPER_LABELS
    )
    print(render_curves(speed_curves, title="Fig 10: CIFAR-VGG, accuracy vs speedup",
                        x_label="theoretical speedup"))
    export_curves_csv(speed_curves, "fig10_cifarvgg_speedup")

    # Both views must exist for every strategy (§6: report both metrics).
    assert len(comp_curves) == len(speed_curves) == 5
    # Speedup x-coordinates differ from compression x-coordinates (the whole
    # point of reporting both).
    for cc, sc in zip(comp_curves, speed_curves):
        if cc.label == "Random":
            continue  # random prunes uniformly: speedup ~ compression
        assert any(abs(a - b) > 0.05 for a, b in zip(cc.xs, sc.xs))
