"""§5.2 metrics ambiguity: the same network's "FLOPs" varies by up to ~4x
across counting conventions (the paper's AlexNet example: 371 vs 724 vs
1500 MFLOPs).  Demonstrated with explicit conventions on one model."""

from repro.metrics import FlopsConvention, dense_flops
from repro.models import MODELS as MODEL_REGISTRY


CONVENTIONS = {
    "multiply-adds, conv only": FlopsConvention(ops_per_mac=1, include_linear=False),
    "multiply-adds, all layers": FlopsConvention(ops_per_mac=1),
    "mul+add separate, all layers": FlopsConvention(ops_per_mac=2),
    "mul+add separate, with bias": FlopsConvention(ops_per_mac=2, include_bias=True),
}

#: AlexNet/LeNet-style FC-heavy nets show the largest convention spread —
#: which is exactly the regime of the paper's AlexNet example.
BENCH_MODELS = {
    "cifar-vgg (conv-heavy)": ("cifar-vgg", dict(width_scale=0.25, input_size=16), (3, 16, 16)),
    "lenet-5 (fc-heavy)": ("lenet-5", dict(input_size=28, in_channels=1), (1, 28, 28)),
}


def _generate():
    out = {}
    for label, (name, kw, shape) in BENCH_MODELS.items():
        model = MODEL_REGISTRY.create(name, **kw)
        out[label] = {
            cname: dense_flops(model, shape, conv)
            for cname, conv in CONVENTIONS.items()
        }
    return out


def test_flops_conventions(benchmark):
    tables = benchmark(_generate)
    print("\n== FLOPs of the SAME model under different conventions (§5.2) ==")
    worst = 1.0
    for label, table in tables.items():
        print(f"  {label}:")
        for name, val in table.items():
            print(f"    {name:30s}: {val/1e6:8.3f} MFLOPs")
        ratio = max(table.values()) / min(table.values())
        worst = max(worst, ratio)
        print(f"    max/min ratio: {ratio:.2f}x")
    print(f"  worst-case ratio: {worst:.2f}x (paper found up to 4x for AlexNet)")
    assert worst >= 2.0, "conventions must differ by at least 2x"
