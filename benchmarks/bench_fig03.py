"""Figure 3: fragmentation of self-reported results across the four most
common configurations and four metric pairs."""

from repro.meta import FIG3_PAIRS, build_corpus, fig3_panels


def _generate():
    corpus = build_corpus()
    return corpus, fig3_panels(corpus)


def test_fig3(benchmark):
    corpus, panels = benchmark(_generate)

    print("\n== Figure 3: self-reported results on common configurations ==")
    for (col, x_m, y_m), curves in sorted(panels.items()):
        methods = ", ".join(sorted({c.label for c in curves})[:6])
        more = "..." if len(curves) > 6 else ""
        print(f"  [{col} | {x_m} vs {y_m}] {len(curves)} curves: {methods}{more}")

    # "only 37 out of the 81 papers in our corpus report any results using
    #  any of these configurations"
    users = {
        p.key
        for p in corpus.papers.values()
        if any(pair in p.pairs for pair in FIG3_PAIRS)
    }
    print(f"\npapers reporting on these configurations: {len(users)} / 81")
    assert len(users) == 37

    # fragmentation: each panel holds only a small subset of all methods
    all_methods = {c.label for cs in panels.values() for c in cs}
    for curves in panels.values():
        assert len(curves) < len(all_methods)

    # later methods do not consistently dominate earlier ones: check that in
    # the VGG-16 compression/top1 panel, some pre-2017 curve beats some
    # post-2017 curve at a comparable x
    key = ("VGG-16 on ImageNet", "compression", "delta_top1")
    old = [c for c in panels[key] if c.year <= 2016]
    new = [c for c in panels[key] if c.year >= 2018]
    assert old and new
    crossings = 0
    for o in old:
        for n in new:
            if max(o.ys) > min(n.ys):
                crossings += 1
    assert crossings > 0, "method year should not determine ranking"
