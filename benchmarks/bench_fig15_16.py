"""Figures 15-16 (appendix): ResNet-110 on CIFAR-10 — accuracy vs
compression and vs theoretical speedup, five strategies."""

from common import PAPER_STRATEGIES, SCALE, cached_sweep, print_accuracy_table
from repro.plotting import curves_from_results, export_curves_csv, render_curves
from repro.pruning import PAPER_LABELS


def _sweep():
    # the deepest model in the study: one seed in smoke mode
    seeds = (0, 1, 2) if SCALE == "full" else (0,)
    return cached_sweep(
        name="fig15_resnet110", model="resnet-110", dataset="cifar10",
        strategies=PAPER_STRATEGIES, seeds=seeds,
    )


def test_fig15_fig16(benchmark):
    rs = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print_accuracy_table(rs, title="Fig 15: ResNet-110 on CIFAR-10 (Top-1)")

    comp_curves = curves_from_results(list(rs), labels=PAPER_LABELS)
    export_curves_csv(comp_curves, "fig15_resnet110_compression")
    speed_curves = curves_from_results(
        list(rs), x_attr="theoretical_speedup", labels=PAPER_LABELS
    )
    print(render_curves(speed_curves, title="Fig 16: ResNet-110, accuracy vs speedup",
                        x_label="theoretical speedup"))
    export_curves_csv(speed_curves, "fig16_resnet110_speedup")

    assert len(comp_curves) == 5
