"""Figure 2: reported comparisons between papers (two histograms)."""

from repro.meta import build_corpus, comparison_stats, in_degree_histogram, out_degree_histogram
from repro.plotting import render_histogram


def _generate():
    corpus = build_corpus()
    return (
        in_degree_histogram(corpus),
        out_degree_histogram(corpus),
        comparison_stats(corpus),
    )


def test_fig2(benchmark):
    in_hist, out_hist, stats = benchmark(_generate)

    print("\n== Figure 2 top: number of papers comparing to a given paper ==")
    labels = [str(k) for k in in_hist]
    counts = [b["peer_reviewed"] + b["other"] for b in in_hist.values()]
    print(render_histogram(labels, counts))

    print("\n== Figure 2 bottom: number of papers a given paper compares to ==")
    labels = [str(k) for k in out_hist]
    counts = [b["peer_reviewed"] + b["other"] for b in out_hist.values()]
    print(render_histogram(labels, counts))
    print(f"\nstats: { {k: round(v, 3) for k, v in stats.items()} }")

    # §4.1's stated fractions
    assert stats["frac_compare_to_none"] > 0.25
    assert stats["frac_compare_to_at_most_one"] > 0.5
    assert stats["frac_compare_to_at_most_three"] > 0.9
    assert stats["max_in_degree"] <= 18
    assert stats["n_never_compared_to"] >= 24
