"""Ablation (§2.3 "Structure"): unstructured vs structured (filter) pruning.

At a matched parameter budget the two families differ in *realizability*,
not in theoretical multiply-adds: removing a filter deletes exactly as many
MACs as removing the same number of weights unstructured within that layer.
What structured pruning buys (per §2.3) is masks "arranged in a fashion
conducive to speedups using modern libraries and hardware": every pruned
unit is a whole filter, so the model is equivalent to a smaller dense one.
This bench verifies that property — masks 100% filter-aligned for the
structured method, not so for the unstructured one — and records the
accuracy cost of imposing the constraint.
"""

import numpy as np

from common import MODEL_KW, _CIFAR_KW, cifar_ft_config, pretrain_config
from repro.data import DataLoader
from repro.experiment import DATASETS, ExperimentSpec, PruningExperiment, Trainer
from repro.metrics import evaluate, theoretical_speedup
from repro.pruning import LayerFilterL1, LayerMagWeight, Pruner

COMPRESSION = 4.0


def _filter_alignment(registry) -> float:
    """Fraction of partially-pruned conv filters (0.0 = fully aligned)."""
    partial = 0
    total = 0
    for name, mask in registry.masks.items():
        if mask.ndim != 4:
            continue
        per_filter = mask.reshape(mask.shape[0], -1)
        mins = per_filter.min(axis=1)
        maxs = per_filter.max(axis=1)
        partial += int((mins != maxs).sum())
        total += mask.shape[0]
    return partial / total if total else 0.0


def _run(strategy_cls):
    dataset = DATASETS.create("cifar10", **_CIFAR_KW)
    spec = ExperimentSpec(
        model="cifar-vgg", dataset="cifar10", strategy="global_weight",
        compression=COMPRESSION, model_kwargs=MODEL_KW["cifar-vgg"],
        dataset_kwargs=dict(_CIFAR_KW), pretrain=pretrain_config(),
    )
    exp = PruningExperiment(spec)
    model = exp.load_pretrained()
    pruner = Pruner(model, strategy_cls())
    pruner.prune(COMPRESSION)
    misaligned = _filter_alignment(pruner.registry)
    trainer = Trainer(model, dataset, cifar_ft_config(), seed=0, masks=pruner.registry)
    trainer.run()
    loader = DataLoader(dataset.val, batch_size=128, transform=dataset.eval_transform())
    top1 = evaluate(model, loader)["top1"]
    sample_shape = dataset.train.sample_shape
    return top1, theoretical_speedup(model, sample_shape), pruner.actual_compression(), misaligned


def _generate():
    # Layerwise variants on both sides: global *filter* ranking can remove
    # every filter of a low-magnitude layer and kill the network — the
    # layer-collapse failure mode that is precisely why Li et al. (2016)
    # prune filters per layer.
    return {
        "unstructured (layer magnitude)": _run(LayerMagWeight),
        "structured (layer filter L1)": _run(LayerFilterL1),
    }


def test_structure_ablation(benchmark):
    rows = benchmark.pedantic(_generate, rounds=1, iterations=1)
    print(f"\n== Structure ablation: CIFAR-VGG at {COMPRESSION}x parameters ==")
    for name, (top1, speedup, comp, misaligned) in rows.items():
        print(f"  {name:32s} top-1 {top1:.3f}  speedup {speedup:5.2f}x  "
              f"compression {comp:.2f}x  partially-pruned filters {misaligned:.1%}")

    unstruct = rows["unstructured (layer magnitude)"]
    struct = rows["structured (layer filter L1)"]
    # matched parameter budget
    assert abs(unstruct[2] - struct[2]) < 0.2
    # structured masks are realizable as a smaller dense model: every conv
    # filter is fully kept or fully removed (exact-count semantics may split
    # at most one boundary filter per layer)
    assert struct[3] < 0.02, "structured masks must be filter-aligned"
    # unstructured masks are not (that is why sparse kernels are needed)
    assert unstruct[3] > 0.3
    # both produce functional models
    assert struct[0] > 0.12 and unstruct[0] > 0.12
