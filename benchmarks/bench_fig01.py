"""Figure 1: size/FLOPs vs Top-1/Top-5 for original and pruned models.

Prints each architecture family's published frontier and the normalized
pruned points from the corpus, for all four metric combinations.  Checks
the paper's qualitative conclusions: pruned models can beat their own
architecture's frontier but rarely beat a better architecture family
(EfficientNet dominates; it has no pruned points).
"""

import numpy as np

from repro.meta import build_corpus, fig1_series


def _generate():
    corpus = build_corpus()
    out = {}
    for x in ("params", "flops"):
        for y in ("top1", "top5"):
            out[(x, y)] = fig1_series(corpus, x_metric=x, y_metric=y)
    return out


def test_fig1(benchmark):
    panels = benchmark(_generate)
    families, pruned = panels[("params", "top1")]

    print("\n== Figure 1: speed and size tradeoffs, original vs pruned ==")
    for fam, curve in families.items():
        pts = ", ".join(
            f"{n}({x/1e6:.1f}M,{y:.1f}%)"
            for n, x, y in zip(curve["names"], curve["xs"], curve["top1s"])
        )
        print(f"  frontier {fam:14s}: {pts}")
    for fam, pts in pruned.items():
        xs, ys = np.array(pts["xs"]), np.array(pts["ys"])
        print(
            f"  pruned   {fam:14s}: {len(xs)} points, "
            f"params {xs.min()/1e6:.1f}M-{xs.max()/1e6:.1f}M, "
            f"top1 {ys.min():.1f}-{ys.max():.1f}%"
        )

    # Paper conclusion 1: pruning sometimes increases accuracy over baseline.
    base = {"VGG": 71.6, "ResNet": 76.1, "MobileNet-v2": 72.0}
    improved = any(
        max(pts["ys"]) > base[fam] for fam, pts in pruned.items() if fam in base
    )
    assert improved, "some pruned models should beat their dense baseline"

    # Paper conclusion 2 (footnote 2): no pruned EfficientNets.
    assert "EfficientNet" not in pruned

    # Paper conclusion 3: a better architecture beats pruning — the
    # EfficientNet frontier dominates every pruned point at equal size.
    eff = families["EfficientNet"]
    for fam, pts in pruned.items():
        for x, y in zip(pts["xs"], pts["ys"]):
            idx = np.searchsorted(eff["xs"], x)
            if idx < len(eff["xs"]):
                assert y < eff["top1s"][idx] + 1.0
