"""Shared benchmark infrastructure.

Every figure/table benchmark prints the same rows/series the paper reports
and (for experiment-driven figures) reuses sweeps cached on disk under
``artifacts/results/`` so that appendix figures sharing data with main-text
figures (e.g. Figures 13-14 reuse Figure 7's ResNet-56 sweep) cost nothing
extra.

Scale control: ``REPRO_BENCH_SCALE=smoke`` (default) runs CPU-friendly
configurations; ``full`` widens seeds/epochs/datasets toward the paper's
protocol.  EXPERIMENTS.md records the scale used for the committed numbers.

Execution control: ``REPRO_SWEEP_WORKERS`` (0 = all cores) fans cells over
local processes; ``REPRO_SWEEP_EXECUTOR``/``REPRO_EXECUTOR_OPTIONS`` select
any registered executor instead — e.g. the durable ``queue`` executor for
multi-machine benchmark grids (see :func:`sweep_executor`).
"""

from __future__ import annotations

import json
import os
import sys
from typing import Dict, List, Optional, Sequence

sys.path.insert(0, os.path.dirname(__file__))

from repro.experiment import (
    EXECUTORS,
    OptimizerConfig,
    PruningResult,
    ResultCache,
    ResultSet,
    SweepConfig,
    TrainConfig,
    assemble_results,
    executor_for,
)
from repro.models import MODELS
from repro.pruning import GlobalMagWeight, Pruner
from repro.utils import artifacts_dir

SCALE = os.environ.get("REPRO_BENCH_SCALE", "smoke")

#: the paper's five baseline strategies (§7.2) in figure-legend order
PAPER_STRATEGIES = [
    "global_weight",
    "layer_weight",
    "global_gradient",
    "layer_gradient",
    "random",
]

#: §6's recommended compression set {2,4,8,16,32} plus the control
COMPRESSIONS = [1, 2, 4, 8, 16, 32]

SEEDS = (0, 1, 2) if SCALE == "full" else (0, 1)

_CIFAR_KW = dict(
    n_train=2500 if SCALE == "full" else 1000,
    n_val=640 if SCALE == "full" else 320,
    size=16,
    noise=0.5,
)
_IMAGENET_KW = dict(
    n_train=2500 if SCALE == "full" else 1000,
    n_val=640 if SCALE == "full" else 320,
    n_classes=20,
    size=16,
)

#: width scales per architecture, chosen so topology is intact but the CPU
#: budget holds (see DESIGN.md substitution table)
MODEL_KW = {
    "cifar-vgg": dict(width_scale=0.25, input_size=16),
    "resnet-56": dict(width_scale=0.375),
    "resnet-20": dict(width_scale=0.5),
    "resnet-110": dict(width_scale=0.25),
    "resnet-18": dict(width_scale=0.25, num_classes=20),
}


def sweep_executor(progress=None):
    """The executor benchmark sweeps run through, picked from the env.

    ``REPRO_SWEEP_WORKERS`` (0 = all cores, default 1 = serial) keeps its
    historical meaning; ``REPRO_SWEEP_EXECUTOR`` selects any registered
    executor by name instead, with ``REPRO_EXECUTOR_OPTIONS`` (a JSON dict)
    supplying its extra constructor kwargs.  Fanning a benchmark grid out
    over machines is therefore just::

        REPRO_SWEEP_EXECUTOR=queue \\
        REPRO_EXECUTOR_OPTIONS='{"queue_dir": "/shared/q"}' \\
            python benchmarks/bench_fig07.py
        # elsewhere: python -m repro worker /shared/q
    """
    workers = int(os.environ.get("REPRO_SWEEP_WORKERS", "1"))
    name = os.environ.get("REPRO_SWEEP_EXECUTOR")
    if name:
        options = json.loads(os.environ.get("REPRO_EXECUTOR_OPTIONS", "{}"))
        # queue runs must read the same cache the remote workers publish to,
        # so let the executor default it into <queue_dir>/cache (matching
        # the `python -m repro run/worker` CLI) instead of the local
        # artifacts cache
        cache = None if (name == "queue" and "queue_dir" in options) else ResultCache()
        return EXECUTORS.create(
            name, workers=workers or None, cache=cache,
            progress=progress, **options,
        )
    return executor_for(workers, cache=ResultCache(), progress=progress)


def pretrain_config(lr: float = 2e-3) -> TrainConfig:
    return TrainConfig(
        epochs=12 if SCALE == "full" else 8,
        batch_size=32,
        optimizer=OptimizerConfig("adam", lr),
        early_stop_patience=None,
    )


def cifar_ft_config() -> TrainConfig:
    """Appendix C.2 CIFAR recipe (Adam 3e-4 fixed), epoch-scaled."""
    return TrainConfig(
        epochs=4 if SCALE == "full" else 2,
        batch_size=32,
        optimizer=OptimizerConfig("adam", 3e-4),
        early_stop_patience=3,
    )


def imagenet_ft_config() -> TrainConfig:
    """Appendix C.2 ImageNet recipe (SGD+Nesterov 0.9, 1e-3), scaled."""
    return TrainConfig(
        epochs=4 if SCALE == "full" else 2,
        batch_size=64,
        optimizer=OptimizerConfig("sgd", lr=1e-3, momentum=0.9, nesterov=True),
        early_stop_patience=3,
    )


def reachable_compressions(model_name: str, compressions: Sequence[float]) -> List[float]:
    """Drop targets above what non-prunable tensors allow for this model."""
    model = MODELS.create(model_name, **MODEL_KW[model_name])
    cap = Pruner(model, GlobalMagWeight()).achievable_compression()
    kept = [c for c in compressions if c < cap * 0.95]
    return kept


def cached_sweep(
    name: str,
    model: str,
    dataset: str,
    strategies: Sequence[str],
    compressions: Optional[Sequence[float]] = None,
    seeds: Optional[Sequence[int]] = None,
    pretrain_lr: float = 2e-3,
    pretrain_seed: int = 0,
) -> ResultSet:
    """Run (or load) a named experiment sweep through the cached executor.

    Two cache levels: the named ResultSet JSON (fast path for a bench that
    already ran) and the content-addressed per-spec ResultCache underneath,
    which lets different benches share cells (e.g. Figures 13-14 reuse
    Figure 7's ResNet-56 sweep) and lets an interrupted sweep resume.  The
    named key includes the scale so smoke/full results never mix; the spec
    hashes include every config, which isolates scales automatically.

    Set ``REPRO_SWEEP_WORKERS`` (0 = all cores, default 1 = serial) to fan
    cells out over processes.
    """
    path = artifacts_dir("results") / f"{name}_{SCALE}.json"
    if path.exists():
        return ResultSet.load(path)
    comps = reachable_compressions(model, compressions or COMPRESSIONS)
    ds_kw = _IMAGENET_KW if dataset == "imagenet" else _CIFAR_KW
    ft = imagenet_ft_config() if dataset == "imagenet" else cifar_ft_config()
    config = SweepConfig(
        model=model,
        dataset=dataset,
        strategies=tuple(strategies),
        compressions=tuple(comps),
        seeds=tuple(seeds if seeds is not None else SEEDS),
        model_kwargs=MODEL_KW[model],
        dataset_kwargs=dict(ds_kw),
        pretrain=pretrain_config(pretrain_lr),
        finetune=ft,
        pretrain_seed=pretrain_seed,
    )
    # the declarative sweep is saved next to the results: `python -m repro
    # run <name>_<scale>.sweep.json` replays this bench's grid verbatim
    config.save(path.with_suffix("").with_suffix(".sweep.json"))
    specs = config.expand()
    executor = sweep_executor(
        progress=lambda msg: print(f"    {name}: {msg}", flush=True),
    )
    results = assemble_results(specs, executor.run(specs), config.strategies)
    results.save(path)
    return results


def print_accuracy_table(
    results: ResultSet,
    x_attr: str = "compression",
    y_attr: str = "top1",
    title: str = "",
) -> None:
    """Paper-style rows: one line per (strategy, operating point)."""
    from repro.analysis import ResultFrame
    from repro.pruning import PAPER_LABELS

    frame = ResultFrame.from_results(results)
    if title:
        print(f"\n== {title} ==")
    header = f"{'strategy':18s} " + " ".join(
        f"{x_attr[:4]}={c:<5g}" for c in frame.unique("compression")
    )
    print(header)
    for strat, points in frame.tradeoff_curves(x="compression", y=y_attr).items():
        cells = " ".join(f"{p.mean:.3f}±{p.std:.2f}" for p in points)
        print(f"{PAPER_LABELS.get(strat, strat):18s} {cells}")
