"""Figures 13-14 (appendix): ResNet-56 on CIFAR-10 — accuracy vs
compression and vs theoretical speedup (reuses the Figure 7 sweep)."""

from common import PAPER_STRATEGIES, cached_sweep
from repro.plotting import curves_from_results, export_curves_csv, render_curves
from repro.pruning import PAPER_LABELS


def _sweep():
    return cached_sweep(
        name="fig07_resnet56", model="resnet-56", dataset="cifar10",
        strategies=PAPER_STRATEGIES,
    )


def test_fig13_fig14(benchmark):
    rs = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    comp_curves = curves_from_results(list(rs), labels=PAPER_LABELS)
    print(render_curves(comp_curves, title="Fig 13: ResNet-56, accuracy vs compression"))
    export_curves_csv(comp_curves, "fig13_resnet56_compression")

    speed_curves = curves_from_results(
        list(rs), x_attr="theoretical_speedup", labels=PAPER_LABELS
    )
    print(render_curves(speed_curves, title="Fig 14: ResNet-56, accuracy vs speedup",
                        x_label="theoretical speedup"))
    export_curves_csv(speed_curves, "fig14_resnet56_speedup")

    assert len(comp_curves) == 5 and len(speed_curves) == 5
