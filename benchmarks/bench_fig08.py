"""Figure 8: using the same initial model is essential.

Two ResNet-56 checkpoints pretrained with Adam at lr 1e-3 ("Weights A")
and lr 1e-4 ("Weights B"), pruned with Global vs Layerwise magnitude.
Different initial models yield different tradeoff curves, and reporting
*changes* in accuracy does not remove the confounder.
"""

import numpy as np

from common import SCALE, cached_sweep
from repro.analysis import ResultFrame

# The paper uses ResNet-56; smoke scale substitutes the topologically
# identical ResNet-20 (same family, 3 stages of basic blocks) to fit the
# CPU budget — the confounder mechanism is architecture-family level.
MODEL = "resnet-56" if SCALE == "full" else "resnet-20"


def _sweeps():
    out = {}
    for label, lr in (("A", 1e-3), ("B", 1e-4)):
        out[label] = cached_sweep(
            name=f"fig08_weights_{label}",
            model=MODEL,
            dataset="cifar10",
            strategies=["global_weight", "layer_weight"],
            seeds=(0,),
            pretrain_lr=lr,
        )
    return out


def test_fig8(benchmark):
    sweeps = benchmark.pedantic(_sweeps, rounds=1, iterations=1)

    print("\n== Figure 8: Global/Layerwise magnitude on two initial models ==")
    header_printed = False
    rows = {}
    for wlabel, rs in sweeps.items():
        frame = ResultFrame.from_results(rs)
        for strat in ("global_weight", "layer_weight"):
            pts = frame.filter(strategy=strat).curve()
            if not header_printed:
                comps = " ".join(f"c={p.x:<5g}" for p in pts)
                print(f"{'series':12s} {comps}   (absolute top-1)")
                header_printed = True
            label = f"{'Global' if 'global' in strat else 'Layer'} {wlabel}"
            rows[label] = pts
            print(f"{label:12s} " + " ".join(f"{p.mean:.3f} " for p in pts))

    print("\n(relative: change in top-1 vs own baseline)")
    deltas = {}
    for label, pts in rows.items():
        base = pts[0].mean
        deltas[label] = [p.mean - base for p in pts]
        print(f"{label:12s} " + " ".join(f"{d:+.3f}" for d in deltas[label]))

    # Checkpoints must actually differ (different pretraining lr).
    a_base = rows["Global A"][0].mean
    b_base = rows["Global B"][0].mean
    assert abs(a_base - b_base) > 1e-4, "the two initial models must differ"

    # The confounder: the gap between Global and Layer depends on which
    # initial model you start from — i.e., the initial model interacts with
    # the method ranking (paper: "different methods appear better on
    # different models").
    def gap(w):
        ga = np.array([p.mean for p in rows[f"Global {w}"][1:]])
        la = np.array([p.mean for p in rows[f"Layer {w}"][1:]])
        return ga - la

    gap_a, gap_b = gap("A"), gap("B")
    print(f"\nGlobal-minus-Layer gap, Weights A: {np.round(gap_a, 3)}")
    print(f"Global-minus-Layer gap, Weights B: {np.round(gap_b, 3)}")
    assert not np.allclose(gap_a, gap_b, atol=5e-3), (
        "initial model must change the relative picture"
    )
