"""Table 1: (dataset, architecture) pairs used by >=4 of 81 papers.

Regenerates the table verbatim from the corpus database and benchmarks the
corpus construction + aggregation pipeline.
"""

from repro.meta import TABLE1_COUNTS, build_corpus, table1


def _generate():
    corpus = build_corpus()
    return table1(corpus)


def test_table1(benchmark):
    rows = benchmark(_generate)
    print("\n== Table 1: combinations used in at least 4 of 81 papers ==")
    print(f"{'Dataset':10s} {'Architecture':16s} {'# Papers':>8s}")
    for ds, arch, n in rows:
        print(f"{ds:10s} {arch:16s} {n:8d}")
    got = {(ds, arch): n for ds, arch, n in rows}
    assert got == TABLE1_COUNTS, "Table 1 must match the paper verbatim"
