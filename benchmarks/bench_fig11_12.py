"""Figures 11-12 (appendix): ResNet-20 on CIFAR-10 — accuracy vs
compression and vs theoretical speedup, five strategies."""

from common import PAPER_STRATEGIES, SCALE, cached_sweep, print_accuracy_table
from repro.plotting import curves_from_results, export_curves_csv, render_curves
from repro.pruning import PAPER_LABELS


def _sweep():
    seeds = (0, 1, 2) if SCALE == "full" else (0,)
    return cached_sweep(
        name="fig11_resnet20", model="resnet-20", dataset="cifar10",
        strategies=PAPER_STRATEGIES, seeds=seeds,
    )


def test_fig11_fig12(benchmark):
    rs = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print_accuracy_table(rs, title="Fig 11: ResNet-20 on CIFAR-10 (Top-1)")

    comp_curves = curves_from_results(list(rs), labels=PAPER_LABELS)
    export_curves_csv(comp_curves, "fig11_resnet20_compression")
    speed_curves = curves_from_results(
        list(rs), x_attr="theoretical_speedup", labels=PAPER_LABELS
    )
    print(render_curves(speed_curves, title="Fig 12: ResNet-20, accuracy vs speedup",
                        x_label="theoretical speedup"))
    export_curves_csv(speed_curves, "fig12_resnet20_speedup")

    assert len(comp_curves) == 5
    baseline = comp_curves[0].ys[0]
    assert baseline > 0.5, "pretrained ResNet-20 must be well above chance"
