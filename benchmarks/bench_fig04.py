"""Figure 4: how many (dataset, architecture) pairs papers use, and how many
points they report per tradeoff curve (MNIST excluded)."""

from repro.meta import build_corpus, pairs_per_paper_histogram, points_per_curve_histogram
from repro.plotting import render_histogram


def _generate():
    corpus = build_corpus()
    return (
        pairs_per_paper_histogram(corpus, exclude_mnist=True),
        points_per_curve_histogram(corpus),
    )


def test_fig4(benchmark):
    pairs_hist, points_hist = benchmark(_generate)

    print("\n== Figure 4 top: number of (dataset, architecture) pairs used ==")
    print(render_histogram(
        [str(k) for k in pairs_hist],
        [b["peer_reviewed"] + b["other"] for b in pairs_hist.values()],
    ))
    print("\n== Figure 4 bottom: points used to characterize tradeoff curve ==")
    print(render_histogram(
        [str(k) for k in points_hist],
        [b["peer_reviewed"] + b["other"] for b in points_hist.values()],
    ))

    # "most papers report on three or fewer pairs"
    total_pairs = sum(b["peer_reviewed"] + b["other"] for b in pairs_hist.values())
    small_pairs = sum(
        b["peer_reviewed"] + b["other"] for k, b in pairs_hist.items() if k <= 3
    )
    assert small_pairs / total_pairs > 0.4

    # "most papers characterize their tradeoff using a single point" — the
    # one-point bin is the mode
    mode = max(points_hist, key=lambda k: points_hist[k]["peer_reviewed"] + points_hist[k]["other"])
    assert mode == 1

    # the pattern holds for peer-reviewed papers too
    pr_mode = max(points_hist, key=lambda k: points_hist[k]["peer_reviewed"])
    assert pr_mode == 1
