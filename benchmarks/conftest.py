"""Benchmark session configuration."""

import os
import sys

# Benchmarks import shared helpers from this directory.
sys.path.insert(0, os.path.dirname(__file__))

# Artifacts (pretrained checkpoints, cached sweeps, figure CSVs) default to
# the repository-local ./artifacts directory.
os.environ.setdefault("REPRO_ARTIFACTS", os.path.join(os.path.dirname(__file__), "..", "artifacts"))
