"""Figure 6: ResNet-18 on ImageNet — metrics are NOT interchangeable.

Top-1 accuracy at matched *compression ratios* favors Global methods, but
at matched *theoretical speedups* the ordering shifts toward Layerwise
methods, because global pruning removes parameters that carry few FLOPs.
"""

import numpy as np

from common import SCALE, cached_sweep, print_accuracy_table
from repro.experiment import aggregate_curve


def _sweep():
    return cached_sweep(
        name="fig06_resnet18_imagenet",
        model="resnet-18",
        dataset="imagenet",
        strategies=["global_weight", "layer_weight", "global_gradient", "layer_gradient"],
        seeds=(0, 1, 2) if SCALE == "full" else (0,),
    )


def test_fig6(benchmark):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    print_accuracy_table(results, title="Figure 6 left: ResNet-18/ImageNet, Top-1 vs compression")

    print("\n== Figure 6 right: speedup achieved at each compression ==")
    for strat in results.strategies():
        pts = aggregate_curve(results.filter(strategy=strat),
                              x_attr="compression", y_attr="theoretical_speedup")
        cells = " ".join(f"{p.mean:6.2f}x" for p in pts)
        print(f"{strat:18s} {cells}")

    # The figure's core claim: for a fixed compression ratio, global pruning
    # yields LOWER theoretical speedup than layerwise pruning (so at fixed
    # speedup the ranking can invert).
    comps = [c for c in results.compressions() if c > 1]
    mid = comps[len(comps) // 2]
    g = aggregate_curve(results.filter(strategy="global_weight", compression=mid),
                        y_attr="theoretical_speedup")[0].mean
    l = aggregate_curve(results.filter(strategy="layer_weight", compression=mid),
                        y_attr="theoretical_speedup")[0].mean
    print(f"\nspeedup at {mid}x compression: global={g:.2f}x layerwise={l:.2f}x")
    assert l > g, "layerwise must achieve higher speedup at fixed compression"

    # Top-5 is reported alongside Top-1 (§6) on the many-class dataset.
    assert all(r.top5 >= r.top1 for r in results)
