"""Figure 6: ResNet-18 on ImageNet — metrics are NOT interchangeable.

Top-1 accuracy at matched *compression ratios* favors Global methods, but
at matched *theoretical speedups* the ordering shifts toward Layerwise
methods, because global pruning removes parameters that carry few FLOPs.
"""

import numpy as np

from common import SCALE, cached_sweep, print_accuracy_table
from repro.analysis import ResultFrame


def _sweep():
    return cached_sweep(
        name="fig06_resnet18_imagenet",
        model="resnet-18",
        dataset="imagenet",
        strategies=["global_weight", "layer_weight", "global_gradient", "layer_gradient"],
        seeds=(0, 1, 2) if SCALE == "full" else (0,),
    )


def test_fig6(benchmark):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    print_accuracy_table(results, title="Figure 6 left: ResNet-18/ImageNet, Top-1 vs compression")

    frame = ResultFrame.from_results(results)
    speed_curves = frame.tradeoff_curves(x="compression", y="theoretical_speedup")
    print("\n== Figure 6 right: speedup achieved at each compression ==")
    for strat, pts in speed_curves.items():
        cells = " ".join(f"{p.mean:6.2f}x" for p in pts)
        print(f"{strat:18s} {cells}")

    # The figure's core claim: for a fixed compression ratio, global pruning
    # yields LOWER theoretical speedup than layerwise pruning (so at fixed
    # speedup the ranking can invert).
    comps = [c for c in frame.unique("compression") if c > 1]
    mid = comps[len(comps) // 2]
    g = next(p.mean for p in speed_curves["global_weight"] if p.x == mid)
    l = next(p.mean for p in speed_curves["layer_weight"] if p.x == mid)
    print(f"\nspeedup at {mid}x compression: global={g:.2f}x layerwise={l:.2f}x")
    assert l > g, "layerwise must achieve higher speedup at fixed compression"

    # Top-5 is reported alongside Top-1 (§6) on the many-class dataset.
    assert all(r.top5 >= r.top1 for r in results)
