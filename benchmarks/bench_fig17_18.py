"""Figures 17-18 (appendix): ResNet-18 on ImageNet — accuracy vs compression
and vs theoretical speedup (reuses the Figure 6 sweep)."""

from common import SCALE, cached_sweep
from repro.plotting import curves_from_results, export_curves_csv, render_curves
from repro.pruning import PAPER_LABELS


def _sweep():
    return cached_sweep(
        name="fig06_resnet18_imagenet",
        model="resnet-18",
        dataset="imagenet",
        strategies=["global_weight", "layer_weight", "global_gradient", "layer_gradient"],
        seeds=(0, 1, 2) if SCALE == "full" else (0,),
    )


def test_fig17_fig18(benchmark):
    rs = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    comp_curves = curves_from_results(list(rs), labels=PAPER_LABELS)
    print(render_curves(comp_curves, title="Fig 17: ResNet-18/ImageNet, acc vs compression"))
    export_curves_csv(comp_curves, "fig17_resnet18_compression")

    speed_curves = curves_from_results(
        list(rs), x_attr="theoretical_speedup", labels=PAPER_LABELS
    )
    print(render_curves(speed_curves, title="Fig 18: ResNet-18/ImageNet, acc vs speedup",
                        x_label="theoretical speedup"))
    export_curves_csv(speed_curves, "fig18_resnet18_speedup")

    assert len(comp_curves) == 4 and len(speed_curves) == 4
