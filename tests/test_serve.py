"""Results server + query language tests (repro.serve, repro.analysis.query).

Covers the query language's fail-fast validation and point-for-point
equivalence with in-process ResultFrame calls, every HTTP endpoint
(including ETag/304 conditional GETs and pagination), byte-identity of
``GET /report`` with ``python -m repro report --json -``, partial-sweep
accounting parity, torn-read-freedom under concurrent reload, and the
``python -m repro serve`` CLI's clean SIGTERM shutdown.
"""

import http.client
import json
import os
import signal
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro.analysis import (
    QueryError,
    ResultFrame,
    build_report,
    compile_query,
    load_frame,
    report_json_text,
    run_query,
)
from repro.cli import main
from repro.experiment import (
    ExperimentSpec,
    PruningResult,
    ResultCache,
    ResultSet,
    WorkQueue,
)
from repro.serve import FrameSource, ResultsServer


def make_rows(strategies=("global_weight", "random"), seeds=(0, 1),
              comps=(1, 2, 4)):
    """Sweep-shaped rows with every column the report needs (no training)."""
    rows = []
    for strat in strategies:
        for seed in seeds:
            for c in comps:
                rows.append(PruningResult(
                    model="m", dataset="d", strategy=strat,
                    compression=float(c), seed=seed,
                    top1=0.9 - 0.02 * c + 0.01 * seed,
                    top5=0.95 - 0.01 * c,
                    baseline_top1=0.9 + 0.01 * seed,
                    baseline_top5=0.95,
                    actual_compression=float(c),
                    theoretical_speedup=float(c) ** 0.8,
                    dense_flops=100.0, effective_flops=100.0 / c,
                    total_params=1000, nonzero_params=int(1000 / c),
                ))
    return rows


def _spec(strategy, compression, seed):
    return ExperimentSpec(model="m", dataset="d", strategy=strategy,
                          compression=float(compression), seed=seed)


def _complete_cell(queue, cache, row):
    """Submit + claim + complete one cell and publish its result row."""
    spec = _spec(row.strategy, row.compression, row.seed)
    queue.submit(spec)
    claim = queue.claim("test-worker")
    assert claim is not None
    cache.put(spec, row)
    queue.complete(claim)


# ---------------------------------------------------------------------------
# query language (no server involved)
# ---------------------------------------------------------------------------

class TestQueryLanguage:
    @pytest.fixture
    def frame(self):
        return ResultFrame.from_results(make_rows())

    def test_empty_query_selects_all_rows(self, frame):
        result = run_query(frame, {})
        assert result["total"] == len(frame)
        assert result["rows"] == frame.to_records()

    def test_filter_matches_in_process_filter(self, frame):
        spec = {"filter": {"strategy": "global_weight",
                           "compression": {"op": ">=", "value": 2},
                           "seed": [0, 1]}}
        expected = frame.filter(
            strategy="global_weight",
            compression={"op": ">=", "value": 2},
            seed=[0, 1],
        )
        assert run_query(frame, spec)["rows"] == expected.to_records()

    def test_aggregate_matches_in_process_aggregate(self, frame):
        spec = {"aggregate": {"by": ["strategy", "compression"],
                              "values": ["top1"], "stats": ["mean", "std"]}}
        expected = frame.aggregate(by=("strategy", "compression"),
                                   values=("top1",), stats=("mean", "std"))
        assert run_query(frame, spec)["rows"] == expected.to_records()

    def test_aggregate_defaults_match_frame_defaults(self, frame):
        assert run_query(frame, {"aggregate": {}})["rows"] == \
            frame.aggregate().to_records()

    def test_group_by_is_count_only_aggregate(self, frame):
        result = run_query(frame, {"group_by": "strategy"})
        assert result["columns"] == ["strategy", "n"]
        assert result["rows"] == frame.aggregate(
            by=("strategy",), values=[], stats=()).to_records()

    def test_sort_and_projection(self, frame):
        result = run_query(frame, {"sort": ["compression", "strategy"],
                                   "columns": ["strategy", "compression"]})
        expected = frame.sort_by("compression", "strategy")
        assert result["columns"] == ["strategy", "compression"]
        assert result["rows"] == [
            {"strategy": r["strategy"], "compression": r["compression"]}
            for r in expected.to_records()
        ]

    def test_pagination_reassembles_exactly(self, frame):
        whole = run_query(frame, {"sort": "top1"})
        pages = []
        offset = 0
        while True:
            page = run_query(frame, {"sort": "top1", "limit": 5,
                                     "offset": offset})
            assert page["total"] == len(frame)
            if not page["rows"]:
                break
            pages.extend(page["rows"])
            offset += 5
        assert pages == whole["rows"]

    def test_offset_past_end_is_empty_not_an_error(self, frame):
        page = run_query(frame, {"limit": 5, "offset": 10_000})
        assert page["rows"] == [] and page["total"] == len(frame)

    @pytest.mark.parametrize("spec, message", [
        ("not a dict", "must be a JSON object"),
        ({"bogus_key": 1}, "unknown query key"),
        ({"filter": ["strategy"]}, "'filter' must be an object"),
        ({"filter": {"strategy": {"op": "~", "value": 1}}},
         "unknown filter op"),
        ({"filter": {"compression": {"op": "in", "value": 2}}},
         "needs a list value"),
        ({"group_by": "a", "aggregate": {}}, "mutually exclusive"),
        ({"aggregate": {"nope": 1}}, "unknown aggregate key"),
        ({"aggregate": {"stats": ["median"]}}, "unknown aggregate stat"),
        ({"group_by": []}, "non-empty list"),
        ({"limit": 0}, "positive integer"),
        ({"limit": True}, "positive integer"),
        ({"offset": -1}, "non-negative"),
    ])
    def test_compile_rejects_malformed_documents(self, spec, message):
        with pytest.raises(QueryError, match=message):
            compile_query(spec)

    def test_apply_rejects_unknown_columns(self, frame):
        for spec in ({"filter": {"nope": 1}}, {"group_by": "nope"},
                     {"sort": "nope"}, {"columns": ["nope"]},
                     {"aggregate": {"by": ["nope"]}}):
            with pytest.raises(QueryError, match="nope"):
                run_query(frame, spec)

    def test_canonical_is_spelling_independent(self):
        a = compile_query({"sort": "top1", "filter": {"seed": 0}})
        b = compile_query({"filter": {"seed": 0}, "sort": ["top1"]})
        assert a.canonical() == b.canonical()
        c = compile_query({"filter": {"seed": 1}, "sort": ["top1"]})
        assert a.canonical() != c.canonical()


# ---------------------------------------------------------------------------
# HTTP endpoints against an in-memory source
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def server():
    frame = ResultFrame.from_results(make_rows())
    srv = ResultsServer([FrameSource.from_frame("sweep", frame)])
    srv.start()
    yield srv
    srv.stop()


def _request(srv, method, path, body=None, headers=None):
    conn = http.client.HTTPConnection(srv.host, srv.port)
    try:
        conn.request(method, path, body=body, headers=headers or {})
        response = conn.getresponse()
        payload = response.read()
        return response, payload
    finally:
        conn.close()


def _get_json(srv, path):
    response, payload = _request(srv, "GET", path)
    assert response.status == 200, payload[:300]
    return json.loads(payload)


class TestEndpoints:
    def test_healthz_reports_frames_and_metrics(self, server):
        doc = _get_json(server, "/healthz")
        assert doc["status"] == "ok"
        (entry,) = doc["frames"]
        assert entry["name"] == "sweep" and entry["kind"] == "memory"
        assert entry["rows"] == len(make_rows())
        assert entry["outstanding"] == {"pending": 0, "leased": 0}
        again = _get_json(server, "/healthz")
        assert again["metrics"]["/healthz"]["requests"] >= 1

    def test_frames_lists_columns_and_fingerprint(self, server):
        (entry,) = _get_json(server, "/frames")["frames"]
        assert "top1" in entry["columns"]
        frame = ResultFrame.from_results(make_rows())
        assert entry["fingerprint"] == frame.fingerprint()

    def test_query_matches_in_process_point_for_point(self, server):
        frame = ResultFrame.from_results(make_rows())
        spec = {"filter": {"compression": {"op": ">", "value": 1}},
                "aggregate": {"by": ["strategy", "compression"],
                              "values": ["top1", "delta_top1"]},
                "sort": ["strategy", "compression"]}
        response, payload = _request(
            server, "POST", "/query", body=json.dumps(spec))
        assert response.status == 200
        assert json.loads(payload)["rows"] == run_query(frame, spec)["rows"]

    def test_query_get_equals_post(self, server):
        spec = {"group_by": ["strategy"], "sort": "strategy"}
        from urllib.parse import quote
        _, get_payload = _request(
            server, "GET", "/query?q=" + quote(json.dumps(spec)))
        _, post_payload = _request(
            server, "POST", "/query", body=json.dumps(spec))
        assert get_payload == post_payload

    def test_query_pagination_carries_stable_fingerprint(self, server):
        from urllib.parse import quote

        pages, offset = [], 0
        fingerprints = set()
        while True:
            spec = {"sort": "top1", "limit": 5, "offset": offset}
            doc = _get_json(server, "/query?q=" + quote(json.dumps(spec)))
            fingerprints.add(doc["fingerprint"])
            if not doc["rows"]:
                break
            pages.extend(doc["rows"])
            offset += 5
        assert len(fingerprints) == 1
        frame = ResultFrame.from_results(make_rows())
        assert pages == run_query(frame, {"sort": "top1"})["rows"]

    def test_etag_304_round_trip(self, server):
        for path in ("/report", "/curves", "/summary?by=strategy",
                     "/pareto?limit=2"):
            response, payload = _request(server, "GET", path)
            assert response.status == 200 and payload
            etag = response.getheader("ETag")
            assert etag
            response, payload = _request(
                server, "GET", path, headers={"If-None-Match": etag})
            assert response.status == 304 and payload == b""
            # a different tag still gets the full body
            response, payload = _request(
                server, "GET", path, headers={"If-None-Match": '"zzz"'})
            assert response.status == 200 and payload

    def test_query_etag_varies_with_query(self, server):
        a = _request(server, "POST", "/query",
                     body=json.dumps({"group_by": "strategy"}))[0]
        b = _request(server, "POST", "/query",
                     body=json.dumps({"group_by": "seed"}))[0]
        assert a.getheader("ETag") != b.getheader("ETag")

    def test_summary_endpoint_matches_aggregate(self, server):
        doc = _get_json(server, "/summary?by=strategy&values=top1")
        frame = ResultFrame.from_results(make_rows())
        prepared = frame.replicate_baselines().derived().ok()
        expected = prepared.aggregate(by=("strategy",), values=("top1",))
        assert doc["rows"] == expected.to_records()

    def test_curves_endpoint_matches_tradeoff_curves(self, server):
        doc = _get_json(server, "/curves?y=top5")
        frame = ResultFrame.from_results(make_rows())
        prepared = frame.replicate_baselines().derived().ok()
        curves = prepared.tradeoff_curves(group="strategy", x="compression",
                                          y="top5")
        assert set(doc["curves"]) == {str(k) for k in curves}
        for strategy, points in curves.items():
            assert doc["curves"][str(strategy)] == [
                {"x": p.x, "mean": p.mean, "std": p.std, "n": p.n}
                for p in points
            ]

    def test_pareto_endpoint_matches_frontier(self, server):
        doc = _get_json(server, "/pareto")
        frame = ResultFrame.from_results(make_rows())
        prepared = frame.replicate_baselines().derived().ok()
        assert doc["rows"] == \
            prepared.pareto_frontier(x="compression", y="top1").to_records()

    def test_error_statuses(self, server):
        cases = [
            ("GET", "/nope", None, 404, "unknown endpoint"),
            ("GET", "/report?frame=missing", None, 404, "no frame named"),
            ("GET", "/report?y=loss", None, 400, "'y' must be one of"),
            ("GET", "/report?bogus=1", None, 400, "unknown parameter"),
            ("GET", "/query?q=notjson", None, 400, "not valid JSON"),
            ("POST", "/query", json.dumps({"zap": 1}), 400,
             "unknown query key"),
            ("POST", "/query", json.dumps({"filter": {"nope": 1}}), 400,
             "unknown filter column"),
            ("POST", "/report", None, 405, "method not allowed"),
            ("GET", "/summary?limit=zero", None, 400, "must be an integer"),
            ("GET", "/summary?by=bogus", None, 400, "unknown aggregate"),
        ]
        for method, path, body, status, needle in cases:
            response, payload = _request(server, method, path, body=body)
            assert response.status == status, (path, payload[:200])
            doc = json.loads(payload)
            assert needle in doc["error"], (path, doc["error"])
            assert doc["status"] == status

    def test_head_sends_headers_without_body(self, server):
        response, payload = _request(server, "HEAD", "/report")
        assert response.status == 200
        assert payload == b""
        assert response.getheader("ETag")
        assert int(response.getheader("Content-Length")) > 0


# ---------------------------------------------------------------------------
# parity with the report CLI over real artifacts
# ---------------------------------------------------------------------------

class TestReportParity:
    @pytest.fixture
    def queue_dir(self, tmp_path):
        """A partially-drained queue: 12 done cells + 1 still pending."""
        queue = WorkQueue(tmp_path / "q")
        cache = ResultCache(queue.root / "cache")
        for row in make_rows():
            _complete_cell(queue, cache, row)
        queue.submit(_spec("global_weight", 8.0, 7))  # never executed
        return queue.root

    def test_report_endpoint_identical_to_cli_json(self, queue_dir, capsys):
        srv = ResultsServer([FrameSource("q", queue_dir)])
        srv.start()
        try:
            _, payload = _request(srv, "GET", "/report")
        finally:
            srv.stop()
        assert main(["report", str(queue_dir), "--json", "-"]) == 1  # partial
        cli_text = capsys.readouterr().out
        assert payload.decode() == cli_text.rstrip("\n")

    def test_outstanding_in_healthz_and_report(self, queue_dir):
        srv = ResultsServer([FrameSource("q", queue_dir)])
        srv.start()
        try:
            health = _get_json(srv, "/healthz")
            report = _get_json(srv, "/report")
        finally:
            srv.stop()
        assert health["frames"][0]["outstanding"] == \
            {"pending": 1, "leased": 0}
        assert report["outstanding"] == {"pending": 1, "leased": 0}

    def test_query_over_loaded_artifact_matches_load_frame(self, queue_dir):
        spec = {"filter": {"strategy": "global_weight"},
                "sort": ["compression", "seed"]}
        srv = ResultsServer([FrameSource("q", queue_dir)])
        srv.start()
        try:
            _, payload = _request(srv, "POST", "/query",
                                  body=json.dumps(spec))
        finally:
            srv.stop()
        frame = load_frame(queue_dir)
        assert json.loads(payload)["rows"] == run_query(frame, spec)["rows"]


# ---------------------------------------------------------------------------
# /fleet: live queue/fleet health for queue-dir sources
# ---------------------------------------------------------------------------

class TestFleetEndpoint:
    @pytest.fixture
    def queue_dir(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        cache = ResultCache(queue.root / "cache")
        for row in make_rows():
            _complete_cell(queue, cache, row)
        queue.submit(_spec("global_weight", 8.0, 7))  # still pending
        return queue.root

    def _serve(self, sources):
        srv = ResultsServer(sources)
        srv.start()
        return srv

    def test_fleet_reports_queue_stats_without_manifests(self, queue_dir):
        srv = self._serve([FrameSource("q", queue_dir)])
        try:
            response, payload = _request(srv, "GET", "/fleet")
        finally:
            srv.stop()
        assert response.status == 200
        assert response.getheader("ETag") is None  # live data, never cached
        doc = json.loads(payload)
        assert doc["frame"] == "q"
        assert doc["queue"]["counts"] == \
            {"pending": 1, "leased": 0, "done": 12, "failed": 0}
        assert "fleet" not in doc and "plan" not in doc  # nothing launched
        assert "audit" not in doc  # audit is opt-in

    def test_fleet_includes_roster_and_plan_when_present(self, queue_dir):
        from repro.fleet import fleet_manifest_path

        manifest_path = fleet_manifest_path(queue_dir)
        manifest_path.parent.mkdir(parents=True, exist_ok=True)
        manifest_path.write_text(json.dumps({
            "schema": 1, "queue_dir": str(queue_dir), "launches": 1,
            "updated_at": "2026-08-08T00:00:00Z",
            "workers": [
                {"worker_id": "local-w0", "host": "local",
                 "launcher": "local", "pid": os.getpid(), "launch": 1},
                {"worker_id": "local-w1", "host": "local",
                 "launcher": "local", "pid": 2 ** 22 + 1, "launch": 1},
            ],
        }))
        from repro.fleet import batch_manifest_path

        batch_manifest_path(queue_dir).write_text(json.dumps({
            "schema": 1, "config_hash": "cafe" * 4, "batch_size": 4,
            "n_cells": 13, "created_at": "2026-08-08T00:00:00Z",
            "batches": [{"index": 0, "hashes": []}] * 4,
        }))
        srv = self._serve([FrameSource("q", queue_dir)])
        try:
            doc = _get_json(srv, "/fleet")
        finally:
            srv.stop()
        roster = {w["worker_id"]: w for w in doc["fleet"]["workers"]}
        assert roster["local-w0"]["alive"] is True
        assert roster["local-w1"]["alive"] in (False, None)
        assert doc["plan"] == {
            "config_hash": "cafe" * 4, "batch_size": 4, "n_cells": 13,
            "batches": 4, "created_at": "2026-08-08T00:00:00Z",
        }

    def test_fleet_audit_flags_ghost_done(self, queue_dir):
        srv = self._serve([FrameSource("q", queue_dir)])
        try:
            clean = _get_json(srv, "/fleet?audit=1")
            # break the done contract for one cell, then re-audit
            victim = next((queue_dir / "done").glob("*.json")).stem
            entry = queue_dir / "cache" / victim[:2] / f"{victim}.json"
            entry.unlink()
            broken = _get_json(srv, "/fleet?audit=1")
        finally:
            srv.stop()
        assert clean["audit"]["clean"] is True
        assert broken["audit"]["clean"] is False
        assert broken["audit"]["ghost_done"] == [victim]

    def test_fleet_rejects_non_queue_sources(self, server):
        response, payload = _request(server, "GET", "/fleet")
        assert response.status == 400
        doc = json.loads(payload)
        assert "memory source" in doc["error"]
        assert "work-queue" in doc["error"]

    def test_unknown_endpoint_mentions_fleet(self, server):
        response, payload = _request(server, "GET", "/nope")
        assert response.status == 404
        assert "/fleet" in json.loads(payload)["error"]


# ---------------------------------------------------------------------------
# concurrent reads during background reload (no torn responses)
# ---------------------------------------------------------------------------

class TestConcurrentReload:
    N_READERS = 4

    def test_readers_see_whole_generations_only(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        cache = ResultCache(queue.root / "cache")
        phase1 = make_rows(seeds=(0,))
        phase2 = make_rows(seeds=(1,))
        for row in phase1:
            _complete_cell(queue, cache, row)

        query = {"sort": ["strategy", "compression", "seed"]}
        frame1 = ResultFrame.from_queue(queue.root)
        valid_rows = [run_query(frame1, query)["rows"]]
        valid_reports = [json.loads(report_json_text(build_report(frame1)))]

        srv = ResultsServer([FrameSource("q", queue.root)],
                            reload_interval=0.05)
        srv.start()
        stop = threading.Event()
        observed_rows, observed_reports, errors = [], [], []

        def reader():
            conn = http.client.HTTPConnection(srv.host, srv.port)
            try:
                while not stop.is_set():
                    conn.request("POST", "/query", body=json.dumps(query))
                    response = conn.getresponse()
                    payload = response.read()
                    if response.status != 200:
                        errors.append(payload)
                        continue
                    observed_rows.append(json.loads(payload)["rows"])
                    conn.request("GET", "/report")
                    response = conn.getresponse()
                    payload = response.read()
                    if response.status != 200:
                        errors.append(payload)
                        continue
                    observed_reports.append(json.loads(payload))
            except Exception as exc:  # noqa: BLE001 - surfaced via errors
                errors.append(repr(exc).encode())
            finally:
                conn.close()

        threads = [threading.Thread(target=reader)
                   for _ in range(self.N_READERS)]
        for t in threads:
            t.start()
        try:
            time.sleep(0.15)
            # grow the queue mid-flight: workers publish a second seed one
            # cell at a time, so EVERY completion prefix is a legitimate
            # on-disk generation the reloader may capture — whitelist each
            for row in phase2:
                _complete_cell(queue, cache, row)
                frame2 = ResultFrame.from_queue(queue.root)
                valid_rows.append(run_query(frame2, query)["rows"])
                valid_reports.append(
                    json.loads(report_json_text(build_report(frame2))))
            # keep reading until the server demonstrably serves the final
            # (fully drained) generation
            deadline = time.time() + 10.0
            while time.time() < deadline:
                if any(r == valid_rows[-1] for r in observed_rows):
                    break
                time.sleep(0.05)
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=10.0)
            srv.stop()

        assert not errors, errors[:3]
        assert observed_rows and observed_reports
        # every response equals SOME whole generation, point for point —
        # never a mixture of generations and never a torn page
        for rows in observed_rows:
            assert rows in valid_rows
        for report in observed_reports:
            assert report in valid_reports
        # and the final generation was actually observed (reload happened)
        assert any(r == valid_rows[-1] for r in observed_rows)


# ---------------------------------------------------------------------------
# the serve CLI (subprocess: port auto-assign + clean SIGTERM shutdown)
# ---------------------------------------------------------------------------

class TestServeCli:
    def test_serve_subprocess_sigterm_clean_exit(self, tmp_path):
        results = tmp_path / "results.json"
        ResultSet(make_rows()).save(results)
        src_dir = os.path.join(os.path.dirname(__file__), "..", "src")
        env = dict(os.environ, PYTHONPATH=os.path.abspath(src_dir))
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", str(results),
             "--port", "0", "--quiet"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True, env=env,
        )
        try:
            line = proc.stdout.readline()
            assert "serving 1 frame(s) on http://" in line
            url = line.strip().rsplit(" ", 1)[-1]
            from urllib.request import urlopen

            with urlopen(f"{url}/healthz", timeout=10) as response:
                doc = json.loads(response.read())
            assert doc["status"] == "ok"
            assert doc["frames"][0]["kind"] == "results"
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=15) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

    def test_serve_bad_source_exits_2(self, tmp_path, capsys):
        assert main(["serve", str(tmp_path / "nope.json"),
                     "--port", "0"]) == 2
        assert "no results at" in capsys.readouterr().err
