"""Tests that the corpus reproduces every aggregate the paper states."""

import numpy as np
import pytest

from repro.meta import (
    TABLE1_COUNTS,
    Corpus,
    Paper,
    ReportedCurve,
    build_corpus,
    comparison_stats,
    corpus_stats,
    in_degree_histogram,
    never_compared_to,
    out_degree_histogram,
    pairs_per_paper_histogram,
    points_per_curve_histogram,
    table1,
)


@pytest.fixture(scope="module")
def corpus():
    return build_corpus()


class TestCorpusModel:
    def test_duplicate_key_rejected(self):
        p = Paper(key="a", label="A", year=2015, peer_reviewed=True)
        with pytest.raises(ValueError):
            Corpus([p, Paper(key="a", label="A2", year=2016, peer_reviewed=True)])

    def test_closure_property_enforced(self):
        p = Paper(key="a", label="A", year=2015, peer_reviewed=True,
                  compares_to=["missing"])
        with pytest.raises(ValueError):
            Corpus([p])

    def test_curve_must_reference_known_paper(self):
        p = Paper(key="a", label="A", year=2015, peer_reviewed=True)
        curve = ReportedCurve(paper_key="ghost", method="m", dataset="d",
                              architecture="x")
        with pytest.raises(ValueError):
            Corpus([p], [curve])

    def test_degree_queries(self):
        a = Paper(key="a", label="A", year=2015, peer_reviewed=True)
        b = Paper(key="b", label="B", year=2016, peer_reviewed=True,
                  compares_to=["a"])
        c = Corpus([a, b])
        assert c.in_degree("a") == 1
        assert c.out_degree("b") == 1
        assert c.papers_comparing_to("a") == ["b"]


class TestPublishedAggregates:
    def test_81_papers(self, corpus):
        assert len(corpus) == 81

    def test_two_classics(self, corpus):
        classics = [p for p in corpus.papers.values() if p.classic]
        assert len(classics) == 2
        assert {p.key for p in classics} == {"lecun1990", "hassibi1993"}

    def test_section_4_2_counts(self, corpus):
        stats = corpus_stats(corpus)
        assert stats == {
            "n_papers": 81,
            "n_datasets": 49,
            "n_architectures": 132,
            "n_pairs": 195,
        }

    def test_table1_verbatim(self, corpus):
        rows = table1(corpus)
        got = {(ds, arch): n for ds, arch, n in rows}
        assert got == TABLE1_COUNTS

    def test_table1_sorted_descending(self, corpus):
        rows = table1(corpus)
        counts = [n for _, _, n in rows]
        assert counts == sorted(counts, reverse=True)

    def test_no_extra_pairs_cross_threshold(self, corpus):
        counts = corpus.pair_usage_counts()
        extras = {p: c for p, c in counts.items()
                  if c >= 4 and p not in TABLE1_COUNTS}
        assert not extras

    def test_section_4_1_comparison_fractions(self, corpus):
        stats = comparison_stats(corpus)
        # "more than a fourth of our corpus does not compare to any
        #  previously proposed pruning method"
        assert stats["frac_compare_to_none"] > 0.25
        # "and another fourth compares to only one"
        assert stats["frac_compare_to_at_most_one"] > 0.5
        # "Nearly all papers compare to three or fewer"
        assert stats["frac_compare_to_at_most_three"] > 0.9

    def test_max_in_degree_matches_figure2(self, corpus):
        # Figure 2 top x-axis tops out at 18
        assert 14 <= comparison_stats(corpus)["max_in_degree"] <= 18

    def test_han2015_most_compared_to(self, corpus):
        degrees = {k: corpus.in_degree(k) for k in corpus.papers}
        assert max(degrees, key=degrees.get) == "han2015"

    def test_dozens_never_compared_to(self, corpus):
        n = len(never_compared_to(corpus))
        assert n >= 24  # "dozens"

    def test_37_papers_on_figure3_configs(self, corpus):
        from repro.meta import FIG3_PAIRS

        users = {
            p.key
            for p in corpus.papers.values()
            if any(pair in p.pairs for pair in FIG3_PAIRS)
        }
        assert len(users) == 37

    def test_mnist_prevalence(self, corpus):
        # "three of the top six most common combinations involve MNIST"
        top6 = table1(corpus)[:6]
        assert sum(1 for ds, _, _ in top6 if ds == "MNIST") == 3


class TestHistograms:
    def test_in_degree_histogram_sums_to_81(self, corpus):
        hist = in_degree_histogram(corpus)
        total = sum(b["peer_reviewed"] + b["other"] for b in hist.values())
        assert total == 81

    def test_out_degree_histogram_sums_to_81(self, corpus):
        hist = out_degree_histogram(corpus)
        total = sum(b["peer_reviewed"] + b["other"] for b in hist.values())
        assert total == 81

    def test_pairs_per_paper_mostly_small(self, corpus):
        hist = pairs_per_paper_histogram(corpus)
        small = sum(
            b["peer_reviewed"] + b["other"] for n, b in hist.items() if n <= 3
        )
        total = sum(b["peer_reviewed"] + b["other"] for b in hist.values())
        assert small / total > 0.4  # bulk of the mass at <=3 pairs

    def test_points_per_curve_mostly_one_to_three(self, corpus):
        hist = points_per_curve_histogram(corpus)
        small = sum(
            b["peer_reviewed"] + b["other"] for n, b in hist.items() if n <= 3
        )
        total = sum(b["peer_reviewed"] + b["other"] for b in hist.values())
        assert small / total > 0.6

    def test_determinism(self):
        c1, c2 = build_corpus(), build_corpus()
        assert {k: c1.in_degree(k) for k in c1.papers} == {
            k: c2.in_degree(k) for k in c2.papers
        }
        assert len(c1.curves) == len(c2.curves)
