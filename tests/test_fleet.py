"""Tests for the fleet layer: launcher, batch planner, verify audit, watch.

Fast tests cover the hosts-file parser, launcher argv construction (with a
recording in-process launcher so nothing is spawned), plan idempotence,
every verify audit category and its ``--retry`` repair, the watch
renderer/state, and the CLI surfaces.  The fault-injection battery — real
launched worker processes, the launcher SIGKILLed, a worker SIGKILLed
mid-batch, a corrupted done marker — is marked ``slow`` and asserts
``repro fleet verify --retry`` converges the queue to byte-equality with
a SerialExecutor run.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from exp_fixtures import (
    corrupt_done_marker,
    crashy_spec,
    tiny_train,
    write_hosts_file,
)
from repro.cli import main as cli_main
from repro.experiment import (
    QueueExecutor,
    QueueWorker,
    ResultCache,
    SerialExecutor,
    SweepConfig,
    WorkQueue,
    assemble_results,
    spec_hash,
)
from repro.experiment.prune import baseline_spec_for
from repro.fleet import (
    LAUNCHERS,
    HostSpec,
    LocalLauncher,
    SshLauncher,
    WatchState,
    batch_manifest_path,
    config_hash,
    fleet_manifest_path,
    fleet_plan,
    launch_fleet,
    parse_hosts_file,
    plan_batches,
    read_batch_manifest,
    read_fleet_manifest,
    render_watch,
    verify_fleet,
    watch_queue,
    worker_alive,
)
from repro.fleet.plan import planned_specs

REPO = Path(__file__).resolve().parent.parent


def _fleet_config(queue_dir, strategies=("global_weight", "random"),
                  compressions=(2, 3), seeds=(0,), cell="fleet",
                  behavior="ok", lease_timeout=3.0, max_retries=2,
                  **behavior_kwargs) -> SweepConfig:
    """A crashy-dataset sweep config wired for the queue executor."""
    return SweepConfig(
        model="lenet-300-100",
        dataset="crashy",
        strategies=list(strategies),
        compressions=list(compressions),
        seeds=list(seeds),
        model_kwargs=dict(input_size=4, in_channels=3),
        dataset_kwargs=dict(cell=cell, behavior=behavior, **behavior_kwargs),
        pretrain=tiny_train(),
        finetune=tiny_train(),
        executor="queue",
        executor_options=dict(
            queue_dir=str(queue_dir), local_workers=0,
            lease_timeout=lease_timeout, max_retries=max_retries,
        ),
    )


def _drain(queue_dir, cache_dir=None) -> WorkQueue:
    """Run an in-process worker until the queue has nothing claimable."""
    queue = WorkQueue(queue_dir)
    cache = ResultCache(cache_dir or Path(queue_dir) / "cache")
    worker = QueueWorker(queue, cache, worker_id="drain",
                         heartbeat_interval=None)
    while worker.run_once():
        pass
    return queue


# -- hosts file -------------------------------------------------------------

class TestHostsFile:
    def test_parse_basic(self, tmp_path):
        path = write_hosts_file(tmp_path / "hosts.txt", [
            "# comment line",
            "local workers=4",
            "",
            "gpu-box-1 workers=8  # trailing comment",
            "gpu-box-2 python=/opt/py3 launcher=ssh",
        ])
        hosts = parse_hosts_file(path)
        assert [h.host for h in hosts] == ["local", "gpu-box-1", "gpu-box-2"]
        assert [h.workers for h in hosts] == [4, 8, 1]
        assert hosts[2].python == "/opt/py3"

    def test_default_workers_applies_when_unspecified(self, tmp_path):
        path = write_hosts_file(tmp_path / "h", ["local", "box workers=3"])
        hosts = parse_hosts_file(path, default_workers=5)
        assert [h.workers for h in hosts] == [5, 3]

    def test_launcher_inference(self):
        assert HostSpec("local").launcher_name() == "local"
        assert HostSpec("localhost").launcher_name() == "local"
        assert HostSpec("127.0.0.1").launcher_name() == "local"
        assert HostSpec("gpu-box-9").launcher_name() == "ssh"
        assert HostSpec("gpu-box-9", launcher="local").launcher_name() == "local"

    @pytest.mark.parametrize("line, fragment", [
        ("local workers", "key=value"),
        ("local frobnicate=2", "unknown option"),
        ("local workers=nope", "must be an integer"),
        ("local workers=0", "must be >= 1"),
        ("local launcher=teleport", "unknown launcher"),
    ])
    def test_malformed_lines_fail_with_lineno(self, tmp_path, line, fragment):
        path = write_hosts_file(tmp_path / "h", ["# header", line])
        with pytest.raises(ValueError, match=fragment) as err:
            parse_hosts_file(path)
        assert ":2:" in str(err.value)  # the offending line number

    def test_empty_file_is_an_error(self, tmp_path):
        path = write_hosts_file(tmp_path / "h", ["# nothing", ""])
        with pytest.raises(ValueError, match="no hosts"):
            parse_hosts_file(path)


# -- launchers --------------------------------------------------------------

class _RecordingLauncher:
    """Registered test backend: records spawns, starts nothing."""

    spawned = []  # (argv, log_path, env) per spawn, shared by design

    def build_argv(self, host, worker_argv):
        return ["rec", host.host] + list(worker_argv)

    def spawn(self, argv, log_path, env=None):
        _RecordingLauncher.spawned.append((list(argv), Path(log_path), env))
        return 40000 + len(_RecordingLauncher.spawned)


if "recording" not in LAUNCHERS:
    LAUNCHERS.register("recording", _RecordingLauncher)


class TestLaunchers:
    def test_registry_has_builtin_backends(self):
        assert "local" in LAUNCHERS and "ssh" in LAUNCHERS
        assert isinstance(LAUNCHERS.create("local"), LocalLauncher)

    def test_local_build_argv_uses_this_interpreter(self):
        argv = LocalLauncher().build_argv(
            HostSpec("local"), ["worker", "/q", "--worker-id", "w0"])
        assert argv[:3] == [sys.executable, "-m", "repro"]
        assert argv[3:] == ["worker", "/q", "--worker-id", "w0"]

    def test_ssh_build_argv_quotes_remote_command(self):
        argv = SshLauncher().build_argv(
            HostSpec("gpu-box", python="/opt/py3"),
            ["worker", "/shared dir/q", "--worker-id", "gpu-box-w0"])
        assert argv[:3] == ["ssh", "-o", "BatchMode=yes"]
        assert argv[3] == "gpu-box"
        remote = argv[4]
        assert remote.startswith("/opt/py3 -m repro worker")
        assert "'/shared dir/q'" in remote  # space-safe quoting

    def test_launch_refuses_a_non_queue_dir(self, tmp_path):
        with pytest.raises(ValueError, match="no work queue"):
            launch_fleet([HostSpec("local")], tmp_path / "nope")

    def test_launch_records_manifest_and_merges(self, tmp_path):
        queue_dir = tmp_path / "q"
        WorkQueue(queue_dir)  # scaffold the layout
        _RecordingLauncher.spawned.clear()
        hosts = [HostSpec("a", workers=2, launcher="recording"),
                 HostSpec("b", workers=1, launcher="recording")]
        manifest = launch_fleet(hosts, queue_dir, imports=("exp_fixtures",),
                                idle_timeout=5.0, kernel_backend="reference")
        assert manifest["launches"] == 1
        ids = [w["worker_id"] for w in manifest["workers"]]
        assert ids == ["a-w0", "a-w1", "b-w2"]
        assert len(_RecordingLauncher.spawned) == 3
        argv0 = _RecordingLauncher.spawned[0][0]
        assert argv0[:2] == ["rec", "a"]
        assert "--import" in argv0 and "exp_fixtures" in argv0
        assert "--idle-timeout" in argv0 and "--kernel-backend" in argv0
        # logs live under the queue dir, recorded relative to it
        assert manifest["workers"][0]["log"] == "fleet/logs/a-w0.log"
        # a second launch merges: worker ids keep counting up
        merged = launch_fleet([HostSpec("c", launcher="recording")], queue_dir)
        assert merged["launches"] == 2
        assert [w["worker_id"] for w in merged["workers"]] == ids + ["c-w3"]
        on_disk = read_fleet_manifest(queue_dir)
        assert on_disk == merged
        assert fleet_manifest_path(queue_dir).exists()

    def test_worker_alive_probes(self):
        assert worker_alive({"pid": os.getpid()}) is True
        assert worker_alive({"pid": 2 ** 22 + 1}) in (False, None)
        assert worker_alive({"pid": None}) is None
        assert worker_alive({}) is None


# -- plan -------------------------------------------------------------------

class TestFleetPlan:
    def test_plan_batches_chunks_and_dedupes(self):
        specs = [crashy_spec(cell=f"p{i}") for i in range(5)]
        batches = plan_batches(specs + specs, batch_size=2)
        assert [len(b) for b in batches] == [2, 2, 1]
        flat = [spec_hash(s) for b in batches for s in b]
        assert flat == [spec_hash(s) for s in specs]  # order kept, no dupes

    def test_plan_batches_rejects_bad_size(self):
        with pytest.raises(ValueError, match="batch_size"):
            plan_batches([], 0)

    def test_config_hash_tracks_content(self, tmp_path):
        a = _fleet_config(tmp_path / "q")
        b = _fleet_config(tmp_path / "q")
        c = _fleet_config(tmp_path / "q", seeds=(1,))
        assert config_hash(a) == config_hash(b)
        assert config_hash(a) != config_hash(c)

    def test_fleet_plan_submits_and_records(self, tmp_path):
        queue_dir = tmp_path / "q"
        config = _fleet_config(queue_dir)
        specs = config.expand()
        manifest = fleet_plan(config, queue_dir, batch_size=3)
        assert manifest["n_cells"] == len(specs)
        assert sum(b["submitted"] for b in manifest["batches"]) == len(specs)
        assert WorkQueue(queue_dir).counts()["pending"] == len(specs)
        hashes = [h for b in manifest["batches"] for h in b["hashes"]]
        assert hashes == [spec_hash(s) for s in specs]
        assert read_batch_manifest(queue_dir) == manifest
        assert batch_manifest_path(queue_dir).exists()
        # queue settings came from the config's executor_options
        queue = WorkQueue(queue_dir)
        assert queue.lease_timeout == 3.0 and queue.max_retries == 2

    def test_replan_same_config_is_idempotent(self, tmp_path):
        queue_dir = tmp_path / "q"
        config = _fleet_config(queue_dir)
        fleet_plan(config, queue_dir, batch_size=3)
        n = WorkQueue(queue_dir).counts()["pending"]
        again = fleet_plan(config, queue_dir, batch_size=3)
        assert WorkQueue(queue_dir).counts()["pending"] == n  # no dupes
        assert sum(b["already_queued"] for b in again["batches"]) == n
        assert sum(b["submitted"] for b in again["batches"]) == 0

    def test_replan_different_config_refused_unless_forced(self, tmp_path):
        queue_dir = tmp_path / "q"
        fleet_plan(_fleet_config(queue_dir), queue_dir)
        other = _fleet_config(queue_dir, seeds=(7,))
        with pytest.raises(ValueError, match="--force"):
            fleet_plan(other, queue_dir)
        manifest = fleet_plan(other, queue_dir, force=True)
        assert manifest["config_hash"] == config_hash(other)

    def test_dry_run_writes_manifest_submits_nothing(self, tmp_path):
        queue_dir = tmp_path / "q"
        manifest = fleet_plan(_fleet_config(queue_dir), queue_dir,
                              submit=False)
        assert manifest["submitted"] is False
        assert WorkQueue(queue_dir).counts()["pending"] == 0
        assert read_batch_manifest(queue_dir)["n_cells"] > 0

    def test_planned_specs_recovers_cells_from_manifest(self, tmp_path):
        queue_dir = tmp_path / "q"
        config = _fleet_config(queue_dir)
        manifest = fleet_plan(config, queue_dir)
        by_hash = planned_specs(manifest)
        assert set(by_hash) == {spec_hash(s) for s in config.expand()}
        for h, spec in by_hash.items():
            assert spec_hash(spec) == h


# -- verify -----------------------------------------------------------------

class TestFleetVerify:
    def _planned_and_drained(self, tmp_path, **config_kwargs):
        queue_dir = tmp_path / "q"
        config = _fleet_config(queue_dir, **config_kwargs)
        fleet_plan(config, queue_dir)
        _drain(queue_dir)
        return queue_dir, config

    def test_clean_after_drain(self, tmp_path):
        queue_dir, config = self._planned_and_drained(tmp_path)
        audit, repairs = verify_fleet(queue_dir)
        assert audit.clean, audit.problems()
        assert audit.done == len(config.expand())
        # baseline rows published by the worker are expected, not orphans
        assert audit.cached > audit.done - 1
        assert not any(repairs.values())

    def test_ghost_done_detected_and_repaired(self, tmp_path):
        queue_dir, config = self._planned_and_drained(tmp_path)
        h = spec_hash(config.expand()[0])
        (queue_dir / "cache" / h[:2] / f"{h}.json").unlink()
        audit, _ = verify_fleet(queue_dir)
        assert audit.ghost_done == [h] and not audit.clean
        audit, repairs = verify_fleet(queue_dir, retry=True)
        assert repairs["reenqueued"] == [h]
        assert WorkQueue(queue_dir).state(h) == "pending"
        _drain(queue_dir)
        final, _ = verify_fleet(queue_dir)
        assert final.clean, final.problems()

    @pytest.mark.parametrize("mode", ["garbage", "swap"])
    def test_corrupt_marker_detected_and_repaired(self, tmp_path, mode):
        queue_dir, config = self._planned_and_drained(tmp_path)
        h = spec_hash(config.expand()[1])
        corrupt_done_marker(queue_dir, h, mode=mode)
        audit, _ = verify_fleet(queue_dir)
        assert h in audit.corrupt_markers and not audit.clean
        # repair recovers the spec from the batch manifest and re-enqueues
        _, repairs = verify_fleet(queue_dir, retry=True)
        assert h in repairs["reenqueued"]
        _drain(queue_dir)
        final, _ = verify_fleet(queue_dir)
        assert final.clean, final.problems()

    def test_orphan_cache_entry_detected_and_removed(self, tmp_path):
        queue_dir, _ = self._planned_and_drained(tmp_path)
        cache = ResultCache(queue_dir / "cache")
        orphan = crashy_spec(cell="never-planned")
        # reuse a real published row's payload under the orphan's key
        some = next(cache._entries())
        row_payload = json.loads(some.read_text())["result"]
        from repro.experiment.results import PruningResult

        cache.put(orphan, PruningResult.from_dict(row_payload))
        oh = spec_hash(orphan)
        audit, _ = verify_fleet(queue_dir)
        assert audit.orphan_cache == [oh]
        _, repairs = verify_fleet(queue_dir, retry=True)
        assert repairs["removed_orphans"] == [oh]
        assert not cache.path_for(orphan).exists()
        final, _ = verify_fleet(queue_dir)
        assert final.clean, final.problems()

    def test_cache_mismatch_detected_and_repaired(self, tmp_path):
        queue_dir, config = self._planned_and_drained(tmp_path)
        spec = config.expand()[0]
        h = spec_hash(spec)
        path = queue_dir / "cache" / h[:2] / f"{h}.json"
        payload = json.loads(path.read_text())
        impostor = crashy_spec(cell="impostor")
        payload["spec"] = impostor.to_dict()
        path.write_text(json.dumps(payload, default=float))
        audit, _ = verify_fleet(queue_dir)
        assert audit.cache_mismatches == [h]
        # the marker at h claims a cache row for h — that claim is broken too
        assert h in audit.ghost_done
        _, repairs = verify_fleet(queue_dir, retry=True)
        assert h in repairs["removed_orphans"] and h in repairs["reenqueued"]
        _drain(queue_dir)
        final, _ = verify_fleet(queue_dir)
        assert final.clean, final.problems()

    def test_missing_planned_cell_resubmitted(self, tmp_path):
        queue_dir = tmp_path / "q"
        config = _fleet_config(queue_dir)
        fleet_plan(config, queue_dir)
        h = spec_hash(config.expand()[0])
        (queue_dir / "pending" / f"{h}.json").unlink()
        audit, _ = verify_fleet(queue_dir)
        assert audit.missing == [h]
        _, repairs = verify_fleet(queue_dir, retry=True)
        assert h in repairs["reenqueued"]
        assert WorkQueue(queue_dir).state(h) == "pending"

    def test_expired_lease_requeued(self, tmp_path):
        queue_dir = tmp_path / "q"
        config = _fleet_config(queue_dir, lease_timeout=1.0)
        fleet_plan(config, queue_dir)
        queue = WorkQueue(queue_dir)
        claim = queue.claim("doomed")
        past = time.time() - 60
        os.utime(queue.leased_dir / f"{claim.hash}.lease", (past, past))
        audit, _ = verify_fleet(queue_dir)
        assert audit.expired == [claim.hash]
        _, repairs = verify_fleet(queue_dir, retry=True)
        assert repairs["requeued_expired"] == [claim.hash]
        assert WorkQueue(queue_dir).state(claim.hash) == "pending"

    def test_quarantined_cells_reported_and_retried(self, tmp_path):
        queue_dir = tmp_path / "q"
        config = _fleet_config(queue_dir, behavior="raise", max_retries=0)
        fleet_plan(config, queue_dir)
        _drain(queue_dir)
        queue = WorkQueue(queue_dir)
        assert queue.counts()["failed"] > 0
        audit, _ = verify_fleet(queue_dir)
        assert sorted(audit.failed) == audit.failed and audit.failed
        _, repairs = verify_fleet(queue_dir, retry=True)
        assert sorted(repairs["retried_failed"]) == audit.failed
        assert WorkQueue(queue_dir).counts()["failed"] == 0

    def test_store_mirror_lag_reported(self, tmp_path):
        queue_dir, config = self._planned_and_drained(tmp_path)
        store_dir = tmp_path / "store"
        audit, _ = verify_fleet(queue_dir, store_dir=store_dir)
        assert len(audit.store_missing) == len(config.expand())
        # ingest the cache into the store: the lag disappears
        from repro.store import ColumnStore

        ColumnStore(store_dir).ingest(queue_dir / "cache")
        audit, _ = verify_fleet(queue_dir, store_dir=store_dir)
        assert audit.store_missing == [] and audit.clean

    def test_unplanned_queue_still_audits(self, tmp_path):
        """No batch manifest: done-vs-cache checks still run (plan=0)."""
        queue_dir = tmp_path / "q"
        queue = WorkQueue(queue_dir)
        spec = crashy_spec(cell="unplanned")
        queue.submit(spec)
        _drain(queue_dir)
        audit, _ = verify_fleet(queue_dir)
        assert audit.planned == 0 and audit.clean
        h = spec_hash(spec)
        (queue_dir / "cache" / h[:2] / f"{h}.json").unlink()
        audit, _ = verify_fleet(queue_dir)
        assert audit.ghost_done == [h]
        # the spec still rides in the done marker, so repair works
        _, repairs = verify_fleet(queue_dir, retry=True)
        assert repairs["reenqueued"] == [h]


# -- watch ------------------------------------------------------------------

class TestWatch:
    def test_state_throughput_and_eta(self):
        state = WatchState(window=60.0)
        state.observe(0, now=1000.0)
        assert state.throughput() is None and state.eta(10) is None
        state.observe(30, now=1030.0)
        assert state.throughput() == pytest.approx(1.0)
        assert state.eta(45) == pytest.approx(45.0)

    def test_state_window_trims_old_samples(self):
        state = WatchState(window=10.0)
        for i in range(20):
            state.observe(i * 5, now=1000.0 + i)
        # rate over the window only (5 cells/s), not since the start
        assert state.throughput() == pytest.approx(5.0)
        assert state.samples[0][0] >= 1000.0 + 19 - 11

    def test_render_includes_counts_bar_workers_and_failures(self):
        stats = {
            "root": "/shared/q",
            "lease_timeout": 30.0,
            "max_retries": 2,
            "counts": {"pending": 5, "leased": 2, "done": 13, "failed": 1},
            "leases": [],
            "workers": [
                {"worker": "a-w0", "cells": 1, "freshest_beat": 2.0,
                 "expired": False},
                {"worker": "b-w1", "cells": 1, "freshest_beat": 99.0,
                 "expired": True},
            ],
            "failed": [{"hash": "f" * 16, "attempts": 3,
                        "error": "CrashyError: injected"}],
        }
        state = WatchState()
        state.observe(3, now=1000.0)
        state.observe(13, now=1010.0)
        text = render_watch(stats, state,
                            fleet={"launches": 2, "workers": [
                                {"worker_id": "a-w0", "pid": os.getpid()},
                                {"worker_id": "b-w1", "pid": 2 ** 22 + 1},
                            ]})
        assert "/shared/q" in text
        assert "pending     5" in text and "done    13" in text
        assert "61.9% of 21" in text
        assert "a-w0" in text and "EXPIRED" in text
        assert "throughput 60.0 cells/min" in text
        assert "eta 7s" in text  # 7 remaining at 1 cell/s
        assert "quarantined (1):" in text and "CrashyError" in text
        assert "fleet: 2 launched, 1 running, 1 exited" in text

    def test_render_on_empty_queue_stats(self, tmp_path):
        stats = WorkQueue(tmp_path / "q").stats()
        text = render_watch(stats, WatchState())
        assert "pending     0" in text

    def test_watch_queue_exits_when_drained(self, tmp_path):
        queue_dir = tmp_path / "q"
        fleet_plan(_fleet_config(queue_dir), queue_dir)
        _drain(queue_dir)
        seen = []
        code = watch_queue(queue_dir, interval=0.01, clear=False,
                           out=seen.append)
        assert code == 0
        assert len(seen) == 1 and "100.0%" in seen[0]
        assert "\x1b" not in seen[0]  # --no-clear: no terminal escapes

    def test_watch_queue_iterations_cap_and_failed_exit_code(self, tmp_path):
        queue_dir = tmp_path / "q"
        config = _fleet_config(queue_dir, behavior="raise", max_retries=0)
        fleet_plan(config, queue_dir)
        _drain(queue_dir)  # everything quarantined
        seen = []
        code = watch_queue(queue_dir, interval=0.01, iterations=2,
                           clear=False, out=seen.append)
        assert code == 1  # quarantined cells surface in the exit code
        assert len(seen) == 1  # drained on the first refresh


# -- CLI --------------------------------------------------------------------

class TestFleetCLI:
    def test_plan_verify_watch_roundtrip(self, tmp_path, capsys):
        queue_dir = tmp_path / "q"
        config = _fleet_config(queue_dir)
        config_path = config.save(tmp_path / "sweep.json")
        assert cli_main(["fleet", "plan", str(config_path),
                         str(queue_dir)]) == 0
        out = capsys.readouterr().out
        assert "planned" in out and "batch" in out
        # verify on the un-drained queue: clean (nothing done yet)
        assert cli_main(["fleet", "verify", str(queue_dir)]) == 0
        _drain(queue_dir)
        assert cli_main(["queue", "watch", str(queue_dir), "--no-clear",
                         "--iterations", "1"]) == 0
        out = capsys.readouterr().out
        assert "100.0%" in out
        assert cli_main(["fleet", "verify", str(queue_dir)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_verify_json_and_exit_code_on_problems(self, tmp_path, capsys):
        queue_dir = tmp_path / "q"
        config = _fleet_config(queue_dir)
        fleet_plan(config, queue_dir)
        _drain(queue_dir)
        h = spec_hash(config.expand()[0])
        (queue_dir / "cache" / h[:2] / f"{h}.json").unlink()
        assert cli_main(["fleet", "verify", str(queue_dir), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["audit"]["ghost_done"] == [h]
        assert payload["audit"]["clean"] is False
        assert cli_main(["fleet", "verify", str(queue_dir), "--retry"]) == 1
        assert "reenqueued x1" in capsys.readouterr().out
        _drain(queue_dir)
        assert cli_main(["fleet", "verify", str(queue_dir)]) == 0

    def test_plan_conflict_and_launch_errors_exit_2(self, tmp_path, capsys):
        queue_dir = tmp_path / "q"
        config = _fleet_config(queue_dir)
        config_path = config.save(tmp_path / "sweep.json")
        assert cli_main(["fleet", "plan", str(config_path),
                         str(queue_dir)]) == 0
        other = _fleet_config(queue_dir, seeds=(9,))
        other_path = other.save(tmp_path / "other.json")
        assert cli_main(["fleet", "plan", str(other_path),
                         str(queue_dir)]) == 2
        assert "--force" in capsys.readouterr().err
        assert cli_main(["fleet", "plan", str(other_path), str(queue_dir),
                         "--force"]) == 0
        hosts = write_hosts_file(tmp_path / "hosts.txt", ["local workers=0"])
        assert cli_main(["fleet", "launch", str(hosts), str(queue_dir)]) == 2
        assert cli_main(["fleet", "launch", str(tmp_path / "absent.txt"),
                         str(queue_dir)]) == 2
        good = write_hosts_file(tmp_path / "good.txt", ["local"])
        assert cli_main(["fleet", "launch", str(good),
                         str(tmp_path / "not-a-queue")]) == 2

    def test_verify_missing_queue_exits_2(self, tmp_path, capsys):
        assert cli_main(["fleet", "verify", str(tmp_path / "absent")]) == 2
        assert "no work queue" in capsys.readouterr().err


# -- fault-injection battery ------------------------------------------------

def _popen(argv, tmp_path, **kwargs):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO / "src"), str(REPO / "tests")]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    env["REPRO_ARTIFACTS"] = str(tmp_path / "artifacts")
    return subprocess.Popen(
        [sys.executable, "-m", "repro"] + argv,
        env=env, cwd=str(REPO),
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        **kwargs,
    )


def _wait_for(predicate, timeout: float, interval: float = 0.2) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


@pytest.mark.slow
class TestFleetFaultInjection:
    """The headline battery: launched workers killed mid-batch, the
    launcher itself SIGKILLed, a done marker corrupted — and
    ``fleet verify --retry`` converges to SerialExecutor byte-equality."""

    def test_fleet_survives_kills_and_corruption_matches_serial(
            self, tmp_path):
        queue_dir = tmp_path / "q"
        config = _fleet_config(
            queue_dir,
            strategies=("global_weight", "random"),
            compressions=(2, 3, 4, 5),
            seeds=(0, 1),
            cell="battery",
            sleep=0.2,  # slow cells down so kills land mid-batch
            lease_timeout=3.0,
        )
        config_path = config.save(tmp_path / "sweep.json")
        specs = config.expand()
        assert len(specs) >= 12
        hosts = write_hosts_file(tmp_path / "hosts.txt", ["local workers=2"])

        plan = _popen(["fleet", "plan", str(config_path), str(queue_dir),
                       "--batch-size", "6"], tmp_path)
        stdout, _ = plan.communicate(timeout=120)
        assert plan.returncode == 0, stdout
        assert WorkQueue(queue_dir).counts()["pending"] == len(specs)

        # launch 2 workers, then SIGKILL the launcher itself: the workers
        # run in their own sessions and must keep draining the queue
        launcher = _popen(["fleet", "launch", str(hosts), str(queue_dir),
                           "--import", "exp_fixtures",
                           "--idle-timeout", "20"], tmp_path)
        assert _wait_for(
            lambda: (read_fleet_manifest(queue_dir) or {}).get("workers"),
            timeout=60,
        ), "launcher never wrote the fleet manifest"
        launcher.send_signal(signal.SIGKILL)
        launcher.communicate(timeout=60)

        manifest = read_fleet_manifest(queue_dir)
        pids = [w["pid"] for w in manifest["workers"]]
        assert len(pids) == 2
        done_dir = queue_dir / "done"
        try:
            # let the fleet make progress, then SIGKILL one worker mid-batch
            assert _wait_for(
                lambda: len(list(done_dir.glob("*.json"))) >= 2, timeout=120
            ), "fleet made no progress after the launcher died"
            os.kill(pids[0], signal.SIGKILL)

            # the survivor drains the rest (recovering the dead worker's
            # expired lease along the way)
            assert _wait_for(
                lambda: WorkQueue(queue_dir).counts()["pending"]
                + WorkQueue(queue_dir).counts()["leased"] == 0,
                timeout=240,
            ), f"queue never drained: {WorkQueue(queue_dir).counts()}"
        finally:
            for pid in pids:
                try:
                    os.kill(pid, signal.SIGKILL)
                except OSError:
                    pass

        counts = WorkQueue(queue_dir).counts()
        assert counts["done"] == len(specs) and counts["failed"] == 0

        # injected storage faults: one marker corrupted, one cache row gone
        done_hashes = sorted(p.stem for p in done_dir.glob("*.json"))
        corrupt_done_marker(queue_dir, done_hashes[0], mode="garbage")
        ghost = done_hashes[1]
        (queue_dir / "cache" / ghost[:2] / f"{ghost}.json").unlink()

        verify = _popen(["fleet", "verify", str(queue_dir), "--retry"],
                        tmp_path)
        stdout, _ = verify.communicate(timeout=120)
        assert verify.returncode == 1, stdout  # problems found (and repaired)
        assert "corrupt_markers" in stdout and "ghost_done" in stdout
        assert WorkQueue(queue_dir).counts()["pending"] == 2

        # a relaunched fleet re-runs exactly the repaired cells
        relaunch = _popen(["fleet", "launch", str(hosts), str(queue_dir),
                           "--import", "exp_fixtures",
                           "--idle-timeout", "5"], tmp_path)
        stdout, _ = relaunch.communicate(timeout=120)
        assert relaunch.returncode == 0, stdout
        pids = [w["pid"] for w in read_fleet_manifest(queue_dir)["workers"]]
        try:
            assert _wait_for(
                lambda: WorkQueue(queue_dir).counts()["done"] == len(specs)
                and WorkQueue(queue_dir).counts()["leased"] == 0,
                timeout=240,
            ), f"repaired cells never re-ran: {WorkQueue(queue_dir).counts()}"
        finally:
            for pid in pids:
                try:
                    os.kill(pid, signal.SIGKILL)
                except OSError:
                    pass

        final = _popen(["fleet", "verify", str(queue_dir)], tmp_path)
        stdout, _ = final.communicate(timeout=120)
        assert final.returncode == 0, stdout

        # convergence: the queue's assembled table is byte-equal to a
        # fresh SerialExecutor run of the same grid
        rows = QueueExecutor(
            queue_dir=str(queue_dir), local_workers=0,
            cache=ResultCache(queue_dir / "cache"), wait_timeout=60.0,
        ).run(specs)
        produced = assemble_results(specs, rows, config.strategies)
        serial_rows = SerialExecutor(
            cache=ResultCache(tmp_path / "ref")).run(specs)
        reference = assemble_results(specs, serial_rows, config.strategies)
        assert [r.to_dict() for r in produced] == [
            r.to_dict() for r in reference
        ]
