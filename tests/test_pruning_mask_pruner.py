"""Unit tests for MaskRegistry, Pruner bookkeeping and schedules."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.autograd import Tensor, cross_entropy
from repro.models import create_model
from repro.optim import SGD, Adam
from repro.pruning import (
    GlobalMagWeight,
    MaskRegistry,
    Pruner,
    compression_to_sparsity,
    fraction_to_keep_for_compression,
    iterative_linear,
    one_shot,
    polynomial_decay,
    sparsity_to_compression,
)


class TestMaskRegistry:
    def test_set_mask_validates_name(self, tiny_resnet):
        reg = MaskRegistry(tiny_resnet)
        with pytest.raises(KeyError):
            reg.set_mask("nope.weight", np.ones(3))

    def test_set_mask_validates_shape(self, tiny_resnet):
        reg = MaskRegistry(tiny_resnet)
        with pytest.raises(ValueError):
            reg.set_mask("stem.weight", np.ones((1, 1)))

    def test_set_mask_validates_binary(self, tiny_resnet):
        reg = MaskRegistry(tiny_resnet)
        bad = np.full(tiny_resnet.stem.weight.shape, 0.5, dtype=np.float32)
        with pytest.raises(ValueError):
            reg.set_mask("stem.weight", bad)

    def test_apply_zeroes_masked(self, tiny_resnet):
        reg = MaskRegistry(tiny_resnet)
        mask = np.ones(tiny_resnet.stem.weight.shape, dtype=np.float32)
        mask[0] = 0
        reg.set_mask("stem.weight", mask)
        reg.apply()
        assert np.all(tiny_resnet.stem.weight.data[0] == 0)
        reg.validate()  # must not raise

    def test_intersect_is_monotonic(self, tiny_resnet):
        reg = MaskRegistry(tiny_resnet)
        shape = tiny_resnet.stem.weight.shape
        m1 = np.ones(shape, dtype=np.float32)
        m1.reshape(-1)[::2] = 0
        m2 = np.ones(shape, dtype=np.float32)
        m2.reshape(-1)[::3] = 0
        reg.intersect({"stem.weight": m1})
        reg.intersect({"stem.weight": m2})
        want = m1 * m2
        np.testing.assert_array_equal(reg.masks["stem.weight"], want)

    def test_sparsity_and_counts(self, tiny_resnet):
        reg = MaskRegistry(tiny_resnet)
        shape = tiny_resnet.stem.weight.shape
        mask = np.zeros(shape, dtype=np.float32)
        mask.reshape(-1)[: mask.size // 2] = 1
        reg.set_mask("stem.weight", mask)
        assert reg.sparsity() == pytest.approx(0.5, abs=0.01)
        assert reg.total_kept() == int(mask.sum())
        assert "stem.weight" in reg
        assert len(reg) == 1

    def test_validate_catches_resurrection(self, tiny_resnet):
        reg = MaskRegistry(tiny_resnet)
        mask = np.zeros(tiny_resnet.stem.weight.shape, dtype=np.float32)
        mask.reshape(-1)[0] = 1
        reg.set_mask("stem.weight", mask)
        reg.apply()
        tiny_resnet.stem.weight.data += 1.0  # corrupt
        with pytest.raises(AssertionError):
            reg.validate()

    def test_optimizer_cannot_resurrect_with_momentum(self):
        # momentum would push mass back into pruned weights without the hook
        m = create_model("lenet-300-100", input_size=8, in_channels=1)
        pruner = Pruner(m, GlobalMagWeight())
        reg = pruner.prune(4)
        opt = SGD(list(m.parameters()), lr=0.1, momentum=0.9)
        reg.attach(opt)
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(size=(8, 1, 8, 8)).astype(np.float32))
        y = rng.integers(0, 10, 8)
        for _ in range(5):
            loss = cross_entropy(m(x), y)
            m.zero_grad()
            loss.backward()
            opt.step()
        reg.validate()  # masks still enforced after momentum steps

    def test_adam_cannot_resurrect(self):
        m = create_model("lenet-300-100", input_size=8, in_channels=1)
        pruner = Pruner(m, GlobalMagWeight())
        reg = pruner.prune(8)
        opt = Adam(list(m.parameters()), lr=1e-2)
        reg.attach(opt)
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(size=(8, 1, 8, 8)).astype(np.float32))
        y = rng.integers(0, 10, 8)
        for _ in range(3):
            loss = cross_entropy(m(x), y)
            m.zero_grad()
            loss.backward()
            opt.step()
        reg.validate()

    def test_state_dict_copies(self, tiny_resnet):
        reg = MaskRegistry(tiny_resnet)
        mask = np.ones(tiny_resnet.stem.weight.shape, dtype=np.float32)
        reg.set_mask("stem.weight", mask)
        sd = reg.state_dict()
        sd["stem.weight"][...] = 0
        assert reg.masks["stem.weight"].sum() > 0


class TestFractionMath:
    def test_identity_at_compression_one(self):
        assert fraction_to_keep_for_compression(1.0, 1000, 900) == 1.0

    def test_accounts_for_nonprunable(self):
        # total 1000, prunable 800, nonprunable 200; target c=2 -> budget 300
        frac = fraction_to_keep_for_compression(2.0, 1000, 800)
        assert frac == pytest.approx(300 / 800)

    def test_unreachable_compression_raises(self):
        with pytest.raises(ValueError):
            fraction_to_keep_for_compression(10.0, 1000, 200)

    def test_compression_below_one_rejected(self):
        with pytest.raises(ValueError):
            fraction_to_keep_for_compression(0.5, 100, 50)

    @given(c=st.floats(1.0, 20.0))
    @settings(max_examples=30, deadline=None)
    def test_pruner_hits_target_property(self, c):
        m = create_model("lenet-300-100", input_size=8, in_channels=1)
        pruner = Pruner(m, GlobalMagWeight())
        if c > pruner.achievable_compression():
            return
        pruner.prune(c)
        assert pruner.actual_compression() == pytest.approx(c, rel=0.02)

    def test_achievable_compression_bound(self, tiny_resnet):
        pruner = Pruner(tiny_resnet, GlobalMagWeight())
        bound = pruner.achievable_compression()
        with pytest.raises(ValueError):
            pruner.prune(bound * 1.5)

    def test_prune_to_fraction(self, tiny_resnet):
        pruner = Pruner(tiny_resnet, GlobalMagWeight())
        reg = pruner.prune_to_fraction(0.5)
        assert reg.sparsity() == pytest.approx(0.5, abs=0.01)

    def test_actual_compression_everything_pruned_is_inf(self):
        """Regression: all-zero masks used to raise ZeroDivisionError."""
        m = create_model("lenet-300-100", input_size=8, in_channels=1)
        pruner = Pruner(m, GlobalMagWeight())
        pruner.registry.update(
            {name: np.zeros_like(p.data) for name, p in m.named_parameters()}
        )
        pruner.registry.apply()
        assert pruner.actual_compression() == float("inf")


class TestSchedules:
    def test_one_shot(self):
        assert one_shot(8.0) == [8.0]
        with pytest.raises(ValueError):
            one_shot(0.5)

    def test_iterative_reaches_target_monotonically(self):
        steps = iterative_linear(16.0, 4)
        assert len(steps) == 4
        assert steps[-1] == pytest.approx(16.0)
        assert all(b > a for a, b in zip(steps, steps[1:]))

    def test_iterative_linear_in_sparsity(self):
        steps = iterative_linear(4.0, 3)
        sparsities = [compression_to_sparsity(c) for c in steps]
        diffs = np.diff(sparsities)
        np.testing.assert_allclose(diffs, diffs[0], rtol=1e-6)

    def test_polynomial_front_loads_pruning(self):
        steps = polynomial_decay(16.0, 4)
        sparsities = [compression_to_sparsity(c) for c in steps]
        diffs = np.diff(sparsities)
        assert all(b < a for a, b in zip(diffs, diffs[1:]))  # decelerating
        assert steps[-1] == pytest.approx(16.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            iterative_linear(4.0, 0)
        with pytest.raises(ValueError):
            polynomial_decay(4.0, 0)

    @given(c=st.floats(1.0, 100.0))
    @settings(max_examples=40, deadline=None)
    def test_sparsity_compression_roundtrip(self, c):
        assert sparsity_to_compression(compression_to_sparsity(c)) == pytest.approx(c, rel=1e-9)

    def test_conversion_validation(self):
        with pytest.raises(ValueError):
            compression_to_sparsity(0.9)
        with pytest.raises(ValueError):
            sparsity_to_compression(1.0)
