"""Integration: a miniature Figure-7-style sweep reproducing the paper's
qualitative findings end-to-end through the public API."""

import numpy as np
import pytest

from repro.experiment import (
    OptimizerConfig,
    TrainConfig,
    aggregate_curve,
    run_sweep,
)
from repro.meta import audit_results
from repro.plotting import curves_from_results, export_curves_csv, render_curves


@pytest.fixture(scope="module")
def sweep():
    """2 strategies x {1,4,8}x x 2 seeds on a tiny LeNet-5/CIFAR-surrogate."""
    pre = TrainConfig(epochs=5, batch_size=32,
                      optimizer=OptimizerConfig("adam", 2e-3),
                      early_stop_patience=None)
    ft = TrainConfig(epochs=2, batch_size=32,
                     optimizer=OptimizerConfig("adam", 3e-4),
                     early_stop_patience=None)
    return run_sweep(
        model="lenet-5",
        dataset="cifar10",
        strategies=["global_weight", "random"],
        compressions=[1, 4, 8],
        seeds=[0, 1],
        model_kwargs=dict(input_size=16, in_channels=3),
        dataset_kwargs=dict(n_train=512, n_val=192, size=16, noise=0.45),
        pretrain=pre,
        finetune=ft,
    )


class TestSweepStructure:
    def test_full_matrix_produced(self, sweep):
        # 2 strategies x 3 compressions x 2 seeds
        assert len(sweep) == 12
        assert sweep.strategies() == ["global_weight", "random"]
        assert sweep.compressions() == [1.0, 4.0, 8.0]
        assert sweep.seeds() == [0, 1]

    def test_baseline_shared_across_strategies(self, sweep):
        b_gw = sweep.filter(strategy="global_weight", compression=1.0, seed=0)
        b_rd = sweep.filter(strategy="random", compression=1.0, seed=0)
        assert b_gw.results[0].top1 == b_rd.results[0].top1

    def test_same_initial_model_everywhere(self, sweep):
        keys = {r.pretrained_key for r in sweep}
        assert len(keys) == 1  # §7.3: one shared checkpoint

    def test_compressions_hit_targets(self, sweep):
        for r in sweep:
            assert r.actual_compression == pytest.approx(r.compression, rel=0.03)


class TestPaperFindings:
    def test_magnitude_beats_random_at_high_compression(self, sweep):
        """§3.2: 'many pruning methods outperform random pruning' —
        clearest at large amounts of pruning."""
        gw = aggregate_curve(sweep.filter(strategy="global_weight", compression=4.0))
        rd = aggregate_curve(sweep.filter(strategy="random", compression=4.0))
        assert gw[0].mean > rd[0].mean

    def test_accuracy_degrades_with_compression(self, sweep):
        gw = {p.x: p.mean for p in aggregate_curve(sweep.filter(strategy="global_weight"))}
        assert gw[8.0] <= gw[1.0] + 0.02

    def test_tradeoff_exists(self, sweep):
        """§4.3: 'the existence of a tradeoff between efficiency and
        accuracy' is the one consistent trend."""
        rd = {p.x: p.mean for p in aggregate_curve(sweep.filter(strategy="random"))}
        assert rd[8.0] < rd[1.0]


class TestReportingPipeline:
    def test_curves_and_rendering(self, sweep):
        curves = curves_from_results(list(sweep))
        out = render_curves(curves, title="mini sweep")
        assert "global_weight" in out

    def test_csv_export(self, sweep, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_ARTIFACTS", str(tmp_path))
        curves = curves_from_results(list(sweep))
        path = export_curves_csv(curves, "integration_mini")
        assert path.exists()

    def test_checklist_audit_mostly_passes(self, sweep):
        items = audit_results(sweep)
        # this mini-sweep intentionally violates two items (only 3 operating
        # points, 2 seeds); everything else must pass
        failed = [i.item for i in items if not i.passed]
        assert len(failed) <= 2, failed
        passed = [i.item for i in items if i.passed]
        assert any("magnitude" in p for p in passed)
        assert any("random" in p for p in passed)

    def test_persistence_roundtrip(self, sweep, tmp_path):
        from repro.experiment import ResultSet

        path = tmp_path / "sweep.json"
        sweep.save(path)
        again = ResultSet.load(path)
        assert len(again) == len(sweep)
        assert again.strategies() == sweep.strategies()
