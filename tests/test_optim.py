"""Unit tests for optimizers, LR schedules, early stopping."""

import numpy as np
import pytest

from repro.nn import Parameter
from repro.optim import (
    SGD,
    Adam,
    CosineAnnealingLR,
    EarlyStopping,
    FixedLR,
    StepLR,
)


def make_param(values):
    p = Parameter(np.asarray(values, dtype=np.float32))
    return p


class TestSGD:
    def test_vanilla_update(self):
        p = make_param([1.0])
        p.grad = np.array([0.5], dtype=np.float32)
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [0.95])

    def test_skips_none_grad(self):
        p = make_param([1.0])
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [1.0])

    def test_momentum_accumulates(self):
        p = make_param([0.0])
        opt = SGD([p], lr=1.0, momentum=0.9)
        p.grad = np.array([1.0], dtype=np.float32)
        opt.step()  # v=1, p=-1
        opt.step()  # v=1.9, p=-2.9
        np.testing.assert_allclose(p.data, [-2.9], rtol=1e-6)

    def test_nesterov_differs_from_plain(self):
        p1, p2 = make_param([0.0]), make_param([0.0])
        o1 = SGD([p1], lr=1.0, momentum=0.9)
        o2 = SGD([p2], lr=1.0, momentum=0.9, nesterov=True)
        for o, p in ((o1, p1), (o2, p2)):
            p.grad = np.array([1.0], dtype=np.float32)
            o.step()
        assert p2.data[0] < p1.data[0]  # nesterov looks ahead: bigger step

    def test_nesterov_requires_momentum(self):
        with pytest.raises(ValueError):
            SGD([make_param([0.0])], lr=0.1, nesterov=True)

    def test_weight_decay(self):
        p = make_param([1.0])
        p.grad = np.array([0.0], dtype=np.float32)
        SGD([p], lr=0.1, weight_decay=0.5).step()
        np.testing.assert_allclose(p.data, [0.95])

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_nonpositive_lr_rejected(self):
        with pytest.raises(ValueError):
            SGD([make_param([0.0])], lr=0.0)

    def test_post_step_hook_runs(self):
        p = make_param([1.0])
        p.grad = np.array([1.0], dtype=np.float32)
        opt = SGD([p], lr=0.1)
        calls = []
        opt.add_post_step_hook(lambda: calls.append(1))
        opt.step()
        assert calls == [1]

    def test_zero_grad(self):
        p = make_param([1.0])
        p.grad = np.array([1.0], dtype=np.float32)
        opt = SGD([p], lr=0.1)
        opt.zero_grad()
        assert p.grad is None


class TestAdam:
    def test_first_step_size_is_lr(self):
        # With bias correction, the very first Adam step is ~lr in the
        # direction of the gradient sign.
        p = make_param([0.0])
        p.grad = np.array([3.0], dtype=np.float32)
        Adam([p], lr=0.01).step()
        np.testing.assert_allclose(p.data, [-0.01], rtol=1e-4)

    def test_adapts_to_gradient_scale(self):
        # Two params with different gradient magnitudes take similar steps.
        p1, p2 = make_param([0.0]), make_param([0.0])
        opt = Adam([p1, p2], lr=0.1)
        for _ in range(10):
            p1.grad = np.array([100.0], dtype=np.float32)
            p2.grad = np.array([0.01], dtype=np.float32)
            opt.step()
        assert abs(p1.data[0] - p2.data[0]) < 0.05

    def test_converges_on_quadratic(self):
        p = make_param([5.0])
        opt = Adam([p], lr=0.3)
        for _ in range(200):
            p.grad = 2 * p.data  # d/dx x^2
            opt.step()
        assert abs(p.data[0]) < 0.1

    def test_weight_decay_shrinks(self):
        p = make_param([1.0])
        opt = Adam([p], lr=0.01, weight_decay=1.0)
        for _ in range(5):
            p.grad = np.array([0.0], dtype=np.float32)
            opt.step()
        assert p.data[0] < 1.0


class TestSchedulers:
    def _opt(self):
        return SGD([make_param([0.0])], lr=1.0)

    def test_fixed(self):
        opt = self._opt()
        sched = FixedLR(opt)
        for _ in range(5):
            sched.step()
        assert opt.lr == 1.0

    def test_step_decay(self):
        opt = self._opt()
        sched = StepLR(opt, step_size=2, gamma=0.1)
        lrs = []
        for _ in range(4):
            sched.step()
            lrs.append(opt.lr)
        np.testing.assert_allclose(lrs, [1.0, 0.1, 0.1, 0.01], rtol=1e-6)

    def test_cosine_endpoints(self):
        opt = self._opt()
        sched = CosineAnnealingLR(opt, t_max=10, eta_min=0.0)
        for _ in range(10):
            sched.step()
        assert opt.lr == pytest.approx(0.0, abs=1e-9)

    def test_cosine_monotone_decreasing(self):
        opt = self._opt()
        sched = CosineAnnealingLR(opt, t_max=8)
        prev = opt.lr
        for _ in range(8):
            sched.step()
            assert opt.lr <= prev + 1e-12
            prev = opt.lr

    def test_step_validation(self):
        with pytest.raises(ValueError):
            StepLR(self._opt(), step_size=0)
        with pytest.raises(ValueError):
            CosineAnnealingLR(self._opt(), t_max=0)


class TestEarlyStopping:
    def test_stops_after_patience(self):
        es = EarlyStopping(patience=2)
        assert not es.update(0.8, 0)
        assert not es.update(0.7, 1)  # bad 1
        assert es.update(0.6, 2)  # bad 2 -> stop
        assert es.stopped

    def test_improvement_resets(self):
        es = EarlyStopping(patience=2)
        es.update(0.5, 0)
        es.update(0.4, 1)
        es.update(0.9, 2)  # improvement
        assert es.num_bad_epochs == 0
        assert es.best == 0.9
        assert es.best_epoch == 2

    def test_min_delta(self):
        es = EarlyStopping(patience=1, min_delta=0.05)
        es.update(0.5, 0)
        assert es.update(0.52, 1)  # below min_delta: counts as bad

    def test_patience_validation(self):
        with pytest.raises(ValueError):
            EarlyStopping(patience=0)
