"""SweepConfig / ExperimentSpec round-trip and schedule-axis tests.

Acceptance criterion: ``SweepConfig.from_dict(cfg.to_dict())`` reproduces
byte-identical ``spec_hash``es for every expanded cell, so a JSON sweep
file is a complete, replayable experiment description.
"""

import json

import pytest

from repro.experiment import (
    BASELINE_STRATEGY,
    ExperimentSpec,
    OptimizerConfig,
    SweepConfig,
    TrainConfig,
    baseline_spec_for,
    expand_sweep,
    spec_hash,
)


def tiny_config(**overrides):
    base = dict(
        model="lenet-300-100",
        dataset="cifar10",
        strategies=("global_weight", "random"),
        compressions=(1, 2, 4),
        seeds=(0, 1),
        model_kwargs=dict(input_size=8, in_channels=3),
        dataset_kwargs=dict(n_train=128, n_val=64, size=8, noise=0.5),
        pretrain=TrainConfig(epochs=1, batch_size=32,
                             optimizer=OptimizerConfig("adam", 2e-3),
                             early_stop_patience=None),
        finetune=TrainConfig(epochs=1, batch_size=32,
                             optimizer=OptimizerConfig("adam", 3e-4),
                             early_stop_patience=None),
    )
    base.update(overrides)
    return SweepConfig(**base)


class TestSweepConfigRoundTrip:
    def test_dict_round_trip_equality(self):
        cfg = tiny_config()
        assert SweepConfig.from_dict(cfg.to_dict()) == cfg

    def test_json_round_trip_equality(self):
        cfg = tiny_config(schedule="iterative", schedule_steps=3, workers=2,
                          executor="parallel")
        again = SweepConfig.from_json(cfg.to_json())
        assert again == cfg
        # and the serialized form itself is stable
        assert again.to_json() == cfg.to_json()

    def test_round_trip_preserves_spec_hashes(self):
        cfg = tiny_config()
        again = SweepConfig.from_dict(json.loads(json.dumps(cfg.to_dict())))
        hashes = [spec_hash(s) for s in cfg.expand()]
        assert [spec_hash(s) for s in again.expand()] == hashes

    def test_save_load(self, tmp_path):
        cfg = tiny_config()
        path = cfg.save(tmp_path / "sweep.json")
        assert SweepConfig.load(path) == cfg

    def test_lists_normalized_to_tuples(self):
        cfg = SweepConfig(model="m", dataset="d",
                          strategies=["a"], compressions=[1, 2], seeds=[0])
        assert cfg.strategies == ("a",)
        assert cfg.compressions == (1.0, 2.0)
        assert cfg.seeds == (0,)

    def test_unknown_keys_rejected(self):
        payload = tiny_config().to_dict()
        payload["strategy"] = "typo"
        with pytest.raises(ValueError, match="strategy"):
            SweepConfig.from_dict(payload)

    def test_future_schema_version_rejected(self):
        payload = tiny_config().to_dict()
        payload["schema_version"] = 999
        with pytest.raises(ValueError, match="newer"):
            SweepConfig.from_dict(payload)

    def test_missing_optional_fields_get_defaults(self):
        cfg = SweepConfig.from_dict(
            {"model": "m", "dataset": "d", "strategies": ["s"]}
        )
        assert cfg.schedule == "one_shot"
        assert cfg.executor == "serial"
        assert cfg.schema_version == 1

    def test_empty_strategies_rejected(self):
        with pytest.raises(ValueError):
            SweepConfig(model="m", dataset="d", strategies=())

    def test_invalid_axes_rejected(self):
        with pytest.raises(ValueError):
            tiny_config(schedule_steps=0)
        with pytest.raises(ValueError):
            tiny_config(workers=-1)

    def test_unknown_schedule_rejected_at_load_time(self):
        """A schedule typo must fail when the config is built, not after
        minutes of pretraining when the first pruned cell runs."""
        with pytest.raises(ValueError, match="unknown schedule"):
            tiny_config(schedule="itertive")


class TestConfigExpansion:
    def test_expand_matches_expand_sweep(self):
        cfg = tiny_config()
        direct = expand_sweep(
            model=cfg.model,
            dataset=cfg.dataset,
            strategies=cfg.strategies,
            compressions=cfg.compressions,
            seeds=cfg.seeds,
            model_kwargs=dict(cfg.model_kwargs),
            dataset_kwargs=dict(cfg.dataset_kwargs),
            pretrain=cfg.pretrain,
            finetune=cfg.finetune,
        )
        assert [spec_hash(s) for s in cfg.expand()] == [
            spec_hash(s) for s in direct
        ]

    def test_schedule_axis_changes_pruned_hashes_only(self):
        one_shot = tiny_config().expand()
        iterative = tiny_config(schedule="iterative", schedule_steps=3).expand()
        for a, b in zip(one_shot, iterative):
            if a.compression <= 1.0:
                # baselines never prune: schedule normalized away, cache shared
                assert spec_hash(a) == spec_hash(b)
            else:
                assert spec_hash(a) != spec_hash(b)

    def test_execution_fields_do_not_affect_hashes(self):
        serial = tiny_config().expand()
        parallel = tiny_config(executor="parallel", workers=8).expand()
        assert [spec_hash(s) for s in serial] == [spec_hash(s) for s in parallel]


class TestExperimentSpecRoundTrip:
    def test_dict_round_trip_identical_hash(self):
        for spec in tiny_config(schedule="polynomial", schedule_steps=2).expand():
            clone = ExperimentSpec.from_dict(
                json.loads(json.dumps(spec.to_dict()))
            )
            assert clone == spec
            assert spec_hash(clone) == spec_hash(spec)

    def test_unknown_keys_rejected(self):
        payload = tiny_config().expand()[0].to_dict()
        payload["oops"] = 1
        with pytest.raises(ValueError, match="oops"):
            ExperimentSpec.from_dict(payload)

    def test_baseline_spec_normalized(self):
        spec = tiny_config(schedule="iterative", schedule_steps=4).expand()[-1]
        assert spec.compression > 1.0
        baseline = baseline_spec_for(spec)
        assert baseline.strategy == BASELINE_STRATEGY
        assert baseline.compression == 1.0
        assert baseline.schedule == "one_shot"
        assert baseline.schedule_steps == 1
        assert baseline.seed == spec.seed
