"""Unit tests for the columnar analysis layer (repro.analysis.ResultFrame)."""

import math
import warnings

import numpy as np
import pytest

from repro.analysis import ResultFrame, load_frame
from repro.experiment import PruningResult, ResultSet
from repro.experiment.prune import BASELINE_STRATEGY
from repro.plotting import export_frame_csv


def make_rows(strategies=("global_weight", "random"), seeds=(0, 1),
              comps=(1, 2, 4)):
    rows = []
    for strat in strategies:
        for seed in seeds:
            for c in comps:
                rows.append(PruningResult(
                    model="m", dataset="d", strategy=strat,
                    compression=float(c), seed=seed,
                    top1=0.9 - 0.02 * c + 0.01 * seed,
                    top5=0.95 - 0.01 * c,
                    baseline_top1=0.9 + 0.01 * seed,
                    baseline_top5=0.95,
                    actual_compression=float(c),
                    theoretical_speedup=float(c) ** 0.8,
                    dense_flops=100.0, effective_flops=100.0 / c,
                    total_params=1000, nonzero_params=int(1000 / c),
                ))
    return rows


class TestConstructionRoundTrip:
    def test_from_results_to_results_identity(self):
        rs = ResultSet(make_rows())
        frame = ResultFrame.from_results(rs)
        assert [r.to_dict() for r in frame.to_results()] == \
               [r.to_dict() for r in rs]

    def test_from_json_equals_from_results(self, tmp_path):
        rs = ResultSet(make_rows())
        path = tmp_path / "results.json"
        rs.save(path)
        a = ResultFrame.from_json(path)
        b = ResultFrame.from_results(rs)
        assert a.columns == b.columns
        assert a.to_records() == b.to_records()

    def test_save_roundtrip(self, tmp_path):
        frame = ResultFrame.from_results(make_rows())
        path = frame.save(tmp_path / "out.json")
        again = ResultFrame.from_json(path)
        assert again.to_records() == frame.to_records()

    def test_empty_frame_keeps_schema(self):
        frame = ResultFrame.from_results([])
        assert len(frame) == 0
        assert "top1" in frame and "delta_top1" in frame
        assert frame.curve() == []
        assert frame.tradeoff_curves() == {}

    def test_derived_columns(self):
        frame = ResultFrame.from_results(make_rows())
        np.testing.assert_allclose(
            frame["delta_top1"], frame["top1"] - frame["baseline_top1"]
        )
        np.testing.assert_allclose(frame["speedup"], frame["theoretical_speedup"])

    def test_from_records_missing_keys_become_nan(self):
        frame = ResultFrame.from_records(
            [{"a": 1.0, "b": "x"}, {"a": None, "c": 2}]
        )
        assert math.isnan(frame["a"][1])
        assert frame["b"][1] is None
        assert frame["c"].dtype == np.float64  # None upgraded int to float

    def test_all_none_column_is_float_and_filterable(self):
        # a metric no record reports must still answer isfinite filters
        frame = ResultFrame.from_records(
            [{"k": "a", "v": None}, {"k": "b", "v": None}]
        )
        assert frame["v"].dtype == np.float64
        assert len(frame.filter(v=np.isfinite)) == 0

    def test_column_errors_name_candidates(self):
        frame = ResultFrame.from_results(make_rows())
        with pytest.raises(KeyError, match="unknown column"):
            frame.column("not_a_column")

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError, match="rows"):
            ResultFrame({"a": np.arange(3), "b": np.arange(2)})


class TestFilter:
    @pytest.fixture
    def frame(self):
        return ResultFrame.from_results(make_rows())

    def test_scalar_equality(self, frame):
        sub = frame.filter(strategy="random", compression=2.0)
        assert len(sub) == 2
        assert set(sub["seed"]) == {0, 1}

    def test_sequence_membership(self, frame):
        assert len(frame.filter(compression=[2, 4])) == 8
        assert len(frame.filter(compression={2.0}, strategy=("random",))) == 2

    def test_vectorized_predicate(self, frame):
        assert len(frame.filter(compression=lambda c: c > 1)) == 8

    def test_elementwise_predicate(self, frame):
        sub = frame.filter(strategy=lambda s: s.startswith("g"))
        assert set(sub["strategy"]) == {"global_weight"}

    def test_filter_matches_legacy_resultset_filter(self, frame):
        rs = ResultSet(make_rows())
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = rs.filter(strategy="global_weight", compression=4.0, seed=1)
        sub = frame.filter(strategy="global_weight", compression=4.0, seed=1)
        assert [r.to_dict() for r in sub.to_results()] == \
               [r.to_dict() for r in legacy]


class TestFilterOpSpecs:
    """The serializable {"op", "value"} comparison form (the query
    language's filter conditions — see repro.analysis.query)."""

    @pytest.fixture
    def frame(self):
        return ResultFrame.from_results(make_rows())

    def test_ordering_ops_match_predicates(self, frame):
        for op, fn in (("<", lambda c: c < 2), ("<=", lambda c: c <= 2),
                       (">", lambda c: c > 2), (">=", lambda c: c >= 2)):
            spec = frame.filter(compression={"op": op, "value": 2})
            ref = frame.filter(compression=fn)
            assert spec.to_records() == ref.to_records(), op

    def test_eq_ne_match_scalar_forms(self, frame):
        assert frame.filter(strategy={"op": "==", "value": "random"}) \
            .to_records() == frame.filter(strategy="random").to_records()
        ne = frame.filter(strategy={"op": "!=", "value": "random"})
        assert set(ne["strategy"]) == {"global_weight"}

    def test_in_not_in_match_sequence_forms(self, frame):
        spec = frame.filter(compression={"op": "in", "value": [2, 4]})
        assert spec.to_records() == frame.filter(compression=[2, 4]).to_records()
        out = frame.filter(compression={"op": "not-in", "value": [2, 4]})
        assert set(out["compression"]) == {1.0}

    def test_ordering_on_string_column(self, frame):
        sub = frame.filter(strategy={"op": ">=", "value": "random"})
        assert set(sub["strategy"]) == {"random"}

    def test_op_specs_compose_with_other_forms(self, frame):
        sub = frame.filter(strategy="global_weight",
                           compression={"op": ">", "value": 1},
                           seed=[0])
        assert len(sub) == 2
        assert set(sub["compression"]) == {2.0, 4.0}

    def test_unknown_op_rejected(self, frame):
        with pytest.raises(ValueError, match="unknown filter op"):
            frame.filter(compression={"op": "~=", "value": 2})

    def test_malformed_spec_rejected(self, frame):
        with pytest.raises(ValueError, match="filter spec for column"):
            frame.filter(compression={"op": ">="})
        with pytest.raises(ValueError, match="filter spec for column"):
            frame.filter(compression={"op": ">=", "value": 2, "extra": 1})

    def test_membership_op_needs_sequence(self, frame):
        with pytest.raises(ValueError, match="sequence"):
            frame.filter(compression={"op": "in", "value": 2.0})

    def test_incomparable_types_error_names_column(self, frame):
        with pytest.raises(ValueError, match="strategy"):
            frame.filter(strategy={"op": ">=", "value": 2.0})


class TestLoadFrameErrors:
    def test_missing_path(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no results at"):
            load_frame(tmp_path / "nope.json")

    def test_non_json_file_names_path_and_expectation(self, tmp_path):
        bogus = tmp_path / "notes.txt"
        bogus.write_text("definitely: not json\n")
        with pytest.raises(ValueError, match="not a results file"):
            load_frame(bogus)
        with pytest.raises(ValueError, match="notes.txt"):
            load_frame(bogus)

    def test_wrong_json_shape_is_a_value_error(self, tmp_path):
        bogus = tmp_path / "scalar.json"
        bogus.write_text("42")
        with pytest.raises(ValueError, match="not a results file"):
            load_frame(bogus)

    def test_empty_directory_names_all_three_layouts(self, tmp_path):
        with pytest.raises(FileNotFoundError,
                           match="results file, a result-cache"):
            load_frame(tmp_path)

    def test_valid_sources_still_load(self, tmp_path):
        path = ResultFrame.from_results(make_rows()).save(tmp_path / "r.json")
        assert len(load_frame(path)) == len(make_rows())


class TestGroupAggregate:
    def test_group_by_sorted_and_first_appearance(self):
        frame = ResultFrame.from_records(
            [{"k": "b", "v": 1}, {"k": "a", "v": 2}, {"k": "b", "v": 3}]
        )
        assert [k for k, _ in frame.group_by("k")] == ["a", "b"]
        assert [k for k, _ in frame.group_by("k", sort=False)] == ["b", "a"]

    def test_aggregate_mean_std_n(self):
        frame = ResultFrame.from_results(make_rows())
        agg = frame.aggregate(by=("strategy", "compression"), values=("top1",))
        rec = next(r for r in agg.to_records()
                   if r["strategy"] == "random" and r["compression"] == 4.0)
        ys = [0.9 - 0.08, 0.9 - 0.08 + 0.01]
        assert rec["n"] == 2
        assert rec["top1_mean"] == pytest.approx(np.mean(ys))
        assert rec["top1_std"] == pytest.approx(np.std(ys, ddof=1))

    def test_aggregate_min_max(self):
        frame = ResultFrame.from_records([{"k": "a", "v": 1.0}, {"k": "a", "v": 3.0}])
        agg = frame.aggregate(by="k", values=("v",), stats=("min", "max"))
        rec = agg.to_records()[0]
        assert rec["v_min"] == 1.0 and rec["v_max"] == 3.0

    def test_aggregate_single_by_keeps_scalar_keys(self):
        # regression: a one-name `by` used to emit tuple-valued key columns
        frame = ResultFrame.from_results(make_rows())
        agg = frame.aggregate(by="strategy", values=("top1",))
        assert agg.unique("strategy") == ["global_weight", "random"]

    def test_fingerprint_tracks_content_not_identity(self):
        frame = ResultFrame.from_results(make_rows())
        same = ResultFrame.from_results(make_rows())
        assert frame.fingerprint() == same.fingerprint()
        other = frame.filter(strategy="random")
        assert frame.fingerprint() != other.fingerprint()

    def test_curve_matches_legacy_aggregate_curve(self):
        rows = make_rows()
        from repro.experiment import aggregate_curve

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = aggregate_curve(rows, x_attr="compression", y_attr="top1")
        pts = ResultFrame.from_results(rows).curve(x="compression", y="top1")
        assert [(p.x, p.mean, p.std, p.n) for p in legacy] == \
               [(p.x, p.mean, p.std, p.n) for p in pts]

    def test_inf_propagates_without_corrupting_other_columns(self):
        """actual_compression can legitimately be inf (all-pruned masks)."""
        rows = make_rows(strategies=("global_weight",), seeds=(0, 1), comps=(4,))
        rows[0].actual_compression = float("inf")
        frame = ResultFrame.from_results(rows)
        agg = frame.aggregate(
            by=("strategy", "compression"),
            values=("actual_compression", "top1"),
        )
        rec = agg.to_records()[0]
        assert math.isinf(rec["actual_compression_mean"])
        # the poisoned column must not leak into its neighbors
        assert math.isfinite(rec["top1_mean"]) and math.isfinite(rec["top1_std"])
        assert rec["top1_mean"] == pytest.approx((0.82 + 0.83) / 2)

    def test_inf_renders_parseable_in_csv(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_ARTIFACTS", str(tmp_path))
        rows = make_rows(strategies=("global_weight",), seeds=(0,), comps=(4,))
        rows[0].actual_compression = float("inf")
        agg = ResultFrame.from_results(rows).aggregate(
            by="strategy", values=("actual_compression", "top1")
        )
        path = export_frame_csv(agg, "inf_regression")
        import csv

        table = list(csv.reader(open(path)))
        idx = table[0].index("actual_compression_mean")
        assert math.isinf(float(table[1][idx]))  # 'inf' parses back
        assert math.isfinite(float(table[1][table[0].index("top1_mean")]))


class TestBaselines:
    def test_join_baseline_attaches_control(self):
        rows = make_rows()
        frame = ResultFrame.from_results(rows).join_baseline()
        base_top1 = {  # the compression==1 row per seed
            seed: next(r.top1 for r in rows
                       if r.seed == seed and r.compression == 1.0)
            for seed in (0, 1)
        }
        for rec in frame.to_records():
            assert rec["control_top1"] == pytest.approx(base_top1[rec["seed"]])

    def test_replicate_baselines_expands_sentinels(self):
        rows = [
            PruningResult(model="m", dataset="d", strategy=BASELINE_STRATEGY,
                          compression=1.0, seed=0, top1=0.9),
            PruningResult(model="m", dataset="d", strategy="global_weight",
                          compression=2.0, seed=0, top1=0.8),
            PruningResult(model="m", dataset="d", strategy="random",
                          compression=2.0, seed=0, top1=0.7),
        ]
        frame = ResultFrame.from_results(rows).replicate_baselines()
        assert len(frame) == 4
        base = frame.filter(compression=1.0)
        assert sorted(base["strategy"]) == ["global_weight", "random"]
        assert not frame.mask(strategy=BASELINE_STRATEGY).any()

    def test_replicate_baselines_noop_when_already_replicated(self):
        frame = ResultFrame.from_results(make_rows())
        assert frame.replicate_baselines().to_records() == frame.to_records()


class TestParetoAndFailures:
    def test_pareto_frontier_drops_dominated(self):
        frame = ResultFrame.from_records([
            {"s": "a", "x": 2.0, "y": 0.9},
            {"s": "b", "x": 2.0, "y": 0.8},   # dominated by a
            {"s": "a", "x": 4.0, "y": 0.85},
            {"s": "b", "x": 4.0, "y": 0.85},  # tie with a@4: both survive
            {"s": "b", "x": 8.0, "y": 0.5},
        ])
        front = frame.pareto_frontier(x="x", y="y")
        assert [(r["x"], r["y"]) for r in front.to_records()] == [
            (2.0, 0.9), (4.0, 0.85), (4.0, 0.85), (8.0, 0.5)
        ]

    def test_failed_rows_separated(self):
        rows = make_rows(strategies=("global_weight",), seeds=(0,), comps=(2,))
        rows.append(PruningResult(
            model="m", dataset="d", strategy="random", compression=2.0,
            seed=0, extra={"failed": True, "error": "boom"},
        ))
        frame = ResultFrame.from_results(rows)
        assert len(frame.ok()) == 1
        assert len(frame.failures()) == 1
        assert frame.failures()["strategy"][0] == "random"


class TestLoadFrame:
    def test_load_frame_sniffs_json_file(self, tmp_path):
        rs = ResultSet(make_rows())
        path = tmp_path / "r.json"
        rs.save(path)
        assert len(load_frame(path)) == len(rs)

    def test_load_frame_missing_path(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_frame(tmp_path / "nope.json")


class TestDeprecatedShims:
    def test_aggregate_curve_warns_once(self):
        import repro.registry as registry_mod

        registry_mod._WARNED.discard("repro.experiment.aggregate_curve")
        from repro.experiment import aggregate_curve

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            aggregate_curve(make_rows())
            aggregate_curve(make_rows())
        dep = [w for w in caught if issubclass(w.category, DeprecationWarning)]
        assert len(dep) == 1
        assert "aggregate_curve" in str(dep[0].message)

    def test_resultset_filter_warns_once_and_keeps_identity(self):
        import repro.registry as registry_mod

        registry_mod._WARNED.discard("repro.experiment.ResultSet.filter")
        rs = ResultSet(make_rows())
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            sub = rs.filter(strategy="random")
            rs.filter(strategy="global_weight")
        dep = [w for w in caught if issubclass(w.category, DeprecationWarning)]
        assert len(dep) == 1
        # the shim returns the same row objects, not copies
        assert all(any(r is orig for orig in rs.results) for r in sub.results)

    def test_resultset_filter_falls_back_for_non_columns(self):
        rows = make_rows(strategies=("global_weight",), seeds=(0,), comps=(1, 2))
        for r in rows:
            r.pruned_flag = r.compression > 1  # ad-hoc attr, not a column
        rs = ResultSet(rows)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            sub = rs.filter(pruned_flag=True)
        assert [r.compression for r in sub] == [2.0]
